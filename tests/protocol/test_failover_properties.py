"""Property test: arbitrary server-failure sets never lose reachable data.

For every randomly chosen set of dead servers, the RnB client must
return exactly the keys that still have at least one live replica — no
spurious losses, no phantom values, no exceptions.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.rch import RangedConsistentHashPlacer
from repro.protocol.memclient import MemcachedConnection
from repro.protocol.memserver import MemcachedServer
from repro.protocol.rnbclient import RnBProtocolClient
from repro.protocol.transport import LoopbackTransport

N_SERVERS = 6
REPLICATION = 2
KEYS = [f"key{i}" for i in range(36)]


class FailableTransport(LoopbackTransport):
    def __init__(self, server):
        super().__init__(server)
        self.alive = True

    def exchange(self, request, n_responses=1):
        if not self.alive:
            raise ConnectionError("server down")
        return super().exchange(request, n_responses)


def build_stack():
    placer = RangedConsistentHashPlacer(N_SERVERS, REPLICATION, vnodes=32)
    servers = {i: MemcachedServer() for i in range(N_SERVERS)}
    transports = {i: FailableTransport(servers[i]) for i in range(N_SERVERS)}
    conns = {i: MemcachedConnection(transports[i]) for i in range(N_SERVERS)}
    client = RnBProtocolClient(conns, placer)
    for k in KEYS:
        client.set(k, k.encode())
    return placer, transports, client


@settings(max_examples=40, deadline=None)
@given(st.sets(st.integers(0, N_SERVERS - 1), max_size=N_SERVERS - 1))
def test_exactly_reachable_keys_returned(dead):
    placer, transports, client = build_stack()
    for sid in dead:
        transports[sid].alive = False

    out = client.get_multi(KEYS)

    reachable = {
        k for k in KEYS if set(placer.servers_for(k)) - dead
    }
    assert set(out.values) == reachable
    assert set(out.missing) == set(KEYS) - reachable
    for k, v in out.values.items():
        assert v == k.encode()
    assert set(out.failed_servers) <= dead


@settings(max_examples=25, deadline=None)
@given(
    st.sets(st.integers(0, N_SERVERS - 1), max_size=N_SERVERS - 1),
    st.floats(0.3, 1.0),
)
def test_limit_satisfied_when_possible(dead, fraction):
    placer, transports, client = build_stack()
    for sid in dead:
        transports[sid].alive = False

    out = client.get_multi(KEYS, limit_fraction=fraction)
    reachable = sum(1 for k in KEYS if set(placer.servers_for(k)) - dead)
    required = max(1, min(len(KEYS), int(-(-fraction * len(KEYS) // 1))))
    assert len(out.values) >= min(required, reachable)

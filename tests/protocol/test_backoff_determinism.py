"""Backoff determinism, deadline budgets, and the connect-refused path.

The retry schedule is load-bearing for reproducibility (simulated
clients share seeded generators with the rest of a run), so the bounds
and determinism are pinned here rather than assumed:

* same seed -> bit-identical delay sequence;
* no delay ever exceeds ``backoff_max * (1 + jitter)``;
* a deadline budget cuts the schedule short instead of sleeping past it;
* a refused TCP connection is retryable like any transient fault.
"""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.protocol.retry import RetryPolicy, call_with_retries
from repro.protocol.transport import TCPTransport

POLICY = RetryPolicy(
    max_retries=6, backoff_base=0.01, backoff_multiplier=3.0, backoff_max=0.2, jitter=0.25
)


class TestBackoffDeterminism:
    def test_same_seed_same_delays(self):
        a = POLICY.backoff_schedule(rng=np.random.default_rng(99))
        b = POLICY.backoff_schedule(rng=np.random.default_rng(99))
        assert a == b

    def test_different_seeds_jitter_differently(self):
        a = POLICY.backoff_schedule(rng=np.random.default_rng(1))
        b = POLICY.backoff_schedule(rng=np.random.default_rng(2))
        assert a != b

    def test_delays_never_exceed_cap(self):
        ceiling = POLICY.backoff_max * (1 + POLICY.jitter)
        for seed in range(50):
            for delay in POLICY.backoff_schedule(rng=np.random.default_rng(seed)):
                assert 0.0 <= delay <= ceiling

    def test_jitter_only_inflates(self):
        bare = POLICY.backoff_schedule()
        jittered = POLICY.backoff_schedule(rng=np.random.default_rng(5))
        assert all(j >= b for j, b in zip(jittered, bare))

    def test_sleeps_observed_match_schedule(self):
        rng_a, rng_b = np.random.default_rng(7), np.random.default_rng(7)
        slept: list[float] = []

        def always_fails():
            raise ConnectionError("nope")

        with pytest.raises(ConnectionError):
            call_with_retries(always_fails, POLICY, rng=rng_a, sleep=slept.append)
        assert slept == POLICY.backoff_schedule(rng=rng_b)


class TestDeadlineBudget:
    def test_deadline_cuts_retries_short(self):
        clock = iter([0.0, 0.0, 10.0]).__next__  # second check far past budget
        calls = []

        def always_fails():
            calls.append(1)
            raise ConnectionError("nope")

        with pytest.raises(ConnectionError):
            call_with_retries(
                always_fails, POLICY, sleep=lambda s: None, deadline=5.0, clock=clock
            )
        # first attempt + one retry; the second retry would sleep past
        # the budget, so the error re-raises instead
        assert len(calls) == 2

    def test_generous_deadline_changes_nothing(self):
        attempts = []

        def fails_twice():
            attempts.append(1)
            if len(attempts) < 3:
                raise ConnectionError("flaky")
            return "ok"

        ticks = iter(float(t) for t in range(100))
        assert (
            call_with_retries(
                fails_twice,
                POLICY,
                sleep=lambda s: None,
                deadline=1e9,
                clock=lambda: next(ticks),
            )
            == "ok"
        )

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ConfigurationError):
            call_with_retries(lambda: 1, POLICY, deadline=0.0)


class TestConnectRefused:
    @pytest.fixture()
    def dead_port(self):
        # bind-then-close guarantees a port with no listener
        s = socket.socket()
        s.bind(("127.0.0.1", 0))
        port = s.getsockname()[1]
        s.close()
        return port

    def test_refused_connection_propagates(self, dead_port):
        with pytest.raises(ConnectionRefusedError):
            TCPTransport("127.0.0.1", dead_port, connect_timeout=1.0)

    def test_refused_connection_is_retried(self, dead_port):
        policy = RetryPolicy(max_retries=2, backoff_base=0.0, backoff_max=0.0, jitter=0.0)
        retries = []

        def connect():
            return TCPTransport("127.0.0.1", dead_port, connect_timeout=1.0)

        with pytest.raises(ConnectionRefusedError):
            call_with_retries(
                connect,
                policy,
                sleep=lambda s: None,
                on_retry=lambda attempt, exc: retries.append(attempt),
            )
        assert retries == [0, 1]  # full schedule ran before giving up

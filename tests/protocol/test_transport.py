"""Tests for loopback and TCP transports."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.protocol.codec import Command, encode_command
from repro.protocol.memserver import MemcachedServer, serve_tcp
from repro.protocol.transport import LoopbackTransport, TCPTransport


class TestLoopback:
    def test_single_exchange(self):
        t = LoopbackTransport(MemcachedServer())
        [resp] = t.exchange(encode_command(Command("get", keys=("x",))))
        assert resp.status == "END"

    def test_pipelined_exchange(self):
        t = LoopbackTransport(MemcachedServer())
        req = encode_command(Command("set", keys=("a",), data=b"1")) + encode_command(
            Command("get", keys=("a",))
        )
        stored, got = t.exchange(req, n_responses=2)
        assert stored.status == "STORED"
        assert got.values["a"][1] == b"1"

    def test_trailing_bytes_rejected(self):
        t = LoopbackTransport(MemcachedServer())
        req = encode_command(Command("get", keys=("a",))) + encode_command(
            Command("get", keys=("b",))
        )
        with pytest.raises(ProtocolError):
            t.exchange(req, n_responses=1)

    def test_close_is_noop(self):
        LoopbackTransport(MemcachedServer()).close()


class TestTCP:
    @pytest.fixture()
    def live_server(self):
        backend = MemcachedServer()
        server, (host, port) = serve_tcp(backend)
        yield backend, host, port
        server.shutdown()
        server.server_close()

    def test_roundtrip_over_socket(self, live_server):
        _, host, port = live_server
        t = TCPTransport(host, port)
        try:
            [resp] = t.exchange(encode_command(Command("set", keys=("k",), data=b"v")))
            assert resp.status == "STORED"
            [resp] = t.exchange(encode_command(Command("get", keys=("k",))))
            assert resp.values["k"][1] == b"v"
        finally:
            t.close()

    def test_two_connections_share_state(self, live_server):
        _, host, port = live_server
        t1, t2 = TCPTransport(host, port), TCPTransport(host, port)
        try:
            t1.exchange(encode_command(Command("set", keys=("shared",), data=b"x")))
            [resp] = t2.exchange(encode_command(Command("get", keys=("shared",))))
            assert "shared" in resp.values
        finally:
            t1.close()
            t2.close()

    def test_large_value_chunked(self, live_server):
        _, host, port = live_server
        t = TCPTransport(host, port)
        payload = b"z" * 200_000  # larger than one recv buffer
        try:
            [resp] = t.exchange(
                encode_command(Command("set", keys=("big",), data=payload))
            )
            assert resp.status == "STORED"
            [resp] = t.exchange(encode_command(Command("get", keys=("big",))))
            assert resp.values["big"][1] == payload
        finally:
            t.close()

"""Dead-port semantics, shared across the sync and async transports.

PR 5 split connect/read timeouts and pinned down refused-connect
behaviour for ``TCPTransport``: a connection refused propagates as
``ConnectionRefusedError`` (an ``OSError``, hence retryable) rather than
being wrapped.  The async transport must agree — a client failing over
between transports cannot change its error taxonomy — so both are
exercised here against the same dead port.
"""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.aio.transport import AsyncConnection
from repro.protocol.retry import (
    RetryPolicy,
    async_call_with_retries,
    call_with_retries,
)
from repro.protocol.transport import TCPTransport


@pytest.fixture()
def dead_port() -> int:
    """A loopback port that was just bound and released: connects refuse."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


FAST = RetryPolicy(
    connect_timeout=2.0,
    request_timeout=2.0,
    max_retries=2,
    backoff_base=0.0001,
    backoff_max=0.001,
)


class TestSyncTransport:
    def test_refused_connect_propagates(self, dead_port):
        with pytest.raises(ConnectionRefusedError):
            TCPTransport("127.0.0.1", dead_port, timeout=2.0)

    def test_refused_connect_is_retryable(self, dead_port):
        attempts = []
        with pytest.raises(ConnectionRefusedError):
            call_with_retries(
                lambda: TCPTransport("127.0.0.1", dead_port, timeout=2.0),
                FAST,
                sleep=lambda _: None,
                on_retry=lambda n, exc: attempts.append(type(exc)),
            )
        assert attempts == [ConnectionRefusedError, ConnectionRefusedError]


class TestAsyncTransport:
    def test_refused_connect_propagates(self, dead_port):
        async def scenario():
            conn = AsyncConnection("127.0.0.1", dead_port, timeout=2.0)
            with pytest.raises(ConnectionRefusedError):
                await conn.ensure_connected()
            assert not conn.connected

        asyncio.run(scenario())

    def test_refused_connect_is_retryable(self, dead_port):
        async def scenario():
            attempts = []

            async def connect():
                conn = AsyncConnection("127.0.0.1", dead_port, timeout=2.0)
                await conn.ensure_connected()
                return conn

            with pytest.raises(ConnectionRefusedError):
                await async_call_with_retries(
                    connect,
                    FAST,
                    sleep=_no_sleep,
                    on_retry=lambda n, exc: attempts.append(type(exc)),
                )
            assert attempts == [ConnectionRefusedError, ConnectionRefusedError]

        async def _no_sleep(_):
            return None

        asyncio.run(scenario())

    def test_exchange_on_dead_port_also_refuses(self, dead_port):
        # the lazy connect inside exchange must not change the taxonomy
        async def scenario():
            conn = AsyncConnection("127.0.0.1", dead_port, timeout=2.0)
            with pytest.raises(ConnectionRefusedError):
                await conn.exchange(b"get k\r\n")

        asyncio.run(scenario())


class TestParity:
    def test_both_transports_raise_the_same_error_type(self, dead_port):
        sync_exc = async_exc = None
        try:
            TCPTransport("127.0.0.1", dead_port, timeout=2.0)
        except OSError as exc:
            sync_exc = type(exc)

        async def try_async():
            nonlocal async_exc
            try:
                await AsyncConnection(
                    "127.0.0.1", dead_port, timeout=2.0
                ).ensure_connected()
            except OSError as exc:
                async_exc = type(exc)

        asyncio.run(try_async())
        assert sync_exc is async_exc is ConnectionRefusedError

"""RetryPolicy: backoff bounds, bounded retries, timeout plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, ProtocolError, ServerTimeout
from repro.protocol.memclient import MemcachedConnection
from repro.protocol.memserver import MemcachedServer
from repro.protocol.retry import (
    DEFAULT_POLICY,
    RETRYABLE_ERRORS,
    RetryPolicy,
    call_with_retries,
)
from repro.protocol.transport import LoopbackTransport, TCPTransport


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"connect_timeout": 0.0},
            {"request_timeout": -1.0},
            {"max_retries": -1},
            {"backoff_base": -0.1},
            {"backoff_base": 2.0, "backoff_max": 1.0},
            {"backoff_multiplier": 0.5},
            {"jitter": 1.5},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_default_policy_sane(self):
        assert DEFAULT_POLICY.max_retries >= 0
        assert DEFAULT_POLICY.request_timeout > 0


class TestBackoff:
    def test_deterministic_schedule_without_rng(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_multiplier=2.0, backoff_max=1.0, max_retries=6
        )
        assert policy.backoff_schedule() == [0.1, 0.2, 0.4, 0.8, 1.0, 1.0]

    def test_cap_applies(self):
        policy = RetryPolicy(backoff_base=0.5, backoff_max=0.6, max_retries=4)
        assert all(d <= 0.6 for d in policy.backoff_schedule())

    def test_jitter_bounds(self):
        policy = RetryPolicy(
            backoff_base=0.1,
            backoff_multiplier=2.0,
            backoff_max=1.0,
            jitter=0.25,
            max_retries=5,
        )
        rng = np.random.default_rng(0)
        for _ in range(50):
            for k in range(policy.max_retries):
                bare = policy.backoff(k)
                jittered = policy.backoff(k, rng=rng)
                assert bare <= jittered <= bare * 1.25 + 1e-12

    def test_negative_attempt_rejected(self):
        with pytest.raises(ValueError):
            DEFAULT_POLICY.backoff(-1)


class TestCallWithRetries:
    def make(self, fail_times: int, exc=ConnectionError):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            if calls["n"] <= fail_times:
                raise exc("boom")
            return "ok"

        return fn, calls

    def test_succeeds_after_transient_failures(self):
        policy = RetryPolicy(max_retries=2, backoff_base=0.0, backoff_max=0.0)
        sleeps: list[float] = []
        fn, calls = self.make(2)
        result = call_with_retries(fn, policy, rng=None, sleep=sleeps.append)
        assert result == "ok"
        assert calls["n"] == 3
        assert len(sleeps) == 2

    def test_exhaustion_reraises_last_error(self):
        policy = RetryPolicy(max_retries=2, backoff_base=0.0, backoff_max=0.0)
        fn, calls = self.make(10)
        with pytest.raises(ConnectionError):
            call_with_retries(fn, policy, rng=None, sleep=lambda d: None)
        assert calls["n"] == 3  # 1 attempt + max_retries

    def test_zero_retries_single_shot(self):
        policy = RetryPolicy(max_retries=0)
        fn, calls = self.make(1)
        with pytest.raises(ConnectionError):
            call_with_retries(fn, policy, rng=None, sleep=lambda d: None)
        assert calls["n"] == 1

    def test_non_retryable_passes_through(self):
        policy = RetryPolicy(max_retries=5)
        fn, calls = self.make(3, exc=ValueError)
        with pytest.raises(ValueError):
            call_with_retries(fn, policy, rng=None, sleep=lambda d: None)
        assert calls["n"] == 1

    def test_on_retry_hook_sees_attempts(self):
        policy = RetryPolicy(max_retries=3, backoff_base=0.0, backoff_max=0.0)
        seen: list[tuple[int, str]] = []
        fn, _ = self.make(2)
        call_with_retries(
            fn,
            policy,
            rng=None,
            sleep=lambda d: None,
            on_retry=lambda k, e: seen.append((k, type(e).__name__)),
        )
        assert seen == [(0, "ConnectionError"), (1, "ConnectionError")]

    def test_retryable_covers_injected_faults(self):
        # ServerDown/ServerTimeout subclass ConnectionError/TimeoutError
        from repro.errors import ServerDown

        assert issubclass(ServerDown, RETRYABLE_ERRORS)
        assert issubclass(ServerTimeout, RETRYABLE_ERRORS)
        assert issubclass(ProtocolError, RETRYABLE_ERRORS)


class FlakyTransport:
    """Loopback that raises on the first ``fail_times`` exchanges."""

    def __init__(self, server: MemcachedServer, fail_times: int):
        self.inner = LoopbackTransport(server)
        self.fail_times = fail_times
        self.exchanges = 0

    def exchange(self, request: bytes, n_responses: int = 1):
        self.exchanges += 1
        if self.exchanges <= self.fail_times:
            raise ServerTimeout("injected")
        return self.inner.exchange(request, n_responses)

    def close(self) -> None:
        pass


class TestConnectionRetries:
    def test_idempotent_ops_retry(self):
        policy = RetryPolicy(max_retries=2, backoff_base=0.0, backoff_max=0.0)
        server = MemcachedServer()
        conn = MemcachedConnection(
            FlakyTransport(server, 2), policy=policy, sleep=lambda d: None
        )
        assert conn.set("k", b"v")  # 2 failures ridden out
        assert conn.retries == 2
        assert conn.get("k") == b"v"

    def test_without_policy_single_shot(self):
        server = MemcachedServer()
        conn = MemcachedConnection(FlakyTransport(server, 1))
        with pytest.raises(ServerTimeout):
            conn.get("k")
        assert conn.retries == 0

    def test_non_idempotent_ops_never_retry(self):
        policy = RetryPolicy(max_retries=5, backoff_base=0.0, backoff_max=0.0)
        server = MemcachedServer()
        transport = FlakyTransport(server, 1)
        conn = MemcachedConnection(transport, policy=policy, sleep=lambda d: None)
        with pytest.raises(ServerTimeout):
            conn.incr("counter", 1)
        assert transport.exchanges == 1  # a retried incr could double-count


class TestTransportTimeoutPlumbing:
    def test_policy_sets_socket_timeouts(self):
        from repro.protocol.memserver import serve_tcp

        policy = RetryPolicy(connect_timeout=2.5, request_timeout=0.75)
        server, (host, port) = serve_tcp(MemcachedServer())
        try:
            transport = TCPTransport(host, port, policy=policy)
            assert transport._sock.gettimeout() == 0.75
            transport.close()
            # legacy keyword still wins over the policy
            transport = TCPTransport(host, port, policy=policy, timeout=3.0)
            assert transport._sock.gettimeout() == 3.0
            transport.close()
        finally:
            server.shutdown()
            server.server_close()

    def test_default_policy_when_nothing_passed(self):
        from repro.protocol.memserver import serve_tcp

        server, (host, port) = serve_tcp(MemcachedServer())
        try:
            transport = TCPTransport(host, port)
            assert transport._sock.gettimeout() == DEFAULT_POLICY.request_timeout
            transport.close()
        finally:
            server.shutdown()
            server.server_close()

"""Split connect/read timeouts on TCPTransport and their precedence."""

from __future__ import annotations

import pytest

from repro.protocol.memserver import MemcachedServer, serve_tcp
from repro.protocol.retry import RetryPolicy
from repro.protocol.transport import TCPTransport


@pytest.fixture()
def live_server():
    backend = MemcachedServer()
    server, (host, port) = serve_tcp(backend)
    yield host, port
    server.shutdown()
    server.server_close()


class TestTimeoutPrecedence:
    def test_policy_is_the_default_source(self, live_server):
        host, port = live_server
        policy = RetryPolicy(connect_timeout=3.5, request_timeout=7.5)
        t = TCPTransport(host, port, policy=policy)
        try:
            assert t.connect_timeout == 3.5
            assert t.read_timeout == 7.5
        finally:
            t.close()

    def test_legacy_timeout_overrides_both(self, live_server):
        host, port = live_server
        policy = RetryPolicy(connect_timeout=3.5, request_timeout=7.5)
        t = TCPTransport(host, port, policy=policy, timeout=1.25)
        try:
            assert t.connect_timeout == 1.25
            assert t.read_timeout == 1.25
        finally:
            t.close()

    def test_per_phase_kwargs_beat_legacy(self, live_server):
        host, port = live_server
        t = TCPTransport(
            host, port, timeout=9.0, connect_timeout=0.5, read_timeout=2.0
        )
        try:
            assert t.connect_timeout == 0.5
            assert t.read_timeout == 2.0
        finally:
            t.close()

    def test_one_phase_overridden_other_from_legacy(self, live_server):
        host, port = live_server
        t = TCPTransport(host, port, timeout=9.0, connect_timeout=0.5)
        try:
            assert t.connect_timeout == 0.5
            assert t.read_timeout == 9.0
        finally:
            t.close()

    def test_socket_read_timeout_applied(self, live_server):
        host, port = live_server
        t = TCPTransport(host, port, read_timeout=2.5)
        try:
            assert t._sock.gettimeout() == 2.5
        finally:
            t.close()

"""Tests for the in-process memcached server semantics."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.protocol.codec import Command
from repro.protocol.memserver import MemcachedServer


def set_cmd(key, data, noreply=False):
    return Command("set", keys=(key,), data=data, noreply=noreply)


class TestStorage:
    def test_set_then_get(self):
        s = MemcachedServer()
        assert s.execute(set_cmd("a", b"v")) == b"STORED\r\n"
        out = s.execute(Command("get", keys=("a",)))
        assert b"VALUE a 0 1\r\nv\r\n" in out and out.endswith(b"END\r\n")

    def test_get_miss_is_silent(self):
        s = MemcachedServer()
        assert s.execute(Command("get", keys=("nope",))) == b"END\r\n"
        assert s.stats["get_misses"] == 1

    def test_multiget_partial(self):
        s = MemcachedServer()
        s.execute(set_cmd("a", b"1"))
        out = s.execute(Command("get", keys=("a", "b", "c")))
        assert out.count(b"VALUE") == 1
        assert s.stats["get_hits"] == 1
        assert s.stats["get_misses"] == 2

    def test_overwrite(self):
        s = MemcachedServer()
        s.execute(set_cmd("a", b"old"))
        s.execute(set_cmd("a", b"newer"))
        out = s.execute(Command("get", keys=("a",)))
        assert b"newer" in out

    def test_noreply_set(self):
        s = MemcachedServer()
        assert s.execute(set_cmd("a", b"v", noreply=True)) == b""
        assert "a" in s

    def test_delete(self):
        s = MemcachedServer()
        s.execute(set_cmd("a", b"v"))
        assert s.execute(Command("delete", keys=("a",))) == b"DELETED\r\n"
        assert s.execute(Command("delete", keys=("a",))) == b"NOT_FOUND\r\n"

    def test_flush_all(self):
        s = MemcachedServer()
        s.execute(set_cmd("a", b"v"))
        assert s.execute(Command("flush_all")) == b"OK\r\n"
        assert s.curr_items == 0
        assert s.bytes_used == 0


class TestCas:
    def test_gets_returns_cas(self):
        s = MemcachedServer()
        s.execute(set_cmd("a", b"v"))
        out = s.execute(Command("gets", keys=("a",)))
        assert b"VALUE a 0 1 1\r\n" in out

    def test_cas_success_and_conflict(self):
        s = MemcachedServer()
        s.execute(set_cmd("a", b"v1"))
        assert s.execute(Command("cas", keys=("a",), data=b"v2", cas=1)) == b"STORED\r\n"
        # stale cas id now conflicts
        assert s.execute(Command("cas", keys=("a",), data=b"v3", cas=1)) == b"EXISTS\r\n"
        assert s.stats["cas_hits"] == 1
        assert s.stats["cas_badval"] == 1

    def test_cas_missing_key(self):
        s = MemcachedServer()
        assert s.execute(Command("cas", keys=("x",), data=b"v", cas=1)) == b"NOT_FOUND\r\n"

    def test_cas_ids_monotone(self):
        s = MemcachedServer()
        s.execute(set_cmd("a", b"1"))
        s.execute(set_cmd("b", b"2"))
        out = s.execute(Command("gets", keys=("a", "b")))
        assert b"VALUE a 0 1 1" in out
        assert b"VALUE b 0 1 2" in out


class TestLRUEviction:
    def test_evicts_by_bytes(self):
        s = MemcachedServer(capacity_bytes=10)
        s.execute(set_cmd("a", b"12345"))
        s.execute(set_cmd("b", b"12345"))
        s.execute(set_cmd("c", b"1"))  # evicts a (LRU)
        assert "a" not in s and "b" in s and "c" in s
        assert s.stats["evictions"] == 1

    def test_get_refreshes_lru(self):
        s = MemcachedServer(capacity_bytes=10)
        s.execute(set_cmd("a", b"12345"))
        s.execute(set_cmd("b", b"12345"))
        s.execute(Command("get", keys=("a",)))
        s.execute(set_cmd("c", b"1"))  # evicts b, not the refreshed a
        assert "a" in s and "b" not in s

    def test_oversized_item_dropped(self):
        s = MemcachedServer(capacity_bytes=4)
        s.execute(set_cmd("big", b"123456"))
        assert "big" not in s

    def test_replacement_releases_bytes(self):
        s = MemcachedServer(capacity_bytes=10)
        s.execute(set_cmd("a", b"123456789"))
        s.execute(set_cmd("a", b"12"))
        assert s.bytes_used == 2


class TestStatsAndHandle:
    def test_stats_counters(self):
        s = MemcachedServer()
        s.execute(set_cmd("a", b"v"))
        s.execute(Command("get", keys=("a",)))
        out = s.execute(Command("stats"))
        assert b"STAT cmd_get 1" in out
        assert b"STAT cmd_set 1" in out
        assert b"STAT curr_items 1" in out

    def test_version(self):
        s = MemcachedServer()
        assert s.execute(Command("version")).startswith(b"VERSION")

    def test_handle_pipelined(self):
        s = MemcachedServer()
        out = s.handle(b"set a 0 0 1\r\nx\r\nget a\r\n")
        assert out.startswith(b"STORED\r\n")
        assert b"VALUE a" in out

    def test_handle_trailing_garbage_rejected(self):
        s = MemcachedServer()
        with pytest.raises(ProtocolError):
            s.handle(b"get a\r\nget")

    def test_total_transactions(self):
        s = MemcachedServer()
        s.execute(set_cmd("a", b"v"))
        s.execute(Command("get", keys=("a",)))
        assert s.stats["total_transactions"] == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MemcachedServer(capacity_bytes=-1)


class TestStatsMetricsVerb:
    """The extended `stats metrics` verb (docs/OBSERVABILITY.md)."""

    def _server(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter(
            "rnb_requests_total", "requests", path="live", outcome="ok"
        ).inc(2)
        s = MemcachedServer(name="m0", metrics=registry)
        s.execute(set_cmd("a", b"v"))
        s.execute(Command("get", keys=("a",)))
        return s, registry

    def test_cache_stats_re_exported_with_server_label(self):
        s, _ = self._server()
        out = s.execute(Command("stats", keys=("metrics",)))
        assert b'STAT rnb_cache_cmd_get_total{server="m0"} 1' in out
        assert b'STAT rnb_cache_curr_items{server="m0"} 1' in out
        assert out.endswith(b"END\r\n")

    def test_registry_samples_ride_along(self):
        s, _ = self._server()
        out = s.execute(Command("stats", keys=("metrics",)))
        assert b'STAT rnb_requests_total{outcome="ok",path="live"} 2' in out

    def test_works_without_a_registry(self):
        s = MemcachedServer(name="bare")
        s.execute(set_cmd("a", b"v"))
        out = s.execute(Command("stats", keys=("metrics",)))
        assert b'STAT rnb_cache_cmd_set_total{server="bare"} 1' in out

    def test_unknown_argument_is_client_error(self):
        s, _ = self._server()
        out = s.execute(Command("stats", keys=("bogus",)))
        assert out.startswith(b"CLIENT_ERROR")

    def test_metrics_samples_matches_the_wire(self):
        s, _ = self._server()
        wire = s.execute(Command("stats", keys=("metrics",)))
        for name, value in s.metrics_samples():
            from repro.obs.metrics import format_value

            assert f"STAT {name} {format_value(value)}\r\n".encode() in wire

"""Tests for the plain and sharded memcached clients."""

from __future__ import annotations

import pytest

from repro.protocol.memclient import MemcachedConnection, ShardedClient
from repro.protocol.memserver import MemcachedServer
from repro.protocol.transport import LoopbackTransport


def conn(server=None):
    return MemcachedConnection(LoopbackTransport(server or MemcachedServer()))


class TestConnection:
    def test_set_get(self):
        c = conn()
        assert c.set("a", b"v")
        assert c.get("a") == b"v"
        assert c.get("missing") is None

    def test_get_multi_one_transaction(self):
        c = conn()
        for i in range(5):
            c.set(f"k{i}", str(i).encode())
        before = c.transactions
        out = c.get_multi([f"k{i}" for i in range(5)] + ["nope"])
        assert c.transactions == before + 1
        assert len(out) == 5

    def test_get_multi_empty(self):
        c = conn()
        assert c.get_multi([]) == {}

    def test_with_cas(self):
        c = conn()
        c.set("a", b"v")
        out = c.get_multi(["a"], with_cas=True)
        value, cas = out["a"]
        assert value == b"v"
        assert c.cas("a", b"v2", cas) == "STORED"
        assert c.cas("a", b"v3", cas) == "EXISTS"

    def test_delete(self):
        c = conn()
        c.set("a", b"v")
        assert c.delete("a")
        assert not c.delete("a")

    def test_flush_and_stats(self):
        c = conn()
        c.set("a", b"v")
        c.flush_all()
        assert c.get("a") is None
        stats = c.stats()
        assert "cmd_get" in stats


class TestShardedClient:
    def make(self, n=4):
        servers = {i: MemcachedServer(name=f"m{i}") for i in range(n)}
        conns = {i: MemcachedConnection(LoopbackTransport(servers[i])) for i in range(n)}
        return servers, ShardedClient(conns, vnodes=32, seed=0)

    def test_needs_connections(self):
        with pytest.raises(ValueError):
            ShardedClient({})

    def test_routing_stable(self):
        _, client = self.make()
        assert client.server_for("key1") == client.server_for("key1")

    def test_set_get_roundtrip(self):
        servers, client = self.make()
        for i in range(50):
            client.set(f"key{i}", str(i).encode())
        for i in range(50):
            assert client.get(f"key{i}") == str(i).encode()

    def test_key_stored_on_routed_server_only(self):
        servers, client = self.make()
        client.set("solo", b"x")
        home = client.server_for("solo")
        for sid, server in servers.items():
            assert ("solo" in server) == (sid == home)

    def test_multiget_splits_by_server(self):
        servers, client = self.make()
        keys = [f"key{i}" for i in range(40)]
        for k in keys:
            client.set(k, b"v")
        values, txns = client.get_multi(keys)
        assert len(values) == 40
        homes = {client.server_for(k) for k in keys}
        assert txns == len(homes)

    def test_multiget_hole_manifests(self):
        """With 4 servers and 40 keys, the classic client needs ~4 txns —
        this is the inefficiency RnB attacks."""
        _, client = self.make(n=4)
        keys = [f"key{i}" for i in range(40)]
        for k in keys:
            client.set(k, b"v")
        _, txns = client.get_multi(keys)
        assert txns == 4

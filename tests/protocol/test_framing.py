"""Zero-copy response framing: FrameBuffer vs the legacy bytes parser.

The memoryview framing layer must be behaviourally invisible: for any
way a pipelined response stream is sliced into TCP reads — including
splits inside a VALUE header, inside a payload, or mid-CRLF — the
FrameBuffer yields exactly the responses ``parse_response`` produces on
the whole buffer, with payloads equal byte for byte.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.aio.memclient import AsyncMemcachedClient
from repro.aio.server import serve_aio
from repro.aio.transport import AsyncConnection
from repro.protocol.codec import FrameBuffer, parse_response
from repro.protocol.memclient import MemcachedConnection
from repro.protocol.memserver import MemcachedServer, serve_tcp
from repro.protocol.transport import LoopbackTransport, TCPTransport

# A pipelined stream of four responses with adversarial payloads: empty,
# CRLF-only, and one embedding a spoofed "END\r\n" terminator.
WIRE = (
    b"VALUE a 0 3\r\nxyz\r\nVALUE b 5 2 77\r\nhi\r\nEND\r\n"
    b"STORED\r\n"
    b"VALUE empty 0 0\r\n\r\nVALUE crlf 0 4\r\n\r\n\r\n\r\nEND\r\n"
    b"VALUE trap 1 10\r\nEND\r\nyes\r\n\r\nEND\r\n"
)


def _legacy_parse_all(data: bytes):
    out = []
    rest = data
    while rest:
        resp, rest = parse_response(rest)
        out.append(resp)
    return out


def _normal(resp):
    """Comparable form: materialise payload views to bytes."""
    return (
        resp.status,
        {k: (f, bytes(d), c) for k, (f, d, c) in resp.values.items()},
        resp.stats,
    )


EXPECTED = [_normal(r) for r in _legacy_parse_all(WIRE)]


def _drain(frames: FrameBuffer, **kwargs):
    out = []
    while (resp := frames.next_response(**kwargs)) is not None:
        out.append(resp)
    return out


class TestFrameBuffer:
    def test_whole_stream_matches_legacy_parser(self):
        frames = FrameBuffer()
        frames.feed(WIRE)
        assert [_normal(r) for r in _drain(frames)] == EXPECTED
        assert len(frames) == 0

    def test_every_split_point_yields_identical_responses(self):
        # Split the wire into two "TCP reads" at every byte boundary: a
        # partial frame at the buffer edge must never change the result.
        for cut in range(len(WIRE) + 1):
            frames = FrameBuffer()
            got = []
            frames.feed(WIRE[:cut])
            got.extend(_drain(frames))
            frames.feed(WIRE[cut:])
            got.extend(_drain(frames))
            assert [_normal(r) for r in got] == EXPECTED, f"split at {cut}"
            assert len(frames) == 0

    def test_byte_at_a_time_feed(self):
        frames = FrameBuffer()
        got = []
        for i in range(len(WIRE)):
            frames.feed(WIRE[i : i + 1])
            got.extend(_drain(frames))
        assert [_normal(r) for r in got] == EXPECTED

    def test_incomplete_frame_returns_none_without_consuming(self):
        frames = FrameBuffer()
        frames.feed(b"VALUE a 0 5\r\nab")  # header complete, payload short
        assert frames.next_response() is None
        assert len(frames) == 15
        frames.feed(b"cde\r\nEND\r\n")
        resp = frames.next_response()
        assert bytes(resp.values["a"][1]) == b"abcde"
        assert resp.status == "END"

    def test_zero_copy_payloads_are_views_and_stay_valid(self):
        frames = FrameBuffer()
        frames.feed(WIRE)
        resp = frames.next_response()
        payload = resp.values["a"][1]
        assert isinstance(payload, memoryview)
        # drain and reuse the buffer: views alias an immutable snapshot,
        # so earlier payloads must survive later feeds/parses
        _drain(frames)
        frames.feed(b"STORED\r\n")
        assert frames.next_response().status == "STORED"
        assert bytes(payload) == b"xyz"

    def test_zero_copy_off_gives_bytes(self):
        frames = FrameBuffer()
        frames.feed(WIRE)
        resp = frames.next_response(zero_copy=False)
        assert isinstance(resp.values["a"][1], bytes)
        assert resp.values["b"] == (5, b"hi", 77)

    def test_peek_and_clear(self):
        frames = FrameBuffer()
        frames.feed(b"VALUE a")
        frames.feed(b" 0 1\r\n")
        assert frames.peek(7) == b"VALUE a"
        assert len(frames) == 13
        frames.clear()
        assert len(frames) == 0
        assert frames.peek(10) == b""


class TestClientMaterialisation:
    def _conn(self):
        server = MemcachedServer()
        c = MemcachedConnection(LoopbackTransport(server))
        c.set("a", b"xyz")
        c.set("b", b"hi", flags=5)
        c.set("crlf", b"\r\n\r\n")
        return c

    def test_get_multi_defaults_to_bytes(self):
        c = self._conn()
        out = c.get_multi(["a", "b", "crlf", "nope"])
        assert out == {"a": b"xyz", "b": b"hi", "crlf": b"\r\n\r\n"}
        assert all(isinstance(v, bytes) for v in out.values())

    def test_get_multi_raw_views_equal_bytes(self):
        c = self._conn()
        raw = c.get_multi(["a", "b", "crlf"], raw=True)
        assert {k: bytes(v) for k, v in raw.items()} == {
            "a": b"xyz",
            "b": b"hi",
            "crlf": b"\r\n\r\n",
        }

    def test_get_multi_with_cas_raw_and_default(self):
        c = self._conn()
        default = c.get_multi(["a", "b"], with_cas=True)
        raw = c.get_multi(["a", "b"], with_cas=True, raw=True)
        for key in ("a", "b"):
            value, cas = default[key]
            raw_value, raw_cas = raw[key]
            assert isinstance(value, bytes)
            assert bytes(raw_value) == value
            assert raw_cas == cas


class TestOverRealSockets:
    def test_tcp_transport_pipelined_multi_get(self):
        backend = MemcachedServer()
        threaded, (host, port) = serve_tcp(backend)
        try:
            c = MemcachedConnection(TCPTransport(host, port, timeout=2.0))
            for i in range(20):
                c.set(f"k{i}", (b"v%d" % i) * (i + 1))
            out = c.get_multi([f"k{i}" for i in range(20)])
            assert out == {f"k{i}": (b"v%d" % i) * (i + 1) for i in range(20)}
            c.transport.close()
        finally:
            threaded.shutdown()
            threaded.server_close()

    def test_async_client_raw_parity(self):
        backend = MemcachedServer()
        handle, (host, port) = serve_aio(backend)
        try:

            async def scenario():
                conn = AsyncConnection(host, port, timeout=2.0)
                client = AsyncMemcachedClient(conn)
                try:
                    for i in range(10):
                        await client.set(f"k{i}", b"payload-%d" % i)
                    default = await client.get_multi([f"k{i}" for i in range(10)])
                    raw = await client.get_multi(
                        [f"k{i}" for i in range(10)], raw=True
                    )
                    assert default == {
                        f"k{i}": b"payload-%d" % i for i in range(10)
                    }
                    assert {k: bytes(v) for k, v in raw.items()} == default
                    with_cas = await client.get_multi(["k0"], with_cas=True)
                    value, cas = with_cas["k0"]
                    assert isinstance(value, bytes) and cas is not None
                finally:
                    conn.close()

            asyncio.run(scenario())
        finally:
            handle.stop()

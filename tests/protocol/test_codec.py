"""Tests for the memcached ASCII protocol codec, incl. roundtrip property."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ProtocolError
from repro.protocol.codec import (
    Command,
    IncompleteResponse,
    encode_command,
    format_stats,
    format_status,
    format_values,
    parse_command_stream,
    parse_response,
)

key_chars = st.characters(
    min_codepoint=33, max_codepoint=126, blacklist_characters=" "
)
keys = st.text(alphabet=key_chars, min_size=1, max_size=32)
payloads = st.binary(max_size=64)


class TestEncodeCommands:
    def test_get(self):
        assert encode_command(Command("get", keys=("a", "b"))) == b"get a b\r\n"

    def test_set(self):
        out = encode_command(Command("set", keys=("k",), flags=1, data=b"xyz"))
        assert out == b"set k 1 0 3\r\nxyz\r\n"

    def test_cas(self):
        out = encode_command(Command("cas", keys=("k",), data=b"v", cas=7))
        assert out == b"cas k 0 0 1 7\r\nv\r\n"

    def test_cas_without_id_rejected(self):
        with pytest.raises(ProtocolError):
            encode_command(Command("cas", keys=("k",), data=b"v"))

    def test_delete_noreply(self):
        out = encode_command(Command("delete", keys=("k",), noreply=True))
        assert out == b"delete k noreply\r\n"

    def test_empty_get_rejected(self):
        with pytest.raises(ProtocolError):
            encode_command(Command("get", keys=()))

    def test_bad_key_rejected(self):
        with pytest.raises(ProtocolError):
            encode_command(Command("get", keys=("has space",)))
        with pytest.raises(ProtocolError):
            encode_command(Command("get", keys=("x" * 300,)))

    def test_unknown_command(self):
        with pytest.raises(ProtocolError):
            encode_command(Command("frobnicate"))


class TestParseCommands:
    def test_pipelined(self):
        data = b"get a\r\nset b 0 0 2\r\nhi\r\ndelete c\r\n"
        cmds, tail = parse_command_stream(data)
        assert [c.name for c in cmds] == ["get", "set", "delete"]
        assert cmds[1].data == b"hi"
        assert tail == b""

    def test_partial_line_returned_as_tail(self):
        cmds, tail = parse_command_stream(b"get a\r\nget b")
        assert len(cmds) == 1
        assert tail == b"get b"

    def test_partial_data_block(self):
        cmds, tail = parse_command_stream(b"set k 0 0 10\r\nhal")
        assert cmds == []
        assert tail.startswith(b"set")

    def test_binary_safe_payload(self):
        payload = b"\x00\xff\r\nbinary"
        wire = encode_command(Command("set", keys=("k",), data=payload))
        [cmd], tail = parse_command_stream(wire)
        assert cmd.data == payload and tail == b""

    def test_unknown_command_rejected(self):
        with pytest.raises(ProtocolError):
            parse_command_stream(b"bogus x\r\n")

    def test_get_without_keys_rejected(self):
        with pytest.raises(ProtocolError):
            parse_command_stream(b"get\r\n")

    def test_negative_length_rejected(self):
        with pytest.raises(ProtocolError):
            parse_command_stream(b"set k 0 0 -1\r\n\r\n")

    def test_unterminated_data_rejected(self):
        with pytest.raises(ProtocolError):
            parse_command_stream(b"set k 0 0 2\r\nhixx\r\n")


class TestResponses:
    def test_values_roundtrip(self):
        wire = format_values([("a", 1, b"v1", 5), ("b", 0, b"", 6)], with_cas=True)
        resp, rest = parse_response(wire)
        assert rest == b""
        assert resp.status == "END"
        assert resp.values["a"] == (1, b"v1", 5)
        assert resp.values["b"] == (0, b"", 6)

    def test_status_lines(self):
        for status in ("STORED", "NOT_FOUND", "DELETED", "OK"):
            resp, rest = parse_response(format_status(status))
            assert resp.status == status and rest == b""

    def test_stats_roundtrip(self):
        wire = format_stats({"cmd_get": 5, "bytes": 100})
        resp, _ = parse_response(wire)
        assert resp.stats == {"cmd_get": "5", "bytes": "100"}

    def test_incomplete_raises_incomplete(self):
        with pytest.raises(IncompleteResponse):
            parse_response(b"VALUE a 0 10\r\nhal")
        with pytest.raises(IncompleteResponse):
            parse_response(b"STOR")

    def test_trailing_bytes_preserved(self):
        wire = format_status("STORED") + b"EXTRA"
        resp, rest = parse_response(wire)
        assert rest == b"EXTRA"

    def test_malformed_value_line(self):
        with pytest.raises(ProtocolError):
            parse_response(b"VALUE onlykey\r\n")

    def test_unexpected_line(self):
        with pytest.raises(ProtocolError):
            parse_response(b"WHAT\r\n")


# ---------------------------------------------------------------------------
# roundtrip properties: client encoding == server parsing
# ---------------------------------------------------------------------------


@given(st.lists(keys, min_size=1, max_size=8, unique=True))
def test_get_roundtrip_property(key_list):
    wire = encode_command(Command("get", keys=tuple(key_list)))
    [cmd], tail = parse_command_stream(wire)
    assert tail == b""
    assert cmd.name == "get"
    assert list(cmd.keys) == key_list


@given(keys, payloads, st.integers(0, 2**16), st.booleans())
def test_set_roundtrip_property(key, payload, flags, noreply):
    wire = encode_command(
        Command("set", keys=(key,), flags=flags, data=payload, noreply=noreply)
    )
    [cmd], tail = parse_command_stream(wire)
    assert tail == b""
    assert cmd.keys == (key,)
    assert cmd.data == payload
    assert cmd.flags == flags
    assert cmd.noreply == noreply


@given(st.lists(st.tuples(keys, payloads), min_size=0, max_size=5, unique_by=lambda t: t[0]))
def test_values_roundtrip_property(items):
    wire = format_values(
        [(k, 0, v, i) for i, (k, v) in enumerate(items)], with_cas=True
    )
    resp, rest = parse_response(wire)
    assert rest == b""
    assert len(resp.values) == len(items)
    for i, (k, v) in enumerate(items):
        assert resp.values[k] == (0, v, i)

"""Tests for add/replace/append/prepend/incr/decr."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.protocol.codec import Command, encode_command, parse_command_stream
from repro.protocol.memclient import MemcachedConnection
from repro.protocol.memserver import MemcachedServer
from repro.protocol.transport import LoopbackTransport


@pytest.fixture()
def conn():
    return MemcachedConnection(LoopbackTransport(MemcachedServer()))


class TestAddReplace:
    def test_add_when_absent(self, conn):
        assert conn.add("k", b"v")
        assert conn.get("k") == b"v"

    def test_add_when_present_refused(self, conn):
        conn.set("k", b"old")
        assert not conn.add("k", b"new")
        assert conn.get("k") == b"old"

    def test_replace_when_present(self, conn):
        conn.set("k", b"old")
        assert conn.replace("k", b"new")
        assert conn.get("k") == b"new"

    def test_replace_when_absent_refused(self, conn):
        assert not conn.replace("k", b"v")
        assert conn.get("k") is None

    def test_add_after_expiry_succeeds(self):
        from tests.protocol.test_expiry import FakeClock

        clock = FakeClock()
        conn = MemcachedConnection(LoopbackTransport(MemcachedServer(clock=clock)))
        conn.set("k", b"v", exptime=5)
        clock.advance(6)
        assert conn.add("k", b"fresh")


class TestAppendPrepend:
    def test_append(self, conn):
        conn.set("k", b"hello")
        assert conn.append("k", b" world")
        assert conn.get("k") == b"hello world"

    def test_prepend(self, conn):
        conn.set("k", b"world")
        assert conn.prepend("k", b"hello ")
        assert conn.get("k") == b"hello world"

    def test_append_missing_refused(self, conn):
        assert not conn.append("k", b"x")

    def test_append_preserves_flags(self, conn):
        conn.set("k", b"a", flags=7)
        conn.append("k", b"b")
        out = conn.get_multi(["k"], with_cas=True)
        # flags survive concatenation (checked via a raw gets)
        t = LoopbackTransport(MemcachedServer())
        # simpler: re-fetch over the same connection and inspect flags
        [resp] = conn.transport.exchange(
            encode_command(Command(name="get", keys=("k",)))
        )
        flags, data, _ = resp.values["k"]
        assert flags == 7 and data == b"ab"


class TestCounters:
    def test_incr(self, conn):
        conn.set("n", b"10")
        assert conn.incr("n", 5) == 15
        assert conn.get("n") == b"15"

    def test_decr_clamps_at_zero(self, conn):
        conn.set("n", b"3")
        assert conn.decr("n", 10) == 0

    def test_missing_returns_none(self, conn):
        assert conn.incr("ghost") is None
        assert conn.decr("ghost") is None

    def test_non_numeric_raises(self, conn):
        conn.set("k", b"abc")
        with pytest.raises(ProtocolError):
            conn.incr("k")

    def test_incr_updates_cas(self, conn):
        conn.set("n", b"1")
        (_, cas1) = conn.get_multi(["n"], with_cas=True)["n"]
        conn.incr("n")
        (_, cas2) = conn.get_multi(["n"], with_cas=True)["n"]
        assert cas2 > cas1

    def test_default_delta_one(self, conn):
        conn.set("n", b"0")
        assert conn.incr("n") == 1


class TestWireFormat:
    def test_add_roundtrip(self):
        wire = encode_command(Command(name="add", keys=("k",), data=b"v"))
        [cmd], tail = parse_command_stream(wire)
        assert cmd.name == "add" and cmd.data == b"v" and tail == b""

    def test_incr_roundtrip(self):
        wire = encode_command(Command(name="incr", keys=("k",), delta=42))
        [cmd], tail = parse_command_stream(wire)
        assert cmd.name == "incr" and cmd.delta == 42

    def test_negative_delta_rejected(self):
        with pytest.raises(ProtocolError):
            encode_command(Command(name="incr", keys=("k",), delta=-1))
        with pytest.raises(ProtocolError):
            parse_command_stream(b"decr k -5\r\n")

    def test_counter_without_delta_rejected(self):
        with pytest.raises(ProtocolError):
            parse_command_stream(b"incr k\r\n")

"""Tests for the protocol-level RnB client."""

from __future__ import annotations

import pytest

from repro.core.bundling import Bundler
from repro.errors import ConfigurationError
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.protocol.memclient import MemcachedConnection
from repro.protocol.memserver import MemcachedServer
from repro.protocol.rnbclient import RnBProtocolClient
from repro.protocol.transport import LoopbackTransport


def make_stack(n_servers=4, replication=3, capacity_bytes=None):
    placer = RangedConsistentHashPlacer(n_servers, replication, vnodes=32)
    servers = {
        i: MemcachedServer(capacity_bytes=capacity_bytes, name=f"m{i}")
        for i in range(n_servers)
    }
    conns = {i: MemcachedConnection(LoopbackTransport(servers[i])) for i in range(n_servers)}
    return placer, servers, RnBProtocolClient(conns, placer)


class TestWrites:
    def test_set_replicates_to_all(self):
        placer, servers, client = make_stack()
        client.set("user:1", b"status")
        for sid in placer.servers_for("user:1"):
            assert "user:1" in servers[sid]

    def test_set_distinguished_only(self):
        placer, servers, client = make_stack()
        client.set("user:2", b"s", replicate=False)
        expected = {placer.distinguished_for("user:2")}
        holders = {sid for sid, srv in servers.items() if "user:2" in srv}
        assert holders == expected

    def test_delete_removes_everywhere(self):
        placer, servers, client = make_stack()
        client.set("k", b"v")
        client.delete("k")
        assert all("k" not in srv for srv in servers.values())

    def test_connection_coverage_validated(self):
        placer = RangedConsistentHashPlacer(4, 2)
        conns = {0: None, 1: None}  # missing servers 2, 3
        with pytest.raises(ConfigurationError):
            RnBProtocolClient(conns, placer)

    def test_foreign_bundler_rejected(self):
        placer, servers, client = make_stack()
        other = RangedConsistentHashPlacer(4, 3)
        with pytest.raises(ConfigurationError):
            RnBProtocolClient(client.connections, placer, bundler=Bundler(other))


class TestBundledReads:
    def test_multi_get_all_values(self):
        _, _, client = make_stack()
        keys = [f"key{i}" for i in range(30)]
        for k in keys:
            client.set(k, k.encode())
        out = client.get_multi(keys)
        assert not out.missing
        assert out.values == {k: k.encode() for k in keys}

    def test_fewer_transactions_than_sharded(self):
        """RnB's whole point at protocol level: fewer multi-get txns."""
        placer, _, client = make_stack(n_servers=8, replication=4)
        keys = [f"key{i}" for i in range(60)]
        for k in keys:
            client.set(k, b"v")
        out = client.get_multi(keys)
        homes = {placer.distinguished_for(k) for k in keys}
        assert out.transactions < len(homes)

    def test_dedupes_keys(self):
        _, _, client = make_stack()
        client.set("a", b"1")
        out = client.get_multi(["a", "a", "a"])
        assert out.values == {"a": b"1"}

    def test_empty_keys(self):
        _, _, client = make_stack()
        out = client.get_multi([])
        assert out.transactions == 0

    def test_single_get_uses_distinguished(self):
        placer, servers, client = make_stack()
        client.set("solo", b"x")
        home = placer.distinguished_for("solo")
        before = servers[home].stats["cmd_get"]
        assert client.get("solo") == b"x"
        assert servers[home].stats["cmd_get"] == before + 1

    def test_truly_missing_keys_reported(self):
        _, _, client = make_stack()
        client.set("present", b"1")
        out = client.get_multi(["present", "ghost"])
        assert out.missing == ("ghost",)


class TestMissRepair:
    def test_evicted_replica_repaired_from_distinguished(self):
        """Evict a replica copy directly, then verify the multi-get still
        returns it (second round) and writes it back."""
        placer, servers, client = make_stack()
        keys = [f"key{i}" for i in range(20)]
        for k in keys:
            client.set(k, k.encode())
        # manually delete every non-distinguished replica of key5
        victim = "key5"
        for sid in placer.servers_for(victim)[1:]:
            servers[sid].handle(f"delete {victim}\r\n".encode())
        out = client.get_multi(keys)
        assert victim in out.values
        assert not out.missing

    def test_write_back_repopulates(self):
        placer, servers, client = make_stack()
        keys = [f"key{i}" for i in range(20)]
        for k in keys:
            client.set(k, k.encode())
        victim = "key7"
        replicas = placer.servers_for(victim)[1:]
        for sid in replicas:
            servers[sid].handle(f"delete {victim}\r\n".encode())
        first = client.get_multi(keys)
        second = client.get_multi(keys)
        assert second.second_round_transactions <= first.second_round_transactions
        assert second.misses_repaired <= first.misses_repaired

    def test_limit_fetches_fraction(self):
        _, _, client = make_stack(n_servers=8, replication=2)
        keys = [f"key{i}" for i in range(40)]
        for k in keys:
            client.set(k, b"v")
        out = client.get_multi(keys, limit_fraction=0.5)
        assert len(out.values) >= 20
        full = client.get_multi(keys)
        assert out.transactions <= full.transactions

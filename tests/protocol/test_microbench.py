"""Smoke tests for the calibration micro-benchmarks (tiny workloads)."""

from __future__ import annotations

import pytest

from repro.analysis.calibration import fit_cost_model
from repro.protocol.memserver import MemcachedServer
from repro.protocol.microbench import (
    measure_items_per_second,
    populate,
    two_client_items_per_second,
)

FAST = dict(n_keys=120, target_transactions=120, min_transactions=20)


class TestPopulate:
    def test_installs_keys(self):
        server = MemcachedServer()
        keys = populate(server, 50)
        assert len(keys) == 50
        assert server.curr_items == 50


class TestSingleClient:
    def test_points_shape(self):
        points = measure_items_per_second([1, 4, 8], **FAST)
        assert [p.txn_size for p in points] == [1, 4, 8]
        for p in points:
            assert p.items_per_s > 0
            assert p.transactions_per_s > 0

    def test_items_rate_grows_with_txn_size(self):
        points = measure_items_per_second([1, 16], **FAST)
        assert points[1].items_per_s > points[0].items_per_s

    def test_feeds_cost_model_fit(self):
        points = measure_items_per_second([1, 2, 4, 8, 16], **FAST)
        model = fit_cost_model(
            [p.txn_size for p in points], [p.items_per_s for p in points]
        )
        assert model.t_txn > 0

    def test_txn_size_validation(self):
        with pytest.raises(ValueError):
            measure_items_per_second([0], **FAST)
        with pytest.raises(ValueError):
            measure_items_per_second([10_000], **FAST)


class TestTwoClients:
    def test_runs_and_counts_both(self):
        points = two_client_items_per_second([1, 8], **FAST)
        for p in points:
            assert p.items_per_s > 0
            assert p.n_transactions >= 2 * FAST["min_transactions"]

    def test_no_double_throughput(self):
        """Two clients on one lock-serialised server cannot double the
        single-client rate (paper Fig 14's conclusion)."""
        single = measure_items_per_second([4], **FAST)[0]
        double = two_client_items_per_second([4], **FAST)[0]
        assert double.items_per_s < 1.9 * single.items_per_s

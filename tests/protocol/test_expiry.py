"""Tests for TTL/expiry semantics and the touch command."""

from __future__ import annotations

import pytest

from repro.protocol.codec import Command, encode_command, parse_command_stream
from repro.protocol.memclient import MemcachedConnection
from repro.protocol.memserver import RELATIVE_EXPTIME_LIMIT, MemcachedServer
from repro.protocol.transport import LoopbackTransport


class FakeClock:
    def __init__(self, start: float = 1000.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clocked():
    clock = FakeClock()
    server = MemcachedServer(clock=clock)
    conn = MemcachedConnection(LoopbackTransport(server))
    return clock, server, conn


class TestExpiry:
    def test_zero_exptime_never_expires(self, clocked):
        clock, _, conn = clocked
        conn.set("k", b"v", exptime=0)
        clock.advance(10**9)
        assert conn.get("k") == b"v"

    def test_relative_expiry(self, clocked):
        clock, server, conn = clocked
        conn.set("k", b"v", exptime=60)
        clock.advance(59)
        assert conn.get("k") == b"v"
        clock.advance(2)
        assert conn.get("k") is None
        assert server.stats["expired"] == 1

    def test_absolute_expiry(self, clocked):
        clock, _, conn = clocked
        deadline = int(clock.now) + RELATIVE_EXPTIME_LIMIT + 100
        conn.set("k", b"v", exptime=deadline)
        clock.advance(RELATIVE_EXPTIME_LIMIT + 99)
        assert conn.get("k") == b"v"
        clock.advance(2)
        assert conn.get("k") is None

    def test_expired_entry_releases_bytes(self, clocked):
        clock, server, conn = clocked
        conn.set("k", b"12345", exptime=10)
        clock.advance(11)
        assert conn.get("k") is None
        assert server.bytes_used == 0

    def test_overwrite_clears_ttl(self, clocked):
        clock, _, conn = clocked
        conn.set("k", b"v1", exptime=10)
        conn.set("k", b"v2", exptime=0)
        clock.advance(100)
        assert conn.get("k") == b"v2"

    def test_expired_delete_reports_not_found(self, clocked):
        clock, _, conn = clocked
        conn.set("k", b"v", exptime=5)
        clock.advance(6)
        assert not conn.delete("k")

    def test_cas_on_expired_is_not_found(self, clocked):
        clock, server, conn = clocked
        conn.set("k", b"v", exptime=5)
        (_, cas_id) = conn.get_multi(["k"], with_cas=True)["k"]
        clock.advance(6)
        assert conn.cas("k", b"new", cas_id) == "NOT_FOUND"


class TestTouch:
    def test_touch_extends_ttl(self, clocked):
        clock, _, conn = clocked
        conn.set("k", b"v", exptime=10)
        clock.advance(8)
        assert conn.touch("k", 10)
        clock.advance(8)
        assert conn.get("k") == b"v"

    def test_touch_can_shorten_ttl(self, clocked):
        clock, _, conn = clocked
        conn.set("k", b"v", exptime=0)
        assert conn.touch("k", 5)
        clock.advance(6)
        assert conn.get("k") is None

    def test_touch_missing(self, clocked):
        _, _, conn = clocked
        assert not conn.touch("ghost", 10)

    def test_touch_wire_roundtrip(self):
        wire = encode_command(Command(name="touch", keys=("k",), exptime=42))
        [cmd], tail = parse_command_stream(wire)
        assert tail == b""
        assert cmd.name == "touch"
        assert cmd.exptime == 42

    def test_touch_parse_validation(self):
        with pytest.raises(Exception):
            parse_command_stream(b"touch k\r\n")

"""Failure-injection tests: reads must survive server loss via replicas.

RnB's replication "already exists for reliability" (paper I-C); these
tests kill servers mid-workload and assert the client degrades
gracefully instead of erroring — items with a surviving replica are
still returned.
"""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.protocol.memclient import MemcachedConnection
from repro.protocol.memserver import MemcachedServer
from repro.protocol.rnbclient import RnBProtocolClient
from repro.protocol.transport import LoopbackTransport


class FailableTransport(LoopbackTransport):
    """Loopback transport with a kill switch."""

    def __init__(self, server):
        super().__init__(server)
        self.alive = True

    def exchange(self, request, n_responses=1):
        if not self.alive:
            raise ConnectionError("server down")
        return super().exchange(request, n_responses)


def make_stack(n_servers=4, replication=3):
    placer = RangedConsistentHashPlacer(n_servers, replication, vnodes=32)
    servers = {i: MemcachedServer(name=f"m{i}") for i in range(n_servers)}
    transports = {i: FailableTransport(servers[i]) for i in range(n_servers)}
    conns = {i: MemcachedConnection(transports[i]) for i in range(n_servers)}
    client = RnBProtocolClient(conns, placer)
    return placer, servers, transports, client


KEYS = [f"key{i}" for i in range(40)]


class TestMultiGetFailover:
    def test_one_dead_server_loses_nothing(self):
        placer, _, transports, client = make_stack()
        for k in KEYS:
            client.set(k, k.encode())
        transports[0].alive = False
        out = client.get_multi(KEYS)
        assert not out.missing
        assert out.values == {k: k.encode() for k in KEYS}
        assert 0 in out.failed_servers

    def test_failed_attempts_do_not_count_as_transactions(self):
        placer, servers, transports, client = make_stack()
        for k in KEYS:
            client.set(k, k.encode())
        transports[1].alive = False
        out = client.get_multi(KEYS)
        served = sum(s.stats["cmd_get"] for s in servers.values())
        assert out.transactions == served

    def test_majority_failure_still_serves_survivors(self):
        """With R=3 on 4 servers, 2 dead servers still leave >= 1 replica
        for every key."""
        _, _, transports, client = make_stack()
        for k in KEYS:
            client.set(k, k.encode())
        transports[0].alive = False
        transports[3].alive = False
        out = client.get_multi(KEYS)
        assert not out.missing

    def test_all_replicas_dead_reports_missing(self):
        placer, _, transports, client = make_stack(n_servers=4, replication=2)
        for k in KEYS:
            client.set(k, k.encode())
        victims = {k for k in KEYS if set(placer.servers_for(k)) <= {0, 1}}
        transports[0].alive = False
        transports[1].alive = False
        out = client.get_multi(KEYS)
        assert set(out.missing) == victims

    def test_recovery_after_restart(self):
        _, _, transports, client = make_stack()
        for k in KEYS:
            client.set(k, k.encode())
        transports[2].alive = False
        client.get_multi(KEYS)
        transports[2].alive = True
        out = client.get_multi(KEYS)
        assert not out.missing
        assert out.failed_servers == ()


class TestSingleGetFailover:
    def test_falls_back_to_replica(self):
        placer, _, transports, client = make_stack()
        client.set("solo", b"v")
        transports[placer.distinguished_for("solo")].alive = False
        assert client.get("solo") == b"v"

    def test_all_dead_raises(self):
        placer, _, transports, client = make_stack()
        client.set("solo", b"v")
        for sid in placer.servers_for("solo"):
            transports[sid].alive = False
        with pytest.raises(ProtocolError):
            client.get("solo")

    def test_missing_key_still_none(self):
        _, _, transports, client = make_stack()
        assert client.get("ghost") is None

    def test_replica_miss_does_not_mask_distinguished_value(self):
        """If the distinguished copy is alive, its answer wins even when
        some replica servers are dead."""
        placer, _, transports, client = make_stack()
        client.set("k", b"v")
        # kill a non-distinguished replica
        replica = placer.servers_for("k")[1]
        transports[replica].alive = False
        assert client.get("k") == b"v"


class TestLimitFailover:
    def test_limit_met_despite_failure(self):
        _, _, transports, client = make_stack(n_servers=8, replication=3)
        keys = [f"x{i}" for i in range(40)]
        for k in keys:
            client.set(k, b"v")
        transports[0].alive = False
        out = client.get_multi(keys, limit_fraction=0.9)
        assert len(out.values) >= 36

"""Tests for atomic updates and read repair over replicas."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ProtocolError
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.protocol.consistency import atomic_update, read_repair
from repro.protocol.memclient import MemcachedConnection
from repro.protocol.memserver import MemcachedServer
from repro.protocol.rnbclient import RnBProtocolClient
from repro.protocol.transport import LoopbackTransport


def make_stack(n_servers=4, replication=3):
    placer = RangedConsistentHashPlacer(n_servers, replication, vnodes=32)
    servers = {i: MemcachedServer(name=f"m{i}") for i in range(n_servers)}
    conns = {i: MemcachedConnection(LoopbackTransport(servers[i])) for i in range(n_servers)}
    return placer, servers, RnBProtocolClient(conns, placer)


class TestAtomicUpdate:
    def test_updates_value(self):
        _, _, client = make_stack()
        client.set("counter", b"5")
        new = atomic_update(client, "counter", lambda v: str(int(v) + 1).encode())
        assert new == b"6"
        assert client.get("counter") == b"6"

    def test_strips_stale_replicas(self):
        placer, servers, client = make_stack()
        client.set("k", b"old")
        atomic_update(client, "k", lambda v: b"new")
        # non-distinguished replicas must be gone (no stale reads)
        for sid in placer.servers_for("k")[1:]:
            assert "k" not in servers[sid]
        assert "k" in servers[placer.distinguished_for("k")]

    def test_creates_missing_key(self):
        _, _, client = make_stack()
        new = atomic_update(client, "fresh", lambda v: b"init" if v is None else v)
        assert new == b"init"
        assert client.get("fresh") == b"init"

    def test_repopulate_eagerly(self):
        placer, servers, client = make_stack()
        client.set("k", b"1")
        atomic_update(client, "k", lambda v: b"2", repopulate=True)
        for sid in placer.servers_for("k"):
            assert "k" in servers[sid]

    def test_concurrent_increments_all_counted(self):
        """16 threads x 10 increments: CAS retries must not lose updates."""
        _, _, client = make_stack()
        client.set("ctr", b"0")

        def bump():
            for _ in range(10):
                atomic_update(
                    client, "ctr", lambda v: str(int(v) + 1).encode(), max_retries=500
                )

        threads = [threading.Thread(target=bump) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert client.get("ctr") == b"160"

    def test_retry_exhaustion(self):
        placer, servers, client = make_stack()
        client.set("k", b"0")
        home = placer.distinguished_for("k")
        hot_conn = client.connections[home]

        def hostile_update(v):
            # sabotage: concurrently bump the cas id before our cas lands
            hot_conn.set("k", b"interference")
            return b"mine"

        with pytest.raises(ProtocolError):
            atomic_update(client, "k", hostile_update, max_retries=3)


class TestReadRepair:
    def test_repopulates_replicas(self):
        placer, servers, client = make_stack()
        client.set("k", b"v", replicate=False)
        assert read_repair(client, "k") == b"v"
        for sid in placer.servers_for("k"):
            assert "k" in servers[sid]

    def test_missing_key_returns_none(self):
        _, _, client = make_stack()
        assert read_repair(client, "ghost") is None

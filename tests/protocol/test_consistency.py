"""Tests for atomic updates and read repair over replicas."""

from __future__ import annotations

import threading

import pytest

from repro.consistency.version import MAGIC, decode_versioned
from repro.errors import ProtocolError
from repro.faults.health import HealthTracker
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.obs import MetricsRegistry
from repro.protocol.consistency import atomic_update, read_repair
from repro.protocol.memclient import MemcachedConnection
from repro.protocol.memserver import MemcachedServer
from repro.protocol.rnbclient import RnBProtocolClient
from repro.protocol.transport import LoopbackTransport

from tests.protocol.test_failover import FailableTransport


def make_stack(n_servers=4, replication=3):
    placer = RangedConsistentHashPlacer(n_servers, replication, vnodes=32)
    servers = {i: MemcachedServer(name=f"m{i}") for i in range(n_servers)}
    conns = {i: MemcachedConnection(LoopbackTransport(servers[i])) for i in range(n_servers)}
    return placer, servers, RnBProtocolClient(conns, placer)


def make_faultable_stack(n_servers=4, replication=3, *, metrics=None, writer_id=0):
    """Like :func:`make_stack`, but with kill-switch transports, a health
    tracker, and (optionally) an obs registry on the client."""
    placer = RangedConsistentHashPlacer(n_servers, replication, vnodes=32)
    servers = {i: MemcachedServer(name=f"m{i}") for i in range(n_servers)}
    transports = {i: FailableTransport(servers[i]) for i in range(n_servers)}
    conns = {i: MemcachedConnection(transports[i]) for i in range(n_servers)}
    client = RnBProtocolClient(
        conns,
        placer,
        health=HealthTracker(n_servers, dead_after=3),
        metrics=metrics,
        writer_id=writer_id,
    )
    return placer, servers, transports, client


class TestAtomicUpdate:
    def test_updates_value(self):
        _, _, client = make_stack()
        client.set("counter", b"5")
        new = atomic_update(client, "counter", lambda v: str(int(v) + 1).encode())
        assert new == b"6"
        assert client.get("counter") == b"6"

    def test_strips_stale_replicas(self):
        placer, servers, client = make_stack()
        client.set("k", b"old")
        atomic_update(client, "k", lambda v: b"new")
        # non-distinguished replicas must be gone (no stale reads)
        for sid in placer.servers_for("k")[1:]:
            assert "k" not in servers[sid]
        assert "k" in servers[placer.distinguished_for("k")]

    def test_creates_missing_key(self):
        _, _, client = make_stack()
        new = atomic_update(client, "fresh", lambda v: b"init" if v is None else v)
        assert new == b"init"
        assert client.get("fresh") == b"init"

    def test_repopulate_eagerly(self):
        placer, servers, client = make_stack()
        client.set("k", b"1")
        atomic_update(client, "k", lambda v: b"2", repopulate=True)
        for sid in placer.servers_for("k"):
            assert "k" in servers[sid]

    def test_concurrent_increments_all_counted(self):
        """16 threads x 10 increments: CAS retries must not lose updates."""
        _, _, client = make_stack()
        client.set("ctr", b"0")

        def bump():
            for _ in range(10):
                atomic_update(
                    client, "ctr", lambda v: str(int(v) + 1).encode(), max_retries=500
                )

        threads = [threading.Thread(target=bump) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert client.get("ctr") == b"160"

    def test_retry_exhaustion(self):
        placer, servers, client = make_stack()
        client.set("k", b"0")
        home = placer.distinguished_for("k")
        hot_conn = client.connections[home]

        def hostile_update(v):
            # sabotage: concurrently bump the cas id before our cas lands
            hot_conn.set("k", b"interference")
            return b"mine"

        with pytest.raises(ProtocolError):
            atomic_update(client, "k", hostile_update, max_retries=3)


class TestReadRepair:
    def test_repopulates_replicas(self):
        placer, servers, client = make_stack()
        client.set("k", b"v", replicate=False)
        assert read_repair(client, "k") == b"v"
        for sid in placer.servers_for("k"):
            assert "k" in servers[sid]

    def test_missing_key_returns_none(self):
        _, _, client = make_stack()
        assert read_repair(client, "ghost") is None


class TestStripTolerance:
    def test_dead_replica_does_not_abort_the_update(self):
        placer, servers, transports, client = make_faultable_stack()
        client.set("k", b"1")
        victim = placer.servers_for("k")[-1]
        transports[victim].alive = False
        # the strip phase skips the dead server instead of raising
        assert atomic_update(client, "k", lambda v: b"2") == b"2"
        assert client.health.state(victim) != "alive"
        # the other non-distinguished replicas were stripped normally
        for sid in placer.servers_for("k")[1:]:
            if sid != victim:
                assert "k" not in servers[sid]

    def test_strip_skips_are_counted(self):
        registry = MetricsRegistry()
        placer, _, transports, client = make_faultable_stack(metrics=registry)
        client.set("k", b"1")
        for sid in placer.servers_for("k")[1:]:
            transports[sid].alive = False
        atomic_update(client, "k", lambda v: b"2")
        series = registry.snapshot()["rnb_consistency_strip_skips_total"]["series"]
        assert series['op="atomic_update"'] == 2

    def test_dead_distinguished_still_fails(self):
        """The CAS serialisation point being down is not tolerable — the
        update must raise, and the failure is counted."""
        registry = MetricsRegistry()
        placer, _, transports, client = make_faultable_stack(metrics=registry)
        client.set("k", b"1")
        transports[placer.distinguished_for("k")].alive = False
        with pytest.raises(ConnectionError):
            atomic_update(client, "k", lambda v: b"2")
        series = registry.snapshot()["rnb_consistency_ops_total"]["series"]
        assert series['op="atomic_update",outcome="failed"'] == 1

    def test_dead_repopulate_target_is_skipped(self):
        placer, servers, transports, client = make_faultable_stack()
        client.set("k", b"1")
        victim = placer.servers_for("k")[-1]
        transports[victim].alive = False
        assert atomic_update(client, "k", lambda v: b"2", repopulate=True) == b"2"
        for sid in placer.servers_for("k"):
            if sid != victim:
                assert "k" in servers[sid]


class TestObsWiring:
    def test_successful_update_counts_ok_and_cas_rounds(self):
        registry = MetricsRegistry()
        _, _, _, client = make_faultable_stack(metrics=registry)
        client.set("k", b"1")
        atomic_update(client, "k", lambda v: b"2")
        snap = registry.snapshot()
        ops = snap["rnb_consistency_ops_total"]["series"]
        assert ops['op="atomic_update",outcome="ok"'] == 1
        hist = snap["rnb_cas_retries"]["series"]['op="atomic_update"']
        assert hist["count"] == 1

    def test_retry_exhaustion_counts_failed(self):
        registry = MetricsRegistry()
        placer, _, _, client = make_faultable_stack(metrics=registry)
        client.set("k", b"0")
        hot = client.connections[placer.distinguished_for("k")]

        def hostile(v):
            hot.set("k", b"interference")
            return b"mine"

        with pytest.raises(ProtocolError):
            atomic_update(client, "k", hostile, max_retries=3)
        snap = registry.snapshot()
        assert (
            snap["rnb_consistency_ops_total"]["series"][
                'op="atomic_update",outcome="failed"'
            ]
            == 1
        )
        # the exhausted rounds were observed into the histogram
        assert snap["rnb_cas_retries"]["series"]['op="atomic_update"']["count"] == 1

    def test_read_repair_counts_ok(self):
        registry = MetricsRegistry()
        _, _, _, client = make_faultable_stack(metrics=registry)
        client.set("k", b"v", replicate=False)
        read_repair(client, "k")
        ops = registry.snapshot()["rnb_consistency_ops_total"]["series"]
        assert ops['op="read_repair",outcome="ok"'] == 1

    def test_metrics_free_client_works_unchanged(self):
        _, _, _, client = make_faultable_stack()  # no registry attached
        client.set("k", b"1")
        assert atomic_update(client, "k", lambda v: b"2") == b"2"


class TestVersionedClient:
    """set_versioned / get_versioned over the live wire (WireStore path)."""

    def test_roundtrip_and_envelope(self):
        placer, _, _, client = make_faultable_stack(writer_id=3)
        outcome = client.set_versioned("k", b"hello")
        assert outcome.committed
        assert outcome.stamp.writer == 3
        read = client.get_versioned("k")
        assert read.payload == b"hello" and read.stamp == outcome.stamp
        # the raw wire value carries the envelope
        raw = client.connections[placer.distinguished_for("k")].get("k")
        assert raw.startswith(MAGIC)
        assert decode_versioned(raw) == (outcome.stamp, b"hello")

    def test_dead_replica_makes_the_write_partial(self):
        placer, _, transports, client = make_faultable_stack()
        victim = placer.servers_for("k")[-1]
        transports[victim].alive = False
        outcome = client.set_versioned("k", b"v")
        assert outcome.outcome == "partial"
        assert outcome.failed == (victim,)

    def test_stale_replica_detected_and_repaired(self):
        placer, _, transports, client = make_faultable_stack()
        client.set_versioned("k", b"v1")
        victim = placer.servers_for("k")[-1]
        transports[victim].alive = False
        second = client.set_versioned("k", b"v2")  # victim misses this
        transports[victim].alive = True
        read = client.get_versioned("k")
        assert read.divergent and read.stale == (victim,)
        assert read.payload == b"v2"
        assert read.repaired == (victim,)
        # the stale copy was overwritten with the newest version
        assert decode_versioned(client.connections[victim].get("k")) == (
            second.stamp,
            b"v2",
        )

    def test_missing_replica_detected_and_repaired(self):
        placer, servers, _, client = make_faultable_stack()
        client.set_versioned("k", b"v")
        victim = placer.servers_for("k")[-1]
        client.connections[victim].delete("k")
        read = client.get_versioned("k")
        assert read.missing == (victim,) and read.repaired == (victim,)
        assert "k" in servers[victim]

    def test_dead_distinguished_served_from_replicas(self):
        placer, _, transports, client = make_faultable_stack()
        outcome = client.set_versioned("k", b"v")
        home = placer.distinguished_for("k")
        transports[home].alive = False
        read = client.get_versioned("k")
        assert read.found and read.payload == b"v"
        assert read.stamp == outcome.stamp
        assert read.dead == (home,) and read.source != home

    def test_unversioned_value_reads_back_plain(self):
        _, _, _, client = make_faultable_stack()
        client.set("legacy", b"old-school")
        read = client.get_versioned("legacy")
        assert read.stamp is None and read.payload == b"old-school"
        assert not read.divergent

    def test_quorum_metrics_labelled_live(self):
        registry = MetricsRegistry()
        _, _, _, client = make_faultable_stack(metrics=registry)
        client.set_versioned("k", b"v")
        series = registry.snapshot()["rnb_quorum_writes_total"]["series"]
        assert series['outcome="committed",path="live"'] == 1


class TestStatsKeys:
    def test_reports_stamp_tokens_and_dashes(self):
        placer, _, _, client = make_faultable_stack()
        outcome = client.set_versioned("versioned", b"v")
        client.set("plain", b"p")
        sid = placer.distinguished_for("versioned")
        report = client.connections[sid].stats("keys")
        assert report["versioned"] == outcome.stamp.token()
        if "plain" in report:  # same server only if placement agrees
            assert report["plain"] == "-"

    def test_plain_key_reports_dash(self):
        placer, _, _, client = make_faultable_stack()
        client.set("plain", b"p")
        sid = placer.distinguished_for("plain")
        assert client.connections[sid].stats("keys")["plain"] == "-"

    def test_empty_server_reports_nothing(self):
        _, _, _, client = make_faultable_stack()
        assert client.connections[0].stats("keys") == {}

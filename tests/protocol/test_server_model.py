"""Model-based property test: the memcached server vs a reference dict.

Hypothesis drives random command sequences through
:class:`MemcachedServer` (without capacity limits or TTLs) and through a
trivial in-memory model; every observable response must agree.  This is
the strongest guard against protocol-semantics regressions: any change
to storage, counters or CAS behaviour that diverges from memcached's
documented semantics fails here.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.protocol.codec import Command
from repro.protocol.memserver import MemcachedServer

KEYS = ["a", "b", "c"]
VALUES = [b"", b"x", b"hello", b"0", b"41"]

operations = st.lists(
    st.one_of(
        st.tuples(st.just("set"), st.sampled_from(KEYS), st.sampled_from(VALUES)),
        st.tuples(st.just("add"), st.sampled_from(KEYS), st.sampled_from(VALUES)),
        st.tuples(st.just("replace"), st.sampled_from(KEYS), st.sampled_from(VALUES)),
        st.tuples(st.just("append"), st.sampled_from(KEYS), st.sampled_from(VALUES)),
        st.tuples(st.just("prepend"), st.sampled_from(KEYS), st.sampled_from(VALUES)),
        st.tuples(st.just("get"), st.sampled_from(KEYS), st.just(b"")),
        st.tuples(st.just("delete"), st.sampled_from(KEYS), st.just(b"")),
        st.tuples(st.just("incr"), st.sampled_from(KEYS), st.just(b"")),
        st.tuples(st.just("decr"), st.sampled_from(KEYS), st.just(b"")),
    ),
    max_size=40,
)


def model_apply(model: dict, op: str, key: str, value: bytes):
    """Reference semantics; returns the observable outcome."""
    if op == "set":
        model[key] = value
        return "STORED"
    if op == "add":
        if key in model:
            return "NOT_STORED"
        model[key] = value
        return "STORED"
    if op == "replace":
        if key not in model:
            return "NOT_STORED"
        model[key] = value
        return "STORED"
    if op == "append":
        if key not in model:
            return "NOT_STORED"
        model[key] = model[key] + value
        return "STORED"
    if op == "prepend":
        if key not in model:
            return "NOT_STORED"
        model[key] = value + model[key]
        return "STORED"
    if op == "get":
        return model.get(key)
    if op == "delete":
        if key in model:
            del model[key]
            return "DELETED"
        return "NOT_FOUND"
    if op in ("incr", "decr"):
        if key not in model:
            return "NOT_FOUND"
        try:
            current = int(model[key].decode("ascii"))
            if current < 0:
                raise ValueError
        except (ValueError, UnicodeDecodeError):
            return "CLIENT_ERROR"
        new = current + 1 if op == "incr" else max(0, current - 1)
        model[key] = str(new).encode("ascii")
        return str(new)
    raise AssertionError(op)


def server_apply(server: MemcachedServer, op: str, key: str, value: bytes):
    if op in ("set", "add", "replace", "append", "prepend"):
        out = server.execute(Command(name=op, keys=(key,), data=value))
        return out.decode().strip()
    if op == "get":
        out = server.execute(Command(name="get", keys=(key,)))
        if out == b"END\r\n":
            return None
        # VALUE <key> <flags> <len>\r\n<data>\r\nEND\r\n
        header, rest = out.split(b"\r\n", 1)
        length = int(header.split()[3])
        return rest[:length]
    if op == "delete":
        return server.execute(Command(name="delete", keys=(key,))).decode().strip()
    if op in ("incr", "decr"):
        out = server.execute(Command(name=op, keys=(key,), delta=1)).decode().strip()
        if out.startswith("CLIENT_ERROR"):
            return "CLIENT_ERROR"
        return out
    raise AssertionError(op)


@settings(max_examples=200, deadline=None)
@given(operations)
def test_server_matches_reference_model(ops):
    server = MemcachedServer()
    model: dict[str, bytes] = {}
    for op, key, value in ops:
        expected = model_apply(model, op, key, value)
        actual = server_apply(server, op, key, value)
        assert actual == expected, (op, key, value)
    # final states agree too
    for key in KEYS:
        assert server_apply(server, "get", key, b"") == model.get(key)

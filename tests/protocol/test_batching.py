"""Tests for the cross-request batching proxy (section III-E)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.protocol.batching import BatchingClient
from repro.protocol.memclient import MemcachedConnection
from repro.protocol.memserver import MemcachedServer
from repro.protocol.rnbclient import RnBProtocolClient
from repro.protocol.transport import LoopbackTransport


@pytest.fixture()
def stack():
    placer = RangedConsistentHashPlacer(8, 3, vnodes=32)
    servers = {i: MemcachedServer(name=f"m{i}") for i in range(8)}
    conns = {i: MemcachedConnection(LoopbackTransport(servers[i])) for i in range(8)}
    client = RnBProtocolClient(conns, placer)
    for i in range(100):
        client.set(f"key{i}", f"v{i}".encode())
    return servers, client


class TestTickets:
    def test_unresolved_ticket_raises(self, stack):
        _, client = stack
        batching = BatchingClient(client, window=3)
        ticket = batching.submit(["key1"])
        assert not ticket.done
        with pytest.raises(RuntimeError):
            ticket.result()

    def test_window_auto_flush(self, stack):
        _, client = stack
        batching = BatchingClient(client, window=2)
        t1 = batching.submit(["key1", "key2"])
        assert not t1.done
        t2 = batching.submit(["key3"])
        assert t1.done and t2.done
        assert t1.result() == {"key1": b"v1", "key2": b"v2"}
        assert t2.result() == {"key3": b"v3"}

    def test_explicit_flush(self, stack):
        _, client = stack
        batching = BatchingClient(client, window=10)
        t = batching.submit(["key5"])
        batching.flush()
        assert t.result() == {"key5": b"v5"}
        assert batching.pending == 0

    def test_get_multi_resolves_immediately(self, stack):
        _, client = stack
        batching = BatchingClient(client, window=10)
        assert batching.get_multi(["key7", "key8"]) == {
            "key7": b"v7",
            "key8": b"v8",
        }

    def test_duplicate_keys_across_tickets(self, stack):
        _, client = stack
        batching = BatchingClient(client, window=2)
        t1 = batching.submit(["key1", "key2"])
        t2 = batching.submit(["key1", "key3"])
        assert t1.result()["key1"] == b"v1"
        assert t2.result()["key1"] == b"v1"

    def test_missing_keys_absent_per_ticket(self, stack):
        _, client = stack
        batching = BatchingClient(client, window=2)
        t1 = batching.submit(["key1", "ghost"])
        batching.submit(["key2"])
        assert "ghost" not in t1.result()

    def test_window_validation(self, stack):
        _, client = stack
        with pytest.raises(ConfigurationError):
            BatchingClient(client, window=0)


class TestSavings:
    def test_merging_saves_transactions(self, stack):
        servers, client = stack
        batching = BatchingClient(client, window=4)
        for start in range(0, 80, 10):
            batching.submit([f"key{i}" for i in range(start, start + 10)])
        batching.flush()
        assert batching.transactions_saved > 0
        assert batching.transactions < batching.transactions_unmerged_estimate

    def test_server_transaction_count_matches(self, stack):
        servers, client = stack
        base = sum(s.stats["cmd_get"] for s in servers.values())
        batching = BatchingClient(client, window=2)
        batching.submit(["key1", "key2", "key3"])
        batching.submit(["key4", "key5"])
        served = sum(s.stats["cmd_get"] for s in servers.values()) - base
        assert served == batching.transactions

    def test_stats_counters(self, stack):
        _, client = stack
        batching = BatchingClient(client, window=2)
        batching.submit(["key1"])
        batching.submit(["key2"])
        batching.submit(["key3"])
        batching.flush()
        assert batching.logical_requests == 3
        assert batching.batches == 2

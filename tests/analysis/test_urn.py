"""Tests for the urn-model analysis: formulas vs exact PMF vs Monte Carlo."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.urn import (
    expected_tpr,
    expected_tpr_exact,
    expected_tprps,
    occupancy_pmf,
    prob_server_contacted,
    tprps_scaling_factor,
)


class TestClosedForms:
    def test_w_single_item(self):
        assert prob_server_contacted(4, 1) == pytest.approx(0.25)

    def test_w_zero_items(self):
        assert prob_server_contacted(4, 0) == 0.0

    def test_w_single_server(self):
        assert prob_server_contacted(1, 5) == 1.0

    def test_tpr_bounds(self):
        # TPR <= min(N, M) and > 0 for M >= 1
        for n in (1, 4, 16):
            for m in (1, 5, 100):
                tpr = expected_tpr(n, m)
                assert 0 < tpr <= min(n, m) + 1e-9

    def test_tprps_is_w(self):
        assert expected_tprps(8, 12) == prob_server_contacted(8, 12)

    def test_validation(self):
        with pytest.raises(ValueError):
            prob_server_contacted(0, 1)
        with pytest.raises(ValueError):
            prob_server_contacted(4, -1)


class TestScalingFactor:
    def test_ideal_for_single_item(self):
        for n in (1, 8, 64):
            assert tprps_scaling_factor(n, 1) == pytest.approx(2.0)

    def test_paper_value_at_n_equals_m(self):
        """Paper: when N == M, doubling servers "only increases throughput
        by some 50%" — the exact limit is (1-1/e)/(1-1/sqrt(e)) ~ 1.61."""
        for m in (16, 50, 100):
            factor = tprps_scaling_factor(m, m)
            assert 1.55 < factor < 1.65

    def test_limits(self):
        assert tprps_scaling_factor(1, 1000) == pytest.approx(1.0, abs=1e-3)
        assert tprps_scaling_factor(100_000, 10) == pytest.approx(2.0, abs=1e-3)

    def test_monotone_in_n(self):
        factors = [tprps_scaling_factor(n, 50) for n in (1, 4, 16, 64, 256)]
        assert factors == sorted(factors)

    def test_custom_growth(self):
        assert tprps_scaling_factor(8, 1, growth=4.0) == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            tprps_scaling_factor(8, 5, growth=0)
        with pytest.raises(ValueError):
            tprps_scaling_factor(8, 0)


class TestOccupancyPmf:
    @pytest.mark.parametrize("n,m", [(1, 1), (3, 2), (5, 5), (8, 12), (16, 4)])
    def test_normalised(self, n, m):
        pmf = occupancy_pmf(n, m)
        assert pmf.sum() == pytest.approx(1.0)
        assert np.all(pmf >= 0)

    def test_m_zero_all_empty(self):
        pmf = occupancy_pmf(5, 0)
        assert pmf[0] == pytest.approx(1.0)

    def test_mean_matches_closed_form(self):
        for n, m in [(4, 3), (8, 10), (16, 30), (10, 1)]:
            assert expected_tpr_exact(n, m) == pytest.approx(
                expected_tpr(n, m), rel=1e-9
            )

    def test_support_bounds(self):
        pmf = occupancy_pmf(6, 3)
        # at most 3 urns occupied with 3 balls
        assert np.allclose(pmf[4:], 0.0)
        # with 3 balls at least 1 occupied
        assert pmf[0] == pytest.approx(0.0, abs=1e-12)

    def test_monte_carlo_agreement(self):
        rng = np.random.default_rng(0)
        n, m, trials = 8, 12, 20_000
        occupied = np.zeros(trials, dtype=int)
        for t in range(trials):
            occupied[t] = len(np.unique(rng.integers(0, n, size=m)))
        pmf = occupancy_pmf(n, m)
        for k in range(n + 1):
            assert np.mean(occupied == k) == pytest.approx(pmf[k], abs=0.015)


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 40), st.integers(0, 200))
def test_w_is_probability(n, m):
    w = prob_server_contacted(n, m)
    assert 0.0 <= w <= 1.0


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 40), st.integers(1, 200))
def test_w_monotone_in_m(n, m):
    """More items can only increase the chance a server is contacted."""
    assert prob_server_contacted(n, m + 1) >= prob_server_contacted(n, m)


@settings(max_examples=60, deadline=None)
@given(st.integers(1, 40), st.integers(1, 200))
def test_scaling_factor_bounds(n, m):
    factor = tprps_scaling_factor(n, m)
    assert 1.0 <= factor <= 2.0 + 1e-9

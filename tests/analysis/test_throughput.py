"""Tests for throughput estimation from transaction histograms."""

from __future__ import annotations

import pytest

from repro.analysis.calibration import CostModel
from repro.analysis.throughput import (
    relative_throughput_curve,
    system_throughput,
    work_per_request,
)
from repro.utils.histogram import Histogram

MODEL = CostModel(t_txn=1e-3, t_item=1e-4)


class TestWorkPerRequest:
    def test_single_transaction(self):
        hist = Histogram.from_values([10])
        # one request, one 10-item transaction
        assert work_per_request(hist, 1, MODEL) == pytest.approx(1e-3 + 10e-4)

    def test_averages_over_requests(self):
        hist = Histogram.from_values([10, 10])
        assert work_per_request(hist, 2, MODEL) == pytest.approx(1e-3 + 10e-4)

    def test_accepts_plain_dict(self):
        assert work_per_request({1: 4}, 4, MODEL) == pytest.approx(MODEL.txn_time(1))

    def test_validation(self):
        with pytest.raises(ValueError):
            work_per_request(Histogram(), 0, MODEL)


class TestSystemThroughput:
    def test_scales_with_servers(self):
        hist = Histogram.from_values([5, 5])
        t1 = system_throughput(hist, 2, 1, MODEL)
        t8 = system_throughput(hist, 2, 8, MODEL)
        assert t8 == pytest.approx(8 * t1)

    def test_more_transactions_less_throughput(self):
        # same items per request (10), split into 1 vs 5 transactions
        bundled = Histogram.from_values([10])
        scattered = Histogram.from_values([2] * 5)
        tb = system_throughput(bundled, 1, 4, MODEL)
        ts = system_throughput(scattered, 1, 4, MODEL)
        assert tb > ts
        # ratio driven by per-transaction overhead
        assert tb / ts == pytest.approx(
            (5 * MODEL.t_txn + 10 * MODEL.t_item)
            / (1 * MODEL.t_txn + 10 * MODEL.t_item)
        )

    def test_empty_histogram_rejected(self):
        with pytest.raises(ValueError):
            system_throughput(Histogram(), 1, 4, MODEL)

    def test_bad_servers(self):
        with pytest.raises(ValueError):
            system_throughput(Histogram.from_values([1]), 1, 0, MODEL)


class TestRelativeCurve:
    def test_normalises_to_first(self):
        assert relative_throughput_curve([2.0, 4.0, 6.0]) == [1.0, 2.0, 3.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            relative_throughput_curve([])
        with pytest.raises(ValueError):
            relative_throughput_curve([0.0, 1.0])

"""Tests for the semi-analytic RnB TPR model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.rnb_model import (
    greedy_step_coverage,
    predicted_tpr,
    predicted_tpr_curve,
    required_replication,
)
from repro.analysis.urn import expected_tpr
from repro.sim.montecarlo import mc_tpr


class TestBoundaryCases:
    def test_full_replication_one_transaction(self):
        assert predicted_tpr(8, 50, 8) == 1.0

    def test_r1_matches_urn_exactly(self):
        for n, m in [(4, 10), (16, 40), (32, 5)]:
            assert predicted_tpr(n, m, 1) == pytest.approx(expected_tpr(n, m))

    def test_single_item(self):
        assert predicted_tpr(16, 1, 3) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            predicted_tpr(4, 10, 5)
        with pytest.raises(ValueError):
            predicted_tpr(4, 0, 2)


class TestAccuracy:
    @pytest.mark.parametrize(
        "n,m,r",
        [(8, 20, 2), (16, 40, 3), (16, 100, 4), (32, 40, 2), (32, 100, 5), (64, 40, 4)],
    )
    def test_within_15_percent_of_monte_carlo(self, n, m, r):
        pred = predicted_tpr(n, m, r)
        mc = mc_tpr(n, m, r, n_trials=400, seed=3).mean_tpr
        assert pred == pytest.approx(mc, rel=0.15)

    def test_mean_error_over_grid(self):
        """Documented accuracy: mean relative error < 10% across the grid."""
        errs = []
        for n in (8, 16, 32):
            for m in (10, 40, 100):
                for r in (2, 3, 4):
                    pred = predicted_tpr(n, m, r)
                    mc = mc_tpr(n, m, r, n_trials=250, seed=4).mean_tpr
                    errs.append(abs(pred - mc) / mc)
        assert float(np.mean(errs)) < 0.10


class TestMonotonicity:
    def test_decreasing_in_replication(self):
        tprs = [predicted_tpr(16, 40, r) for r in (1, 2, 3, 4, 5, 8)]
        assert all(a >= b for a, b in zip(tprs, tprs[1:]))

    def test_increasing_in_request_size(self):
        tprs = [predicted_tpr(16, m, 3) for m in (5, 10, 20, 40, 80)]
        assert all(a <= b for a, b in zip(tprs, tprs[1:]))

    def test_curve_helper(self):
        curve = predicted_tpr_curve([8, 16, 32], 40, 3)
        assert len(curve) == 3
        assert all(a <= b for a, b in zip(curve, curve[1:]))


class TestStepCoverage:
    def test_zero_cases(self):
        assert greedy_step_coverage(0, 5, 0.5) == 0.0
        assert greedy_step_coverage(10, 0, 0.5) == 0.0

    def test_at_least_one(self):
        assert greedy_step_coverage(10, 8, 0.01) >= 1.0

    def test_p_one_covers_all(self):
        assert greedy_step_coverage(10, 3, 1.0) == 10.0


class TestPlanning:
    def test_required_replication_monotone_target(self):
        r_loose = required_replication(16, 40, target_tpr=10.0)
        r_tight = required_replication(16, 40, target_tpr=4.0)
        assert r_loose <= r_tight

    def test_unreachable_target(self):
        assert required_replication(16, 100, target_tpr=1.0, max_replication=2) is None

    def test_trivial_target(self):
        assert required_replication(16, 10, target_tpr=16.0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            required_replication(16, 10, target_tpr=0.5)

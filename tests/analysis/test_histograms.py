"""Tests for histogram presentation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.histograms import (
    degree_histogram_rows,
    log_bin_edges,
    tail_exponent_estimate,
)
from repro.utils.histogram import Histogram


class TestLogBinEdges:
    def test_starts_at_one(self):
        assert log_bin_edges(100)[0] == 1

    def test_strictly_increasing(self):
        edges = log_bin_edges(10_000, bins_per_decade=3)
        assert edges == sorted(set(edges))

    def test_covers_max(self):
        edges = log_bin_edges(500)
        assert edges[-1] > 500

    def test_validation(self):
        with pytest.raises(ValueError):
            log_bin_edges(0)
        with pytest.raises(ValueError):
            log_bin_edges(10, bins_per_decade=0)


class TestDegreeRows:
    def test_zero_degree_row_separate(self):
        h = Histogram.from_values([0, 0, 1, 5, 500])
        rows = degree_histogram_rows(h)
        assert rows[0] == ("0", 2, pytest.approx(0.4))

    def test_fractions_sum_to_one(self):
        h = Histogram.from_values([0, 1, 2, 3, 10, 100, 1000])
        rows = degree_histogram_rows(h)
        assert sum(r[2] for r in rows) == pytest.approx(1.0)
        assert sum(r[1] for r in rows) == h.total

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            degree_histogram_rows(Histogram())


class TestTailExponent:
    def test_recovers_known_exponent(self):
        """Sampling a discrete zeta(2.5) tail recovers alpha ~ 2.5."""
        rng = np.random.default_rng(0)
        samples = rng.zipf(2.5, size=50_000)
        h = Histogram.from_values(samples.tolist())
        alpha = tail_exponent_estimate(h, xmin=10)
        assert alpha == pytest.approx(2.5, abs=0.25)

    def test_no_tail_rejected(self):
        h = Histogram.from_values([1, 2, 3])
        with pytest.raises(ValueError):
            tail_exponent_estimate(h, xmin=10)

    def test_xmin_validation(self):
        with pytest.raises(ValueError):
            tail_exponent_estimate(Histogram.from_values([5]), xmin=0)

"""Tests for the structural latency model."""

from __future__ import annotations

import pytest

from repro.analysis.calibration import CostModel
from repro.analysis.latency import LatencyModel, latency_profile
from repro.types import FetchResult, Request

COST = CostModel(t_txn=1e-4, t_item=1e-5)
MODEL = LatencyModel(COST, rtt=1e-3)


def result(txn_sizes, second_round=0):
    return FetchResult(
        request=Request(items=tuple(range(sum(txn_sizes)))),
        transactions=len(txn_sizes),
        items_fetched=sum(txn_sizes),
        items_transferred=sum(txn_sizes),
        misses=second_round,
        second_round_transactions=second_round,
        txn_sizes=tuple(txn_sizes),
    )


class TestLatencyModel:
    def test_transaction_latency(self):
        assert MODEL.transaction_latency(10) == pytest.approx(1e-3 + 1e-4 + 1e-4)

    def test_round_is_max_not_sum(self):
        small, big = 2, 50
        lat = MODEL.round_latency([small, big])
        assert lat == MODEL.transaction_latency(big)

    def test_empty_round(self):
        assert MODEL.round_latency([]) == 0.0

    def test_single_round_request(self):
        res = result([5, 10, 2])
        assert MODEL.request_latency(res) == MODEL.transaction_latency(10)

    def test_two_round_request_sums_rounds(self):
        res = result([5, 10, 3], second_round=1)  # last txn is round two
        expected = MODEL.transaction_latency(10) + MODEL.transaction_latency(3)
        assert MODEL.request_latency(res) == pytest.approx(expected)

    def test_more_transactions_do_not_raise_single_round_latency(self):
        """Bundling fewer/more txns in one parallel round is latency-neutral
        as long as the biggest transaction is unchanged."""
        few = result([20])
        many = result([20, 1, 1, 1])
        assert MODEL.request_latency(many) == pytest.approx(
            MODEL.request_latency(few), rel=0.01
        )

    def test_rtt_validation(self):
        with pytest.raises(ValueError):
            LatencyModel(COST, rtt=-1.0)


class TestLatencyProfile:
    def test_profile_keys_and_ordering(self):
        results = [result([5]), result([10]), result([5, 2], second_round=1)]
        prof = latency_profile(results, MODEL)
        assert prof["p50"] <= prof["p95"] <= prof["p99"]
        assert prof["two_round_fraction"] == pytest.approx(1 / 3)

    def test_accepts_generator(self):
        prof = latency_profile((result([3]) for _ in range(5)), MODEL)
        assert prof["mean"] > 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            latency_profile([], MODEL)

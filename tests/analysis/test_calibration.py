"""Tests for the cost model and its least-squares calibration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.calibration import (
    DEFAULT_MEMCACHED_MODEL,
    CostModel,
    fit_cost_model,
)


class TestCostModel:
    def test_txn_time_affine(self):
        m = CostModel(t_txn=1e-5, t_item=1e-7)
        assert m.txn_time(0) == pytest.approx(1e-5)
        assert m.txn_time(100) == pytest.approx(1e-5 + 1e-5)

    def test_items_per_second_monotone_without_cap(self):
        m = CostModel(t_txn=1e-5, t_item=1e-7)
        rates = [m.items_per_second(k) for k in (1, 2, 10, 100, 1000)]
        assert rates == sorted(rates)

    def test_items_per_second_asymptote(self):
        m = CostModel(t_txn=1e-5, t_item=2e-7)
        assert m.items_per_second(10**6) == pytest.approx(1 / 2e-7, rel=0.01)

    def test_bandwidth_cap_binds(self):
        m = CostModel(t_txn=1e-5, t_item=2e-7, bandwidth_items_per_s=1e5)
        assert m.items_per_second(1000) == pytest.approx(1e5)
        # small transactions are CPU-bound, unaffected by the cap
        assert m.items_per_second(1) == pytest.approx(1 / (1e-5 + 2e-7))

    def test_txns_per_second(self):
        m = CostModel(t_txn=1e-2, t_item=0.0)
        assert m.txns_per_second(5) == pytest.approx(100.0)

    def test_work_seconds(self):
        m = CostModel(t_txn=1.0, t_item=0.5)
        assert m.work_seconds([1, 2]) == pytest.approx(1.5 + 2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            CostModel(t_txn=0, t_item=1e-7)
        with pytest.raises(ValueError):
            CostModel(t_txn=1e-5, t_item=-1)
        with pytest.raises(ValueError):
            CostModel(t_txn=1e-5, t_item=0, bandwidth_items_per_s=0)
        with pytest.raises(ValueError):
            CostModel(t_txn=1e-5, t_item=1e-7).txn_time(-1)


class TestFit:
    def test_recovers_known_model_exactly(self):
        true = CostModel(t_txn=1.2e-5, t_item=3e-7)
        sizes = [1, 2, 5, 10, 20, 50, 100]
        rates = [true.items_per_second(m) for m in sizes]
        fitted = fit_cost_model(sizes, rates)
        assert fitted.t_txn == pytest.approx(true.t_txn, rel=1e-6)
        assert fitted.t_item == pytest.approx(true.t_item, rel=1e-6)
        assert fitted.bandwidth_items_per_s is None

    def test_recovers_model_under_noise(self):
        true = CostModel(t_txn=1e-5, t_item=2e-7)
        rng = np.random.default_rng(0)
        sizes = list(range(1, 60, 3))
        rates = [
            true.items_per_second(m) * rng.uniform(0.98, 1.02) for m in sizes
        ]
        fitted = fit_cost_model(sizes, rates)
        assert fitted.t_txn == pytest.approx(true.t_txn, rel=0.15)
        assert fitted.t_item == pytest.approx(true.t_item, rel=0.3)

    def test_detects_saturation_cap(self):
        true = CostModel(t_txn=1e-5, t_item=2e-7, bandwidth_items_per_s=2e5)
        sizes = [1, 2, 5, 10, 20, 100, 500, 1000]
        rates = [true.items_per_second(m) for m in sizes]
        fitted = fit_cost_model(sizes, rates)
        assert fitted.bandwidth_items_per_s == pytest.approx(2e5, rel=0.05)
        # the unsaturated points still pin the CPU parameters
        assert fitted.t_txn == pytest.approx(1e-5, rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_cost_model([1], [100.0])
        with pytest.raises(ValueError):
            fit_cost_model([1, 2], [100.0])
        with pytest.raises(ValueError):
            fit_cost_model([0, 2], [10.0, 10.0])
        with pytest.raises(ValueError):
            fit_cost_model([1, 2], [10.0, -1.0])


class TestDefaultModel:
    def test_paper_shape(self):
        """~100k 1-item txns/s; linear growth; wire cap ~1.2M items/s."""
        m = DEFAULT_MEMCACHED_MODEL
        assert 8e4 < m.txns_per_second(1) < 1.2e5
        # near-linear until the cap
        assert m.items_per_second(10) > 7 * m.items_per_second(1)
        assert m.items_per_second(10_000) == pytest.approx(1.2e6)

"""Open-loop arrival schedules: determinism, curve shapes, validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.loadgen.schedule import (
    arrival_times,
    diurnal_curve,
    flash_crowd_curve,
    make_curve,
)


class TestPoissonScheduler:
    def test_deterministic_by_seed(self):
        a = arrival_times(500, 10.0, scheduler="poisson", seed=42)
        b = arrival_times(500, 10.0, scheduler="poisson", seed=42)
        np.testing.assert_array_equal(a, b)

    def test_seed_moves_the_schedule(self):
        a = arrival_times(500, 10.0, scheduler="poisson", seed=42)
        b = arrival_times(500, 10.0, scheduler="poisson", seed=43)
        assert not np.array_equal(a, b)

    def test_sorted_and_in_range(self):
        t = arrival_times(1000, 5.0, scheduler="poisson", seed=1)
        assert np.all(np.diff(t) >= 0)
        assert t[0] >= 0 and t[-1] <= 5.0

    def test_irregular_gaps(self):
        # a Poisson process has bursts and lulls; the gap CV of an
        # exponential is 1, far from the 0 of an evenly spaced schedule
        t = arrival_times(2000, 10.0, scheduler="poisson", seed=7)
        gaps = np.diff(t)
        assert gaps.std() / gaps.mean() > 0.5


class TestDeterministicScheduler:
    def test_no_seed_dependence(self):
        a = arrival_times(300, 4.0, scheduler="deterministic", seed=1)
        b = arrival_times(300, 4.0, scheduler="deterministic", seed=99)
        np.testing.assert_array_equal(a, b)

    def test_constant_curve_evenly_spaced(self):
        t = arrival_times(100, 10.0, scheduler="deterministic")
        gaps = np.diff(t)
        np.testing.assert_allclose(gaps, gaps[0], rtol=1e-6)


class TestCurveShapes:
    def test_flash_concentrates_arrivals_in_the_spike(self):
        factor, start, width = 8.0, 0.5, 0.1
        t = arrival_times(
            20000,
            1.0,
            curve="flash",
            scheduler="deterministic",
            factor=factor,
            start=start,
            width=width,
        )
        in_spike = np.mean((t >= start) & (t < start + width))
        expected = factor * width / (1.0 + (factor - 1.0) * width)
        assert in_spike == pytest.approx(expected, rel=0.02)

    def test_flash_baseline_is_uniform_outside_the_spike(self):
        t = arrival_times(
            20000, 1.0, curve="flash", scheduler="deterministic", start=0.6, width=0.2
        )
        before = np.mean(t < 0.3)
        # first 30% of the window holds 30% of the baseline mass
        baseline_mass = 1.0 - np.mean((t >= 0.6) & (t < 0.8))
        assert before == pytest.approx(0.3 / 0.8 * baseline_mass, rel=0.05)

    def test_diurnal_peak_beats_trough(self):
        t = arrival_times(
            20000, 1.0, curve="diurnal", scheduler="deterministic", amplitude=0.8
        )
        trough = np.mean(t < 0.25)  # sinusoid trough is at the start
        peak = np.mean((t >= 0.25) & (t < 0.75))
        assert peak > 2 * trough

    def test_custom_callable_curve(self):
        t = arrival_times(
            1000, 1.0, curve=lambda u: 1.0 + u, scheduler="deterministic"
        )
        # density grows with time: the median arrival is past the midpoint
        assert np.median(t) > 0.5


class TestValidation:
    def test_unknown_curve(self):
        with pytest.raises(ConfigurationError):
            arrival_times(10, 1.0, curve="square")

    def test_unknown_scheduler(self):
        with pytest.raises(ConfigurationError):
            arrival_times(10, 1.0, scheduler="uniform")

    def test_kwargs_rejected_for_callable_curve(self):
        with pytest.raises(ConfigurationError):
            arrival_times(10, 1.0, curve=lambda u: u + 1, factor=2.0)

    def test_bad_n_and_duration(self):
        with pytest.raises(ConfigurationError):
            arrival_times(0, 1.0)
        with pytest.raises(ConfigurationError):
            arrival_times(10, 0.0)

    def test_curve_parameter_bounds(self):
        with pytest.raises(ConfigurationError):
            diurnal_curve(amplitude=1.5)
        with pytest.raises(ConfigurationError):
            flash_crowd_curve(factor=0.5)
        with pytest.raises(ConfigurationError):
            flash_crowd_curve(start=0.9, width=0.5)
        with pytest.raises(ConfigurationError):
            make_curve("constant", factor=2.0)

    def test_negative_intensity_rejected(self):
        with pytest.raises(ConfigurationError):
            arrival_times(10, 1.0, curve=lambda u: u - 0.5)

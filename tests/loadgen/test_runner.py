"""End-to-end load test runner: real servers, determinism, reporting."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.loadgen.runner import (
    LoadTestConfig,
    build_workload,
    item_key,
    run_loadtest,
    workload_token,
)

SMALL = LoadTestConfig(
    users=120,
    duration=0.4,
    n_servers=3,
    replication=2,
    n_items=300,
    request_size=5,
    seed=11,
)


class TestWorkloadDeterminism:
    def test_build_workload_is_pure(self):
        off_a, req_a = build_workload(SMALL)
        off_b, req_b = build_workload(SMALL)
        assert list(off_a) == list(off_b)
        assert req_a == req_b

    def test_token_pins_offsets_and_keys(self):
        off, req = build_workload(SMALL)
        assert workload_token(off, req) == workload_token(off.copy(), list(req))
        bumped = off.copy()
        bumped[0] += 0.001
        assert workload_token(bumped, req) != workload_token(off, req)

    def test_seed_moves_the_token(self):
        cfg2 = LoadTestConfig(
            users=120,
            duration=0.4,
            n_servers=3,
            replication=2,
            n_items=300,
            request_size=5,
            seed=12,
        )
        assert (
            workload_token(*build_workload(SMALL))
            != workload_token(*build_workload(cfg2))
        )

    def test_requests_use_valid_item_keys(self):
        _, req = build_workload(SMALL)
        valid = {item_key(i) for i in range(SMALL.n_items)}
        for keys in req:
            assert len(set(keys)) == len(keys) == SMALL.request_size
            assert set(keys) <= valid


class TestRunLoadtest:
    @pytest.fixture(scope="class")
    def report(self):
        return run_loadtest(SMALL)

    def test_every_request_served_zero_failed(self, report):
        m = report.measured
        assert m["failed"] == 0
        assert m["ok"] + m["degraded"] == SMALL.users
        assert m["items_served"] > 0

    def test_workload_section_matches_config_and_reruns(self, report):
        w = report.workload
        assert w["users"] == SMALL.users
        assert w["seed"] == SMALL.seed
        # the workload half is reproducible even though measurements move
        again = run_loadtest(SMALL)
        assert again.workload == w

    def test_report_serialises(self, report):
        doc = json.loads(report.to_json())
        assert set(doc) == {"workload", "measured", "metrics"}
        assert doc["workload"]["determinism_token"] == (
            report.workload["determinism_token"]
        )
        assert "p999_ms" in doc["measured"]
        text = report.summary()
        assert "loadtest:" in text and "goodput:" in text

    def test_metrics_section_has_core_families(self, report):
        from repro.obs import CORE_REQUEST_FAMILIES

        families = set(report.metrics["families"])
        assert set(CORE_REQUEST_FAMILIES) <= families
        assert report.metrics["snapshot"]["rnb_loadtest_latency_ms"]["type"] == (
            "histogram"
        )
        assert isinstance(report.metrics["token"], int)

    def test_latency_percentiles_ordered(self, report):
        m = report.measured
        assert m["p50_ms"] <= m["p99_ms"] <= m["p999_ms"]
        assert m["peak_in_flight"] >= 1
        assert m["connections"] >= SMALL.n_servers


class TestReportMathMatchesNumpy:
    """The obs-Histogram migration must not move the printed report.

    The measured section used to run inline numpy; it now reads an
    exact-percentile :class:`repro.obs.Histogram`.  Same observations in,
    byte-identical latency line out.
    """

    def test_latency_line_byte_identical(self):
        import numpy as np

        from repro.obs import Histogram

        rng = np.random.default_rng(3)
        lat = np.asarray(rng.gamma(2.0, 1.7, size=997) * 3.0, dtype=np.float64)
        hist = Histogram(track_values=True)
        hist.observe_many(float(v) for v in lat)

        assert hist.percentile(50) == float(np.percentile(lat, 50))
        assert hist.percentile(99) == float(np.percentile(lat, 99))
        assert hist.percentile(99.9) == float(np.percentile(lat, 99.9))

        pre_obs = (
            f"  latency:  p50={float(np.percentile(lat, 50)):.2f}ms "
            f"p99={float(np.percentile(lat, 99)):.2f}ms "
            f"p999={float(np.percentile(lat, 99.9)):.2f}ms "
            f"mean={float(lat.mean()):.2f}ms"
        )
        via_obs = (
            f"  latency:  p50={hist.percentile(50):.2f}ms "
            f"p99={hist.percentile(99):.2f}ms "
            f"p999={hist.percentile(99.9):.2f}ms "
            f"mean={hist.mean:.2f}ms"
        )
        assert via_obs == pre_obs


class TestConfigValidation:
    def test_bounds(self):
        with pytest.raises(ConfigurationError):
            LoadTestConfig(users=0)
        with pytest.raises(ConfigurationError):
            LoadTestConfig(duration=0.0)
        with pytest.raises(ConfigurationError):
            LoadTestConfig(curve="sawtooth")
        with pytest.raises(ConfigurationError):
            LoadTestConfig(scheduler="closed-loop")
        with pytest.raises(ConfigurationError):
            LoadTestConfig(replication=5, n_servers=4)
        with pytest.raises(ConfigurationError):
            LoadTestConfig(request_size=0)
        with pytest.raises(ConfigurationError):
            LoadTestConfig(deadline=-1.0)
        with pytest.raises(ConfigurationError):
            LoadTestConfig(queue_limit=0)

"""Nemesis wiring in the live load harness: seeded blackouts, safe default."""

from __future__ import annotations

import pytest

from repro.loadgen.runner import (
    LoadTestConfig,
    nemesis_blackouts,
    run_loadtest,
)


class TestBlackoutSchedule:
    def test_empty_without_a_seed(self):
        assert nemesis_blackouts(LoadTestConfig()) == []

    def test_pure_function_of_the_config(self):
        config = LoadTestConfig(nemesis_seed=9, duration=1.0, n_servers=4)
        a = nemesis_blackouts(config)
        assert a == nemesis_blackouts(config)
        other = LoadTestConfig(nemesis_seed=10, duration=1.0, n_servers=4)
        assert a != nemesis_blackouts(other)

    def test_spans_fit_the_schedule_and_name_real_servers(self):
        config = LoadTestConfig(nemesis_seed=9, duration=2.0, n_servers=4)
        spans = nemesis_blackouts(config)
        assert spans
        for start, end, victim in spans:
            assert 0.0 <= start < end <= config.duration
            assert 0 <= victim < config.n_servers

    def test_spans_scale_with_duration(self):
        short = nemesis_blackouts(
            LoadTestConfig(nemesis_seed=9, duration=1.0, n_servers=4)
        )
        long = nemesis_blackouts(
            LoadTestConfig(nemesis_seed=9, duration=2.0, n_servers=4)
        )
        for (s1, e1, v1), (s2, e2, v2) in zip(short, long):
            assert v1 == v2
            assert s1 * 2 == pytest.approx(s2, rel=1e-9)
            assert e1 * 2 == pytest.approx(e2, rel=1e-9)


class TestLiveRun:
    TINY = dict(
        users=40,
        duration=0.4,
        n_servers=3,
        replication=2,
        n_items=200,
        request_size=4,
        pool_size=2,
        seed=3,
    )

    def test_nemesis_run_reports_and_survives(self):
        report = run_loadtest(LoadTestConfig(nemesis_seed=9, **self.TINY))
        w, m = report.workload, report.measured
        assert w["nemesis_seed"] == 9
        assert len(w["nemesis_blackouts"]) >= 1
        # the client rides failover through the cut: nothing fails
        assert m["failed"] == 0
        assert m["ok"] + m["degraded"] == self.TINY["users"]
        assert m["connections_refused"] >= 0

    def test_default_path_is_untouched(self):
        report = run_loadtest(LoadTestConfig(**self.TINY))
        assert report.workload["nemesis_seed"] is None
        assert report.workload["nemesis_blackouts"] == []
        assert report.measured["connections_refused"] == 0
        assert report.measured["failed"] == 0

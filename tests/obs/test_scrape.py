"""Fleet scraping over real loopback TCP: the `rnb stats` client side."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.obs.export import CORE_REQUEST_FAMILIES
from repro.obs.scrape import (
    boot_demo_fleet,
    merged_fleet_samples,
    missing_families,
    parse_address,
    scrape_fleet,
)


class TestParseAddress:
    def test_forms(self):
        assert parse_address("10.0.0.1:1121") == ("10.0.0.1", 1121)
        assert parse_address("11211") == ("127.0.0.1", 11211)
        assert parse_address(":11211") == ("127.0.0.1", 11211)

    def test_invalid(self):
        with pytest.raises(ProtocolError):
            parse_address("host:port:extra:words")
        with pytest.raises(ProtocolError):
            parse_address("no-port-at-all")


class TestFleetScrape:
    @pytest.fixture(scope="class")
    def fleet(self):
        addresses, tcp_servers, registry = boot_demo_fleet(
            n_servers=2, n_items=40, seed=3
        )
        yield addresses, registry
        for srv in tcp_servers:
            srv.shutdown()

    def test_scrape_covers_core_families(self, fleet):
        addresses, _registry = fleet
        per_server = scrape_fleet(addresses)
        assert set(per_server) == set(addresses)
        merged = merged_fleet_samples(per_server)
        assert missing_families(merged) == []
        assert missing_families(merged, required=CORE_REQUEST_FAMILIES) == []

    def test_cache_stats_join_the_catalog(self, fleet):
        addresses, _registry = fleet
        merged = merged_fleet_samples(scrape_fleet(addresses))
        cache = [s for s in merged if s.startswith("rnb_cache_cmd_get_total")]
        assert cache, "per-server cache counters missing from scrape"

    def test_missing_families_reports_gaps(self, fleet):
        addresses, _registry = fleet
        one = scrape_fleet(addresses[:1])[addresses[0]]
        only_cache = {k: v for k, v in one.items() if k.startswith("rnb_cache_")}
        gaps = missing_families(only_cache)
        assert "rnb_requests_total" in gaps

    def test_registry_agrees_with_the_wire(self, fleet):
        # what the shared registry says locally must be what every
        # server ships over TCP (they serve the same samples)
        from repro.obs.export import samples

        addresses, registry = fleet
        local = {k: v for k, v in samples(registry) if k.endswith("_total")}
        wire = scrape_fleet(addresses[:1])[addresses[0]]
        for name, value in local.items():
            assert wire[name] == value

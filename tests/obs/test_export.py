"""Export surfaces: Prometheus text, stats samples, fleet merging."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.obs.export import (
    CORE_REQUEST_FAMILIES,
    family_of,
    merge_samples,
    parse_sample_name,
    render_prometheus,
    samples,
)
from repro.obs.metrics import MetricsRegistry


def _registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("rnb_requests_total", "requests", path="live", outcome="ok").inc(3)
    reg.gauge("rnb_server_load", "load", server=0).set(1.5)
    h = reg.histogram("rnb_cover_size", "cover sizes")
    h.observe_many([1.0, 2.0, 2.0, 3.0])
    return reg


class TestSamples:
    def test_names_have_no_spaces(self):
        for name, _value in samples(_registry()):
            assert " " not in name  # must survive a `STAT <key> <value>` line

    def test_histogram_expansion_is_cumulative(self):
        flat = samples(_registry())  # emission order: ascending le, then +Inf
        got = dict(flat)
        counts = [v for name, v in flat if name.startswith("rnb_cover_size_bucket")]
        assert counts == sorted(counts)  # cumulative
        assert got['rnb_cover_size_bucket{le="+Inf"}'] == 4.0
        assert got["rnb_cover_size_count"] == 4.0
        assert got["rnb_cover_size_sum"] == 8.0

    def test_counter_and_gauge_samples(self):
        got = dict(samples(_registry()))
        assert got['rnb_requests_total{outcome="ok",path="live"}'] == 3.0
        assert got['rnb_server_load{server="0"}'] == 1.5


class TestPrometheusText:
    def test_exposition_format(self):
        text = render_prometheus(_registry())
        assert "# HELP rnb_requests_total requests" in text
        assert "# TYPE rnb_requests_total counter" in text
        assert "# TYPE rnb_server_load gauge" in text
        assert "# TYPE rnb_cover_size histogram" in text
        assert 'rnb_requests_total{outcome="ok",path="live"} 3' in text
        assert text.endswith("\n")


class TestParsing:
    def test_round_trip(self):
        fam, labels = parse_sample_name('rnb_requests_total{outcome="ok",path="live"}')
        assert fam == "rnb_requests_total"
        assert labels == {"outcome": "ok", "path": "live"}
        assert parse_sample_name("rnb_up") == ("rnb_up", {})

    def test_malformed_rejected(self):
        with pytest.raises(ProtocolError):
            parse_sample_name("rnb_x{unterminated")
        with pytest.raises(ProtocolError):
            parse_sample_name("rnb_x{k=v}")

    def test_family_folds_histogram_suffixes(self):
        assert family_of('rnb_cover_size_bucket{le="+Inf"}') == "rnb_cover_size"
        assert family_of("rnb_cover_size_sum") == "rnb_cover_size"
        assert family_of("rnb_cover_size_count") == "rnb_cover_size"
        assert family_of("rnb_requests_total") == "rnb_requests_total"

    def test_core_catalog_is_sane(self):
        assert len(CORE_REQUEST_FAMILIES) == len(set(CORE_REQUEST_FAMILIES))
        assert all(f.startswith("rnb_") for f in CORE_REQUEST_FAMILIES)


class TestMerge:
    def test_counters_add_gauges_split(self):
        a = dict(samples(_registry()))
        b = dict(samples(_registry()))
        merged = merge_samples({"s0": a, "s1": b})
        assert merged['rnb_requests_total{outcome="ok",path="live"}'] == 6.0
        assert merged['rnb_cover_size_bucket{le="+Inf"}'] == 8.0
        assert merged["rnb_cover_size_sum"] == 16.0
        # gauges are per-source point readings, never summed
        assert merged['rnb_server_load{server="0",source="s0"}'] == 1.5
        assert merged['rnb_server_load{server="0",source="s1"}'] == 1.5

    def test_merged_quantiles_are_union_quantiles(self):
        # the whole point of equal-geometry histograms: a scrape-side
        # merge is indistinguishable from one histogram observing it all
        from repro.obs.metrics import Histogram

        one, two, union = Histogram(), Histogram(), Histogram()
        one.observe_many([0.001, 0.002, 0.004])
        two.observe_many([0.008, 0.016, 0.032, 0.064])
        union.observe_many([0.001, 0.002, 0.004, 0.008, 0.016, 0.032, 0.064])
        one.merge(two)
        assert one.quantile(0.5) == union.quantile(0.5)
        assert one.quantile(0.99) == union.quantile(0.99)

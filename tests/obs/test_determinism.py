"""Telemetry determinism: same-seed DES runs snapshot and trace
byte-identically; different seeds move the tokens; every time domain
emits the shared core metric catalog (docs/OBSERVABILITY.md)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.calibration import DEFAULT_MEMCACHED_MODEL
from repro.core.bundling import Bundler
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.obs import CORE_REQUEST_FAMILIES, MetricsRegistry, Tracer
from repro.overload.desim import OverloadConfig, simulate_overload
from repro.types import Request
from repro.utils.rng import derive_rng

N_SERVERS = 6
N_ITEMS = 200
COST = DEFAULT_MEMCACHED_MODEL

CONFIG = OverloadConfig(
    queue_limit=8,
    breaker=True,
    trip_after=3,
    window=8,
    open_ticks=30,
    hedge_quantile=0.9,
    hedge_min_samples=16,
    deadline=COST.txn_time(8) * 500,
    partial_fraction=0.5,
    load_aware=True,
    seed=3,
)


def _requests(n=150, size=6, seed=5):
    rng = np.random.default_rng(seed)
    return [
        Request(
            items=tuple(sorted(int(i) for i in rng.choice(N_ITEMS, size, replace=False)))
        )
        for _ in range(n)
    ]


def _run(seed=11, *, tracer=None, registry=None):
    bundler = Bundler(RangedConsistentHashPlacer(N_SERVERS, 2, seed=0, vnodes=32))
    return simulate_overload(
        _requests(),
        bundler,
        n_servers=N_SERVERS,
        cost_model=COST,
        arrival_rate=2000.0,
        config=CONFIG,
        rng=derive_rng(seed, 1),
        metrics=registry,
        tracer=tracer,
    )


class TestSnapshotDeterminism:
    def test_same_seed_snapshots_byte_identical(self):
        a, b = _run(seed=11), _run(seed=11)
        assert a.metrics_token == b.metrics_token
        blob_a = json.dumps(a.metrics, sort_keys=True, default=repr)
        blob_b = json.dumps(b.metrics, sort_keys=True, default=repr)
        assert blob_a == blob_b

    def test_different_seed_moves_the_token(self):
        assert _run(seed=11).metrics_token != _run(seed=12).metrics_token

    def test_caller_registry_is_the_one_snapshotted(self):
        registry = MetricsRegistry()
        result = _run(seed=11, registry=registry)
        assert result.metrics_token == registry.token()
        assert registry.get("rnb_requests_total", path="sim", outcome="ok") is not None


class TestTraceDeterminism:
    def test_same_seed_traces_byte_identical(self):
        ta, tb = Tracer(), Tracer()
        _run(seed=11, tracer=ta)
        _run(seed=11, tracer=tb)
        assert len(ta) > 0
        assert ta.render() == tb.render()
        assert ta.token() == tb.token()

    def test_different_seed_moves_the_trace(self):
        ta, tb = Tracer(), Tracer()
        _run(seed=11, tracer=ta)
        _run(seed=12, tracer=tb)
        assert ta.token() != tb.token()

    def test_trace_tree_has_the_documented_schema(self):
        tracer = Tracer()
        _run(seed=11, tracer=tracer)
        req = tracer.roots[0]
        assert req.name == "request"
        child_names = {c.name for c in req.children}
        assert child_names <= {"plan", "txn"}
        assert "plan" in child_names
        txns = [c for c in req.children if c.name == "txn"]
        assert all("server" in t.attrs for t in txns)
        assert all(t.end is not None and t.end >= t.start for t in txns)


class TestFamilyParity:
    def test_sim_path_emits_core_catalog(self):
        result = _run(seed=11)
        missing = set(CORE_REQUEST_FAMILIES) - set(result.metrics)
        assert not missing, f"sim path missing {sorted(missing)}"

    def test_live_path_emits_core_catalog(self):
        # the sync protocol client registers the same families at
        # construction, before any traffic — parity holds even for an
        # idle client (zero-valued series are registered, not absent)
        from repro.protocol.rnbclient import _request_instruments

        registry = MetricsRegistry()
        _request_instruments(registry, "live")
        Bundler(
            RangedConsistentHashPlacer(N_SERVERS, 2, seed=0, vnodes=32),
            metrics=registry,
        )
        missing = set(CORE_REQUEST_FAMILIES) - set(registry.families())
        assert not missing, f"live path missing {sorted(missing)}"

    def test_sim_and_live_latency_histograms_share_geometry(self):
        # cross-domain comparability: both paths must land observations
        # in the same buckets so scrape-side merges stay exact
        result = _run(seed=11)
        sim_hist = result.metrics["rnb_request_latency_seconds"]["series"]
        (snap,) = sim_hist.values()
        registry = MetricsRegistry()
        live = registry.histogram("rnb_request_latency_seconds", path="live")
        assert snap["subbuckets"] == live.subbuckets

"""Metrics core: instruments, bucket geometry, registry determinism."""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_value,
    label_string,
)


class TestCounter:
    def test_monotone(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.get() == 3.5
        with pytest.raises(ConfigurationError):
            c.inc(-1)


class TestGauge:
    def test_settable(self):
        g = Gauge()
        g.set(4.0)
        g.inc()
        g.dec(2.0)
        assert g.get() == 3.0

    def test_callback_backed(self):
        state = {"v": 7}
        g = Gauge(fn=lambda: state["v"])
        assert g.get() == 7.0
        state["v"] = 9
        assert g.get() == 9.0
        with pytest.raises(ConfigurationError):
            g.set(1.0)
        with pytest.raises(ConfigurationError):
            g.inc()


class TestHistogramGeometry:
    def test_bucket_bounds_contain_observation(self):
        h = Histogram()
        for value in (1e-9, 0.001, 0.5, 1.0, 1.49, 7.2, 1e6):
            idx = h.bucket_index(value)
            lo, hi = h.bucket_bounds(idx)
            assert lo <= value < hi

    def test_nonpositive_goes_to_underflow(self):
        h = Histogram()
        h.observe(0.0)
        h.observe(-3.0)
        assert h.buckets == {Histogram.UNDERFLOW: 2}
        assert h.bucket_bounds(Histogram.UNDERFLOW) == (-math.inf, 0.0)

    def test_subbuckets_bound_relative_error(self):
        h = Histogram(subbuckets=8)
        for value in (0.0013, 0.87, 3.14, 42.0):
            lo, hi = h.bucket_bounds(h.bucket_index(value))
            assert (hi - lo) / lo <= 1.0 / 8 + 1e-12

    def test_quantile_within_bucket_width(self):
        h = Histogram()
        rng = np.random.default_rng(5)
        data = rng.gamma(2.0, 3.0, size=2000)
        h.observe_many(float(v) for v in data)
        for q in (0.5, 0.9, 0.99):
            exact = float(np.quantile(data, q))
            assert h.quantile(q) == pytest.approx(exact, rel=0.15)

    def test_quantile_edge_cases(self):
        h = Histogram()
        assert h.quantile(0.5) == 0.0
        h.observe(3.0)
        assert h.quantile(0.0) == pytest.approx(3.0, rel=0.15)
        with pytest.raises(ConfigurationError):
            h.quantile(1.5)


class TestHistogramExactPercentiles:
    def test_matches_numpy_bit_for_bit(self):
        rng = np.random.default_rng(11)
        data = rng.exponential(3.0, size=501)
        h = Histogram(track_values=True)
        h.observe_many(float(v) for v in data)
        for p in (0.0, 12.5, 50.0, 99.0, 99.9, 100.0):
            assert h.percentile(p) == float(np.percentile(data, p))

    def test_requires_tracked_values(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ConfigurationError):
            h.percentile(50)

    def test_empty_is_zero(self):
        assert Histogram(track_values=True).percentile(99) == 0.0


class TestHistogramMerge:
    def test_merge_is_exact(self):
        a, b, union = Histogram(), Histogram(), Histogram()
        rng = np.random.default_rng(2)
        xs = [float(v) for v in rng.gamma(2.0, 1.0, size=300)]
        ys = [float(v) for v in rng.gamma(5.0, 0.2, size=500)]
        a.observe_many(xs)
        b.observe_many(ys)
        union.observe_many(xs + ys)
        a.merge(b)
        assert a.buckets == union.buckets
        assert a.count == union.count
        assert a.sum == pytest.approx(union.sum)
        assert a.min == union.min and a.max == union.max

    def test_geometry_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram(subbuckets=8).merge(Histogram(subbuckets=16))


class TestHistogramObserveN:
    def test_equivalent_to_repeated_observe(self):
        # integer-valued series (the batch planners' case): observe_n is
        # snapshot-identical to n scalar observes
        bulk, scalar = Histogram(track_values=True), Histogram(track_values=True)
        for value, n in [(3, 4), (1, 2), (7, 1), (3, 5)]:
            bulk.observe_n(value, n)
            for _ in range(n):
                scalar.observe(value)
        assert bulk.snapshot() == scalar.snapshot()
        assert sorted(bulk.values) == sorted(scalar.values)

    def test_zero_weight_is_a_noop_and_negative_rejected(self):
        h = Histogram()
        h.observe_n(5.0, 0)
        assert h.count == 0 and h.buckets == {}
        with pytest.raises(ConfigurationError):
            h.observe_n(5.0, -1)


class TestRegistry:
    def test_get_or_create_shares_instruments(self):
        reg = MetricsRegistry()
        a = reg.counter("rnb_x_total", "x", path="sim")
        b = reg.counter("rnb_x_total", path="sim")
        assert a is b
        a.inc()
        assert reg.get("rnb_x_total", path="sim").get() == 1.0
        assert reg.get("rnb_x_total", path="nope") is None
        assert reg.get("rnb_missing") is None

    def test_type_conflicts_and_bad_names_rejected(self):
        reg = MetricsRegistry()
        reg.counter("rnb_x_total")
        with pytest.raises(ConfigurationError):
            reg.gauge("rnb_x_total")
        with pytest.raises(ConfigurationError):
            reg.counter("bad name")
        with pytest.raises(ConfigurationError):
            reg.counter("9starts_with_digit")

    def test_snapshot_is_deterministically_ordered(self):
        def build(order: bool) -> dict:
            reg = MetricsRegistry()
            labels = [{"s": "b"}, {"s": "a"}]
            for lab in labels if order else reversed(labels):
                reg.counter("rnb_z_total", **lab).inc()
            reg.gauge("rnb_a_gauge").set(2)
            h = reg.histogram("rnb_m_hist")
            h.observe_many([0.1, 0.2, 4.0])
            return reg.snapshot()

        a, b = build(True), build(False)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert list(a) == sorted(a)

    def test_token_moves_with_observations_and_seed(self):
        reg = MetricsRegistry()
        reg.counter("rnb_x_total").inc()
        t = reg.token()
        assert t == reg.token()
        assert t != reg.token(seed=1)
        reg.counter("rnb_x_total").inc()
        assert reg.token() != t

    def test_gauge_callback_rebinds(self):
        reg = MetricsRegistry()
        reg.gauge("rnb_live", fn=lambda: 1.0)
        reg.gauge("rnb_live", fn=lambda: 5.0)
        assert reg.get("rnb_live").get() == 5.0


class TestRendering:
    def test_format_value(self):
        assert format_value(3) == "3"
        assert format_value(3.0) == "3"
        assert format_value(2.5) == "2.5"
        assert format_value(1e300) == "1e+300"

    def test_label_string_sorted(self):
        assert label_string({}) == ""
        assert label_string({"b": 2, "a": "x"}) == 'a="x",b="2"'


class TestRegistryMerge:
    def test_counters_add_and_new_families_are_created(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("reqs", "requests", shard="x").inc(3)
        b.counter("reqs", "requests", shard="x").inc(4)
        b.counter("reqs", "requests", shard="y").inc(1)
        b.counter("only_b", "b-only").inc(7)
        a.merge(b)
        assert a.get("reqs", shard="x").get() == 7
        assert a.get("reqs", shard="y").get() == 1
        assert a.get("only_b").get() == 7
        # merge never mutates the source
        assert b.get("reqs", shard="x").get() == 4

    def test_histograms_merge_exactly(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for value in (1, 2, 300):
            a.histogram("sizes").observe(value)
        for value in (2, 5000):
            b.histogram("sizes").observe(value)
        a.merge(b)
        direct = MetricsRegistry()
        for value in (1, 2, 300, 2, 5000):
            direct.histogram("sizes").observe(value)
        assert a.snapshot() == direct.snapshot()

    def test_settable_gauge_takes_others_value_and_callbacks_skip(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("depth").set(3)
        b.gauge("depth").set(9)
        b.gauge("live", fn=lambda: 42.0)
        a.merge(b)
        assert a.get("depth").get() == 9
        # the callback-backed gauge's series was not copied into a
        assert a.snapshot()["live"]["series"] == {}

    def test_merge_is_associative_and_matches_sequential(self):
        # the sharded engine's exactness property at the registry level:
        # per-shard registries folded in order == one sequential registry
        shards = []
        for lo, hi in [(0, 10), (10, 25), (25, 40)]:
            r = MetricsRegistry()
            for i in range(lo, hi):
                r.counter("n", "count").inc()
                r.histogram("v", "values").observe(i % 7)
            shards.append(r)
        merged = MetricsRegistry()
        for shard in shards:
            merged.merge(shard)
        sequential = MetricsRegistry()
        for i in range(40):
            sequential.counter("n", "count").inc()
            sequential.histogram("v", "values").observe(i % 7)
        assert merged.token() == sequential.token()
        assert merged.snapshot() == sequential.snapshot()

    def test_merge_rejects_kind_conflict(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x", "as counter")
        b.gauge("x", "as gauge")
        with pytest.raises(ConfigurationError):
            a.merge(b)

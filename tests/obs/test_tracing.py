"""Tracing: span trees, injectable clocks, deterministic rendering."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs.tracing import Tracer


def _fake_clock(times: list[float]):
    it = iter(times)
    return lambda: next(it)


class TestSpanLifecycle:
    def test_parent_child_tree(self):
        tr = Tracer(clock=_fake_clock([0.0, 1.0, 2.0, 3.0]))
        req = tr.start("request", n_keys=8)
        txn = tr.start("txn", parent=req, server=2)
        tr.finish(txn)
        tr.finish(req)
        assert tr.roots == [req]
        assert req.children == [txn]
        assert txn.parent_id == req.span_id
        assert txn.duration == 1.0 and req.duration == 3.0
        assert len(tr) == 2

    def test_explicit_timestamps_bypass_clock(self):
        tr = Tracer(clock=_fake_clock([]))  # clock would raise if consulted
        s = tr.start("request", at=10.0)
        tr.finish(s, at=12.5, outcome="ok")
        assert s.duration == 2.5
        assert s.attrs["outcome"] == "ok"

    def test_finish_is_idempotent(self):
        tr = Tracer(clock=_fake_clock([0.0, 1.0]))
        s = tr.start("x")
        tr.finish(s)
        tr.finish(s, late="attr")
        assert s.end == 1.0
        assert s.attrs["late"] == "attr"

    def test_context_manager_records_errors(self):
        tr = Tracer(clock=_fake_clock([0.0, 1.0, 2.0, 3.0]))
        with tr.span("plan") as s:
            pass
        assert s.end is not None
        with pytest.raises(ValueError):
            with tr.span("boom") as s2:
                raise ValueError("nope")
        assert s2.attrs["error"] == "ValueError"

    def test_max_spans_bounds_retention_not_timing(self):
        tr = Tracer(clock=_fake_clock([float(i) for i in range(20)]), max_spans=3)
        spans = [tr.start("s") for _ in range(5)]
        assert len(tr.roots) == 3
        assert tr.dropped == 2
        assert all(s.start >= 0 for s in spans)  # still timed
        assert "2 spans dropped" in tr.render()
        with pytest.raises(ConfigurationError):
            Tracer(max_spans=0)


class TestRendering:
    def _forest(self) -> Tracer:
        tr = Tracer()
        req = tr.start("request", at=0.0, idx=0, n_items=4)
        tr.finish(tr.start("plan", parent=req, at=0.0, level=0), at=0.0)
        txn = tr.start("txn", parent=req, at=0.5, server=1, n_items=4)
        tr.finish(txn, at=1.5)
        tr.finish(req, at=2.0, shed=0)
        return tr

    def test_render_is_deterministic(self):
        a, b = self._forest(), self._forest()
        assert a.render() == b.render()
        assert a.token() == b.token()
        assert a.token(seed=1) != a.token()

    def test_render_shape(self):
        text = self._forest().render()
        lines = text.splitlines()
        assert lines[0].startswith("request #1")
        assert lines[1].startswith("  plan #2")
        assert lines[2].startswith("  txn #3")
        assert "server=1" in lines[2]
        assert "t=0.500000000" in lines[2] and "dur=1.000000000" in lines[2]

"""Tests for the simplified Monte-Carlo simulator against theory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.urn import expected_tpr
from repro.sim.montecarlo import mc_tpr


class TestAgainstTheory:
    def test_r1_matches_urn_model(self):
        """With one replica, greedy covers exactly the occupied servers,
        so the mean must match N*W(N,M) from the urn analysis.

        Note the subtlety: the urn formula assumes items land independently
        (with replacement); the MC simulator draws each item's server
        independently too, so the match is exact in expectation.
        """
        for n, m in [(4, 10), (8, 20), (16, 50), (32, 8)]:
            res = mc_tpr(n, m, 1, n_trials=3000, seed=1)
            assert res.mean_tpr == pytest.approx(expected_tpr(n, m), rel=0.03)

    def test_full_system_single_server(self):
        res = mc_tpr(1, 10, 1, n_trials=50, seed=0)
        assert res.mean_tpr == 1.0
        assert res.std_tpr == 0.0

    def test_replication_n_is_one_txn(self):
        """R == N: every server holds everything; greedy uses 1 transaction."""
        res = mc_tpr(8, 30, 8, n_trials=50, seed=0)
        assert res.mean_tpr == 1.0


class TestMonotonicity:
    def test_decreasing_in_replication(self):
        tprs = [
            mc_tpr(16, 40, r, n_trials=400, seed=2).mean_tpr for r in (1, 2, 3, 4, 5)
        ]
        assert all(a > b for a, b in zip(tprs, tprs[1:]))

    def test_limit_reduces_tpr(self):
        full = mc_tpr(16, 40, 2, n_trials=400, seed=3).mean_tpr
        part = mc_tpr(16, 40, 2, limit_fraction=0.5, n_trials=400, seed=3).mean_tpr
        assert part < full

    def test_lower_fraction_lower_tpr(self):
        t95 = mc_tpr(16, 40, 1, limit_fraction=0.95, n_trials=400, seed=4).mean_tpr
        t50 = mc_tpr(16, 40, 1, limit_fraction=0.5, n_trials=400, seed=4).mean_tpr
        assert t50 < t95

    def test_limit_one_equals_no_limit(self):
        a = mc_tpr(8, 20, 2, limit_fraction=1.0, n_trials=200, seed=5)
        b = mc_tpr(8, 20, 2, limit_fraction=None, n_trials=200, seed=5)
        assert a.mean_tpr == b.mean_tpr


class TestItemsFetched:
    def test_full_request_fetches_all(self):
        res = mc_tpr(8, 25, 2, n_trials=100, seed=6)
        assert res.mean_items_fetched == 25.0

    def test_limit_fetches_required(self):
        res = mc_tpr(8, 20, 2, limit_fraction=0.5, n_trials=100, seed=7)
        assert res.mean_items_fetched == 10.0


class TestValidation:
    def test_bad_replication(self):
        with pytest.raises(ValueError):
            mc_tpr(4, 10, 5)

    def test_bad_request_size(self):
        with pytest.raises(ValueError):
            mc_tpr(4, 0, 1)

    def test_bad_trials(self):
        with pytest.raises(ValueError):
            mc_tpr(4, 10, 1, n_trials=0)

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            mc_tpr(4, 10, 1, limit_fraction=1.5)

    def test_stderr(self):
        res = mc_tpr(16, 30, 2, n_trials=100, seed=8)
        assert res.stderr_tpr == pytest.approx(res.std_tpr / np.sqrt(100))

    def test_rng_determinism(self):
        a = mc_tpr(16, 30, 2, n_trials=100, seed=9)
        b = mc_tpr(16, 30, 2, n_trials=100, seed=9)
        assert a.mean_tpr == b.mean_tpr

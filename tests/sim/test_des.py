"""Tests for the discrete-event queueing simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.calibration import CostModel
from repro.core.bundling import Bundler
from repro.cluster.placement import SingleHashPlacer
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.sim.des import (
    make_bundled_planner,
    make_classic_planner,
    simulate_queueing,
)
from repro.types import Request
from repro.workloads.requests import RandomRequestGenerator

COST = CostModel(t_txn=1e-4, t_item=1e-5)


def fixed_planner(pairs):
    return lambda request: pairs


def requests(n, size=10, universe=1000, seed=0):
    gen = RandomRequestGenerator(universe, size, rng=np.random.default_rng(seed))
    return list(gen.stream(n))


class TestMechanics:
    def test_latency_floor_is_rtt_plus_service(self):
        """At negligible load, latency = RTT + service time."""
        res = simulate_queueing(
            requests(200),
            fixed_planner([(0, 5)]),
            n_servers=2,
            cost_model=COST,
            arrival_rate=1.0,  # ~zero utilization
            rtt=1e-3,
            rng=np.random.default_rng(1),
        )
        expected = 1e-3 + COST.txn_time(5)
        assert res.mean_latency == pytest.approx(expected, rel=0.01)
        assert res.max_utilization < 0.01

    def test_queueing_delay_grows_with_load(self):
        lat = []
        for rate in (100.0, 3000.0, 6000.0):
            res = simulate_queueing(
                requests(3000),
                fixed_planner([(0, 5)]),
                n_servers=1,
                cost_model=COST,
                arrival_rate=rate,
                rng=np.random.default_rng(2),
            )
            lat.append(res.p95_latency)
        assert lat[0] < lat[1] < lat[2]

    def test_saturation_detected(self):
        # service 1.5e-4s per txn => capacity ~6.6k/s; offer 20k/s
        res = simulate_queueing(
            requests(2000),
            fixed_planner([(0, 5)]),
            n_servers=1,
            cost_model=COST,
            arrival_rate=20_000.0,
            rng=np.random.default_rng(3),
        )
        assert res.saturated
        # delivered throughput caps at the service capacity
        assert res.throughput == pytest.approx(1.0 / COST.txn_time(5), rel=0.1)

    def test_parallel_transactions_take_the_max(self):
        """Two txns on two idle servers finish in one service time."""
        res = simulate_queueing(
            requests(100),
            fixed_planner([(0, 5), (1, 5)]),
            n_servers=2,
            cost_model=COST,
            arrival_rate=1.0,
            rtt=0.0,
            rng=np.random.default_rng(4),
        )
        assert res.mean_latency == pytest.approx(COST.txn_time(5), rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_queueing(
                requests(10), fixed_planner([(0, 1)]), n_servers=1,
                cost_model=COST, arrival_rate=0.0,
            )
        with pytest.raises(ValueError):
            simulate_queueing(
                requests(10), fixed_planner([(5, 1)]), n_servers=2,
                cost_model=COST, arrival_rate=1.0,
            )
        with pytest.raises(ValueError):
            simulate_queueing(
                [], fixed_planner([(0, 1)]), n_servers=1,
                cost_model=COST, arrival_rate=1.0,
            )

    def test_deterministic_given_rng(self):
        a = simulate_queueing(
            requests(500), fixed_planner([(0, 3)]), n_servers=1,
            cost_model=COST, arrival_rate=2000.0, rng=np.random.default_rng(7),
        )
        b = simulate_queueing(
            requests(500), fixed_planner([(0, 3)]), n_servers=1,
            cost_model=COST, arrival_rate=2000.0, rng=np.random.default_rng(7),
        )
        assert a.mean_latency == b.mean_latency


class TestPlanners:
    def test_classic_planner_groups_by_home(self):
        placer = SingleHashPlacer(4, vnodes=16)
        planner = make_classic_planner(placer)
        req = Request(items=tuple(range(30)))
        pairs = planner(req)
        assert sum(n for _, n in pairs) == 30
        homes = {placer.distinguished_for(i) for i in req.items}
        assert {s for s, _ in pairs} == homes

    def test_bundled_planner_uses_fewer_servers(self):
        single = SingleHashPlacer(16, vnodes=16)
        rch = RangedConsistentHashPlacer(16, 4, vnodes=16)
        req = Request(items=tuple(range(40)))
        classic = make_classic_planner(single)(req)
        bundled = make_bundled_planner(Bundler(rch))(req)
        assert len(bundled) < len(classic)
        assert sum(n for _, n in bundled) == 40

    def test_rnb_raises_saturation_capacity(self):
        """The headline, with queues: at a load that saturates the classic
        deployment, RnB still has headroom."""
        single = SingleHashPlacer(8, vnodes=16)
        rch = RangedConsistentHashPlacer(8, 3, vnodes=16)
        reqs = requests(3000, size=20, universe=5000)
        rate = 18_000.0  # past classic capacity for 20-item requests
        classic = simulate_queueing(
            reqs, make_classic_planner(single), n_servers=8,
            cost_model=COST, arrival_rate=rate, rng=np.random.default_rng(8),
        )
        rnb = simulate_queueing(
            reqs, make_bundled_planner(Bundler(rch)), n_servers=8,
            cost_model=COST, arrival_rate=rate, rng=np.random.default_rng(8),
        )
        assert rnb.p95_latency < classic.p95_latency
        assert rnb.max_utilization < classic.max_utilization

"""The fast path is an implementation detail: results are bit-identical.

``fast_path=True`` switches the engine onto compiled placement tables,
chunked ``plan_batch`` planning and (when nothing can miss) counter-only
execution.  None of that may change a single number in the result —
these tests run both arms over the same configurations and require
equality of every aggregate.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.sim.config import ClientConfig, ClusterConfig, SimConfig
from repro.sim.engine import _TABLE_CACHE, build_cluster, run_simulation

CONFIGS = [
    pytest.param(dict(), dict(), id="defaults"),
    pytest.param(dict(replication=1), dict(), id="r1"),
    pytest.param(dict(), dict(hitchhiking=True), id="hitchhiking"),
    pytest.param(dict(), dict(single_item_rule=False), id="no-single-item-rule"),
    pytest.param(dict(memory_factor=1.5), dict(), id="limited-memory"),
    pytest.param(
        dict(memory_factor=1.5, lru_policy="priority"), dict(), id="priority-lru"
    ),
    pytest.param(dict(placement="multihash"), dict(), id="multihash"),
    pytest.param(
        dict(memory_factor=1.2), dict(limit_fraction=0.5), id="limit"
    ),
    pytest.param(dict(), dict(merge_window=3), id="merged"),
]


def _run(graph, cluster_kwargs, client_kwargs, fast_path):
    cluster_kwargs = {"n_servers": 8, "replication": 3, **cluster_kwargs}
    warmup = 50 if cluster_kwargs.get("memory_factor") else 0
    config = SimConfig(
        cluster=ClusterConfig(**cluster_kwargs),
        client=ClientConfig(mode="rnb", **client_kwargs),
        n_requests=120,
        warmup_requests=warmup,
        seed=2013,
        fast_path=fast_path,
        batch_size=32,
    )
    return run_simulation(graph, config)


@pytest.mark.parametrize("cluster_kwargs,client_kwargs", CONFIGS)
def test_fast_path_bit_identical(small_slashdot, cluster_kwargs, client_kwargs):
    slow = _run(small_slashdot, cluster_kwargs, client_kwargs, False)
    fast = _run(small_slashdot, cluster_kwargs, client_kwargs, True)
    assert dataclasses.asdict(fast.stats) == dataclasses.asdict(slow.stats)
    assert fast.txn_histogram == slow.txn_histogram
    assert fast.meta == slow.meta
    assert fast.n_original_requests == slow.n_original_requests


def test_batch_size_does_not_change_results(small_slashdot):
    results = [
        run_simulation(
            small_slashdot,
            SimConfig(
                cluster=ClusterConfig(n_servers=8, replication=3),
                client=ClientConfig(mode="rnb"),
                n_requests=100,
                warmup_requests=0,
                seed=2013,
                batch_size=batch_size,
            ),
        )
        for batch_size in (1, 7, 64, 1024)
    ]
    first = results[0]
    for other in results[1:]:
        assert dataclasses.asdict(other.stats) == dataclasses.asdict(first.stats)
        assert other.txn_histogram == first.txn_histogram


def test_compiled_table_cache_reused(small_slashdot):
    config = SimConfig(
        cluster=ClusterConfig(n_servers=8, replication=3),
        client=ClientConfig(mode="rnb"),
        n_requests=10,
        seed=2013,
    )
    _TABLE_CACHE.clear()
    first = build_cluster(config, small_slashdot.n_nodes)
    second = build_cluster(config, small_slashdot.n_nodes)
    assert first.placer is second.placer
    # a different memory factor shares the same placement table
    third = build_cluster(
        dataclasses.replace(
            config, cluster=ClusterConfig(n_servers=8, replication=3, memory_factor=1.5)
        ),
        small_slashdot.n_nodes,
    )
    assert third.placer is first.placer
    assert len(_TABLE_CACHE) == 1

"""Tests for parameter-grid sweeps."""

from __future__ import annotations

import pytest

from repro.sim.sweep import grid_points, sweep_grid


def multiply(a, b, scale=1):
    return a * b * scale


class TestGridPoints:
    def test_cartesian_product(self):
        pts = grid_points({"a": [1, 2], "b": [10, 20]})
        assert pts == [
            {"a": 1, "b": 10},
            {"a": 1, "b": 20},
            {"a": 2, "b": 10},
            {"a": 2, "b": 20},
        ]

    def test_empty_grid(self):
        assert grid_points({}) == [{}]

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            grid_points({"a": []})


class TestSweepGrid:
    def test_serial_results_in_order(self):
        out = sweep_grid(multiply, {"a": [1, 2], "b": [3]})
        assert out == [({"a": 1, "b": 3}, 3), ({"a": 2, "b": 3}, 6)]

    def test_common_kwargs(self):
        out = sweep_grid(multiply, {"a": [2], "b": [3]}, common={"scale": 10})
        assert out[0][1] == 60

    def test_parallel_matches_serial(self):
        grid = {"a": [1, 2, 3], "b": [4, 5]}
        serial = sweep_grid(multiply, grid)
        parallel = sweep_grid(multiply, grid, max_workers=2)
        assert serial == parallel

"""Validation tests for simulation configuration."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.config import ClientConfig, ClusterConfig, SimConfig


class TestClusterConfig:
    def test_defaults_valid(self):
        cfg = ClusterConfig(n_servers=16)
        assert cfg.replication == 1
        assert cfg.memory_factor is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_servers": 0},
            {"n_servers": 4, "replication": 5},
            {"n_servers": 4, "replication": 0},
            {"n_servers": 4, "placement": "bogus"},
            {"n_servers": 4, "memory_factor": 0.5},
            {"n_servers": 4, "vnodes": 0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            ClusterConfig(**kwargs)


class TestClientConfig:
    def test_defaults_valid(self):
        cfg = ClientConfig()
        assert cfg.mode == "rnb"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mode": "bogus"},
            {"tie_break": "bogus"},
            {"merge_window": 0},
            {"limit_fraction": 0.0},
            {"limit_fraction": 1.1},
            {"limit_fraction": 0.5, "merge_window": 2},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            ClientConfig(**kwargs)


class TestSimConfig:
    def base(self, **kwargs):
        defaults = dict(
            cluster=ClusterConfig(n_servers=16, replication=2),
            client=ClientConfig(),
            n_requests=10,
            warmup_requests=0,
        )
        defaults.update(kwargs)
        return SimConfig(**defaults)

    def test_valid(self):
        assert self.base().seed == 0

    def test_request_counts(self):
        with pytest.raises(ConfigurationError):
            self.base(n_requests=0)
        with pytest.raises(ConfigurationError):
            self.base(warmup_requests=-1)

    def test_noreplication_needs_r1(self):
        with pytest.raises(ConfigurationError):
            self.base(client=ClientConfig(mode="noreplication"))

    def test_fullreplication_divisibility(self):
        with pytest.raises(ConfigurationError):
            SimConfig(
                cluster=ClusterConfig(n_servers=10, replication=3),
                client=ClientConfig(mode="fullreplication"),
                n_requests=10,
            )

    def test_fullreplication_needs_unlimited_memory(self):
        with pytest.raises(ConfigurationError):
            SimConfig(
                cluster=ClusterConfig(n_servers=8, replication=2, memory_factor=2.0),
                client=ClientConfig(mode="fullreplication"),
                n_requests=10,
            )

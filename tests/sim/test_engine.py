"""Integration tests for the full simulation engine."""

from __future__ import annotations

import pytest

from repro.analysis.calibration import DEFAULT_MEMCACHED_MODEL
from repro.sim.config import ClientConfig, ClusterConfig, SimConfig
from repro.sim.engine import build_client, build_cluster, run_simulation


def cfg(mode="rnb", n_servers=8, replication=2, memory=None, **kwargs):
    client_kwargs = {
        k: kwargs.pop(k)
        for k in ("hitchhiking", "merge_window", "limit_fraction", "tie_break")
        if k in kwargs
    }
    return SimConfig(
        cluster=ClusterConfig(
            n_servers=n_servers, replication=replication, memory_factor=memory
        ),
        client=ClientConfig(mode=mode, **client_kwargs),
        n_requests=kwargs.pop("n_requests", 200),
        warmup_requests=kwargs.pop("warmup", 100),
        seed=kwargs.pop("seed", 0),
    )


class TestRunSimulation:
    def test_basic_run(self, small_slashdot):
        res = run_simulation(small_slashdot, cfg())
        assert res.stats.requests == 200
        assert res.tpr > 0
        assert res.txn_histogram.total == res.stats.transactions

    def test_deterministic(self, small_slashdot):
        a = run_simulation(small_slashdot, cfg(seed=42))
        b = run_simulation(small_slashdot, cfg(seed=42))
        assert a.tpr == b.tpr
        assert a.stats.transactions == b.stats.transactions

    def test_seed_changes_results(self, small_slashdot):
        a = run_simulation(small_slashdot, cfg(seed=1, n_requests=300))
        b = run_simulation(small_slashdot, cfg(seed=2, n_requests=300))
        assert a.stats.transactions != b.stats.transactions

    def test_replication_reduces_tpr(self, small_slashdot):
        base = run_simulation(small_slashdot, cfg(replication=1, n_requests=400))
        rnb = run_simulation(small_slashdot, cfg(replication=4, n_requests=400))
        assert rnb.tpr < base.tpr

    def test_rnb_beats_noreplication(self, small_slashdot):
        nr = run_simulation(
            small_slashdot,
            cfg(mode="noreplication", replication=1, memory=1.0, n_requests=400),
        )
        rnb = run_simulation(
            small_slashdot, cfg(replication=3, memory=None, n_requests=400)
        )
        assert rnb.tpr < nr.tpr

    def test_merge_window_normalisation(self, small_slashdot):
        merged = run_simulation(
            small_slashdot,
            cfg(mode="noreplication", replication=1, memory=1.0, merge_window=2),
        )
        assert merged.n_original_requests == 2 * merged.stats.requests
        assert merged.tpr == merged.stats.transactions / merged.n_original_requests

    def test_merging_lowers_per_request_tpr(self, small_slashdot):
        single = run_simulation(
            small_slashdot,
            cfg(mode="noreplication", replication=1, memory=1.0, n_requests=400),
        )
        merged = run_simulation(
            small_slashdot,
            cfg(
                mode="noreplication",
                replication=1,
                memory=1.0,
                merge_window=2,
                n_requests=200,
            ),
        )
        assert merged.tpr < single.tpr

    def test_limit_lowers_tpr(self, small_slashdot):
        full = run_simulation(small_slashdot, cfg(replication=2, n_requests=300))
        lim = run_simulation(
            small_slashdot, cfg(replication=2, limit_fraction=0.5, n_requests=300)
        )
        assert lim.tpr < full.tpr

    def test_fullreplication_mode(self, small_slashdot):
        res = run_simulation(
            small_slashdot,
            cfg(mode="fullreplication", n_servers=8, replication=2, n_requests=300),
        )
        assert res.stats.misses == 0
        assert res.tpr > 0

    def test_throughput_positive(self, small_slashdot):
        res = run_simulation(small_slashdot, cfg())
        assert res.throughput(DEFAULT_MEMCACHED_MODEL) > 0

    def test_warmup_excluded_from_stats(self, small_slashdot):
        res = run_simulation(small_slashdot, cfg(n_requests=100, warmup=300))
        assert res.stats.requests == 100


class TestBuilders:
    def test_build_cluster_modes(self, small_slashdot):
        c = build_cluster(cfg(), 100)
        assert c.n_servers == 8
        c2 = build_cluster(cfg(mode="fullreplication"), 100)
        assert c2.placer.banks == 2

    def test_build_client_modes(self):
        for mode, repl, mem in (
            ("rnb", 2, None),
            ("noreplication", 1, 1.0),
            ("fullreplication", 2, None),
        ):
            config = cfg(mode=mode, replication=repl, memory=mem)
            cluster = build_cluster(config, 50)
            client = build_client(config, cluster)
            assert hasattr(client, "execute")


class TestSimResult:
    def test_to_dict_keys(self, small_slashdot):
        res = run_simulation(small_slashdot, cfg())
        d = res.to_dict()
        for key in ("tpr", "tprps", "misses", "mean_txn_size", "mode"):
            assert key in d

    def test_tprps(self, small_slashdot):
        res = run_simulation(small_slashdot, cfg(n_servers=8))
        assert res.tprps == pytest.approx(res.tpr / 8)

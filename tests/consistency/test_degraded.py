"""Quorum-gated degradation: REJECTED writes, distinguished-only reads."""

from __future__ import annotations

from tests.consistency.conftest import SimStack

from repro.consistency import (
    COMMITTED,
    REJECTED,
    QuorumWriter,
    VersionedReader,
)
from repro.obs import MetricsRegistry


class TestWriteGate:
    def test_rejected_write_touches_nothing(self):
        stack = SimStack()
        writer = QuorumWriter(stack.store, stack.placer, gate=lambda: False)
        outcome = writer.write(0, b"x")
        assert outcome.outcome == REJECTED
        assert outcome.stamp is None  # no stamp consumed
        assert outcome.acked == () and outcome.failed == ()
        assert not outcome.committed
        assert outcome.retryable
        # no replica took a stamp (pre-provisioned presence is unstamped)
        assert all(s is None for s in stack.stamps_of(0).values())

    def test_rejection_does_not_burn_the_clock(self):
        stack = SimStack()
        quorum = {"ok": False}
        writer = QuorumWriter(stack.store, stack.placer, gate=lambda: quorum["ok"])
        writer.write(0, b"x")
        writer.write(0, b"x")
        quorum["ok"] = True
        outcome = writer.write(0, b"x")
        assert outcome.outcome == COMMITTED
        # rejections consumed no counters: first real stamp is counter 1
        assert outcome.stamp.counter == 1

    def test_gate_open_writes_normally(self):
        stack = SimStack()
        writer = QuorumWriter(stack.store, stack.placer, gate=lambda: True)
        outcome = writer.write(0, b"x")
        assert outcome.outcome == COMMITTED
        assert len(stack.stamps_of(0)) == stack.placer.replication

    def test_rejections_are_counted(self):
        stack = SimStack()
        registry = MetricsRegistry()
        writer = QuorumWriter(
            stack.store, stack.placer, gate=lambda: False, metrics=registry
        )
        writer.write(0, b"x")
        series = registry.snapshot()["rnb_quorum_writes_total"]["series"]
        assert series['outcome="rejected"'] == 1


class TestReadGate:
    def seeded(self):
        stack = SimStack()
        writer = QuorumWriter(stack.store, stack.placer)
        outcome = writer.write(0, b"payload")
        assert outcome.outcome == COMMITTED
        return stack, outcome

    def test_degraded_read_is_distinguished_only(self):
        stack, written = self.seeded()
        reader = VersionedReader(stack.store, stack.placer, gate=lambda: False)
        outcome = reader.read(0)
        assert outcome.degraded
        home = stack.placer.distinguished_for(0)
        assert outcome.source == home
        assert outcome.newest == (home,)
        assert outcome.stamp == written.stamp
        assert outcome.payload == b""  # sim store is presence-only

    def test_degraded_read_never_repairs(self):
        stack, written = self.seeded()
        # seed divergence: wipe a non-distinguished replica's copy
        home = stack.placer.distinguished_for(0)
        other = next(s for s in stack.placer.servers_for(0) if s != home)
        stack.store.delete(other, 0)
        reader = VersionedReader(stack.store, stack.placer, gate=lambda: False)
        outcome = reader.read(0)
        assert outcome.degraded
        assert outcome.repaired == () and outcome.queued == 0
        assert other not in stack.stamps_of(0)  # still missing afterwards

    def test_degraded_read_counted(self):
        stack, _ = self.seeded()
        registry = MetricsRegistry()
        reader = VersionedReader(
            stack.store, stack.placer, gate=lambda: False, metrics=registry
        )
        reader.read(0)
        snap = registry.snapshot()["rnb_reads_degraded_total"]["series"]
        assert sum(snap.values()) == 1

    def test_degraded_read_miss_and_dead_home(self):
        stack, _ = self.seeded()
        home = stack.placer.distinguished_for(0)
        reader = VersionedReader(stack.store, stack.placer, gate=lambda: False)
        stack.store.delete(home, 0)
        miss = reader.read(0)
        assert miss.degraded and not miss.found and miss.missing == (home,)
        stack.kill(home)
        dead = reader.read(0)
        assert dead.degraded and dead.dead == (home,)

    def test_gate_reopens_full_read(self):
        stack, _ = self.seeded()
        quorum = {"ok": False}
        reader = VersionedReader(
            stack.store, stack.placer, gate=lambda: quorum["ok"]
        )
        assert reader.read(0).degraded
        quorum["ok"] = True
        outcome = reader.read(0)
        assert not outcome.degraded
        assert len(outcome.newest) == stack.placer.replication

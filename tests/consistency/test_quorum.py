"""QuorumWriter: W policies, outcomes, health plumbing, metrics."""

from __future__ import annotations

import pytest

from repro.consistency import (
    COMMITTED,
    FAILED,
    PARTIAL,
    QuorumWriter,
    VersionClock,
    resolve_w,
)
from repro.errors import ConfigurationError
from repro.faults.health import HealthTracker
from repro.obs import MetricsRegistry

from tests.consistency.conftest import BusyStore, SimStack


class TestResolveW:
    def test_policies(self):
        assert resolve_w("majority", 3) == 2
        assert resolve_w("majority", 4) == 3
        assert resolve_w("all", 3) == 3
        assert resolve_w("leader", 3) == 1

    def test_int_clamped(self):
        assert resolve_w(2, 3) == 2
        assert resolve_w(0, 3) == 1
        assert resolve_w(99, 3) == 3

    @pytest.mark.parametrize("bad", [True, False, "most", 1.5, None])
    def test_invalid_policy_raises(self, bad):
        with pytest.raises(ConfigurationError):
            resolve_w(bad, 3)

    def test_invalid_replication_raises(self):
        with pytest.raises(ConfigurationError):
            resolve_w("majority", 0)


class TestWrite:
    def test_healthy_fleet_commits_everywhere(self):
        stack = SimStack()
        writer = QuorumWriter(stack.store, stack.placer)
        outcome = writer.write(0)
        assert outcome.outcome == COMMITTED
        assert not outcome.divergent
        assert set(outcome.acked) == set(stack.placer.servers_for(0))
        # every replica carries the stamp
        assert set(stack.stamps_of(0).values()) == {outcome.stamp}

    def test_stamps_are_monotonic(self):
        stack = SimStack()
        writer = QuorumWriter(stack.store, stack.placer)
        first = writer.write(0).stamp
        second = writer.write(0).stamp
        assert second > first

    def test_one_dead_replica_is_partial_at_majority(self):
        stack = SimStack()
        health = HealthTracker(stack.placer.n_servers, dead_after=2)
        writer = QuorumWriter(stack.store, stack.placer, health=health)
        victim = stack.placer.servers_for(0)[-1]
        stack.kill(victim)
        outcome = writer.write(0)
        assert outcome.outcome == PARTIAL
        assert outcome.committed and outcome.divergent
        assert outcome.failed == (victim,)
        assert health.state(victim) == "suspected"  # one strike so far

    def test_below_quorum_fails(self):
        stack = SimStack()
        writer = QuorumWriter(stack.store, stack.placer, w="majority")
        replicas = stack.placer.servers_for(0)
        for sid in replicas[1:]:  # leave only the distinguished copy
            stack.kill(sid)
        outcome = writer.write(0)
        assert outcome.outcome == FAILED
        assert not outcome.committed
        # one ack still landed, so divergence was seeded regardless
        assert outcome.divergent

    def test_leader_mode_requires_distinguished_ack(self):
        stack = SimStack()
        writer = QuorumWriter(stack.store, stack.placer, w="leader")
        stack.kill(stack.placer.distinguished_for(0))
        outcome = writer.write(0)
        # every other replica acked, but the copy of record missed
        assert len(outcome.acked) == len(stack.placer.servers_for(0)) - 1
        assert outcome.outcome == FAILED

    def test_all_mode_never_commits_partially(self):
        stack = SimStack()
        writer = QuorumWriter(stack.store, stack.placer, w="all")
        stack.kill(stack.placer.servers_for(0)[-1])
        assert writer.write(0).outcome == FAILED

    def test_busy_replica_misses_ack_without_health_strike(self):
        stack = SimStack()
        health = HealthTracker(stack.placer.n_servers, dead_after=2)
        busy_sid = stack.placer.servers_for(0)[-1]
        store = BusyStore(stack.store, busy=[busy_sid])
        writer = QuorumWriter(store, stack.placer, health=health)
        outcome = writer.write(0)
        assert outcome.outcome == PARTIAL
        assert outcome.failed == (busy_sid,)
        assert health.state(busy_sid) == "alive"  # shed, not sick

    def test_invalid_w_rejected_at_construction(self):
        stack = SimStack()
        with pytest.raises(ConfigurationError):
            QuorumWriter(stack.store, stack.placer, w="everyone")

    def test_write_many(self):
        stack = SimStack()
        writer = QuorumWriter(stack.store, stack.placer)
        outcomes = writer.write_many(range(5))
        assert [o.outcome for o in outcomes] == [COMMITTED] * 5


class TestMetrics:
    def test_outcomes_and_acks_are_counted(self):
        stack = SimStack()
        registry = MetricsRegistry()
        writer = QuorumWriter(stack.store, stack.placer, metrics=registry)
        writer.write(0)
        stack.kill(stack.placer.servers_for(1)[-1])
        writer.write(1)
        snap = registry.snapshot()
        series = snap["rnb_quorum_writes_total"]["series"]
        assert series['outcome="committed"'] == 1
        assert series['outcome="partial"'] == 1
        acks = snap["rnb_quorum_acks"]["series"][""]
        assert acks["count"] == 2


class TestClockIntegration:
    def test_shared_clock_orders_two_writers(self):
        stack = SimStack()
        a = QuorumWriter(stack.store, stack.placer, clock=VersionClock(writer=1))
        b = QuorumWriter(stack.store, stack.placer, clock=VersionClock(writer=2))
        first = a.write(0).stamp
        # writer b has not observed a's stamp: equal counters, writer
        # tiebreak still totally orders them
        second = b.write(0).stamp
        assert first != second
        assert (second > first) == (second.writer > first.writer)

"""History checker: session guarantees, forged violations, counter-examples."""

from __future__ import annotations

from repro.consistency import (
    CONVERGENCE,
    MONOTONIC_READS,
    READ_YOUR_WRITES,
    HistoryRecorder,
    Op,
    check_history,
)
from repro.consistency.version import VersionStamp
from repro.obs import MetricsRegistry


def stamp(counter: int, *, epoch: int = 0, writer: int = 1) -> VersionStamp:
    return VersionStamp(epoch=epoch, counter=counter, writer=writer)


class TestRecorder:
    def test_clock_is_monotone_and_ops_are_closed(self):
        rec = HistoryRecorder()
        w = rec.record_write("s", "k", ok=True, stamp=stamp(1))
        r = rec.record_read("s", "k", ok=True, stamp=stamp(1))
        assert w.invoked < w.completed < r.invoked < r.completed
        assert [op.kind for op in rec.ops] == ["write", "read"]

    def test_begin_complete_models_real_overlap(self):
        rec = HistoryRecorder()
        t1 = rec.begin("a", "write", "k")
        t2 = rec.begin("b", "read", "k")
        w = rec.complete(t1, ok=True, stamp=stamp(1))
        r = rec.complete(t2, ok=True, stamp=None)
        # overlapping: neither happens-before the other
        assert not (w.completed <= r.invoked or r.completed <= w.invoked)

    def test_metrics_count_ops(self):
        registry = MetricsRegistry()
        rec = HistoryRecorder(metrics=registry)
        rec.record_write("s", "k", ok=True, stamp=stamp(1))
        rec.record_read("s", "k", ok=False)
        series = registry.snapshot()["rnb_history_ops_total"]["series"]
        assert series['kind="write"'] == 1
        assert series['kind="read"'] == 1


class TestCheckHistory:
    def consistent_history(self):
        rec = HistoryRecorder()
        rec.record_write("s1", "k", ok=True, stamp=stamp(1))
        rec.record_read("s1", "k", ok=True, stamp=stamp(1))
        rec.record_write("s1", "k", ok=True, stamp=stamp(2))
        rec.record_read("s1", "k", ok=True, stamp=stamp(2), phase="final")
        return rec.ops

    def test_consistent_history_passes(self):
        report = check_history(self.consistent_history())
        assert report.consistent
        assert report.n_writes_acked == 2
        assert report.n_final_reads == 1
        assert "consistent" in report.render()

    def test_forged_stale_read_is_caught_with_counter_example(self):
        # the acceptance forgery: a session reads an *older* stamp after
        # its own acknowledged write completed
        rec = HistoryRecorder()
        rec.record_write("s1", "k", ok=True, stamp=stamp(1))
        rec.record_write("s1", "k", ok=True, stamp=stamp(5))
        rec.record_read("s1", "k", ok=True, stamp=stamp(1))  # forged stale
        report = check_history(rec.ops)
        assert not report.consistent
        kinds = {v.kind for v in report.violations}
        assert READ_YOUR_WRITES in kinds
        rendered = report.render()
        # the minimal counter-example names both ops of the broken pair
        assert "read_your_writes" in rendered
        assert "earlier:" in rendered and "later:" in rendered
        assert "write('k')" in rendered and "read('k')" in rendered

    def test_monotonic_reads_regression_is_caught(self):
        rec = HistoryRecorder()
        # a *different* session wrote; the reader never wrote at all
        rec.record_write("writer", "k", ok=True, stamp=stamp(3))
        rec.record_read("reader", "k", ok=True, stamp=stamp(3))
        rec.record_read("reader", "k", ok=True, stamp=stamp(2))  # regression
        report = check_history(rec.ops)
        assert [v.kind for v in report.violations] == [MONOTONIC_READS]

    def test_misses_are_exempt_cache_semantics(self):
        rec = HistoryRecorder()
        rec.record_write("s1", "k", ok=True, stamp=stamp(1))
        rec.record_read("s1", "k", ok=False)  # evicted: a miss, not staleness
        assert check_history(rec.ops).consistent

    def test_rejected_writes_constrain_nothing(self):
        rec = HistoryRecorder()
        rec.record_write("s1", "k", ok=False)  # REJECTED / FAILED: no ack
        rec.record_read("s1", "k", ok=False)
        report = check_history(rec.ops)
        assert report.consistent
        assert report.n_writes_acked == 0

    def test_convergence_missing_final_read(self):
        rec = HistoryRecorder()
        rec.record_write("s1", "k", ok=True, stamp=stamp(4))
        rec.record_read("aud", "k", ok=False, phase="final")
        report = check_history(rec.ops)
        assert [v.kind for v in report.violations] == [CONVERGENCE]
        assert "found nothing" in report.render()

    def test_convergence_stale_final_read(self):
        rec = HistoryRecorder()
        rec.record_write("s1", "k", ok=True, stamp=stamp(4))
        rec.record_read("aud", "k", ok=True, stamp=stamp(3), phase="final")
        report = check_history(rec.ops)
        assert [v.kind for v in report.violations] == [CONVERGENCE]

    def test_final_read_of_never_written_key_is_fine(self):
        rec = HistoryRecorder()
        rec.record_read("aud", "ghost", ok=False, phase="final")
        assert check_history(rec.ops).consistent

    def test_overlapping_ops_constrain_nothing(self):
        # write and read genuinely concurrent: either order is legal
        ops = [
            Op("s", "write", "k", invoked=1, completed=4, ok=True, stamp=stamp(9)),
            Op("s", "read", "k", invoked=2, completed=3, ok=True, stamp=stamp(1)),
        ]
        assert check_history(ops).consistent

    def test_epoch_dominates_counter_in_stamp_order(self):
        rec = HistoryRecorder()
        rec.record_write("s1", "k", ok=True, stamp=stamp(9, epoch=0))
        rec.record_read("s1", "k", ok=True, stamp=stamp(1, epoch=1))
        assert check_history(rec.ops).consistent  # newer epoch wins

    def test_violations_counted_into_metrics(self):
        registry = MetricsRegistry()
        rec = HistoryRecorder()
        rec.record_write("s1", "k", ok=True, stamp=stamp(5))
        rec.record_read("s1", "k", ok=True, stamp=stamp(1))
        check_history(rec.ops, metrics=registry)
        series = registry.snapshot()["rnb_history_violations_total"]["series"]
        assert series[f'kind="{READ_YOUR_WRITES}"'] == 1

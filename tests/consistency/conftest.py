"""Shared simulated-cluster stack for the consistency suite."""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.cluster.placement import make_placer
from repro.consistency import ClusterStore
from repro.faults.injector import DynamicFaultInjector


class SimStack:
    """A faultable simulated fleet with its versioned replica store."""

    def __init__(self, n_servers=6, replication=3, n_items=40):
        self.placer = make_placer("rch", n_servers, replication, seed=0, vnodes=32)
        self.cluster = Cluster(self.placer, range(n_items), memory_factor=None)
        self.injector = DynamicFaultInjector()
        self.cluster.attach_injector(self.injector)
        self.store = ClusterStore(self.cluster, self.placer)
        self.n_items = n_items

    def kill(self, sid: int, *, wipe: bool = True) -> None:
        self.injector.kill(sid)
        if wipe:
            self.cluster.wipe_server(sid)

    def restore(self, sid: int) -> None:
        self.injector.restore(sid)

    def stamps_of(self, key):
        """``sid -> stamp`` over the key's replica set (raw access)."""
        return {
            sid: self.cluster.servers[sid].stamps.get(key)
            for sid in self.placer.servers_for(key)
            if key in self.cluster.servers[sid].store
        }


class BusyStore:
    """Replica-store wrapper that makes chosen servers shed writes."""

    def __init__(self, inner, busy=()):
        self.inner = inner
        self.busy = set(busy)

    def read(self, sid, key):
        return self.inner.read(sid, key)

    def write(self, sid, key, payload, stamp):
        if sid in self.busy:
            from repro.errors import ServerBusy

            raise ServerBusy(f"server {sid} shedding")
        self.inner.write(sid, key, payload, stamp)

    def delete(self, sid, key):
        self.inner.delete(sid, key)

    def local_keys(self, sid):
        return self.inner.local_keys(sid)

"""VersionedReader: divergence classification and both repair modes."""

from __future__ import annotations

from repro.consistency import (
    QuorumWriter,
    VersionClock,
    VersionedReader,
    make_repair_executor,
)
from repro.faults.health import HealthTracker
from repro.obs import MetricsRegistry

from tests.consistency.conftest import SimStack


def bump_one_replica(stack, writer, key, sid):
    """Install a strictly newer stamp on ``sid`` only (others go stale)."""
    stamp = writer.clock.next_stamp()
    stack.store.write(sid, key, b"", stamp)
    return stamp


class TestClassification:
    def test_uniform_replicas_not_divergent(self):
        stack = SimStack()
        writer = QuorumWriter(stack.store, stack.placer)
        writer.write(0)
        outcome = VersionedReader(stack.store, stack.placer).read(0)
        assert outcome.found and not outcome.divergent
        assert set(outcome.newest) == set(stack.placer.servers_for(0))
        assert outcome.stale == outcome.missing == outcome.dead == ()

    def test_stale_replicas_detected(self):
        stack = SimStack()
        writer = QuorumWriter(stack.store, stack.placer)
        writer.write(0)
        home = stack.placer.distinguished_for(0)
        stamp = bump_one_replica(stack, writer, 0, home)
        outcome = VersionedReader(stack.store, stack.placer).read(0, repair=False)
        assert outcome.divergent
        assert outcome.stamp == stamp and outcome.source == home
        assert set(outcome.stale) == set(stack.placer.servers_for(0)) - {home}

    def test_missing_replica_detected(self):
        stack = SimStack()
        writer = QuorumWriter(stack.store, stack.placer)
        writer.write(0)
        victim = stack.placer.servers_for(0)[-1]
        stack.kill(victim)  # crash loses its memory
        stack.restore(victim)  # back alive, but empty
        outcome = VersionedReader(stack.store, stack.placer).read(0, repair=False)
        assert outcome.divergent
        assert outcome.missing == (victim,)

    def test_dead_replica_is_not_divergence(self):
        stack = SimStack()
        writer = QuorumWriter(stack.store, stack.placer)
        writer.write(0)
        victim = stack.placer.servers_for(0)[-1]
        stack.kill(victim, wipe=False)
        health = HealthTracker(stack.placer.n_servers, dead_after=2)
        reader = VersionedReader(stack.store, stack.placer, health=health)
        outcome = reader.read(0)
        assert outcome.dead == (victim,)
        assert not outcome.divergent  # nothing known about its copy
        assert health.state(victim) == "suspected"

    def test_dead_distinguished_still_serves_newest(self):
        stack = SimStack()
        writer = QuorumWriter(stack.store, stack.placer)
        committed = writer.write(0)
        home = stack.placer.distinguished_for(0)
        stack.kill(home, wipe=False)
        outcome = VersionedReader(stack.store, stack.placer).read(0)
        assert outcome.found
        assert outcome.stamp == committed.stamp
        assert outcome.source != home and outcome.dead == (home,)

    def test_wholly_absent_key(self):
        stack = SimStack()
        outcome = VersionedReader(stack.store, stack.placer).read(999)
        assert not outcome.found and not outcome.divergent
        assert set(outcome.missing) == set(stack.placer.servers_for(999))

    def test_clock_observes_read_stamps(self):
        stack = SimStack()
        writer = QuorumWriter(stack.store, stack.placer, clock=VersionClock(writer=1))
        for _ in range(5):
            writer.write(0)
        clock = VersionClock(writer=2)
        VersionedReader(stack.store, stack.placer, clock=clock).read(0)
        # Lamport receive: the reader's clock advanced past the winning
        # stamp's counter, so its next write supersedes what it read
        assert clock.counter == 5


class TestInlineRepair:
    def test_stale_and_missing_converge_inline(self):
        stack = SimStack()
        writer = QuorumWriter(stack.store, stack.placer)
        writer.write(0)
        replicas = stack.placer.servers_for(0)
        missing_sid = replicas[-1]
        stack.kill(missing_sid)
        stack.restore(missing_sid)
        stamp = bump_one_replica(stack, writer, 0, replicas[0])
        outcome = VersionedReader(stack.store, stack.placer).read(0)
        assert set(outcome.repaired) == set(replicas) - {replicas[0]}
        assert set(stack.stamps_of(0).values()) == {stamp}
        # second read sees a converged replica set
        assert not VersionedReader(stack.store, stack.placer).read(0).divergent

    def test_repair_false_leaves_divergence(self):
        stack = SimStack()
        writer = QuorumWriter(stack.store, stack.placer)
        writer.write(0)
        bump_one_replica(stack, writer, 0, stack.placer.distinguished_for(0))
        VersionedReader(stack.store, stack.placer).read(0, repair=False)
        assert len(set(stack.stamps_of(0).values())) == 2

    def test_metrics_count_divergences_and_repairs(self):
        stack = SimStack()
        registry = MetricsRegistry()
        writer = QuorumWriter(stack.store, stack.placer)
        writer.write(0)
        bump_one_replica(stack, writer, 0, stack.placer.distinguished_for(0))
        VersionedReader(stack.store, stack.placer, metrics=registry).read(0)
        series = registry.snapshot()["rnb_divergences_total"]["series"]
        assert series['kind="stale"'] == 2
        repairs = registry.snapshot()["rnb_divergence_repairs_total"]["series"]
        assert repairs['mode="inline"'] == 2


class TestThrottledRepair:
    def test_repairs_queue_and_drain_at_budget(self):
        stack = SimStack()
        writer = QuorumWriter(stack.store, stack.placer)
        keys = [0, 1, 2]
        for key in keys:
            writer.write(key)
            bump_one_replica(stack, writer, key, stack.placer.distinguished_for(key))
        executor = make_repair_executor(stack.store)
        reader = VersionedReader(stack.store, stack.placer, executor=executor)
        queued = sum(reader.read(key).queued for key in keys)
        assert queued == 6  # two stale replicas per key
        assert executor.pending() == 6
        # nothing repaired until the budget is spent
        assert any(len(set(stack.stamps_of(k).values())) > 1 for k in keys)
        steps = 0
        while executor.pending():
            executor.step(1, clock=steps)
            steps += 1
        assert steps == 6  # one copy per unit of budget
        for key in keys:
            assert len(set(stack.stamps_of(key).values())) == 1

    def test_drain_time_reread_installs_latest(self):
        """A write that lands while the op is queued wins (newest-wins)."""
        stack = SimStack()
        writer = QuorumWriter(stack.store, stack.placer)
        writer.write(0)
        home = stack.placer.distinguished_for(0)
        bump_one_replica(stack, writer, 0, home)
        executor = make_repair_executor(stack.store)
        VersionedReader(stack.store, stack.placer, executor=executor).read(0)
        # a later write supersedes the version the repair was queued for
        final = bump_one_replica(stack, writer, 0, home)
        executor.drain()
        assert set(stack.stamps_of(0).values()) == {final}

    def test_queued_mode_counts_metrics(self):
        stack = SimStack()
        registry = MetricsRegistry()
        writer = QuorumWriter(stack.store, stack.placer)
        writer.write(0)
        bump_one_replica(stack, writer, 0, stack.placer.distinguished_for(0))
        executor = make_repair_executor(stack.store, metrics=registry)
        VersionedReader(
            stack.store, stack.placer, metrics=registry, executor=executor
        ).read(0)
        series = registry.snapshot()["rnb_divergence_repairs_total"]["series"]
        assert series['mode="queued"'] == 2

"""Version stamps: total order, tokens, clock rules, wire envelope."""

from __future__ import annotations

import pytest

from repro.consistency.version import (
    MAGIC,
    VersionClock,
    VersionStamp,
    decode_versioned,
    encode_versioned,
    newer,
    parse_token,
)
from repro.errors import ProtocolError


class TestOrdering:
    def test_lexicographic_epoch_counter_writer(self):
        assert VersionStamp(1, 0, 0) > VersionStamp(0, 99, 99)
        assert VersionStamp(0, 2, 0) > VersionStamp(0, 1, 99)
        assert VersionStamp(0, 1, 2) > VersionStamp(0, 1, 1)

    def test_equal_stamps_compare_equal(self):
        assert VersionStamp(1, 2, 3) == VersionStamp(1, 2, 3)

    def test_newer_treats_none_as_oldest(self):
        stamp = VersionStamp(0, 1, 0)
        assert newer(stamp, None)
        assert not newer(None, stamp)
        assert not newer(None, None)
        assert not newer(stamp, stamp)


class TestToken:
    def test_roundtrip(self):
        stamp = VersionStamp(3, 41, 7)
        assert stamp.token() == "3.41.7"
        assert parse_token(stamp.token()) == stamp

    def test_dash_means_unversioned(self):
        assert parse_token("-") is None

    @pytest.mark.parametrize("bad", ["", "1.2", "1.2.3.4", "a.b.c"])
    def test_malformed_raises(self, bad):
        with pytest.raises(ProtocolError):
            parse_token(bad)


class TestClock:
    def test_send_increments(self):
        clock = VersionClock(writer=5)
        first, second = clock.next_stamp(), clock.next_stamp()
        assert second > first
        assert first.writer == second.writer == 5

    def test_receive_advances_past_observed(self):
        clock = VersionClock(writer=1)
        clock.observe(VersionStamp(0, 40, 2))
        assert clock.next_stamp() > VersionStamp(0, 40, 2)

    def test_observe_none_and_older_are_no_ops(self):
        clock = VersionClock()
        clock.observe(VersionStamp(0, 9, 0))
        clock.observe(None)
        clock.observe(VersionStamp(0, 3, 0))
        assert clock.counter == 9

    def test_epoch_fn_rides_membership(self):
        epoch = {"now": 0}
        clock = VersionClock(writer=1, epoch_fn=lambda: epoch["now"])
        before = clock.next_stamp()
        epoch["now"] = 2
        after = clock.next_stamp()
        assert before.epoch == 0 and after.epoch == 2
        assert after > before


class TestEnvelope:
    def test_roundtrip(self):
        stamp = VersionStamp(1, 2, 3)
        data = encode_versioned(b"payload bytes", stamp)
        assert data.startswith(MAGIC)
        assert decode_versioned(data) == (stamp, b"payload bytes")

    def test_empty_payload(self):
        stamp = VersionStamp(0, 1, 0)
        assert decode_versioned(encode_versioned(b"", stamp)) == (stamp, b"")

    def test_unversioned_passthrough(self):
        assert decode_versioned(b"legacy value") == (None, b"legacy value")
        assert decode_versioned(None) == (None, None)

    def test_payload_may_contain_spaces_and_magic(self):
        stamp = VersionStamp(0, 7, 1)
        payload = b"a b c " + MAGIC + b"0 0 0 nested"
        assert decode_versioned(encode_versioned(payload, stamp)) == (stamp, payload)

    def test_corrupt_header_degrades_to_unversioned(self):
        assert decode_versioned(MAGIC + b"x y z rest") == (None, MAGIC + b"x y z rest")
        assert decode_versioned(MAGIC + b"1 2") == (None, MAGIC + b"1 2")

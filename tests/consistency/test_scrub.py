"""AntiEntropyScrubber: digest pruning, reconciliation, convergence."""

from __future__ import annotations

import pytest

from repro.consistency import AntiEntropyScrubber, QuorumWriter
from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry

from tests.consistency.conftest import SimStack


def provision(stack):
    """Version the whole keyspace with one quorum write per item."""
    writer = QuorumWriter(stack.store, stack.placer)
    for key in range(stack.n_items):
        writer.write(key)
    return writer


class TestCleanFleet:
    def test_converged_fleet_scrubs_clean_in_one_cycle(self):
        stack = SimStack()
        provision(stack)
        scrubber = AntiEntropyScrubber(stack.store, stack.placer, seed=1)
        reports = scrubber.scrub()
        assert len(reports) == 1 and reports[0].clean
        assert reports[0].keys_walked == 0
        assert reports[0].buckets_pruned == reports[0].buckets_compared

    def test_no_divergent_keys(self):
        stack = SimStack()
        provision(stack)
        scrubber = AntiEntropyScrubber(stack.store, stack.placer)
        assert scrubber.divergent_keys() == []


class TestConvergence:
    def test_stale_replicas_converge(self):
        stack = SimStack()
        writer = provision(stack)
        key = 5
        stamp = writer.clock.next_stamp()
        stack.store.write(stack.placer.distinguished_for(key), key, b"", stamp)
        scrubber = AntiEntropyScrubber(stack.store, stack.placer, seed=1)
        assert scrubber.divergent_keys() == [key]
        reports = scrubber.scrub()
        assert reports[0].divergent == (key,)
        assert reports[0].repairs_applied == len(stack.placer.servers_for(key)) - 1
        assert reports[-1].clean
        assert scrubber.divergent_keys() == []
        assert set(stack.stamps_of(key).values()) == {stamp}

    def test_wiped_server_is_repopulated(self):
        stack = SimStack()
        provision(stack)
        victim = 0
        stack.kill(victim)
        stack.restore(victim)
        scrubber = AntiEntropyScrubber(stack.store, stack.placer, seed=1)
        lost = [
            key
            for key in range(stack.n_items)
            if victim in stack.placer.servers_for(key)
        ]
        assert sorted(scrubber.divergent_keys(), key=repr) == sorted(lost, key=repr)
        scrubber.scrub()
        assert scrubber.divergent_keys() == []
        # the victim holds every one of its assignments again
        for key in lost:
            assert victim in stack.stamps_of(key)

    def test_dead_server_is_skipped_not_fatal(self):
        stack = SimStack()
        provision(stack)
        victim = 0
        stack.kill(victim, wipe=False)
        scrubber = AntiEntropyScrubber(stack.store, stack.placer, seed=1)
        reports = scrubber.scrub()
        assert reports[0].servers_dead == (victim,)
        assert reports[0].servers_scanned == stack.placer.n_servers - 1
        # the alive portion of the fleet is converged
        assert scrubber.divergent_keys() == []

    def test_pruning_skips_agreeing_buckets(self):
        stack = SimStack(n_items=60)
        writer = provision(stack)
        stack.store.write(
            stack.placer.distinguished_for(7), 7, b"", writer.clock.next_stamp()
        )
        scrubber = AntiEntropyScrubber(
            stack.store, stack.placer, n_buckets=128, seed=1
        )
        report = scrubber.scrub_cycle()
        assert report.buckets_pruned > 0
        # the digest tree narrowed the walk to a sliver of the keyspace
        assert 0 < report.keys_walked < stack.n_items


class TestUnversionedKeys:
    def test_scrub_cannot_propagate_unversioned_copies(self):
        """Presence-only copies carry no stamp, so there is no winner to
        install; the gate keeps reporting them until a versioned write
        lands (the chaos experiment provisions for exactly this reason)."""
        stack = SimStack()
        victim = 0
        stack.kill(victim)
        stack.restore(victim)
        scrubber = AntiEntropyScrubber(stack.store, stack.placer, seed=1)
        before = scrubber.divergent_keys()
        assert before  # wiped unversioned assignments are divergent
        scrubber.scrub(max_cycles=2)
        assert scrubber.divergent_keys() == before  # nothing to propagate
        # a quorum write versions the key and the next scrub converges it
        writer = QuorumWriter(stack.store, stack.placer)
        for key in before:
            writer.write(key)
        assert scrubber.divergent_keys() == []


class TestDeterminism:
    def test_identical_histories_scrub_identically(self):
        def build():
            stack = SimStack()
            writer = provision(stack)
            for key in (3, 11):
                stack.store.write(
                    stack.placer.distinguished_for(key),
                    key,
                    b"",
                    writer.clock.next_stamp(),
                )
            scrubber = AntiEntropyScrubber(stack.store, stack.placer, seed=7)
            return [
                (r.divergent, r.repairs_applied, r.buckets_pruned, r.keys_walked)
                for r in scrubber.scrub()
            ]

        assert build() == build()


class TestValidationAndMetrics:
    def test_bad_parameters_rejected(self):
        stack = SimStack()
        with pytest.raises(ConfigurationError):
            AntiEntropyScrubber(stack.store, stack.placer, n_buckets=0)
        scrubber = AntiEntropyScrubber(stack.store, stack.placer)
        with pytest.raises(ConfigurationError):
            scrubber.scrub(max_cycles=0)

    def test_progress_gauges(self):
        stack = SimStack()
        writer = provision(stack)
        stack.store.write(
            stack.placer.distinguished_for(2), 2, b"", writer.clock.next_stamp()
        )
        registry = MetricsRegistry()
        scrubber = AntiEntropyScrubber(
            stack.store, stack.placer, seed=1, metrics=registry
        )
        scrubber.scrub()
        snap = registry.snapshot()
        assert snap["rnb_scrub_cycles"]["series"][""] == 2.0
        assert snap["rnb_scrub_repairs"]["series"][""] == float(
            len(stack.placer.servers_for(2)) - 1
        )
        assert snap["rnb_scrub_divergent_last"]["series"][""] == 0.0
        assert snap["rnb_scrub_prune_ratio"]["series"][""] == 1.0

"""Tests for the bit-set greedy (partial) set cover.

Includes a hypothesis property comparing greedy against brute-force
optimal covers on small instances: greedy must always be *valid* and
within the classic H(d) approximation bound.
"""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.setcover import (
    cover_from_replica_lists,
    greedy_partial_cover,
    greedy_set_cover,
)
from repro.errors import CoverError
from repro.utils.bitset import from_indices


def masks(*index_lists):
    return {i: from_indices(ixs) for i, ixs in enumerate(index_lists)}


class TestFullCover:
    def test_single_set_covers_all(self):
        res = greedy_set_cover(masks([0, 1, 2]), 3)
        assert res.selected == (0,)
        assert res.is_full_cover()

    def test_two_disjoint_sets(self):
        res = greedy_set_cover(masks([0, 1], [2, 3]), 4)
        assert set(res.selected) == {0, 1}
        assert res.n_selected == 2

    def test_greedy_picks_biggest_first(self):
        res = greedy_set_cover(masks([0], [1, 2, 3], [0, 1]), 4)
        assert res.selected[0] == 1

    def test_assignment_partitions_covered(self):
        subsets = masks([0, 1, 2], [1, 2, 3], [3, 4])
        res = greedy_set_cover(subsets, 5)
        seen = 0
        for key, newly in res.assignment.items():
            assert newly & seen == 0  # disjoint
            assert newly & ~subsets[key] == 0  # subset of the chosen set
            seen |= newly
        assert seen == res.covered == (1 << 5) - 1

    def test_infeasible_raises(self):
        with pytest.raises(CoverError):
            greedy_set_cover(masks([0, 1]), 3)

    def test_empty_universe(self):
        res = greedy_set_cover({}, 0)
        assert res.n_selected == 0
        assert res.is_full_cover()


class TestTieBreaking:
    def test_lowest_is_deterministic(self):
        subsets = masks([0, 1], [0, 1], [2])
        res = greedy_set_cover(subsets, 3)
        assert res.selected[0] == 0  # ties resolve to the lowest key

    def test_random_needs_rng(self):
        with pytest.raises(ValueError):
            greedy_set_cover(masks([0]), 1, tie_break="random")

    def test_random_tie_break_varies(self):
        subsets = masks([0, 1], [0, 1])
        picks = set()
        for seed in range(20):
            rng = np.random.default_rng(seed)
            res = greedy_set_cover(subsets, 2, tie_break="random", rng=rng)
            picks.add(res.selected[0])
        assert picks == {0, 1}

    def test_callable_tie_break(self):
        subsets = masks([0, 1], [0, 1])
        res = greedy_set_cover(subsets, 2, tie_break=lambda c: c[-1])
        assert res.selected[0] == 1

    def test_unknown_tie_break(self):
        with pytest.raises(ValueError):
            greedy_set_cover(masks([0]), 1, tie_break="wat")


class TestPartialCover:
    def test_stops_at_required(self):
        # three sets with 2 elements each; required 2 => one pick suffices
        subsets = masks([0, 1], [2, 3], [4, 5])
        res = greedy_partial_cover(subsets, 6, 2)
        assert res.n_selected == 1
        assert res.n_covered == 2

    def test_overshoot_trimmed(self):
        subsets = masks([0, 1, 2, 3])
        res = greedy_partial_cover(subsets, 4, 3)
        assert res.n_covered == 3  # trimmed from the 4 available

    def test_required_zero(self):
        res = greedy_partial_cover(masks([0]), 1, 0)
        assert res.n_selected == 0

    def test_required_validation(self):
        with pytest.raises(ValueError):
            greedy_partial_cover(masks([0]), 1, 2)

    def test_infeasible_partial(self):
        with pytest.raises(CoverError):
            greedy_partial_cover(masks([0]), 3, 2)

    def test_partial_never_more_txns_than_full(self):
        subsets = masks([0, 1], [2], [3], [4, 5], [0, 5])
        full = greedy_set_cover(subsets, 6)
        for req in range(7):
            part = greedy_partial_cover(subsets, 6, req)
            assert part.n_selected <= full.n_selected


class TestCoverFromReplicaLists:
    def test_basic(self):
        res = cover_from_replica_lists([[0, 1], [1, 2], [2]])
        assert res.is_full_cover()

    def test_single_server_bundles_all(self):
        res = cover_from_replica_lists([[3, 0], [3, 1], [3, 2]])
        assert res.selected == (3,) or res.n_selected == 1

    def test_empty_replica_list_rejected(self):
        with pytest.raises(CoverError):
            cover_from_replica_lists([[0], []])

    def test_partial(self):
        res = cover_from_replica_lists([[0], [1], [2]], required=1)
        assert res.n_selected == 1


# ---------------------------------------------------------------------------
# properties
# ---------------------------------------------------------------------------


def brute_force_min_cover(subsets: dict, n_elements: int) -> int:
    """Smallest number of sets covering all elements (exponential search)."""
    universe = (1 << n_elements) - 1
    keys = list(subsets)
    for size in range(0, len(keys) + 1):
        for combo in itertools.combinations(keys, size):
            mask = 0
            for k in combo:
                mask |= subsets[k]
            if mask & universe == universe:
                return size
    raise AssertionError("infeasible instance reached brute force")


small_instances = st.integers(min_value=1, max_value=7).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.sets(st.integers(0, n - 1), min_size=0, max_size=n),
            min_size=1,
            max_size=6,
        ),
    )
)


@settings(max_examples=150, deadline=None)
@given(small_instances)
def test_greedy_validity_and_approximation(instance):
    n, sets_list = instance
    subsets = {i: from_indices(s) for i, s in enumerate(sets_list)}
    union = 0
    for m in subsets.values():
        union |= m
    if union != (1 << n) - 1:
        with pytest.raises(CoverError):
            greedy_set_cover(subsets, n)
        return
    res = greedy_set_cover(subsets, n)
    # validity
    assert res.covered == (1 << n) - 1
    for key, newly in res.assignment.items():
        assert newly & ~subsets[key] == 0
    # greedy approximation bound: H(max set size) * OPT
    opt = brute_force_min_cover(subsets, n)
    dmax = max(m.bit_count() for m in subsets.values())
    h = sum(1.0 / i for i in range(1, dmax + 1))
    assert res.n_selected <= math.ceil(h * opt) + 1e-9


@settings(max_examples=100, deadline=None)
@given(small_instances, st.data())
def test_partial_cover_properties(instance, data):
    n, sets_list = instance
    subsets = {i: from_indices(s) for i, s in enumerate(sets_list)}
    union = 0
    for m in subsets.values():
        union |= m
    feasible_max = union.bit_count()
    required = data.draw(st.integers(min_value=0, max_value=feasible_max))
    res = greedy_partial_cover(subsets, n, required)
    assert res.n_covered >= required
    # trimming keeps the overshoot bounded within the final pick
    if res.selected:
        last = res.selected[-1]
        assert res.n_covered - required < max(
            1, res.assignment[last].bit_count()
        )


@settings(max_examples=60, deadline=None)
@given(small_instances)
def test_greedy_monotone_in_sets(instance):
    """Adding another candidate set can never make greedy infeasible and
    never increases the bit-count of the universe covered requirement."""
    n, sets_list = instance
    subsets = {i: from_indices(s) for i, s in enumerate(sets_list)}
    union = 0
    for m in subsets.values():
        union |= m
    if union != (1 << n) - 1:
        return
    base = greedy_set_cover(subsets, n)
    extended = dict(subsets)
    extended[len(extended)] = (1 << n) - 1  # a universal set
    better = greedy_set_cover(extended, n)
    assert better.n_selected <= max(base.n_selected, 1)

"""Failover-aware covering: exclusion sets + degraded (partial) covers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.covers import exact_min_cover, first_fit_cover, random_cover
from repro.core.setcover import (
    cover_from_replica_lists,
    greedy_partial_cover,
    greedy_set_cover,
)
from repro.errors import CoverError

# element i is held by replica_lists[i]; servers 0..3
REPLICAS = [
    [0, 1],
    [0, 2],
    [1, 2],
    [2, 3],
    [3, 0],
]


def masks(replica_lists):
    subsets: dict[int, int] = {}
    for i, servers in enumerate(replica_lists):
        for s in servers:
            subsets[s] = subsets.get(s, 0) | (1 << i)
    return subsets


class TestGreedyExclusions:
    def test_excluded_never_chosen(self):
        result = cover_from_replica_lists(REPLICAS, exclude={0})
        assert 0 not in result.selected
        assert result.is_full_cover()
        assert result.missing_indices() == ()

    def test_residual_recovered_from_survivors(self):
        # without exclusions greedy picks server 2 (covers 1, 2, 3);
        # excluding it must re-cover those elements elsewhere
        baseline = cover_from_replica_lists(REPLICAS)
        assert 2 in baseline.selected
        result = cover_from_replica_lists(REPLICAS, exclude={2})
        assert 2 not in result.selected
        assert result.is_full_cover()

    def test_infeasible_raises_without_allow_partial(self):
        with pytest.raises(CoverError):
            cover_from_replica_lists(REPLICAS, exclude={0, 1, 2})

    def test_partial_reports_missing(self):
        # only server 3 survives: it holds elements 3 and 4
        result = cover_from_replica_lists(
            REPLICAS, exclude={0, 1, 2}, allow_partial=True
        )
        assert result.selected == (3,)
        assert not result.is_full_cover()
        assert result.missing_indices() == (0, 1, 2)
        assert result.n_selected == 1

    def test_item_with_no_replicas_allowed_when_partial(self):
        lists = [[0], [], [1]]
        with pytest.raises(CoverError):
            cover_from_replica_lists(lists)
        result = cover_from_replica_lists(lists, allow_partial=True)
        assert result.missing_indices() == (1,)

    def test_partial_cover_respects_required(self):
        subsets = masks(REPLICAS)
        result = greedy_partial_cover(
            subsets, 5, 2, exclude={2}, allow_partial=True
        )
        assert result.covered.bit_count() >= 2
        assert 2 not in result.selected

    def test_exclude_everything_partial_is_empty(self):
        result = greedy_set_cover(
            masks(REPLICAS), 5, exclude={0, 1, 2, 3}, allow_partial=True
        )
        assert result.selected == ()
        assert result.missing_indices() == (0, 1, 2, 3, 4)


class TestAlternativeCovers:
    def test_exact_min_cover_exclusions(self):
        result = exact_min_cover(masks(REPLICAS), 5, exclude={2})
        assert 2 not in result.selected
        assert result.is_full_cover()
        # optimality is preserved on the surviving instance
        unrestricted = exact_min_cover(masks(REPLICAS), 5)
        assert result.n_selected >= unrestricted.n_selected

    def test_exact_min_cover_infeasible(self):
        with pytest.raises(CoverError):
            exact_min_cover(masks(REPLICAS), 5, exclude={2, 3})

    def test_random_cover_exclusions(self, rng):
        for _ in range(10):
            result = random_cover(masks(REPLICAS), 5, rng=rng, exclude={1})
            assert 1 not in result.selected
            assert result.is_full_cover()

    def test_first_fit_exclusions_fall_back(self):
        result = first_fit_cover(REPLICAS, exclude={0})
        assert 0 not in result.selected
        assert result.is_full_cover()
        # element 0's distinguished copy (server 0) is down: it must be
        # served by its surviving replica, server 1
        assert result.assignment[1] & 1

    def test_first_fit_partial_when_all_replicas_down(self):
        lists = [[0, 1], [2]]
        result = first_fit_cover(lists, exclude={2})
        assert not result.is_full_cover()
        assert result.missing_indices() == (1,)


@given(
    n_servers=st.integers(2, 8),
    data=st.data(),
)
@settings(max_examples=80, deadline=None)
def test_property_survivor_cover_is_complete(n_servers, data):
    """If every element keeps >= 1 live replica, the cover stays full and
    never touches an excluded server."""
    n_elements = data.draw(st.integers(1, 10))
    replica_lists = [
        data.draw(
            st.lists(
                st.integers(0, n_servers - 1), min_size=1, max_size=3, unique=True
            )
        )
        for _ in range(n_elements)
    ]
    exclude = data.draw(
        st.sets(st.integers(0, n_servers - 1), max_size=n_servers - 1)
    )
    result = cover_from_replica_lists(
        replica_lists, exclude=exclude, allow_partial=True
    )
    assert not set(result.selected) & exclude
    expected_missing = tuple(
        i
        for i, servers in enumerate(replica_lists)
        if all(s in exclude for s in servers)
    )
    assert result.missing_indices() == expected_missing
    if not expected_missing:
        assert result.is_full_cover()

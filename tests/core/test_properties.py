"""End-to-end property tests: bundler and client invariants under
hypothesis-generated placements, requests and memory budgets.

These are the library's safety net: whatever the configuration, a plan
must be executable and a request must come back complete.
"""

from __future__ import annotations

import math
from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.cluster.placement import RandomPlacer
from repro.core.bundling import Bundler
from repro.core.client import RnBClient
from repro.types import Request

# (n_servers, replication, n_items, request item indices)
stack_params = st.integers(2, 12).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.integers(1, min(n, 4)),
        st.just(60),
        st.lists(st.integers(0, 59), min_size=1, max_size=25, unique=True),
    )
)


def build(n_servers, replication, n_items, *, memory_factor=None, **bundler_kwargs):
    placer = RandomPlacer(n_servers, replication, seed=17)
    cluster = Cluster(placer, range(n_items), memory_factor=memory_factor)
    client = RnBClient(cluster, Bundler(placer, **bundler_kwargs))
    return placer, cluster, client


@settings(max_examples=80, deadline=None)
@given(stack_params)
def test_plan_invariants(params):
    n, r, n_items, items = params
    placer, _, client = build(n, r, n_items)
    plan = client.bundler.plan(Request(items=tuple(items)))
    # every item planned exactly once, on one of its replica servers
    # (the single-item rule may redirect to the distinguished copy,
    # which is itself replica 0)
    planned = [i for t in plan.transactions for i in t.primary]
    assert sorted(planned) == sorted(items)
    for txn in plan.transactions:
        assert len(txn.primary) > 0
        for item in txn.primary:
            assert txn.server in placer.servers_for(item)
    # one transaction per server
    servers = [t.server for t in plan.transactions]
    assert len(servers) == len(set(servers))


@settings(max_examples=60, deadline=None)
@given(stack_params, st.sampled_from([None, 1.0, 1.5, 2.5]))
def test_client_always_completes(params, memory_factor):
    """All requested items arrive, misses or not, for every memory level."""
    n, r, n_items, items = params
    _, _, client = build(n, r, n_items, memory_factor=memory_factor, hitchhiking=True)
    res = client.execute(Request(items=tuple(items)))
    assert res.items_fetched == len(items)
    assert res.transactions == len(res.txn_sizes) == len(res.servers_contacted)
    assert res.transactions >= 1


@settings(max_examples=60, deadline=None)
@given(stack_params, st.floats(0.1, 1.0), st.sampled_from([None, 1.0, 2.0]))
def test_limit_client_fetches_enough(params, fraction, memory_factor):
    n, r, n_items, items = params
    _, _, client = build(n, r, n_items, memory_factor=memory_factor)
    request = Request(items=tuple(items), limit_fraction=fraction)
    res = client.execute(request)
    assert res.items_fetched >= request.required_items


def _optimal_cover_size(replica_lists, n_servers):
    """Exact minimum set cover by exhausting server subsets (n <= 12)."""
    masks = [0] * n_servers
    for idx, servers in enumerate(replica_lists):
        for s in servers:
            masks[s] |= 1 << idx
    full = (1 << len(replica_lists)) - 1
    for size in range(1, n_servers + 1):
        for combo in combinations(range(n_servers), size):
            covered = 0
            for s in combo:
                covered |= masks[s]
            if covered == full:
                return size
    return n_servers


@settings(max_examples=40, deadline=None)
@given(stack_params)
def test_more_replicas_never_hurt_planning(params):
    """Raising R (prefix-stable random placement) only *adds* replica
    options, so the OPTIMAL cover size is monotone non-increasing in R.
    The greedy planner's own count is **not** monotone — a larger ground
    set can bait greedy into a locally-better, globally-worse pick (a
    real counterexample: planned counts [7, 4, 2, 3] for R=1..4) — but
    it always stays within the classic (1 + ln m) factor of optimal."""
    n, r, n_items, items = params
    request = Request(items=tuple(items))
    opts = []
    greedy = []
    for rep in range(1, min(n, 4) + 1):
        placer = RandomPlacer(n, rep, seed=17)
        replica_lists = [placer.servers_for(i) for i in items]
        opts.append(_optimal_cover_size(replica_lists, n))
        greedy.append(Bundler(placer).plan(request).n_transactions)
    assert all(a >= b for a, b in zip(opts, opts[1:]))
    bound = 1 + math.log(len(items))
    for g, o in zip(greedy, opts):
        assert g <= o * bound


@settings(max_examples=40, deadline=None)
@given(stack_params)
def test_hitchhiking_invariant_under_random_config(params):
    """Hitchhikers ride only servers that logically hold them, and never
    change which primaries are planned."""
    n, r, n_items, items = params
    placer = RandomPlacer(n, r, seed=17)
    plain = Bundler(placer, hitchhiking=False).plan(Request(items=tuple(items)))
    hh = Bundler(placer, hitchhiking=True).plan(Request(items=tuple(items)))
    assert [t.primary for t in plain.transactions] == [
        t.primary for t in hh.transactions
    ]
    for txn in hh.transactions:
        for item in txn.hitchhikers:
            assert txn.server in placer.servers_for(item)
            assert item in items


@settings(max_examples=30, deadline=None)
@given(
    stack_params,
    st.integers(0, 2**31 - 1),
)
def test_execution_is_deterministic(params, seed):
    """Same cluster state + same request => identical result metrics."""
    n, r, n_items, items = params
    req = Request(items=tuple(items))
    results = []
    for _ in range(2):
        _, _, client = build(n, r, n_items, memory_factor=1.5)
        rng = np.random.default_rng(seed)
        warm = rng.choice(n_items, size=10, replace=False)
        client.execute(Request(items=tuple(int(i) for i in warm)))
        results.append(client.execute(req))
    a, b = results
    assert a.transactions == b.transactions
    assert a.misses == b.misses
    assert a.txn_sizes == b.txn_sizes

"""Tests for the Bundler: cover plans, single-item rule, hitchhiking."""

from __future__ import annotations

import pytest

from repro.core.bundling import Bundler
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.types import ReplicaSet, Request


class FixedPlacer:
    """Explicit item->servers table for precise assertions."""

    def __init__(self, table, n_servers):
        self.table = table
        self.n_servers = n_servers
        self.replication = max(len(v) for v in table.values())

    def servers_for(self, item):
        return self.table[item]

    def replicas_for(self, item):
        return ReplicaSet(item=item, servers=self.table[item])

    def distinguished_for(self, item):
        return self.table[item][0]


class TestPlanBasics:
    def test_empty_request(self):
        placer = RangedConsistentHashPlacer(4, 2)
        plan = Bundler(placer).plan(Request(items=()))
        assert plan.transactions == ()

    def test_plan_covers_all_items(self):
        placer = RangedConsistentHashPlacer(16, 3, vnodes=32)
        bundler = Bundler(placer)
        request = Request(items=tuple(range(40)))
        plan = bundler.plan(request)
        assert plan.planned_items() == set(range(40))

    def test_each_item_planned_once(self):
        placer = RangedConsistentHashPlacer(16, 3, vnodes=32)
        plan = Bundler(placer).plan(Request(items=tuple(range(40))))
        all_primary = [i for t in plan.transactions for i in t.primary]
        assert len(all_primary) == len(set(all_primary))

    def test_items_assigned_to_replica_servers(self):
        placer = RangedConsistentHashPlacer(16, 3, vnodes=32)
        plan = Bundler(placer, single_item_rule=False).plan(
            Request(items=tuple(range(30)))
        )
        for txn in plan.transactions:
            for item in txn.primary:
                assert txn.server in placer.servers_for(item)

    def test_one_transaction_per_server(self):
        placer = RangedConsistentHashPlacer(16, 3, vnodes=32)
        plan = Bundler(placer).plan(Request(items=tuple(range(50))))
        servers = [t.server for t in plan.transactions]
        assert len(servers) == len(set(servers))

    def test_fewer_transactions_with_more_replicas(self):
        r1 = RangedConsistentHashPlacer(16, 1, vnodes=32)
        r4 = RangedConsistentHashPlacer(16, 4, vnodes=32)
        items = tuple(range(100, 160))
        n1 = Bundler(r1).plan(Request(items=items)).n_transactions
        n4 = Bundler(r4).plan(Request(items=items)).n_transactions
        assert n4 < n1

    def test_deterministic_plans(self):
        placer = RangedConsistentHashPlacer(16, 3, vnodes=32)
        b = Bundler(placer)
        req = Request(items=tuple(range(25)))
        assert b.plan(req) == b.plan(req)


class TestSingleItemRule:
    def test_singleton_moves_to_distinguished(self):
        # item 0 can be fetched from server 2 (bundled with nothing) but
        # its distinguished copy is on server 9
        table = {
            0: (9, 2),
            1: (1, 3),
            2: (1, 4),
        }
        placer = FixedPlacer(table, 10)
        plan = Bundler(placer, single_item_rule=True).plan(Request(items=(0, 1, 2)))
        by_server = {t.server: t.primary for t in plan.transactions}
        assert by_server[1] == (1, 2)
        assert by_server.get(9) == (0,)

    def test_singletons_rebundle_on_shared_distinguished(self):
        table = {
            0: (5, 1),
            1: (5, 2),
            2: (3, 4),
            3: (3, 4),
        }
        placer = FixedPlacer(table, 6)
        plan = Bundler(placer, single_item_rule=True).plan(
            Request(items=(0, 1, 2, 3))
        )
        by_server = {t.server: set(t.primary) for t in plan.transactions}
        # 2,3 bundle on 3; 0,1 are singletons rebundled on distinguished 5
        assert by_server[3] == {2, 3}
        assert by_server[5] == {0, 1}
        assert plan.n_transactions == 2

    def test_rule_off_keeps_greedy_pick(self):
        table = {0: (9, 2), 1: (1, 3), 2: (1, 4)}
        placer = FixedPlacer(table, 10)
        plan = Bundler(placer, single_item_rule=False).plan(Request(items=(0, 1, 2)))
        servers = {t.server for t in plan.transactions}
        assert 9 not in servers  # greedy never picked the distinguished


class TestHitchhiking:
    def test_hitchhikers_have_replica_on_server(self):
        placer = RangedConsistentHashPlacer(16, 3, vnodes=32)
        plan = Bundler(placer, hitchhiking=True).plan(Request(items=tuple(range(40))))
        for txn in plan.transactions:
            for item in txn.hitchhikers:
                assert txn.server in placer.servers_for(item)

    def test_hitchhikers_disjoint_from_primary(self):
        placer = RangedConsistentHashPlacer(16, 3, vnodes=32)
        plan = Bundler(placer, hitchhiking=True).plan(Request(items=tuple(range(40))))
        for txn in plan.transactions:
            assert not set(txn.primary) & set(txn.hitchhikers)

    def test_hitchhikers_only_requested_items(self):
        placer = RangedConsistentHashPlacer(16, 3, vnodes=32)
        items = tuple(range(40))
        plan = Bundler(placer, hitchhiking=True).plan(Request(items=items))
        for txn in plan.transactions:
            assert set(txn.hitchhikers) <= set(items)

    def test_no_hitchhikers_by_default(self):
        placer = RangedConsistentHashPlacer(16, 3, vnodes=32)
        plan = Bundler(placer).plan(Request(items=tuple(range(40))))
        assert all(t.hitchhikers == () for t in plan.transactions)

    def test_every_eligible_hitchhiker_included(self):
        """Every (requested item, chosen server) replica pair appears as
        primary or hitchhiker — maximal piggybacking."""
        placer = RangedConsistentHashPlacer(16, 3, vnodes=32)
        items = tuple(range(30))
        plan = Bundler(placer, hitchhiking=True, single_item_rule=False).plan(
            Request(items=items)
        )
        for txn in plan.transactions:
            carried = set(txn.primary) | set(txn.hitchhikers)
            for item in items:
                if txn.server in placer.servers_for(item):
                    assert item in carried


class TestLimitPlans:
    def test_limit_plan_covers_required_only(self):
        placer = RangedConsistentHashPlacer(16, 2, vnodes=32)
        request = Request(items=tuple(range(40)), limit_fraction=0.5)
        plan = Bundler(placer, single_item_rule=False).plan(request)
        planned = len(plan.planned_items())
        assert planned == request.required_items == 20

    def test_limit_uses_fewer_transactions(self):
        placer = RangedConsistentHashPlacer(16, 2, vnodes=32)
        items = tuple(range(40))
        full = Bundler(placer).plan(Request(items=items))
        half = Bundler(placer).plan(Request(items=items, limit_fraction=0.5))
        assert half.n_transactions < full.n_transactions

    def test_random_tie_break_requires_rng(self):
        placer = RangedConsistentHashPlacer(4, 2)
        bundler = Bundler(placer, tie_break="random")  # no rng
        with pytest.raises(ValueError):
            bundler.plan(Request(items=(1, 2, 3)))

"""Exclusion-aware covers under partition: plan around an unreachable side.

When a partition cuts a client off from a whole server group, the
health/breaker layer feeds that group to ``Bundler.plan(exclude=...)``.
The cover must route every item with a surviving replica onto the
reachable side, drop items whose entire replica set is cut (a
well-formed partial plan, not an error), and the distinguished-only
ladder rung must keep covering everything it is asked to.
"""

from __future__ import annotations

import numpy as np

from repro.core.bundling import Bundler
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.types import Request

N_SERVERS = 8
N_ITEMS = 300


def make_bundler(replication=2):
    return Bundler(
        RangedConsistentHashPlacer(N_SERVERS, replication, seed=0, vnodes=32)
    )


def make_requests(n, size=8, seed=4):
    rng = np.random.default_rng(seed)
    return [
        Request(
            items=tuple(
                sorted(int(i) for i in rng.choice(N_ITEMS, size, replace=False))
            )
        )
        for _ in range(n)
    ]


class TestPartitionExclusions:
    MINORITY = frozenset({1, 4, 6})

    def test_transactions_never_touch_the_cut_side(self):
        bundler = make_bundler()
        for request in make_requests(50):
            plan = bundler.plan(request, exclude=self.MINORITY)
            for txn in plan.transactions:
                assert txn.server not in self.MINORITY

    def test_survivable_items_are_all_covered(self):
        bundler = make_bundler()
        placer = bundler.placer
        for request in make_requests(50):
            plan = bundler.plan(request, exclude=self.MINORITY)
            planned = {i for t in plan.transactions for i in t.primary}
            for item in request.items:
                survivors = set(placer.servers_for(item)) - self.MINORITY
                if survivors:
                    assert item in planned
                else:
                    assert item not in planned

    def test_fully_cut_items_yield_a_partial_plan_not_an_error(self):
        bundler = make_bundler(replication=1)  # R=1: single copy per item
        placer = bundler.placer
        request = make_requests(1, size=12)[0]
        cut = frozenset(placer.servers_for(request.items[0]))
        plan = bundler.plan(request, exclude=cut)  # must not raise
        planned = {i for t in plan.transactions for i in t.primary}
        assert request.items[0] not in planned
        assert planned <= set(request.items)

    def test_majority_exclusion_converges_onto_the_minority(self):
        # the minority-side client's mirror image: everything reachable
        # lives on 3 servers, so every transaction lands there
        bundler = make_bundler(replication=3)
        majority = frozenset(range(N_SERVERS)) - self.MINORITY
        for request in make_requests(20):
            plan = bundler.plan(request, exclude=majority)
            assert all(t.server in self.MINORITY for t in plan.transactions)

    def test_exclusions_cost_extra_transactions_not_correctness(self):
        bundler = make_bundler(replication=3)
        requests = make_requests(50)
        free = sum(len(bundler.plan(r).transactions) for r in requests)
        cut = sum(
            len(bundler.plan(r, exclude=self.MINORITY).transactions)
            for r in requests
        )
        assert cut >= free  # fewer choices can only widen the cover


class TestDistinguishedUnderPartition:
    def test_distinguished_plan_always_covers_everything(self):
        bundler = make_bundler(replication=3)
        for request in make_requests(30):
            plan = bundler.plan_distinguished(request)
            planned = sorted(i for t in plan.transactions for i in t.primary)
            assert planned == sorted(request.items)

    def test_distinguished_routing_is_the_pinned_home(self):
        bundler = make_bundler(replication=3)
        placer = bundler.placer
        request = make_requests(1)[0]
        for txn in bundler.plan_distinguished(request).transactions:
            for item in txn.primary:
                assert placer.distinguished_for(item) == txn.server

"""Tests for the baseline clients (no replication / full replication)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.urn import expected_tpr
from repro.cluster.cluster import Cluster
from repro.cluster.placement import FullReplicationPlacer, SingleHashPlacer
from repro.core.baselines import FullReplicationClient, NoReplicationClient
from repro.errors import ConfigurationError
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.types import Request


def no_repl_stack(n_servers=16, n_items=5000):
    placer = SingleHashPlacer(n_servers, vnodes=64)
    cluster = Cluster(placer, range(n_items), memory_factor=1.0)
    return cluster, NoReplicationClient(cluster)


class TestNoReplicationClient:
    def test_requires_single_replication(self):
        placer = RangedConsistentHashPlacer(4, 2)
        cluster = Cluster(placer, range(10))
        with pytest.raises(ConfigurationError):
            NoReplicationClient(cluster)

    def test_all_items_fetched(self):
        _, client = no_repl_stack()
        res = client.execute(Request(items=tuple(range(40))))
        assert res.items_fetched == 40
        assert res.misses == 0

    def test_transactions_equal_distinct_homes(self):
        cluster, client = no_repl_stack()
        items = tuple(range(40))
        homes = {cluster.placer.distinguished_for(i) for i in items}
        res = client.execute(Request(items=items))
        assert res.transactions == len(homes)

    def test_tpr_matches_urn_model(self):
        """Mean transactions over random requests ~ N*W(N,M)."""
        cluster, client = no_repl_stack(n_servers=8, n_items=20_000)
        rng = np.random.default_rng(3)
        m = 20
        tprs = []
        for _ in range(300):
            items = tuple(int(x) for x in rng.choice(20_000, m, replace=False))
            tprs.append(client.execute(Request(items=items)).transactions)
        expected = expected_tpr(8, m)
        assert np.mean(tprs) == pytest.approx(expected, rel=0.05)

    def test_limit_reduces_transactions(self):
        _, client = no_repl_stack()
        items = tuple(range(40))
        full = client.execute(Request(items=items))
        half = client.execute(Request(items=items, limit_fraction=0.5))
        assert half.items_fetched >= 20
        assert half.transactions < full.transactions

    def test_limit_prefers_largest_groups(self):
        """The half fetch must not use more transactions than the optimum
        = smallest prefix of group sizes summing to the target."""
        cluster, client = no_repl_stack()
        items = tuple(range(60))
        groups: dict[int, int] = {}
        for i in items:
            h = cluster.placer.distinguished_for(i)
            groups[h] = groups.get(h, 0) + 1
        sizes = sorted(groups.values(), reverse=True)
        need = 30
        optimum = 0
        acc = 0
        for s in sizes:
            optimum += 1
            acc += s
            if acc >= need:
                break
        res = client.execute(Request(items=items, limit_fraction=0.5))
        assert res.transactions == optimum


class TestFullReplicationClient:
    def make(self, n_servers=16, banks=2, n_items=5000, rng=None):
        placer = FullReplicationPlacer(n_servers, banks, vnodes=64)
        cluster = Cluster(placer, range(n_items), memory_factor=None)
        return cluster, FullReplicationClient(cluster, rng=rng)

    def test_requires_full_placer(self):
        placer = RangedConsistentHashPlacer(4, 2)
        cluster = Cluster(placer, range(10))
        with pytest.raises(ConfigurationError):
            FullReplicationClient(cluster)

    def test_requires_unlimited_memory(self):
        placer = FullReplicationPlacer(4, 2)
        cluster = Cluster(placer, range(100), memory_factor=2.0)
        with pytest.raises(ConfigurationError):
            FullReplicationClient(cluster)

    def test_all_items_fetched_single_bank(self):
        cluster, client = self.make(rng=np.random.default_rng(0))
        res = client.execute(Request(items=tuple(range(40))))
        assert res.items_fetched == 40
        # all servers contacted lie in one bank
        banks = {s // cluster.placer.bank_size for s in res.servers_contacted}
        assert len(banks) == 1

    def test_tpr_matches_bank_sized_urn(self):
        """k banks: TPR ~ (N/k) * W(N/k, M) — 'exactly what one pays for'."""
        cluster, client = self.make(
            n_servers=16, banks=2, n_items=20_000, rng=np.random.default_rng(1)
        )
        rng = np.random.default_rng(5)
        m = 30
        tprs = []
        for _ in range(300):
            items = tuple(int(x) for x in rng.choice(20_000, m, replace=False))
            tprs.append(client.execute(Request(items=items)).transactions)
        assert np.mean(tprs) == pytest.approx(expected_tpr(8, m), rel=0.05)

    def test_banks_used_uniformly(self):
        cluster, client = self.make(banks=4, rng=np.random.default_rng(2))
        bank_hits = np.zeros(4)
        for i in range(400):
            res = client.execute(Request(items=(i, i + 1000, i + 2000)))
            bank_hits[res.servers_contacted[0] // cluster.placer.bank_size] += 1
        assert bank_hits.min() > 50  # each bank gets a fair share

"""Tests for the RnB client: rounds, misses, write-back, LIMIT."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.core.bundling import Bundler
from repro.core.client import RnBClient
from repro.errors import ConfigurationError
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.types import Request


def make_stack(n_servers=16, replication=3, n_items=2000, memory_factor=None, **bk):
    placer = RangedConsistentHashPlacer(n_servers, replication, vnodes=32)
    cluster = Cluster(placer, range(n_items), memory_factor=memory_factor)
    client = RnBClient(cluster, Bundler(placer, **bk))
    return placer, cluster, client


class TestHappyPath:
    def test_all_items_fetched(self):
        _, _, client = make_stack()
        res = client.execute(Request(items=tuple(range(50))))
        assert res.items_fetched == 50
        assert res.misses == 0
        assert res.second_round_transactions == 0

    def test_transactions_match_servers_contacted(self):
        _, _, client = make_stack()
        res = client.execute(Request(items=tuple(range(30))))
        assert res.transactions == len(res.servers_contacted)
        assert res.transactions == len(res.txn_sizes)

    def test_single_item_request_hits_distinguished(self):
        placer, cluster, client = make_stack()
        res = client.execute(Request(items=(7,)))
        assert res.transactions == 1
        assert res.servers_contacted[0] == placer.distinguished_for(7)

    def test_server_counters_advance(self):
        _, cluster, client = make_stack()
        client.execute(Request(items=tuple(range(20))))
        assert cluster.total_transactions() > 0

    def test_mismatched_placer_rejected(self):
        placer_a = RangedConsistentHashPlacer(4, 2)
        placer_b = RangedConsistentHashPlacer(4, 2)
        cluster = Cluster(placer_a, range(10))
        with pytest.raises(ConfigurationError):
            RnBClient(cluster, Bundler(placer_b))


class TestMissPath:
    def test_second_round_fetches_from_distinguished(self):
        """With memory_factor=1.0 every replica access misses; the items
        must still all arrive via the distinguished copies."""
        placer, cluster, client = make_stack(memory_factor=1.0)
        items = tuple(range(40))
        res = client.execute(Request(items=items))
        assert res.items_fetched == 40
        # all first-round non-distinguished picks missed
        assert res.misses > 0
        assert res.second_round_transactions > 0

    def test_write_back_populates_first_pick(self):
        placer, cluster, client = make_stack(memory_factor=2.0)
        # drain the replica LRUs of specific items by executing a request,
        # then check missed items were written back where they missed
        items = tuple(range(60))
        res1 = client.execute(Request(items=items))
        if res1.misses == 0:
            pytest.skip("no misses to verify write-back with")
        res2 = client.execute(Request(items=items))
        # identical request right after: every write-back target now hits
        assert res2.misses <= res1.misses
        assert res2.transactions <= res1.transactions

    def test_no_write_back_keeps_missing(self):
        placer = RangedConsistentHashPlacer(16, 3, vnodes=32)
        cluster = Cluster(placer, range(2000), memory_factor=1.0)
        client = RnBClient(cluster, Bundler(placer), write_back=False)
        items = tuple(range(40))
        r1 = client.execute(Request(items=items))
        r2 = client.execute(Request(items=items))
        # capacity 0: write-back is impossible anyway; both rounds identical
        assert r1.misses == r2.misses

    def test_second_round_is_bundled(self):
        """Misses to the same distinguished server share one transaction."""
        placer, cluster, client = make_stack(memory_factor=1.0, n_servers=4)
        res = client.execute(Request(items=tuple(range(30))))
        # 4 servers: at most 4 second-round transactions regardless of misses
        assert res.second_round_transactions <= 4


class TestHitchhikingClient:
    def test_hitchhiker_rescues_miss(self):
        """An item whose replica was evicted can still arrive as a
        hitchhiker on another transaction, avoiding a second round."""
        placer = RangedConsistentHashPlacer(16, 3, vnodes=32)
        cluster = Cluster(placer, range(2000), memory_factor=1.5)
        plain = RnBClient(cluster, Bundler(placer, hitchhiking=False))
        hh = RnBClient(cluster, Bundler(placer, hitchhiking=True))
        items = tuple(range(500, 560))
        r_plain = plain.execute(Request(items=items))
        r_hh = hh.execute(Request(items=items))
        assert r_hh.items_fetched == len(items)
        # hitchhiking can only reduce second-round work for the same state
        assert r_hh.second_round_transactions <= r_plain.second_round_transactions + 1


class TestLimitClient:
    def test_limit_fetches_at_least_required(self):
        _, _, client = make_stack()
        req = Request(items=tuple(range(40)), limit_fraction=0.5)
        res = client.execute(req)
        assert res.items_fetched >= 20

    def test_limit_uses_fewer_transactions(self):
        _, _, client = make_stack()
        items = tuple(range(40))
        full = client.execute(Request(items=items))
        part = client.execute(Request(items=items, limit_fraction=0.5))
        assert part.transactions < full.transactions

    def test_limit_with_misses_still_satisfied(self):
        _, _, client = make_stack(memory_factor=1.0)
        req = Request(items=tuple(range(40)), limit_fraction=0.9)
        res = client.execute(req)
        assert res.items_fetched >= req.required_items

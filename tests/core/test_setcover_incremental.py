"""Property tests pinning the incremental cover kernel to the reference.

``greedy_partial_cover`` (lazy-decreasing heap) must match
``greedy_partial_cover_reference`` (full rescan) pick for pick: same
selection order, same per-pick assignment masks, same rng consumption
for the random tie-break — across full covers, LIMIT partial covers,
exclusions and degraded (allow_partial) instances.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.setcover import (
    greedy_partial_cover,
    greedy_partial_cover_reference,
)
from repro.errors import CoverError

# A random instance: up to 14 subsets over up to 24 elements.
instances = st.integers(1, 24).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.dictionaries(
            st.integers(0, 13),
            st.integers(0, (1 << n) - 1),
            min_size=1,
            max_size=14,
        ),
    )
)


def _assert_same(result_a, result_b):
    assert result_a.selected == result_b.selected
    assert result_a.assignment == result_b.assignment
    assert result_a.covered == result_b.covered
    assert result_a.n_elements == result_b.n_elements


def _both(subsets, n, required, **kwargs):
    try:
        expected = greedy_partial_cover_reference(subsets, n, required, **kwargs)
    except CoverError:
        with pytest.raises(CoverError):
            greedy_partial_cover(subsets, n, required, **kwargs)
        return
    _assert_same(greedy_partial_cover(subsets, n, required, **kwargs), expected)


@settings(max_examples=300, deadline=None)
@given(instances)
def test_full_cover_matches_reference(instance):
    n, subsets = instance
    _both(subsets, n, n)


@settings(max_examples=300, deadline=None)
@given(instances, st.floats(0.0, 1.0))
def test_partial_cover_matches_reference(instance, fraction):
    n, subsets = instance
    _both(subsets, n, int(round(fraction * n)))


@settings(max_examples=200, deadline=None)
@given(instances, st.sets(st.integers(0, 13), max_size=6))
def test_exclusions_match_reference(instance, exclude):
    n, subsets = instance
    _both(subsets, n, n, exclude=exclude, allow_partial=True)


@settings(max_examples=200, deadline=None)
@given(instances, st.integers(0, 2**31 - 1))
def test_random_tie_break_matches_reference(instance, seed):
    """Same picks AND same rng draw sequence as the reference scan."""
    n, subsets = instance
    expected = greedy_partial_cover_reference(
        subsets, n, n, tie_break="random",
        rng=np.random.default_rng(seed), allow_partial=True,
    )
    rng = np.random.default_rng(seed)
    got = greedy_partial_cover(
        subsets, n, n, tie_break="random", rng=rng, allow_partial=True
    )
    _assert_same(got, expected)
    # rng consumption parity: replaying the reference leaves its stream at
    # the same position, so the next draw from each generator agrees
    reference_rng = np.random.default_rng(seed)
    greedy_partial_cover_reference(
        subsets, n, n, tie_break="random",
        rng=reference_rng, allow_partial=True,
    )
    assert rng.integers(1 << 30) == reference_rng.integers(1 << 30)


@settings(max_examples=100, deadline=None)
@given(instances)
def test_callable_tie_break_matches_reference(instance):
    """A highest-key tie-break exercises the multi-candidate path."""
    n, subsets = instance
    pick = lambda candidates: candidates[-1]  # noqa: E731
    _both(subsets, n, n, tie_break=pick, allow_partial=True)


def test_infeasible_raises_in_both():
    subsets = {0: 0b011}
    for solver in (greedy_partial_cover, greedy_partial_cover_reference):
        with pytest.raises(CoverError):
            solver(subsets, 3, 3)


def test_required_zero_short_circuits():
    result = greedy_partial_cover({0: 0b1}, 1, 0)
    assert result.selected == ()
    assert result.covered == 0

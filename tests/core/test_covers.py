"""Tests for the alternative cover strategies (exact, first-fit, random)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.covers import exact_min_cover, first_fit_cover, random_cover
from repro.core.setcover import greedy_set_cover
from repro.errors import CoverError
from repro.utils.bitset import from_indices


def masks(*index_lists):
    return {i: from_indices(ixs) for i, ixs in enumerate(index_lists)}


class TestExactMinCover:
    def test_trivial(self):
        res = exact_min_cover(masks([0, 1, 2]), 3)
        assert res.n_selected == 1
        assert res.is_full_cover()

    def test_beats_greedy_on_adversarial_instance(self):
        """The classic greedy-trap: optimal 2, greedy 3."""
        subsets = masks(
            [0, 1, 2, 3],  # optimal half A
            [4, 5, 6, 7],  # optimal half B
            [0, 1, 4, 5, 2],  # greedy bait: covers 5 first
            [3, 6, 7],
        )
        greedy = greedy_set_cover(subsets, 8)
        exact = exact_min_cover(subsets, 8)
        assert exact.n_selected == 2
        assert greedy.n_selected >= exact.n_selected

    def test_empty_universe(self):
        assert exact_min_cover({}, 0).n_selected == 0

    def test_infeasible(self):
        with pytest.raises(CoverError):
            exact_min_cover(masks([0]), 2)

    def test_assignment_valid(self):
        subsets = masks([0, 1], [1, 2], [2, 3], [0, 3])
        res = exact_min_cover(subsets, 4)
        covered = 0
        for key, newly in res.assignment.items():
            assert newly & ~subsets[key] == 0
            assert newly & covered == 0
            covered |= newly
        assert covered == (1 << 4) - 1


class TestFirstFitCover:
    def test_reuses_open_servers(self):
        # item 0 opens its distinguished server 5; item 1 has 5 as a
        # replica and must bundle there rather than open server 9
        res = first_fit_cover([(5, 2), (9, 5)])
        assert res.selected == (5,)
        assert res.is_full_cover()

    def test_opens_distinguished_when_no_match(self):
        res = first_fit_cover([(1, 2), (3, 4)])
        assert res.selected == (1, 3)

    def test_empty_replica_list_rejected(self):
        with pytest.raises(CoverError):
            first_fit_cover([(1,), ()])

    def test_order_dependence(self):
        """First-fit is order-dependent — documenting the weakness that
        motivates greedy."""
        a = first_fit_cover([(0, 1), (1, 2), (2, 0)])
        b = first_fit_cover([(2, 0), (1, 2), (0, 1)])
        assert a.is_full_cover() and b.is_full_cover()
        # both valid but may differ in size; at minimum both <= 3
        assert a.n_selected <= 3 and b.n_selected <= 3


class TestRandomCover:
    def test_valid_cover(self):
        subsets = masks([0, 1], [1, 2], [2, 3], [3, 0])
        res = random_cover(subsets, 4, rng=np.random.default_rng(0))
        assert res.is_full_cover()

    def test_empty_universe(self):
        assert random_cover({}, 0).n_selected == 0

    def test_infeasible(self):
        with pytest.raises(CoverError):
            random_cover(masks([0]), 2, rng=np.random.default_rng(0))

    def test_never_picks_useless_server(self):
        subsets = masks([0, 1, 2], [0], [1], [2])
        for seed in range(10):
            res = random_cover(subsets, 3, rng=np.random.default_rng(seed))
            for key, newly in res.assignment.items():
                assert newly != 0


small_instances = st.integers(min_value=1, max_value=6).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.sets(st.integers(0, n - 1), min_size=0, max_size=n),
            min_size=1,
            max_size=5,
        ),
    )
)


@settings(max_examples=100, deadline=None)
@given(small_instances)
def test_exact_is_lower_bound_property(instance):
    """exact <= greedy <= random on every feasible instance."""
    n, sets_list = instance
    subsets = {i: from_indices(s) for i, s in enumerate(sets_list)}
    union = 0
    for m in subsets.values():
        union |= m
    if union != (1 << n) - 1:
        return
    exact = exact_min_cover(subsets, n)
    greedy = greedy_set_cover(subsets, n)
    rnd = random_cover(subsets, n, rng=np.random.default_rng(0))
    assert exact.n_selected <= greedy.n_selected <= rnd.n_selected + n
    assert exact.is_full_cover() and greedy.is_full_cover() and rnd.is_full_cover()


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.lists(st.integers(0, 9), min_size=1, max_size=4, unique=True),
        min_size=1,
        max_size=12,
    )
)
def test_first_fit_validity_property(replica_lists):
    res = first_fit_cover([tuple(r) for r in replica_lists])
    assert res.is_full_cover()
    # every item assigned to one of its own replicas
    for key, newly in res.assignment.items():
        for idx in range(len(replica_lists)):
            if newly & (1 << idx):
                assert key in replica_lists[idx]

"""Tests for request merging."""

from __future__ import annotations

import pytest

from repro.core.merge import merge_requests, merge_stream
from repro.types import Request


class TestMergeRequests:
    def test_union_dedupe(self):
        merged = merge_requests(
            [Request(items=(1, 2, 3)), Request(items=(1, 2, 4))]
        )
        assert set(merged.items) == {1, 2, 3, 4}
        assert len(merged.items) == 4

    def test_order_preserved_first_appearance(self):
        merged = merge_requests([Request(items=(5, 1)), Request(items=(2, 5))])
        assert merged.items == (5, 1, 2)

    def test_single_request_identity_items(self):
        r = Request(items=(9, 8))
        assert merge_requests([r]).items == (9, 8)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            merge_requests([])

    def test_limit_requests_rejected(self):
        with pytest.raises(ValueError):
            merge_requests([Request(items=(1,), limit_fraction=0.5)])


class TestMergeStream:
    def test_window_two(self):
        stream = [Request(items=(i,)) for i in range(6)]
        merged = list(merge_stream(stream, 2))
        assert len(merged) == 3
        assert merged[0].items == (0, 1)

    def test_window_one_is_identity(self):
        stream = [Request(items=(i, i + 10)) for i in range(4)]
        merged = list(merge_stream(stream, 1))
        assert [m.items for m in merged] == [r.items for r in stream]

    def test_trailing_partial_batch(self):
        stream = [Request(items=(i,)) for i in range(5)]
        merged = list(merge_stream(stream, 2))
        assert len(merged) == 3
        assert merged[-1].items == (4,)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            list(merge_stream([], 0))

    def test_lazy_evaluation(self):
        def gen():
            yield Request(items=(1,))
            yield Request(items=(2,))
            raise AssertionError("should not be consumed")

        stream = merge_stream(gen(), 2)
        assert next(stream).items == (1, 2)

"""Tests for the shared-budget PriorityClassStore and its cluster wiring."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.lru import PinnedLRU, PriorityClassStore
from repro.cluster.server import Server
from repro.errors import ConfigurationError
from repro.hashing.rch import RangedConsistentHashPlacer


class TestPriorityClassStore:
    def test_pinned_never_displaced_by_replicas(self):
        store = PriorityClassStore(capacity=3)
        store.pin_all(["d1", "d2"])
        for i in range(10):
            store.put(i)
        assert store.is_pinned("d1") and "d1" in store
        assert store.is_pinned("d2") and "d2" in store
        assert store.n_replicas == 1  # only one shared slot left

    def test_replicas_share_leftover_budget(self):
        store = PriorityClassStore(capacity=5)
        store.pin("d")
        for i in range(10):
            store.put(i)
        assert store.n_replicas == 4
        assert store.replica_capacity == 4

    def test_put_on_pinned_is_touch(self):
        store = PriorityClassStore(capacity=2)
        store.pin("d")
        store.put("d")
        assert store.n_replicas == 0

    def test_discard_protects_pinned(self):
        store = PriorityClassStore(capacity=3)
        store.pin("d")
        store.put("r")
        assert not store.discard("d")
        assert store.discard("r")

    def test_unpin(self):
        store = PriorityClassStore(capacity=3)
        store.pin("d")
        assert store.unpin("d")
        assert "d" not in store
        assert not store.unpin("d")

    def test_touch_both_classes(self):
        store = PriorityClassStore(capacity=4)
        store.pin("d")
        store.put("r")
        assert store.touch("d") and store.touch("r")
        assert not store.touch("nope")

    def test_lru_semantics_within_replicas(self):
        store = PriorityClassStore(capacity=3)
        store.pin("d")
        store.put("r1")
        store.put("r2")
        store.touch("r1")
        store.put("r3")  # evicts r2
        assert "r1" in store and "r2" not in store and "r3" in store

    def test_replica_keys(self):
        store = PriorityClassStore(capacity=4)
        store.pin("d")
        store.put("r1")
        store.put("r2")
        assert sorted(store.replica_keys()) == ["r1", "r2"]

    def test_unlimited(self):
        store = PriorityClassStore(None)
        store.pin("d")
        for i in range(100):
            store.put(i)
        assert store.n_replicas == 100
        assert store.replica_capacity is None


class TestServerInjection:
    def test_server_accepts_custom_store(self):
        server = Server(0, store=PriorityClassStore(capacity=5))
        server.pin_distinguished([1, 2])
        hits, misses, _ = server.multi_get([1, 2, 3])
        assert hits == [1, 2] and misses == [3]

    def test_default_store_is_pinned(self):
        assert isinstance(Server(0).store, PinnedLRU)


class TestClusterPolicy:
    def make(self, policy, memory_factor=2.0):
        placer = RangedConsistentHashPlacer(8, 3, vnodes=32)
        return Cluster(
            placer, range(800), memory_factor=memory_factor, lru_policy=policy
        )

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make("bogus")

    def test_priority_stores_used(self):
        cluster = self.make("priority")
        assert all(isinstance(s.store, PriorityClassStore) for s in cluster)

    def test_all_distinguished_resident_under_priority(self):
        cluster = self.make("priority", memory_factor=1.0)
        for item in range(0, 800, 41):
            home = cluster.placer.distinguished_for(item)
            assert item in cluster.server(home).store

    def test_total_budget_matches_memory_factor(self):
        cluster = self.make("priority", memory_factor=2.0)
        # shared budgets: resident items converge to ~2x one copy
        assert cluster.total_resident_items() <= 2 * 800 + 8 * 2

    def test_priority_simulation_runs(self, small_slashdot):
        from repro.sim.config import ClientConfig, ClusterConfig, SimConfig
        from repro.sim.engine import run_simulation

        cfg = SimConfig(
            cluster=ClusterConfig(
                n_servers=8, replication=3, memory_factor=1.5, lru_policy="priority"
            ),
            client=ClientConfig(mode="rnb", hitchhiking=True),
            n_requests=200,
            warmup_requests=200,
            seed=9,
        )
        res = run_simulation(small_slashdot, cfg)
        assert res.tpr > 0
        assert res.stats.items_fetched > 0

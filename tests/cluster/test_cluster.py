"""Tests for cluster provisioning and memory budgeting."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.placement import SingleHashPlacer
from repro.errors import CapacityError, ConfigurationError
from repro.hashing.rch import RangedConsistentHashPlacer


def make_cluster(n_servers=8, replication=3, n_items=1000, memory_factor=None):
    placer = RangedConsistentHashPlacer(n_servers, replication, vnodes=32)
    return Cluster(placer, range(n_items), memory_factor=memory_factor)


class TestProvisioning:
    def test_every_item_pinned_once(self):
        cluster = make_cluster()
        pinned_total = sum(s.pinned_items for s in cluster)
        assert pinned_total == 1000

    def test_distinguished_on_home_server(self):
        cluster = make_cluster()
        for item in range(0, 1000, 37):
            home = cluster.placer.distinguished_for(item)
            assert cluster.server(home).store.is_pinned(item)

    def test_unlimited_memory_preloads_all_replicas(self):
        cluster = make_cluster(replication=3, memory_factor=None)
        assert cluster.total_resident_items() == 3 * 1000
        assert cluster.effective_memory_factor() == pytest.approx(3.0)

    def test_empty_items_rejected(self):
        placer = RangedConsistentHashPlacer(4, 1)
        with pytest.raises(ConfigurationError):
            Cluster(placer, [])

    def test_memory_factor_below_one_rejected(self):
        with pytest.raises(CapacityError):
            make_cluster(memory_factor=0.9)


class TestMemoryBudget:
    def test_replica_capacity_formula(self):
        """Extra memory beyond one copy splits evenly across servers."""
        cluster = make_cluster(n_servers=8, memory_factor=2.0, n_items=1000)
        assert cluster.replica_capacity_per_server == round(1000 / 8)

    def test_factor_one_gives_zero_replica_space(self):
        cluster = make_cluster(memory_factor=1.0)
        assert cluster.replica_capacity_per_server == 0
        # only the pinned copies are resident
        assert cluster.total_resident_items() == 1000

    def test_limited_memory_bounds_residency(self):
        cluster = make_cluster(n_servers=8, replication=3, memory_factor=1.5)
        # <= one full copy pinned + 0.5 copies of replicas (rounding slack)
        assert cluster.total_resident_items() <= 1000 + 8 * round(500 / 8) + 8

    def test_effective_memory_factor_tracks_budget(self):
        cluster = make_cluster(n_servers=8, replication=4, memory_factor=2.0)
        # preload fills replica LRUs to capacity
        assert cluster.effective_memory_factor() == pytest.approx(2.0, rel=0.05)


class TestCounters:
    def test_total_transactions_and_reset(self):
        cluster = make_cluster()
        sid = cluster.placer.distinguished_for(0)
        cluster.server(sid).multi_get([0])
        assert cluster.total_transactions() == 1
        cluster.reset_counters()
        assert cluster.total_transactions() == 0

    def test_txn_size_histogram_merges_servers(self):
        cluster = make_cluster()
        s0 = cluster.placer.distinguished_for(0)
        s1 = cluster.placer.distinguished_for(1)
        cluster.server(s0).multi_get([0])
        cluster.server(s1).multi_get([1])
        hist = cluster.txn_size_histogram()
        assert hist.total == 2
        assert hist.counts == {1: 2}

    def test_iteration_and_len(self):
        cluster = make_cluster(n_servers=8)
        assert len(cluster) == 8
        assert len(list(cluster)) == 8


class TestSingleCopyCluster:
    def test_no_replicas_with_single_hash(self):
        placer = SingleHashPlacer(4, vnodes=16)
        cluster = Cluster(placer, range(100), memory_factor=1.0)
        assert cluster.total_resident_items() == 100
        for s in cluster:
            assert s.store.n_replicas == 0

"""Placers must be freed by reference counting alone.

Per-instance ``lru_cache`` attributes create an instance -> cache ->
bound-method -> instance cycle, which keeps every placer (and its memo
of up to 2^20 replica tuples) alive until the cycle collector happens to
run.  The memo dicts the placers use instead must not reference their
owner, so dropping the last reference frees the placer immediately.
"""

from __future__ import annotations

import weakref

import pytest

from repro.cluster.placement import RandomPlacer, SingleHashPlacer
from repro.hashing.multihash import MultiHashPlacer
from repro.hashing.rch import RangedConsistentHashPlacer

FACTORIES = [
    pytest.param(lambda: RangedConsistentHashPlacer(8, 2, vnodes=16, seed=1), id="rch"),
    pytest.param(lambda: MultiHashPlacer(8, 2, seed=1), id="multihash"),
    pytest.param(lambda: RandomPlacer(8, 2, seed=1), id="random"),
    pytest.param(lambda: SingleHashPlacer(8, vnodes=16, seed=1), id="single"),
]


@pytest.mark.parametrize("factory", FACTORIES)
def test_placer_freed_without_cycle_collector(factory):
    placer = factory()
    for item in range(64):  # populate the memo
        placer.servers_for(item)
    ref = weakref.ref(placer)
    del placer
    # no gc.collect(): refcounting alone must reclaim the instance
    assert ref() is None

"""Tests for the LRU caches and their two-service-class variants."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster.lru import (
    CLASS_DISTINGUISHED,
    CLASS_REPLICA,
    LRUCache,
    PartitionedLRU,
    PinnedLRU,
    PriorityLRU,
)
from repro.errors import CapacityError


class TestLRUCache:
    def test_unlimited(self):
        lru = LRUCache(None)
        for i in range(1000):
            lru.put(i)
        assert len(lru) == 1000
        assert lru.evictions == 0

    def test_eviction_order(self):
        lru = LRUCache(3)
        for k in "abc":
            lru.put(k)
        lru.put("d")  # evicts "a"
        assert "a" not in lru and "d" in lru
        assert lru.evictions == 1

    def test_touch_prevents_eviction(self):
        lru = LRUCache(3)
        for k in "abc":
            lru.put(k)
        assert lru.touch("a")
        lru.put("d")  # now evicts "b"
        assert "a" in lru and "b" not in lru

    def test_touch_missing(self):
        assert not LRUCache(2).touch("nope")

    def test_put_existing_refreshes(self):
        lru = LRUCache(2)
        lru.put("a")
        lru.put("b")
        lru.put("a")  # refresh, no eviction
        lru.put("c")  # evicts "b"
        assert "a" in lru and "b" not in lru
        assert len(lru) == 2

    def test_zero_capacity_drops_everything(self):
        lru = LRUCache(0)
        lru.put("a")
        assert "a" not in lru
        assert lru.evictions == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(CapacityError):
            LRUCache(-1)

    def test_discard(self):
        lru = LRUCache(2)
        lru.put("a")
        assert lru.discard("a")
        assert not lru.discard("a")

    def test_keys_lru_order(self):
        lru = LRUCache(3)
        for k in "abc":
            lru.put(k)
        lru.touch("a")
        assert lru.keys() == ["b", "c", "a"]


class TestPinnedLRU:
    def test_pinned_never_evicted(self):
        store = PinnedLRU(replica_capacity=2)
        store.pin_all(["p1", "p2", "p3"])
        for i in range(10):
            store.put(i)
        assert all(store.is_pinned(p) for p in ("p1", "p2", "p3"))
        assert store.n_pinned == 3
        assert store.n_replicas == 2

    def test_pinned_do_not_consume_replica_capacity(self):
        store = PinnedLRU(replica_capacity=2)
        store.pin_all(range(100))
        store.put("r1")
        store.put("r2")
        assert store.n_replicas == 2

    def test_put_pinned_is_noop(self):
        store = PinnedLRU(replica_capacity=1)
        store.pin("p")
        store.put("p")
        assert store.n_replicas == 0

    def test_pin_promotes_existing_replica(self):
        store = PinnedLRU(replica_capacity=4)
        store.put("x")
        store.pin("x")
        assert store.is_pinned("x")
        assert store.n_replicas == 0
        assert len(store) == 1

    def test_touch_hits_both_classes(self):
        store = PinnedLRU(replica_capacity=2)
        store.pin("p")
        store.put("r")
        assert store.touch("p")
        assert store.touch("r")
        assert not store.touch("missing")

    def test_discard_only_replicas(self):
        store = PinnedLRU(2)
        store.pin("p")
        store.put("r")
        assert not store.discard("p")
        assert store.discard("r")
        assert "p" in store

    def test_unpin(self):
        store = PinnedLRU(2)
        store.pin("p")
        assert store.unpin("p")
        assert not store.unpin("p")
        assert "p" not in store

    def test_zero_replica_capacity(self):
        """memory_factor=1.0: only distinguished copies fit."""
        store = PinnedLRU(replica_capacity=0)
        store.pin("p")
        store.put("r")
        assert "r" not in store and "p" in store

    def test_replica_lru_semantics(self):
        store = PinnedLRU(2)
        store.put("a")
        store.put("b")
        store.touch("a")
        store.put("c")  # evicts b
        assert "b" not in store and "a" in store and "c" in store


class TestPartitionedLRU:
    def test_classes_do_not_steal(self):
        store = PartitionedLRU(capacity_a=2, capacity_b=2)
        store.put("a1", CLASS_DISTINGUISHED)
        store.put("a2", CLASS_DISTINGUISHED)
        for i in range(5):
            store.put(f"b{i}", CLASS_REPLICA)
        assert "a1" in store and "a2" in store
        assert len(store) == 4

    def test_class_migration(self):
        store = PartitionedLRU(2, 2)
        store.put("x", CLASS_REPLICA)
        store.put("x", CLASS_DISTINGUISHED)
        assert len(store) == 1

    def test_touch_and_discard(self):
        store = PartitionedLRU(2, 2)
        store.put("a", CLASS_DISTINGUISHED)
        assert store.touch("a")
        assert store.discard("a")
        assert not store.touch("a")

    def test_eviction_counted(self):
        store = PartitionedLRU(1, 1)
        store.put("a", CLASS_REPLICA)
        store.put("b", CLASS_REPLICA)
        assert store.evictions == 1


class TestPriorityLRU:
    def test_replica_evicted_before_distinguished(self):
        store = PriorityLRU(capacity=3)
        store.put("d1", CLASS_DISTINGUISHED)
        store.put("r1", CLASS_REPLICA)
        store.put("r2", CLASS_REPLICA)
        store.put("d2", CLASS_DISTINGUISHED)  # evicts r1 (LRU replica)
        assert "d1" in store and "d2" in store
        assert "r1" not in store and "r2" in store

    def test_replica_insert_dropped_when_full_of_distinguished(self):
        store = PriorityLRU(capacity=2)
        store.put("d1", CLASS_DISTINGUISHED)
        store.put("d2", CLASS_DISTINGUISHED)
        store.put("r", CLASS_REPLICA)
        assert "r" not in store
        assert "d1" in store and "d2" in store

    def test_distinguished_evicts_lru_distinguished_when_needed(self):
        store = PriorityLRU(capacity=2)
        store.put("d1", CLASS_DISTINGUISHED)
        store.put("d2", CLASS_DISTINGUISHED)
        store.put("d3", CLASS_DISTINGUISHED)
        assert "d1" not in store and "d3" in store

    def test_touch_refreshes(self):
        store = PriorityLRU(capacity=2)
        store.put("r1", CLASS_REPLICA)
        store.put("r2", CLASS_REPLICA)
        store.touch("r1")
        store.put("r3", CLASS_REPLICA)  # evicts r2
        assert "r1" in store and "r2" not in store

    def test_zero_capacity(self):
        store = PriorityLRU(capacity=0)
        store.put("x", CLASS_REPLICA)
        assert "x" not in store

    def test_negative_capacity_rejected(self):
        with pytest.raises(CapacityError):
            PriorityLRU(capacity=-1)

    def test_reinsert_same_key(self):
        store = PriorityLRU(capacity=2)
        store.put("a", CLASS_REPLICA)
        store.put("a", CLASS_REPLICA)
        assert len(store) == 1


# ---------------------------------------------------------------------------
# model-based property test: LRUCache behaves like an ordered-dict reference
# ---------------------------------------------------------------------------

ops = st.lists(
    st.tuples(
        st.sampled_from(["put", "touch", "discard"]),
        st.integers(min_value=0, max_value=9),
    ),
    max_size=60,
)


@given(st.integers(min_value=1, max_value=5), ops)
def test_lru_matches_reference_model(capacity, operations):
    lru = LRUCache(capacity)
    model: list[int] = []  # LRU -> MRU order

    for op, key in operations:
        if op == "put":
            lru.put(key)
            if key in model:
                model.remove(key)
                model.append(key)
            else:
                if len(model) >= capacity:
                    model.pop(0)
                model.append(key)
        elif op == "touch":
            assert lru.touch(key) == (key in model)
            if key in model:
                model.remove(key)
                model.append(key)
        else:
            assert lru.discard(key) == (key in model)
            if key in model:
                model.remove(key)
        assert lru.keys() == model


@given(
    st.sets(st.integers(0, 20), max_size=8),
    st.integers(min_value=0, max_value=6),
    st.lists(st.integers(0, 20), max_size=50),
)
def test_pinned_lru_invariants(pinned, capacity, puts):
    """Pinned keys always present; replica count never exceeds capacity."""
    store = PinnedLRU(replica_capacity=capacity)
    store.pin_all(pinned)
    for key in puts:
        store.put(key)
        assert store.n_replicas <= capacity
        for p in pinned:
            assert p in store
    for key in puts:
        if key not in pinned:
            assert store.is_pinned(key) is False

"""Tests for the simulated memcached server."""

from __future__ import annotations

import pytest

from repro.cluster.server import Server


class TestMultiGet:
    def test_all_hits(self):
        s = Server(0)
        s.pin_distinguished([1, 2, 3])
        hits, misses, hh = s.multi_get([1, 2, 3])
        assert hits == [1, 2, 3] and misses == [] and hh == []
        assert s.counters.transactions == 1
        assert s.counters.hits == 3

    def test_misses(self):
        s = Server(0, replica_capacity=10)
        s.pin_distinguished([1])
        hits, misses, _ = s.multi_get([1, 2])
        assert hits == [1] and misses == [2]
        assert s.counters.misses == 1

    def test_empty_transaction_rejected(self):
        with pytest.raises(ValueError):
            Server(0).multi_get([])

    def test_hitchhikers_counted_separately(self):
        s = Server(0, replica_capacity=10)
        s.pin_distinguished([1])
        s.preload_replicas([5])
        hits, misses, hh = s.multi_get([1], hitchhikers=[5, 6])
        assert hits == [1] and misses == [] and hh == [5]
        assert s.counters.hitchhiker_hits == 1
        assert s.counters.hitchhiker_misses == 1

    def test_txn_size_includes_hitchhikers(self):
        s = Server(0)
        s.pin_distinguished([1])
        s.multi_get([1], hitchhikers=[2, 3])
        assert s.counters.txn_sizes.counts == {3: 1}

    def test_hit_touches_lru(self):
        s = Server(0, replica_capacity=2)
        s.preload_replicas([10, 11])
        s.multi_get([10])  # 10 becomes MRU
        s.write_back(12)  # evicts 11
        assert 10 in s.store and 11 not in s.store

    def test_hitchhiker_hit_touches_lru(self):
        """Paper policy: LRU updated upon a hitchhiker hit."""
        s = Server(0, replica_capacity=2)
        s.preload_replicas([10, 11])
        s.pin_distinguished([1])
        s.multi_get([1], hitchhikers=[10])
        s.write_back(12)  # evicts 11, not the hitchhiker-touched 10
        assert 10 in s.store and 11 not in s.store

    def test_hitchhiker_miss_does_not_insert(self):
        s = Server(0, replica_capacity=5)
        s.pin_distinguished([1])
        s.multi_get([1], hitchhikers=[99])
        assert 99 not in s.store


class TestWriteBack:
    def test_write_back_inserts(self):
        s = Server(0, replica_capacity=2)
        s.write_back(7)
        assert 7 in s.store
        assert s.counters.writes == 1

    def test_write_back_respects_capacity(self):
        s = Server(0, replica_capacity=1)
        s.write_back(1)
        s.write_back(2)
        assert 1 not in s.store and 2 in s.store


class TestCounters:
    def test_reset(self):
        s = Server(0)
        s.pin_distinguished([1])
        s.multi_get([1])
        s.reset_counters()
        assert s.counters.transactions == 0
        assert s.counters.txn_sizes.total == 0
        assert 1 in s.store  # data survives a counter reset

    def test_items_requested_vs_returned(self):
        s = Server(0, replica_capacity=0)
        s.pin_distinguished([1])
        s.multi_get([1, 2, 3])
        assert s.counters.items_requested == 3
        assert s.counters.items_returned == 1

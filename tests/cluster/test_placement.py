"""Tests for placement policies: single-hash, full-replication, random."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.placement import (
    FullReplicationPlacer,
    RandomPlacer,
    ReplicaPlacer,
    SingleHashPlacer,
    make_placer,
)
from repro.errors import ConfigurationError
from repro.hashing.multihash import MultiHashPlacer
from repro.hashing.rch import RangedConsistentHashPlacer


class TestProtocolConformance:
    @pytest.mark.parametrize(
        "placer",
        [
            SingleHashPlacer(8),
            FullReplicationPlacer(8, 2),
            RandomPlacer(8, 3),
            RangedConsistentHashPlacer(8, 3),
            MultiHashPlacer(8, 3),
        ],
        ids=["single", "full", "random", "rch", "multihash"],
    )
    def test_satisfies_replica_placer(self, placer):
        assert isinstance(placer, ReplicaPlacer)
        rs = placer.replicas_for(123)
        assert rs.servers == placer.servers_for(123)
        assert rs.distinguished == placer.distinguished_for(123)
        assert len(rs.servers) == placer.replication
        assert len(set(rs.servers)) == len(rs.servers)
        assert all(0 <= s < placer.n_servers for s in rs.servers)


class TestSingleHashPlacer:
    def test_replication_is_one(self):
        p = SingleHashPlacer(8)
        assert p.replication == 1
        assert len(p.servers_for(5)) == 1


class TestFullReplicationPlacer:
    def test_banks_must_divide(self):
        with pytest.raises(ConfigurationError):
            FullReplicationPlacer(10, 3)

    def test_banks_positive(self):
        with pytest.raises(ConfigurationError):
            FullReplicationPlacer(8, 0)

    def test_same_offset_in_every_bank(self):
        p = FullReplicationPlacer(12, 3)
        for item in range(200):
            servers = p.servers_for(item)
            offsets = {s % p.bank_size for s in servers}
            banks = sorted(s // p.bank_size for s in servers)
            assert len(offsets) == 1
            assert banks == [0, 1, 2]

    def test_each_bank_holds_full_copy(self):
        """Every item has exactly one replica per bank."""
        p = FullReplicationPlacer(8, 2)
        for item in range(100):
            servers = p.servers_for(item)
            assert len(servers) == 2
            assert servers[0] < 4 <= servers[1]

    def test_within_bank_distribution(self):
        p = FullReplicationPlacer(8, 2)
        counts = np.zeros(4)
        for item in range(2000):
            counts[p.distinguished_for(item)] += 1
        assert counts.min() > 0.6 * 500
        assert counts.max() < 1.5 * 500


class TestRandomPlacer:
    def test_memoised_determinism(self):
        p = RandomPlacer(16, 4, seed=3)
        assert p.servers_for(9) == p.servers_for(9)
        q = RandomPlacer(16, 4, seed=3)
        assert p.servers_for(9) == q.servers_for(9)

    def test_uniform_over_servers(self):
        p = RandomPlacer(8, 1)
        counts = np.zeros(8)
        for item in range(4000):
            counts[p.servers_for(item)[0]] += 1
        expected = 4000 / 8
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 24.3  # 7 dof, p ~ 0.001

    def test_replication_bounds(self):
        with pytest.raises(ConfigurationError):
            RandomPlacer(4, 5)


class TestMakePlacer:
    def test_known_kinds(self):
        assert isinstance(make_placer("rch", 8, 2), RangedConsistentHashPlacer)
        assert isinstance(make_placer("multihash", 8, 2), MultiHashPlacer)
        assert isinstance(make_placer("random", 8, 2), RandomPlacer)

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            make_placer("nope", 8, 2)

    def test_kwargs_forwarded(self):
        p = make_placer("rch", 8, 2, vnodes=16)
        assert p.ring.vnodes == 16

"""Epoch delta computation and the throttled repair executor."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.errors import ConfigurationError
from repro.membership import (
    EpochedPlacer,
    RepairExecutor,
    cluster_repair_fns,
    compute_epoch_delta,
)


def delta_between(old_map, new_map, items, **kw):
    return compute_epoch_delta(old_map.__getitem__, new_map.__getitem__, items, **kw)


class TestComputeEpochDelta:
    def test_identical_placements_need_nothing(self):
        m = {0: (0, 1), 1: (1, 2)}
        d = delta_between(m, m, [0, 1])
        assert not d.copies and not d.drops and d.items_touched == 0
        assert d.churn_fraction == 0.0

    def test_new_assignment_becomes_copy_with_surviving_source(self):
        d = delta_between({0: (0, 1)}, {0: (0, 2)}, [0])
        assert len(d.copies) == 1
        op = d.copies[0]
        assert (op.item, op.target, op.source) == (0, 2, 0)
        assert d.drops == tuple([type(d.drops[0])(item=0, server=1)])

    def test_dead_server_cannot_source(self):
        # server 0 held the item but is dead; source must be server 1
        d = delta_between({0: (0, 1)}, {0: (1, 2)}, [0], alive={1, 2})
        assert d.copies[0].source == 1

    def test_no_survivor_means_backing_store_fetch(self):
        d = delta_between({0: (0,)}, {0: (1,)}, [0], alive={1})
        assert d.copies[0].source is None

    def test_promotion_accounting(self):
        # old home 0 dies; replica 1 is promoted, a fresh copy lands on 2
        d = delta_between({0: (0, 1)}, {0: (1, 2)}, [0], alive={1, 2})
        assert d.promotions == 1
        # the promoted server already holds the item -> pin flip, no copy
        assert [(p.item, p.server) for p in d.pin_flips] == [(0, 1)]
        copy_targets = {c.target for c in d.copies}
        assert copy_targets == {2}

    def test_demotion_when_old_home_survives_as_replica(self):
        # recovery: canonical home 0 comes back, 1 returns to plain replica
        d = delta_between({0: (1, 2)}, {0: (0, 1)}, [0], alive={0, 1, 2})
        assert d.promotions == 1
        assert [(x.item, x.server) for x in d.demotions] == [(0, 1)]
        assert d.copies[0].target == 0 and d.copies[0].pin

    def test_per_server_traffic_accounting(self):
        d = delta_between(
            {0: (0, 1), 1: (0, 1)}, {0: (0, 2), 1: (0, 3)}, [0, 1]
        )
        assert d.per_server_incoming == {2: 1, 3: 1}
        assert d.per_server_outgoing == {0: 2}
        assert d.repair_traffic_items == 2
        assert d.n_assignments == 4
        assert d.churn_fraction == pytest.approx(0.5)


class TestRepairExecutor:
    def test_throttled_drain_and_completion_stamp(self):
        applied = []
        ex = RepairExecutor(lambda op: applied.append(op.item))
        d = delta_between({i: (0,) for i in range(5)}, {i: (1,) for i in range(5)}, range(5))
        record = ex.submit(d, tag="e1")
        assert record["completed_at"] is None and ex.pending() == 5
        assert ex.step(2, clock=10) == 2
        assert record["completed_at"] is None
        assert ex.step(99, clock=11) == 3
        assert record["completed_at"] == 11
        assert applied == [0, 1, 2, 3, 4]
        assert ex.copies_applied == 5 and ex.pending() == 0

    def test_empty_delta_completes_immediately(self):
        ex = RepairExecutor(lambda op: None)
        d = delta_between({0: (0,)}, {0: (0,)}, [0])
        assert ex.submit(d)["completed_at"] == "immediate"

    def test_two_batches_fifo(self):
        ex = RepairExecutor(lambda op: None)
        d1 = delta_between({0: (0,)}, {0: (1,)}, [0])
        d2 = delta_between({1: (0,)}, {1: (1,)}, [1])
        r1, r2 = ex.submit(d1), ex.submit(d2)
        ex.step(1, clock=1)
        assert r1["completed_at"] == 1 and r2["completed_at"] is None
        ex.step(1, clock=2)
        assert r2["completed_at"] == 2

    def test_negative_budget_rejected(self):
        ex = RepairExecutor(lambda op: None)
        with pytest.raises(ConfigurationError):
            ex.step(-1)


class TestClusterRepairFns:
    def test_copy_drop_demote_pin_against_stores(self):
        placer = EpochedPlacer("rch", 4, 2, seed=3)
        cluster = Cluster(placer, range(50))
        before = {i: placer.servers_for(i) for i in range(50)}
        placer.install_view(placer.view.without(0))
        delta = compute_epoch_delta(
            before.__getitem__,
            placer.servers_for,
            range(50),
            alive=placer.view.alive_servers,
        )
        ex = RepairExecutor(*cluster_repair_fns(cluster, placer))
        ex.submit(delta, tag=1)
        ex.drain(clock=0)
        for i in range(50):
            servers = placer.servers_for(i)
            assert cluster.servers[servers[0]].store.is_pinned(i)
            for s in servers[1:]:
                assert i in cluster.servers[s].store

"""Client-side epoch handling: dead verdicts become membership changes,
and both clients re-cover over the new view mid-stream."""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.core.bundling import Bundler
from repro.faults.ftclient import FaultTolerantRnBClient
from repro.faults.health import HealthTracker
from repro.faults.injector import DynamicFaultInjector
from repro.membership import (
    EpochedPlacer,
    MembershipService,
    make_cluster_service,
)
from repro.protocol.memclient import MemcachedConnection
from repro.protocol.memserver import MemcachedServer
from repro.protocol.rnbclient import RnBProtocolClient
from repro.protocol.transport import LoopbackTransport
from repro.types import Request

N_ITEMS = 300


def make_sim_stack(n=8, r=3, *, dead_after=2, confirm_after=1):
    placer = EpochedPlacer("rch", n, r, seed=5, vnodes=32)
    cluster = Cluster(placer, range(N_ITEMS))
    injector = DynamicFaultInjector()
    cluster.attach_injector(injector)
    service = make_cluster_service(
        cluster, placer, confirm_after=confirm_after, repair_rate=None
    )
    health = HealthTracker(n, dead_after=dead_after)
    client = FaultTolerantRnBClient(
        cluster, Bundler(placer), health=health, membership=service
    )
    return placer, cluster, injector, service, client


class TestSimulatorClient:
    def test_dead_verdict_commits_removal_and_request_completes(self):
        placer, cluster, injector, service, client = make_sim_stack()
        injector.kill(2)
        cluster.wipe_server(2)
        committed = 0
        for start in range(0, N_ITEMS, 25):
            req = Request(items=tuple(range(start, start + 25)))
            res = client.execute(req)
            assert res.items_fetched == 25  # availability holds throughout
            committed += res.membership_commits
            if committed:
                break
        assert committed == 1
        assert placer.epoch == 1
        assert 2 not in service.view.alive_servers
        assert res.epoch == 1

    def test_view_refresh_flag_on_external_epoch_change(self):
        placer, cluster, injector, service, client = make_sim_stack()
        # another actor moves the topology between this client's requests
        service.propose_removal(5, source="other-client")
        res = client.execute(Request(items=(0, 1, 2)))
        assert res.view_refreshed
        assert res.epoch == 1
        res2 = client.execute(Request(items=(3, 4)))
        assert not res2.view_refreshed

    def test_quorum_requires_distinct_clients(self):
        placer, cluster, injector, service, _ = make_sim_stack(confirm_after=2)
        # each client has its OWN health view (as real clients would), so
        # both independently contact the dead server and reach a verdict
        a = FaultTolerantRnBClient(
            cluster,
            Bundler(placer),
            health=HealthTracker(8, dead_after=1),
            membership=service,
        )
        b = FaultTolerantRnBClient(
            cluster,
            Bundler(placer),
            health=HealthTracker(8, dead_after=1),
            membership=service,
        )
        injector.kill(1)
        # items all replicated on the victim force it into both covers
        items = tuple(i for i in range(N_ITEMS) if 1 in placer.servers_for(i))[:40]
        ra = a.execute(Request(items=items))
        assert ra.membership_commits == 0 and placer.epoch == 0
        rb = b.execute(Request(items=items))
        assert rb.membership_commits == 1 and placer.epoch == 1

    def test_repair_restores_full_replication_after_commit(self):
        placer, cluster, injector, service, client = make_sim_stack()
        injector.kill(2)
        cluster.wipe_server(2)
        for start in range(0, N_ITEMS, 25):
            client.execute(Request(items=tuple(range(start, start + 25))))
        service.tick(clock=0)  # unthrottled drain
        assert service.pending_repair() == 0
        for i in range(N_ITEMS):
            for s in placer.servers_for(i):
                assert i in cluster.servers[s].store


class FailableTransport(LoopbackTransport):
    def __init__(self, server):
        super().__init__(server)
        self.alive = True

    def exchange(self, request, n_responses=1):
        if not self.alive:
            raise ConnectionError("server down")
        return super().exchange(request, n_responses)


class TestProtocolClient:
    def make_stack(self, n=6, r=3):
        placer = EpochedPlacer("rch", n, r, seed=5, vnodes=32)
        servers = {i: MemcachedServer(name=f"m{i}") for i in range(n)}
        transports = {i: FailableTransport(servers[i]) for i in range(n)}
        conns = {i: MemcachedConnection(transports[i]) for i in range(n)}
        # protocol-side service: placement-only healing (no simulator
        # cluster behind it), which is exactly the client's contract
        service = MembershipService(placer, [], confirm_after=1)
        health = HealthTracker(n, dead_after=2)
        client = RnBProtocolClient(
            conns, placer, health=health, membership=service
        )
        return placer, transports, service, client

    def test_dead_transport_commits_removal(self):
        placer, transports, service, client = self.make_stack()
        keys = [f"k{i}" for i in range(60)]
        for k in keys:
            client.set(k, k.encode())
        transports[1].alive = False
        # requests of keys all replicated on server 1 make it the best
        # greedy pick, so the client is guaranteed to observe the failure
        on_1 = [k for k in keys if 1 in placer.servers_for(k)]
        assert len(on_1) >= 4
        out = None
        for attempt in range(4):  # dead_after=2 errors, then the commit
            out = client.get_multi(on_1)
            assert not out.missing
            if out.membership_commits:
                break
        assert placer.epoch == 1
        assert 1 not in service.view.alive_servers
        assert out.epoch == 1
        # subsequent plans never touch the removed server
        out2 = client.get_multi(keys)
        assert not out2.missing
        assert 1 not in {
            s for s in out2.failed_servers
        }  # never even attempted

    def test_epoched_placer_relaxes_connection_validation(self):
        # connections may cover only the alive servers of the view
        placer = EpochedPlacer("rch", 4, 2, seed=5, vnodes=32)
        placer.install_view(placer.view.without(3))
        servers = {i: MemcachedServer(name=f"m{i}") for i in (0, 1, 2)}
        conns = {
            i: MemcachedConnection(LoopbackTransport(servers[i])) for i in (0, 1, 2)
        }
        client = RnBProtocolClient(conns, placer)
        client.set("a", b"1")
        assert client.get("a") == b"1"

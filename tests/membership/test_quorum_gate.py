"""Quorum-gated membership: no epoch can commit on both sides of a split."""

from __future__ import annotations

import pytest

from repro.errors import NoQuorumError
from repro.membership import EpochedPlacer, MembershipService


def make_service(n=5, *, prober=None, confirm_after=1):
    placer = EpochedPlacer("rch", n, 2, seed=0, vnodes=16)
    return MembershipService(
        placer,
        range(30),
        executor=None,
        confirm_after=confirm_after,
        quorum_prober=prober,
    )


def side_prober(reachable):
    reachable = set(reachable)
    return lambda server: server in reachable


class TestHasQuorum:
    def test_no_prober_means_always_quorate(self):
        service = make_service()
        assert service.has_quorum()

    def test_majority_side_is_quorate(self):
        service = make_service(5, prober=side_prober({0, 1, 2}))
        assert service.has_quorum()

    def test_minority_side_is_not(self):
        service = make_service(5, prober=side_prober({3, 4}))
        assert not service.has_quorum()

    def test_exact_half_is_not_quorum(self):
        service = make_service(4, prober=side_prober({0, 1}))
        assert not service.has_quorum()

    def test_dead_members_still_count_in_denominator(self):
        # 5 members; one removed member leaves the view, but a *dead*
        # (not yet removed) member still inflates the bar
        service = make_service(5, prober=side_prober({0, 1, 2}))
        assert service.propose_removal(3)
        # view now has 4 members; reaching 3 of 4 still clears the bar
        assert service.has_quorum()
        service.quorum_prober = side_prober({0, 1})
        assert not service.has_quorum()  # 2 of 4 does not


class TestProposalGate:
    def test_minority_removal_is_rejected_and_uncommitted(self):
        service = make_service(5, prober=side_prober({3, 4}))
        epoch = service.epoch
        assert service.propose_removal(0) is False
        assert service.epoch == epoch
        assert service.events == []
        assert service.quorum_rejections == 1

    def test_rejected_proposal_needs_fresh_confirmation_after_heal(self):
        service = make_service(5, prober=side_prober({3, 4}), confirm_after=2)
        service.propose_removal(0, source="a")
        assert service.propose_removal(0, source="b") is False  # rejected
        service.quorum_prober = None  # healed: quorum regained
        # confirmations were cleared at rejection — one source is not enough
        assert service.propose_removal(0, source="a") is False
        assert service.propose_removal(0, source="b") is True

    def test_majority_removal_commits(self):
        service = make_service(5, prober=side_prober({0, 1, 2}))
        assert service.propose_removal(4) is True
        assert service.events[-1].kind == "remove"
        assert service.epoch == 1

    def test_minority_recovery_and_join_raise(self):
        service = make_service(5, prober=side_prober({3, 4}))
        with pytest.raises(NoQuorumError):
            service.announce_recovery(3)
        with pytest.raises(NoQuorumError):
            service.announce_join(99)
        assert service.quorum_rejections == 2
        assert service.epoch == 0

    def test_disjoint_sides_cannot_both_commit(self):
        placer_a = EpochedPlacer("rch", 5, 2, seed=0, vnodes=16)
        placer_b = EpochedPlacer("rch", 5, 2, seed=0, vnodes=16)
        majority = MembershipService(
            placer_a, range(30), executor=None,
            quorum_prober=side_prober({0, 1, 2}),
        )
        minority = MembershipService(
            placer_b, range(30), executor=None,
            quorum_prober=side_prober({3, 4}),
        )
        assert majority.propose_removal(4) is True
        assert minority.propose_removal(0) is False
        assert majority.epoch == 1 and minority.epoch == 0

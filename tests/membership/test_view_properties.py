"""Hypothesis properties of epoch-aware placement (satellite of the
self-healing PR): minimal churn and invariant replica counts.

The two load-bearing claims of :class:`~repro.membership.epoched.
EpochedPlacer`:

1. removing one server moves **only** items that had a replica on it —
   everything else keeps its exact replica list (minimal churn);
2. after any single removal, every item still has exactly
   ``min(R, n_alive)`` *distinct, alive* replicas, and a promoted home
   is the old replica 1 whenever the old home died.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.membership import EpochedPlacer

# (kind, n_servers, replication, victim, seed)
placer_params = st.tuples(
    st.sampled_from(["rch", "multihash"]),
    st.integers(2, 10),
    st.integers(1, 4),
    st.integers(0, 9),
    st.integers(0, 2**16),
).map(lambda t: (t[0], t[1], min(t[2], t[1]), t[3] % t[1], t[4]))

N_ITEMS = 80


@settings(max_examples=60, deadline=None)
@given(placer_params)
def test_removal_moves_only_items_the_victim_held(params):
    kind, n, r, victim, seed = params
    placer = EpochedPlacer(kind, n, r, seed=seed, vnodes=32)
    before = {i: placer.servers_for(i) for i in range(N_ITEMS)}
    placer.install_view(placer.view.without(victim))
    for i in range(N_ITEMS):
        after = placer.servers_for(i)
        if victim not in before[i]:
            assert after == before[i], (
                f"item {i} moved without holding a replica on {victim}"
            )


@settings(max_examples=60, deadline=None)
@given(placer_params)
def test_survivors_keep_full_effective_replication(params):
    kind, n, r, victim, seed = params
    placer = EpochedPlacer(kind, n, r, seed=seed, vnodes=32)
    placer.install_view(placer.view.without(victim))
    alive = placer.view.alive_servers
    r_eff = min(r, len(alive))
    assert placer.replication_effective == r_eff
    for i in range(N_ITEMS):
        servers = placer.servers_for(i)
        assert len(servers) == len(set(servers)) == r_eff
        assert set(servers) <= alive


@settings(max_examples=60, deadline=None)
@given(placer_params)
def test_promotion_is_old_replica_one(params):
    kind, n, r, victim, seed = params
    placer = EpochedPlacer(kind, n, r, seed=seed, vnodes=32)
    before = {i: placer.servers_for(i) for i in range(N_ITEMS)}
    placer.install_view(placer.view.without(victim))
    for i in range(N_ITEMS):
        old = before[i]
        if old[0] == victim and len(old) > 1:
            assert placer.servers_for(i)[0] == old[1]


@settings(max_examples=40, deadline=None)
@given(placer_params)
def test_recovery_restores_the_original_placement(params):
    kind, n, r, victim, seed = params
    placer = EpochedPlacer(kind, n, r, seed=seed, vnodes=32)
    before = {i: placer.servers_for(i) for i in range(N_ITEMS)}
    placer.install_view(placer.view.without(victim))
    placer.install_view(placer.view.with_recovered(victim))
    assert {i: placer.servers_for(i) for i in range(N_ITEMS)} == before


@settings(max_examples=40, deadline=None)
@given(placer_params, st.integers(0, 9))
def test_double_failure_still_covers_when_possible(params, second):
    """Two sequential removals: every item keeps min(R, n_alive) distinct
    alive replicas (availability floor under multi-failure)."""
    kind, n, r, victim, seed = params
    if n < 3:
        return
    second = second % n
    if second == victim:
        second = (second + 1) % n
    placer = EpochedPlacer(kind, n, r, seed=seed, vnodes=32)
    placer.install_view(placer.view.without(victim))
    placer.install_view(placer.view.without(second))
    alive = placer.view.alive_servers
    r_eff = min(r, len(alive))
    for i in range(N_ITEMS):
        servers = placer.servers_for(i)
        assert len(set(servers)) == r_eff
        assert set(servers) <= alive

"""MembershipService: proposals, commits, and the repair pump."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.errors import ConfigurationError
from repro.membership import EpochedPlacer, MembershipService, make_cluster_service


def make(n=6, r=3, items=120, **kw):
    placer = EpochedPlacer("rch", n, r, seed=1)
    cluster = Cluster(placer, range(items))
    return cluster, placer, make_cluster_service(cluster, placer, **kw)


class TestProposals:
    def test_single_source_commits_at_confirm_after_1(self):
        _, placer, svc = make()
        assert svc.propose_removal(2)
        assert placer.epoch == 1
        assert 2 not in svc.view.alive_servers

    def test_quorum_of_sources(self):
        _, placer, svc = make(confirm_after=2)
        assert not svc.propose_removal(2, source="client-a")
        assert placer.epoch == 0
        # same source again does not advance the count
        assert not svc.propose_removal(2, source="client-a")
        assert svc.propose_removal(2, source="client-b")
        assert placer.epoch == 1

    def test_stale_proposals_ignored(self):
        _, placer, svc = make()
        svc.propose_removal(2)
        # 2 is already gone; a stale client's proposal is a no-op
        assert not svc.propose_removal(2)
        assert placer.epoch == 1

    def test_never_removes_last_server(self):
        _, placer, svc = make(n=2, r=1)
        assert svc.propose_removal(0)
        assert not svc.propose_removal(1)
        assert 1 in svc.view.alive_servers

    def test_proposals_reset_after_commit(self):
        _, placer, svc = make(confirm_after=2)
        svc.propose_removal(2, source="a")
        svc.propose_removal(3, source="a")
        svc.propose_removal(2, source="b")  # commits removal of 2
        # the half-confirmed proposal for 3 must not survive the epoch:
        # "b" is only the FIRST source again, and "c" completes the quorum
        assert not svc.propose_removal(3, source="b")
        assert svc.propose_removal(3, source="c")


class TestRepairPump:
    def test_throttle_budget_per_tick(self):
        _, placer, svc = make(repair_rate=10)
        svc.propose_removal(1)
        total = svc.pending_repair()
        assert total > 10
        assert svc.tick(clock=0) == 10
        assert svc.pending_repair() == total - 10
        ticks = 1
        while svc.pending_repair():
            assert svc.tick(clock=ticks) <= 10
            ticks += 1
        event = svc.events[-1]
        assert event.repair_completed_at == ticks - 1

    def test_unthrottled_tick_drains_everything(self):
        _, _, svc = make(repair_rate=None)
        svc.propose_removal(1)
        svc.tick(clock=0)
        assert svc.pending_repair() == 0

    def test_event_log_records_the_story(self):
        cluster, placer, svc = make()
        svc.propose_removal(4)
        svc.tick(clock=0)
        svc.announce_recovery(4)
        svc.tick(clock=1)
        cluster.add_server(6)
        svc.announce_join(6)
        svc.tick(clock=2)
        kinds = [(e.kind, e.server, e.epoch) for e in svc.events]
        assert kinds == [("remove", 4, 1), ("recover", 4, 2), ("join", 6, 3)]
        assert all(e.repair_items > 0 for e in svc.events)

    def test_join_then_full_replication_on_new_server(self):
        cluster, placer, svc = make(n=4, r=2, items=80)
        cluster.add_server(4)
        svc.announce_join(4)
        svc.tick(clock=0)
        for i in range(80):
            for s in placer.servers_for(i):
                assert i in cluster.servers[s].store

    def test_config_validation(self):
        placer = EpochedPlacer("rch", 4, 2, seed=1)
        with pytest.raises(ConfigurationError):
            MembershipService(placer, range(10), confirm_after=0)
        with pytest.raises(ConfigurationError):
            MembershipService(placer, range(10), repair_rate=-1)


class TestEpochedPlacerGuards:
    def test_stale_view_install_refused(self):
        placer = EpochedPlacer("rch", 4, 2, seed=1)
        v0 = placer.view
        placer.install_view(v0.without(1))
        with pytest.raises(ConfigurationError):
            placer.install_view(v0)

    def test_same_epoch_reinstall_allowed(self):
        placer = EpochedPlacer("rch", 4, 2, seed=1)
        placer.install_view(placer.view)  # idempotent refresh

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            EpochedPlacer("mod", 4, 2)

"""ClusterView: epochs, transitions, and their guard rails."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.membership import ClusterView


class TestInitial:
    def test_initial_view(self):
        v = ClusterView.initial(4)
        assert v.epoch == 0
        assert v.alive_servers == frozenset(range(4))
        assert v.members == (0, 1, 2, 3)
        assert v.n_alive == v.n_members == 4
        assert v.id_space == 4
        assert not v.dead_servers

    def test_initial_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ClusterView.initial(0)

    def test_alive_must_be_members(self):
        with pytest.raises(ConfigurationError):
            ClusterView(epoch=0, alive_servers=frozenset({5}), members=(0, 1))

    def test_views_are_values(self):
        a = ClusterView.initial(3)
        b = ClusterView(epoch=0, alive_servers=frozenset({0, 1, 2}))
        assert a == b


class TestTransitions:
    def test_without_keeps_membership(self):
        v = ClusterView.initial(3).without(1)
        assert v.epoch == 1
        assert v.alive_servers == frozenset({0, 2})
        assert v.members == (0, 1, 2)  # id stays a member
        assert v.dead_servers == frozenset({1})
        assert v.id_space == 3

    def test_without_last_server_refused(self):
        v = ClusterView.initial(2).without(0)
        with pytest.raises(ConfigurationError):
            v.without(1)

    def test_without_dead_server_refused(self):
        v = ClusterView.initial(3).without(1)
        with pytest.raises(ConfigurationError):
            v.without(1)

    def test_recovery_roundtrip(self):
        v0 = ClusterView.initial(3)
        v2 = v0.without(2).with_recovered(2)
        assert v2.epoch == 2
        assert v2.alive_servers == v0.alive_servers
        assert v2.members == v0.members

    def test_recover_requires_membership(self):
        v = ClusterView.initial(3)
        with pytest.raises(ConfigurationError):
            v.with_recovered(7)

    def test_recover_alive_refused(self):
        v = ClusterView.initial(3)
        with pytest.raises(ConfigurationError):
            v.with_recovered(1)

    def test_join_new_id(self):
        v = ClusterView.initial(3).with_join(3)
        assert v.members == (0, 1, 2, 3)
        assert v.alive_servers == frozenset(range(4))
        assert v.id_space == 4

    def test_join_existing_member_refused(self):
        v = ClusterView.initial(3).without(1)
        with pytest.raises(ConfigurationError):
            v.with_join(1)  # dead member: with_recovered, not with_join

    def test_epochs_are_monotone_across_any_walk(self):
        v = ClusterView.initial(4)
        epochs = [v.epoch]
        for step in (
            lambda x: x.without(0),
            lambda x: x.with_join(4),
            lambda x: x.with_recovered(0),
            lambda x: x.without(3),
        ):
            v = step(v)
            epochs.append(v.epoch)
        assert epochs == sorted(epochs) == list(range(5))

    def test_describe_mentions_dead(self):
        v = ClusterView.initial(3).without(1)
        assert "dead=[1]" in v.describe()

"""Schema and regression-compare logic of ``rnb perfbench``."""

from __future__ import annotations

import copy
import json

from repro.perf.bench import (
    SCHEMA_VERSION,
    compare_against_baseline,
    dumps,
    format_report,
    run_perfbench,
)

LAYERS = ("cover", "plan", "end_to_end", "obs_overhead")


def _tiny_run():
    return run_perfbench(scale=0.02, n_requests=40, repeats=1)


def test_perfbench_document_schema():
    doc = _tiny_run()
    assert doc["schema"] == SCHEMA_VERSION
    assert set(doc["benchmarks"]) == set(LAYERS)
    for entry in doc["benchmarks"].values():
        assert entry["baseline_rps"] > 0
        assert entry["fast_rps"] > 0
        assert entry["speedup"] > 0
    assert doc["config"]["n_requests"] == 40
    assert "overhead_pct" in doc["benchmarks"]["obs_overhead"]
    assert json.loads(dumps(doc)) == doc


def test_quick_profile_shrinks_run():
    doc = run_perfbench(scale=0.02, n_requests=5000, repeats=10, quick=True)
    assert doc["config"]["quick"] is True
    assert doc["config"]["n_requests"] <= 400
    assert doc["config"]["repeats"] <= 3


def test_format_report_lists_all_layers():
    doc = _tiny_run()
    report = format_report(doc)
    for layer in LAYERS:
        assert layer in report


def test_compare_passes_identical_runs():
    doc = _tiny_run()
    assert compare_against_baseline(doc, copy.deepcopy(doc)) == []


def test_compare_flags_regression():
    doc = _tiny_run()
    regressed = copy.deepcopy(doc)
    for entry in regressed["benchmarks"].values():
        entry["speedup"] = entry["speedup"] * 0.1
    failures = compare_against_baseline(regressed, doc, tolerance=0.4)
    assert len(failures) == len(LAYERS)
    assert all("below floor" in f for f in failures)


def test_compare_flags_schema_and_missing_benchmarks():
    doc = _tiny_run()
    assert compare_against_baseline({"schema": 999}, doc)
    missing = copy.deepcopy(doc)
    del missing["benchmarks"]["plan"]
    failures = compare_against_baseline(missing, doc)
    assert any("missing" in f for f in failures)

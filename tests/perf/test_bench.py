"""Schema and regression-compare logic of ``rnb perfbench``."""

from __future__ import annotations

import copy
import json

from repro.perf.bench import (
    SCHEMA_VERSION,
    compare_against_baseline,
    dumps,
    format_report,
    resolve_workers,
    run_perfbench,
)

LAYERS = ("cover", "plan", "end_to_end", "obs_overhead", "sharded")


def _tiny_run(**kwargs):
    # 40 requests is below MIN_REQUESTS_PER_SHARD * 2, so the sharded
    # section measures the in-process fallback — fast, and the token
    # comparison still exercises the full schema.
    return run_perfbench(scale=0.02, n_requests=40, repeats=1, **kwargs)


def test_perfbench_document_schema():
    doc = _tiny_run()
    assert doc["schema"] == SCHEMA_VERSION
    assert set(doc["benchmarks"]) == set(LAYERS)
    for entry in doc["benchmarks"].values():
        assert entry["baseline_rps"] > 0
        assert entry["fast_rps"] > 0
        assert entry["speedup"] > 0
        assert entry["workers"] >= 1
    assert doc["config"]["n_requests"] == 40
    assert doc["config"]["workers"] >= 1
    assert doc["config"]["cpus"] >= 1
    assert "overhead_pct" in doc["benchmarks"]["obs_overhead"]
    sharded = doc["benchmarks"]["sharded"]
    assert sharded["workers"] >= 2
    assert sharded["token_match"] is True
    assert sharded["determinism_token"] == str(int(sharded["determinism_token"]))
    assert json.loads(dumps(doc)) == doc


def test_quick_profile_shrinks_run():
    doc = run_perfbench(scale=0.02, n_requests=5000, repeats=10, quick=True)
    assert doc["config"]["quick"] is True
    assert doc["config"]["n_requests"] <= 400
    assert doc["config"]["repeats"] <= 3


def test_format_report_lists_all_layers():
    doc = _tiny_run()
    report = format_report(doc)
    for layer in LAYERS:
        assert layer in report


def test_compare_passes_identical_runs():
    doc = _tiny_run()
    assert compare_against_baseline(doc, copy.deepcopy(doc)) == []


def test_compare_flags_regression():
    doc = _tiny_run()
    regressed = copy.deepcopy(doc)
    for entry in regressed["benchmarks"].values():
        entry["speedup"] = entry["speedup"] * 0.1
    failures = compare_against_baseline(regressed, doc, tolerance=0.4)
    # every layer but "sharded" is speedup-gated; the sharded section is
    # gated on token_match instead (fork amortisation makes its speedup
    # incomparable across profiles)
    assert len(failures) == len(LAYERS) - 1
    assert all("below floor" in f for f in failures)
    assert not any("sharded" in f for f in failures)


def test_compare_flags_schema_and_missing_benchmarks():
    doc = _tiny_run()
    assert compare_against_baseline({"schema": 999}, doc)
    missing = copy.deepcopy(doc)
    del missing["benchmarks"]["plan"]
    failures = compare_against_baseline(missing, doc)
    assert any("missing" in f for f in failures)


def test_compare_accepts_schema1_baseline():
    doc = _tiny_run()
    legacy = copy.deepcopy(doc)
    legacy["schema"] = 1
    del legacy["benchmarks"]["sharded"]
    for entry in legacy["benchmarks"].values():
        entry.pop("workers", None)
    # schema-2 current vs schema-1 baseline: compares the common sections
    assert compare_against_baseline(doc, legacy) == []
    # the reverse pairing (stale harness, new baseline) still fails loudly
    assert any("schema" in f for f in compare_against_baseline(legacy, doc))


def test_compare_flags_sharded_token_mismatch():
    doc = _tiny_run()
    diverged = copy.deepcopy(doc)
    diverged["benchmarks"]["sharded"]["token_match"] = False
    failures = compare_against_baseline(diverged, doc)
    assert any("determinism token" in f for f in failures)


def test_resolve_workers_precedence(monkeypatch):
    monkeypatch.delenv("RNB_BENCH_WORKERS", raising=False)
    assert resolve_workers() == 1
    assert resolve_workers(4) == 4
    assert resolve_workers(0) == 1  # clamped
    monkeypatch.setenv("RNB_BENCH_WORKERS", "3")
    assert resolve_workers() == 3
    assert resolve_workers(2) == 2  # explicit argument beats the env
    monkeypatch.setenv("RNB_BENCH_WORKERS", "not-a-number")
    assert resolve_workers() == 1


def test_run_perfbench_workers_recorded(monkeypatch):
    monkeypatch.setenv("RNB_BENCH_WORKERS", "2")
    doc = _tiny_run()
    assert doc["config"]["workers"] == 2
    assert doc["benchmarks"]["sharded"]["workers"] == 2

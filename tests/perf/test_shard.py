"""The sharded engine must be bit-identical to the in-process run.

``run_simulation_sharded`` partitions the measurement stream across
workers and merges per-shard aggregates; every observable quantity —
headline counters, percentile-bearing histograms, the determinism
token, the obs registry — must match the sequential engine exactly for
any worker count (ISSUE 9's property).  Inline mode runs the same
partition + merge without forking, so hypothesis can sweep many
seed/shard combinations cheaply; one test forks real processes.
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry
from repro.perf.shard import (
    MIN_REQUESTS_PER_SHARD,
    plan_shards,
    run_simulation_sharded,
    shardable,
)
from repro.sim.config import ClientConfig, ClusterConfig, SimConfig
from repro.sim.engine import run_simulation
from repro.workloads.synthetic import make_slashdot_like


@pytest.fixture(scope="module")
def graph():
    return make_slashdot_like(seed=7, scale=0.02)


def _config(seed: int = 2013, n_requests: int = 150, **kwargs) -> SimConfig:
    base = dict(
        cluster=ClusterConfig(n_servers=16, replication=3),
        client=ClientConfig(mode="rnb"),
        n_requests=n_requests,
        warmup_requests=0,
        seed=seed,
        fast_path=True,
    )
    base.update(kwargs)
    return SimConfig(**base)


def _assert_identical(a, b):
    assert a.stats == b.stats
    assert a.txn_histogram.counts == b.txn_histogram.counts
    assert a.txn_histogram.quantile(0.5) == b.txn_histogram.quantile(0.5)
    assert a.txn_histogram.quantile(0.99) == b.txn_histogram.quantile(0.99)
    assert a.to_dict() == b.to_dict()
    assert a.determinism_token() == b.determinism_token()


# -- partition properties ----------------------------------------------------


@given(
    n_requests=st.integers(min_value=0, max_value=5000),
    workers=st.integers(min_value=1, max_value=64),
)
def test_plan_shards_partitions_exactly(n_requests, workers):
    shards = plan_shards(n_requests, workers)
    assert sum(count for _, count in shards) == n_requests
    # contiguous, in order, no gaps
    expect = 0
    for offset, count in shards:
        assert offset == expect
        assert count > 0
        expect += count
    # balanced: sizes differ by at most one
    if shards:
        sizes = [count for _, count in shards]
        assert max(sizes) - min(sizes) <= 1
    assert len(shards) <= workers


def test_plan_shards_rejects_zero_workers():
    with pytest.raises(ValueError):
        plan_shards(10, 0)


# -- shardability ------------------------------------------------------------


def test_shardable_tally_envelope():
    assert shardable(_config())
    assert not shardable(_config(fast_path=False))
    assert not shardable(
        _config(client=ClientConfig(mode="rnb", tie_break="least_loaded"))
    )
    assert not shardable(
        _config(client=ClientConfig(mode="rnb", tie_break="random"))
    )
    assert not shardable(_config(client=ClientConfig(mode="rnb", hitchhiking=True)))
    assert not shardable(
        _config(
            cluster=ClusterConfig(n_servers=16, replication=1),
            client=ClientConfig(mode="noreplication"),
        )
    )
    assert not shardable(
        _config(cluster=ClusterConfig(n_servers=16, replication=3, memory_factor=2.0))
    )
    assert not shardable(
        _config(
            cluster=ClusterConfig(n_servers=16, replication=3, lru_policy="priority")
        )
    )


# -- bit-identical merge (the tentpole property) -----------------------------


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    workers=st.sampled_from([1, 2, 4]),
)
def test_sharded_matches_sequential(graph, seed, workers):
    config = _config(seed=seed)
    sequential = run_simulation(graph, config)
    sharded = run_simulation_sharded(graph, config, workers=workers, inline=True)
    _assert_identical(sequential, sharded)


@settings(max_examples=6, deadline=None)
@given(workers=st.sampled_from([2, 3, 7]))
def test_sharded_matches_with_warmup_and_merge_window(graph, workers):
    config = _config(
        n_requests=120,
        warmup_requests=40,
        client=ClientConfig(mode="rnb", merge_window=3),
    )
    sequential = run_simulation(graph, config)
    sharded = run_simulation_sharded(graph, config, workers=workers, inline=True)
    _assert_identical(sequential, sharded)


def test_sharded_metrics_registry_merges_identically(graph):
    # Warmup plans feed the obs planner families before counters reset,
    # so shard 0 re-plans warmup when telemetry is collected; the merged
    # registry must match the sequential one's token exactly.
    config = _config(n_requests=150, warmup_requests=50)
    seq_metrics = MetricsRegistry()
    run_simulation(graph, config, metrics=seq_metrics)
    shard_metrics = MetricsRegistry()
    run_simulation_sharded(
        graph, config, workers=3, metrics=shard_metrics, inline=True
    )
    assert seq_metrics.token() == shard_metrics.token()
    assert seq_metrics.snapshot() == shard_metrics.snapshot()


def test_sharded_real_processes_match(graph):
    # One real ProcessPoolExecutor run: the pickled-graph round trip and
    # forked-interpreter rebuild must not perturb anything.
    config = _config(n_requests=MIN_REQUESTS_PER_SHARD * 3)
    sequential = run_simulation(graph, config)
    sharded = run_simulation_sharded(graph, config, workers=2)
    _assert_identical(sequential, sharded)


# -- fallbacks ---------------------------------------------------------------


def test_small_runs_fall_back_in_process(graph):
    config = _config(n_requests=MIN_REQUESTS_PER_SHARD)  # below the 2x floor
    result = run_simulation_sharded(graph, config, workers=4)
    _assert_identical(run_simulation(graph, config), result)


def test_unshardable_config_falls_back(graph):
    config = _config(
        n_requests=200,
        cluster=ClusterConfig(n_servers=16, replication=3, memory_factor=2.0),
        warmup_requests=100,
    )
    result = run_simulation(graph, config, workers=4)
    _assert_identical(run_simulation(graph, config), result)


def test_run_simulation_workers_dispatch(graph):
    # the engine's workers= knob routes through the sharded path and
    # stays bit-identical
    config = _config(n_requests=MIN_REQUESTS_PER_SHARD * 3, seed=99)
    base = run_simulation(graph, config)
    via_engine = run_simulation(graph, config, workers=2)
    _assert_identical(base, via_engine)


def test_shard_results_independent_of_worker_count(graph):
    config = _config(seed=5)
    tokens = {
        run_simulation_sharded(
            graph, config, workers=w, inline=True
        ).determinism_token()
        for w in (1, 2, 3, 4, 5, 8)
    }
    assert len(tokens) == 1

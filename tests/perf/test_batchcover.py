"""The chunk-vectorised cover kernels must match the scalar solver
pick-for-pick (selection order and per-pick assignment masks)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.placement import RandomPlacer
from repro.core.setcover import greedy_partial_cover
from repro.errors import CoverError
from repro.perf.batchcover import (
    HAS_BITWISE_COUNT,
    MAX_BATCH_ELEMENTS,
    batch_greedy_cover,
    batch_greedy_cover_wide,
    batch_masks,
)
from repro.perf.table import PlacementTable

pytestmark = pytest.mark.skipif(
    not HAS_BITWISE_COUNT, reason="numpy lacks np.bitwise_count"
)

N_SERVERS = 16


def _random_requests(rng, n_requests, max_items, n_items=800):
    out = []
    for _ in range(n_requests):
        size = int(rng.integers(1, max_items + 1))
        out.append(rng.choice(n_items, size=size, replace=False).tolist())
    return out


def _scalar_picks(table, items):
    """(server, newly-covered mask) pick sequence of the scalar solver."""
    subsets: dict[int, int] = {}
    for idx, item in enumerate(items):
        bit = 1 << idx
        for s in table.servers_for(item):
            subsets[s] = subsets.get(s, 0) | bit
    result = greedy_partial_cover(subsets, len(items), len(items))
    return [(s, result.assignment[s]) for s in result.selected]


@pytest.fixture(scope="module")
def table():
    return PlacementTable.compile(RandomPlacer(N_SERVERS, 3, seed=3), 800)


def test_narrow_kernel_matches_scalar(table):
    rng = np.random.default_rng(42)
    batches = _random_requests(rng, 200, MAX_BATCH_ELEMENTS)
    counts = np.array([len(b) for b in batches])
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    flat = np.array([i for b in batches for i in b])
    servers = table.lookup(flat)

    req_of_item = np.repeat(np.arange(len(batches)), counts)
    local = np.arange(flat.size) - offsets[req_of_item]
    masks = batch_masks(
        req_of_item,
        np.uint64(1) << local.astype(np.uint64),
        servers,
        len(batches),
        N_SERVERS,
    )
    full = ((np.uint64(1) << counts.astype(np.uint64)) - np.uint64(1)).astype(
        np.uint64
    )
    picks = batch_greedy_cover(masks, full)

    for row, items in enumerate(batches):
        assert picks[row] == _scalar_picks(table, items)


def test_wide_kernel_matches_scalar(table):
    rng = np.random.default_rng(43)
    batches = _random_requests(rng, 40, 300)
    counts = np.array([len(b) for b in batches])
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    flat = np.array([i for b in batches for i in b])
    servers = table.lookup(flat)

    n_lanes = int(counts.max() + MAX_BATCH_ELEMENTS - 1) // MAX_BATCH_ELEMENTS
    req_of_item = np.repeat(np.arange(len(batches)), counts)
    local = np.arange(flat.size) - offsets[req_of_item]
    lane = local // MAX_BATCH_ELEMENTS
    bit = np.uint64(1) << (local % MAX_BATCH_ELEMENTS).astype(np.uint64)

    masks = np.zeros((len(batches), N_SERVERS, n_lanes), dtype=np.uint64)
    rep = servers.shape[1]
    np.bitwise_or.at(
        masks,
        (
            np.repeat(req_of_item, rep),
            servers.ravel(),
            np.repeat(lane, rep),
        ),
        np.repeat(bit, rep),
    )
    lane_bits = np.clip(
        counts[:, None] - MAX_BATCH_ELEMENTS * np.arange(n_lanes)[None, :],
        0,
        MAX_BATCH_ELEMENTS,
    )
    full = ((np.uint64(1) << lane_bits.astype(np.uint64)) - np.uint64(1)).astype(
        np.uint64
    )
    picks = batch_greedy_cover_wide(masks, full)

    for row, items in enumerate(batches):
        assert picks[row] == _scalar_picks(table, items)


def test_infeasible_batch_raises():
    # one request whose item maps to no server at all
    masks = np.zeros((1, 4), dtype=np.uint64)
    full = np.array([0b11], dtype=np.uint64)
    with pytest.raises(CoverError):
        batch_greedy_cover(masks, full)


def test_workspace_kernels_match_allocating(table):
    # One workspace reused across chunks of very different sizes (forcing
    # reserve growth and stale-scratch reuse): picks must be identical to
    # the allocating kernels chunk for chunk.
    from repro.perf.batchcover import CoverWorkspace

    rng = np.random.default_rng(44)
    ws = CoverWorkspace(N_SERVERS, capacity=4)
    for n_req, max_items in [(16, MAX_BATCH_ELEMENTS), (200, 20), (7, 5)]:
        batches = _random_requests(rng, n_req, max_items)
        counts = np.array([len(b) for b in batches])
        offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
        flat = np.array([i for b in batches for i in b])
        servers = table.lookup(flat)
        req_of_item = np.repeat(np.arange(len(batches)), counts)
        local = np.arange(flat.size) - offsets[req_of_item]
        bit = np.uint64(1) << local.astype(np.uint64)
        full = ((np.uint64(1) << counts.astype(np.uint64)) - np.uint64(1)).astype(
            np.uint64
        )

        plain_masks = batch_masks(req_of_item, bit, servers, n_req, N_SERVERS)
        ws_masks = batch_masks(
            req_of_item, bit, servers, n_req, N_SERVERS, workspace=ws
        )
        assert np.array_equal(plain_masks, ws_masks)
        plain_picks = batch_greedy_cover(plain_masks, full)
        ws_picks = batch_greedy_cover(ws_masks, full, workspace=ws)
        assert plain_picks == ws_picks


def test_workspace_reserve_grows_by_powers_of_two():
    from repro.perf.batchcover import CoverWorkspace

    ws = CoverWorkspace(8, capacity=2)
    ws.reserve(2)
    assert ws.capacity == 2
    ws.reserve(9)
    assert ws.capacity == 16
    assert ws.masks.shape == (16, 8)
    assert ws.sub.shape == (16, 8)
    assert ws.gains.dtype == np.uint8


def test_wide_kernel_zero_lanes_returns_empty_picks():
    # Regression: a batch made entirely of 0-item requests (reachable via
    # LIMIT-stripped requests) allocates ceil(0/63) == 0 lanes; the wide
    # kernel must return empty covers instead of indexing a 0-lane axis.
    masks = np.zeros((3, N_SERVERS, 0), dtype=np.uint64)
    full = np.zeros((3, 0), dtype=np.uint64)
    assert batch_greedy_cover_wide(masks, full) == [[], [], []]


def test_batch_covers_skips_zero_item_rows(table):
    # A chunk mixing a narrow request, a 0-item request, and a wide one:
    # the empty row gets an empty cover and never reaches either kernel.
    from repro.core.bundling import Bundler

    bundler = Bundler(table)
    rng = np.random.default_rng(45)
    wide_items = rng.choice(800, size=100, replace=False).tolist()
    reqs = [[1, 2, 3], [], wide_items]
    counts = np.array([3, 0, 100])
    offsets = np.array([0, 3, 3])
    flat = np.array([i for r in reqs for i in r])
    servers = table.lookup(flat)
    picks = bundler._batch_covers(counts, offsets, servers)
    assert picks[1] == []
    assert picks[0] == _scalar_picks(table, reqs[0])
    assert picks[2] == _scalar_picks(table, reqs[2])

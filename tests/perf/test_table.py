"""Compiled placement tables must be bit-exact with the wrapped placer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.placement import (
    FullReplicationPlacer,
    RandomPlacer,
    SingleHashPlacer,
)
from repro.errors import ConfigurationError
from repro.hashing.hashfns import hash64_int
from repro.hashing.multihash import MultiHashPlacer
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.perf.table import PlacementTable, compile_placement, splitmix64_array

N_ITEMS = 500


PLACERS = [
    pytest.param(
        lambda: RangedConsistentHashPlacer(16, 3, vnodes=32, seed=5), id="rch"
    ),
    pytest.param(lambda: MultiHashPlacer(16, 3, seed=5), id="multihash"),
    pytest.param(lambda: SingleHashPlacer(16, vnodes=32, seed=5), id="single"),
    pytest.param(lambda: FullReplicationPlacer(16, 4, vnodes=32, seed=5), id="full"),
    pytest.param(lambda: RandomPlacer(16, 3, seed=5), id="random-generic"),
]


@pytest.mark.parametrize("make", PLACERS)
def test_compile_matches_placer(make):
    placer = make()
    table = PlacementTable.compile(placer, N_ITEMS)
    for item in range(N_ITEMS):
        assert table.servers_for(item) == placer.servers_for(item)
        assert table.distinguished_for(item) == placer.distinguished_for(item)
        assert table.replicas_for(item).servers == placer.replicas_for(item).servers


@pytest.mark.parametrize("make", PLACERS)
def test_batch_lookup_matches_rows(make):
    table = PlacementTable.compile(make(), N_ITEMS)
    items = np.array([0, 7, 499, 7, 123])
    got = table.lookup(items)
    assert got.shape == (5, table.replication)
    for row, item in zip(got.tolist(), items.tolist()):
        assert tuple(row) == table.servers_for(item)
    assert table.distinguished.tolist() == [
        table.distinguished_for(i) for i in range(N_ITEMS)
    ]


def test_out_of_universe_delegates_to_base():
    placer = RangedConsistentHashPlacer(8, 2, vnodes=16, seed=1)
    table = PlacementTable.compile(placer, 100)
    for item in (100, 10_000, "user:42", -1):
        assert table.servers_for(item) == placer.servers_for(item)
        assert table.distinguished_for(item) == placer.distinguished_for(item)


def test_lookup_returns_plain_ints():
    table = PlacementTable.compile(RandomPlacer(8, 2, seed=0), 10)
    servers = table.servers_for(3)
    assert all(type(s) is int for s in servers)


def test_recompile_reuses_or_extends():
    placer = RandomPlacer(8, 2, seed=0)
    table = compile_placement(placer, 50)
    assert PlacementTable.compile(table, 30) is table
    bigger = PlacementTable.compile(table, 80)
    assert bigger.base is placer
    assert bigger.n_items == 80


def test_compile_rejects_empty_universe():
    with pytest.raises(ConfigurationError):
        PlacementTable.compile(RandomPlacer(8, 2, seed=0), 0)


@pytest.mark.parametrize("seed", [0, 1, 17, 2013])
def test_splitmix64_array_matches_scalar(seed):
    values = np.array(
        [0, 1, 2, 63, 1 << 32, (1 << 64) - 1, 123456789], dtype=np.uint64
    )
    got = splitmix64_array(values, seed=seed)
    expected = [hash64_int(int(v), seed=seed) for v in values.tolist()]
    assert got.tolist() == expected

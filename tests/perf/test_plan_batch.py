"""Batched planning must equal per-request planning, plan for plan."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.placement import RandomPlacer
from repro.core.bundling import Bundler
from repro.core.client import RnBClient
from repro.perf.batchcover import MAX_BATCH_ELEMENTS
from repro.perf.table import PlacementTable
from repro.types import Request

N_ITEMS = 900


@pytest.fixture(scope="module")
def table():
    return PlacementTable.compile(RandomPlacer(16, 3, seed=9), N_ITEMS)


def _mixed_requests(rng, n=120):
    """Sizes straddling the single-lane limit, plus singletons."""
    requests = []
    for _ in range(n):
        size = int(rng.choice([1, 2, 7, 30, MAX_BATCH_ELEMENTS, 64, 200]))
        items = tuple(rng.choice(N_ITEMS, size=size, replace=False).tolist())
        requests.append(Request(items=items))
    return requests


@pytest.mark.parametrize("single_item_rule", [True, False])
def test_plan_batch_matches_plan(table, single_item_rule):
    rng = np.random.default_rng(7)
    bundler = Bundler(table, single_item_rule=single_item_rule)
    requests = _mixed_requests(rng)
    assert bundler.plan_batch(requests) == [bundler.plan(r) for r in requests]


def test_plan_batch_matches_plan_hitchhiking(table):
    rng = np.random.default_rng(8)
    bundler = Bundler(table, hitchhiking=True)
    requests = _mixed_requests(rng)
    assert bundler.plan_batch(requests) == [bundler.plan(r) for r in requests]


def test_plan_batch_limit_requests_fall_back(table):
    """LIMIT requests (required < size) take the scalar path, same plans."""
    rng = np.random.default_rng(9)
    bundler = Bundler(table)
    requests = [
        Request(
            items=tuple(rng.choice(N_ITEMS, size=20, replace=False).tolist()),
            limit_fraction=0.5,
        )
        for _ in range(10)
    ]
    assert bundler.plan_batch(requests) == [bundler.plan(r) for r in requests]


def test_plan_batch_exclude_falls_back(table):
    rng = np.random.default_rng(10)
    bundler = Bundler(table)
    requests = _mixed_requests(rng, n=20)
    exclude = {3, 11}
    assert bundler.plan_batch(requests, exclude=exclude) == [
        bundler.plan(r, exclude=exclude) for r in requests
    ]


def test_plan_batch_non_integer_items_fall_back():
    """String item ids defeat the dense table; plans must still agree."""
    placer = RandomPlacer(8, 2, seed=1)
    table = PlacementTable.compile(placer, 50)
    bundler = Bundler(table)
    requests = [
        Request(items=("user:1", "user:2", "user:9")),
        Request(items=(1, 2, 3)),
        Request(items=(49, 50, 51)),  # partially outside the universe
    ]
    assert bundler.plan_batch(requests) == [bundler.plan(r) for r in requests]


def test_plan_batch_raw_placer_falls_back():
    placer = RandomPlacer(8, 2, seed=1)  # no .lookup
    bundler = Bundler(placer)
    requests = [Request(items=(1, 2, 3)), Request(items=(4,))]
    assert bundler.plan_batch(requests) == [bundler.plan(r) for r in requests]


def test_plan_footprints_match_plans(table):
    rng = np.random.default_rng(11)
    for kwargs in ({}, {"single_item_rule": False}, {"hitchhiking": True}):
        bundler = Bundler(table, **kwargs)
        requests = _mixed_requests(rng, n=60)
        expected = [
            tuple((t.server, len(t.primary)) for t in bundler.plan(r).transactions)
            for r in requests
        ]
        assert bundler.plan_footprints(requests) == expected


def test_plan_footprints_bulk_metrics_match_scalar(table):
    """The vectorised path's bulk plan recording is snapshot-identical
    to the scalar path's per-plan hooks."""
    from repro.obs import MetricsRegistry

    rng = np.random.default_rng(13)
    requests = _mixed_requests(rng, n=60)

    fast_reg, scalar_reg = MetricsRegistry(), MetricsRegistry()
    Bundler(table, metrics=fast_reg).plan_footprints(requests)
    scalar = Bundler(table, metrics=scalar_reg)
    for r in requests:
        scalar.plan(r)
    assert fast_reg.snapshot() == scalar_reg.snapshot()


def test_tally_footprint_matches_execute_plan(table):
    """Counters and FetchResults agree with real execution when nothing
    can miss (naive allocation, pinned policy)."""
    rng = np.random.default_rng(12)
    requests = _mixed_requests(rng, n=60)

    def build():
        cluster = Cluster(table, range(N_ITEMS), memory_factor=None)
        return cluster, RnBClient(cluster, Bundler(table))

    real_cluster, real_client = build()
    real = [real_client.execute_plan(real_client.bundler.plan(r)) for r in requests]

    tally_cluster, tally_client = build()
    footprints = tally_client.bundler.plan_footprints(requests)
    tallied = [
        tally_client.tally_footprint(r, fp) for r, fp in zip(requests, footprints)
    ]

    assert tallied == real
    for real_srv, tally_srv in zip(real_cluster.servers, tally_cluster.servers):
        assert real_srv.counters.transactions == tally_srv.counters.transactions
        assert real_srv.counters.items_requested == tally_srv.counters.items_requested
        assert real_srv.counters.items_returned == tally_srv.counters.items_returned
        assert real_srv.counters.hits == tally_srv.counters.hits
        assert real_srv.counters.txn_sizes == tally_srv.counters.txn_sizes

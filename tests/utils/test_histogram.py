"""Unit + property tests for the integer histogram."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.histogram import Histogram

values_lists = st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=200)


class TestBasics:
    def test_empty(self):
        h = Histogram()
        assert h.total == 0
        assert h.mean == 0.0
        assert len(h) == 0

    def test_add_and_total(self):
        h = Histogram()
        h.add(3)
        h.add(3, count=2)
        assert h.counts == {3: 3}
        assert h.total == 3

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            Histogram().add(-1)

    def test_nonpositive_count_rejected(self):
        with pytest.raises(ValueError):
            Histogram().add(1, count=0)

    def test_from_values(self):
        h = Histogram.from_values([1, 1, 2])
        assert h.counts == {1: 2, 2: 1}

    def test_iteration_sorted(self):
        h = Histogram.from_values([5, 1, 3, 1])
        assert list(h) == [(1, 2), (3, 1), (5, 1)]

    def test_minmax_empty_raise(self):
        with pytest.raises(ValueError):
            Histogram().max
        with pytest.raises(ValueError):
            Histogram().min

    def test_merge(self):
        a = Histogram.from_values([1, 2])
        b = Histogram.from_values([2, 3])
        a.merge(b)
        assert a.counts == {1: 1, 2: 2, 3: 1}


class TestQuantile:
    def test_median(self):
        h = Histogram.from_values([1, 2, 3, 4, 5])
        assert h.quantile(0.5) == 3

    def test_extremes(self):
        h = Histogram.from_values([10, 20, 30])
        assert h.quantile(0.0) == 10
        assert h.quantile(1.0) == 30

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            Histogram.from_values([1]).quantile(1.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram().quantile(0.5)


class TestBinned:
    def test_basic_binning(self):
        h = Histogram.from_values([1, 2, 5, 10, 100])
        rows = h.binned([1, 5, 50])
        assert rows == [("[1,5)", 2), ("[5,50)", 2), ("[50,inf)", 1)]

    def test_below_first_edge_rejected(self):
        h = Histogram.from_values([0, 5])
        with pytest.raises(ValueError):
            h.binned([1, 10])

    def test_nonascending_edges_rejected(self):
        with pytest.raises(ValueError):
            Histogram.from_values([1]).binned([5, 5])


class TestToArrays:
    def test_empty(self):
        vals, cnts = Histogram().to_arrays()
        assert len(vals) == 0 and len(cnts) == 0

    def test_sorted_arrays(self):
        h = Histogram.from_values([3, 1, 3])
        vals, cnts = h.to_arrays()
        assert vals.tolist() == [1, 3]
        assert cnts.tolist() == [1, 2]


@given(values_lists)
def test_mean_matches_numpy(values):
    h = Histogram.from_values(values)
    assert h.mean == pytest.approx(np.mean(values))
    assert h.total == len(values)
    assert h.max == max(values)
    assert h.min == min(values)


@given(values_lists, st.floats(min_value=0.0, max_value=1.0))
def test_quantile_matches_sorted_rank(values, q):
    """quantile(q) is the smallest v with CDF(v) >= q."""
    h = Histogram.from_values(values)
    result = h.quantile(q)
    ordered = sorted(values)
    cdf_at = sum(1 for v in ordered if v <= result) / len(ordered)
    assert cdf_at >= q or result == ordered[-1]
    # nothing smaller satisfies it
    smaller = [v for v in ordered if v < result]
    if smaller:
        cdf_below = len(smaller) / len(ordered)
        assert cdf_below < q or result == ordered[0]

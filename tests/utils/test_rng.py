"""Tests for deterministic RNG plumbing."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import derive_rng, ensure_rng, spawn_seeds


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = ensure_rng(42).integers(0, 1 << 30, size=8)
        b = ensure_rng(42).integers(0, 1 << 30, size=8)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g


class TestDeriveRng:
    def test_same_stream_same_values(self):
        a = derive_rng(7, 1, 2).random(5)
        b = derive_rng(7, 1, 2).random(5)
        assert np.array_equal(a, b)

    def test_different_streams_differ(self):
        a = derive_rng(7, 1, 2).random(5)
        b = derive_rng(7, 1, 3).random(5)
        assert not np.array_equal(a, b)

    def test_different_master_seeds_differ(self):
        a = derive_rng(7, 1).random(5)
        b = derive_rng(8, 1).random(5)
        assert not np.array_equal(a, b)


class TestSpawnSeeds:
    def test_count_and_determinism(self):
        seeds = spawn_seeds(99, 10)
        assert len(seeds) == 10
        assert seeds == spawn_seeds(99, 10)

    def test_distinct(self):
        seeds = spawn_seeds(99, 50)
        assert len(set(seeds)) == 50

    def test_nonnegative_63bit(self):
        for s in spawn_seeds(5, 20):
            assert 0 <= s < 1 << 63

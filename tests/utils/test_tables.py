"""Tests for the ASCII table renderers."""

from __future__ import annotations

import pytest

from repro.utils.tables import format_series, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        out = format_table(["a", "long"], [[1, 2.5], [30, 4]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456789]])
        assert "0.1235" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestFormatSeries:
    def test_basic(self):
        out = format_series("n", [1, 2], {"tpr": [1.0, 2.0], "ideal": [1.0, 4.0]})
        assert "tpr" in out and "ideal" in out
        assert len(out.splitlines()) == 4  # header, sep, 2 rows

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("n", [1, 2], {"tpr": [1.0]})

    def test_title_propagates(self):
        out = format_series("n", [1], {"s": [0.5]}, title="T")
        assert out.splitlines()[0] == "T"

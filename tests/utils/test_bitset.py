"""Unit + property tests for the bitset helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitset import (
    bit_indices,
    from_indices,
    iter_bits,
    lowest_bit_index,
    popcount,
)

index_sets = st.sets(st.integers(min_value=0, max_value=300), max_size=40)


class TestPopcount:
    def test_empty(self):
        assert popcount(0) == 0

    def test_single_bits(self):
        for i in (0, 1, 7, 63, 64, 200):
            assert popcount(1 << i) == 1

    def test_all_ones(self):
        assert popcount((1 << 100) - 1) == 100


class TestFromIndices:
    def test_empty(self):
        assert from_indices([]) == 0

    def test_basic(self):
        assert from_indices([0, 2]) == 0b101

    def test_duplicates_idempotent(self):
        assert from_indices([3, 3, 3]) == 0b1000

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            from_indices([-1])


class TestBitIndices:
    def test_empty(self):
        assert bit_indices(0) == []

    def test_sorted(self):
        assert bit_indices(0b101001) == [0, 3, 5]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bit_indices(-1)


class TestIterBits:
    def test_matches_bit_indices(self):
        mask = 0b1011010
        assert list(iter_bits(mask)) == bit_indices(mask)

    def test_lazy_empty(self):
        assert list(iter_bits(0)) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            list(iter_bits(-5))


class TestLowestBit:
    def test_basic(self):
        assert lowest_bit_index(0b1000) == 3
        assert lowest_bit_index(0b1001) == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            lowest_bit_index(0)


@given(index_sets)
def test_roundtrip_property(indices):
    """from_indices and bit_indices are inverse bijections."""
    mask = from_indices(indices)
    assert set(bit_indices(mask)) == indices
    assert popcount(mask) == len(indices)


@given(index_sets, index_sets)
def test_union_intersection_property(a, b):
    """Bitwise ops implement set algebra."""
    ma, mb = from_indices(a), from_indices(b)
    assert set(bit_indices(ma | mb)) == a | b
    assert set(bit_indices(ma & mb)) == a & b
    assert set(bit_indices(ma & ~mb)) == a - b

"""Tests for request-stream generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.graphs import SocialGraph
from repro.workloads.requests import (
    EgoRequestGenerator,
    RandomRequestGenerator,
    ZipfRequestGenerator,
    with_limit,
)


class TestEgoRequests:
    def test_requests_are_friend_sets(self, tiny_graph):
        gen = EgoRequestGenerator(tiny_graph, rng=np.random.default_rng(0))
        adjacency = {
            tuple(sorted(tiny_graph.out_neighbors(n).tolist()))
            for n in tiny_graph.nonisolated_nodes()
        }
        for _ in range(50):
            req = gen.generate()
            assert tuple(sorted(req.items)) in adjacency

    def test_no_empty_requests(self, tiny_graph):
        gen = EgoRequestGenerator(tiny_graph, rng=np.random.default_rng(1))
        for req in gen.stream(100):
            assert req.size >= 1

    def test_include_self(self, tiny_graph):
        gen = EgoRequestGenerator(
            tiny_graph, rng=np.random.default_rng(2), include_self=True
        )
        for _ in range(20):
            req = gen.generate()
            assert len(set(req.items)) == len(req.items)

    def test_graph_without_edges_rejected(self):
        g = SocialGraph.from_edges(3, [])
        with pytest.raises(WorkloadError):
            EgoRequestGenerator(g)

    def test_deterministic_with_seed(self, small_slashdot):
        a = EgoRequestGenerator(small_slashdot, rng=np.random.default_rng(5))
        b = EgoRequestGenerator(small_slashdot, rng=np.random.default_rng(5))
        for _ in range(20):
            assert a.generate() == b.generate()

    def test_mean_request_size(self, small_slashdot):
        gen = EgoRequestGenerator(small_slashdot, rng=np.random.default_rng(6))
        sizes = [gen.generate().size for _ in range(3000)]
        assert np.mean(sizes) == pytest.approx(gen.mean_request_size(), rel=0.25)

    def test_stream_finite(self, tiny_graph):
        gen = EgoRequestGenerator(tiny_graph, rng=np.random.default_rng(7))
        assert len(list(gen.stream(13))) == 13


class TestRandomRequests:
    def test_distinct_items(self):
        gen = RandomRequestGenerator(100, 20, rng=np.random.default_rng(0))
        for _ in range(30):
            req = gen.generate()
            assert req.size == 20
            assert len(set(req.items)) == 20
            assert all(0 <= i < 100 for i in req.items)

    def test_size_validation(self):
        with pytest.raises(WorkloadError):
            RandomRequestGenerator(10, 11)
        with pytest.raises(WorkloadError):
            RandomRequestGenerator(10, 0)

    def test_uniform_item_usage(self):
        gen = RandomRequestGenerator(50, 5, rng=np.random.default_rng(1))
        counts = np.zeros(50)
        for req in gen.stream(1000):
            for i in req.items:
                counts[i] += 1
        assert counts.min() > 0.5 * counts.mean()


class TestZipfRequests:
    def test_distinct_items_in_range(self):
        gen = ZipfRequestGenerator(200, 15, rng=np.random.default_rng(0))
        for req in gen.stream(40):
            assert req.size == 15
            assert len(set(req.items)) == 15
            assert all(0 <= i < 200 for i in req.items)

    def test_skewed_popularity(self):
        """With exponent 1, a few hot items dominate request membership."""
        gen = ZipfRequestGenerator(500, 10, exponent=1.0, rng=np.random.default_rng(1))
        counts = np.zeros(500)
        for req in gen.stream(600):
            for i in req.items:
                counts[i] += 1
        top = np.sort(counts)[::-1]
        assert top[:10].sum() > 5 * top[-100:].sum()

    def test_exponent_zero_is_uniformish(self):
        gen = ZipfRequestGenerator(100, 5, exponent=0.0, rng=np.random.default_rng(2))
        counts = np.zeros(100)
        for req in gen.stream(2000):
            for i in req.items:
                counts[i] += 1
        assert counts.min() > 0.4 * counts.mean()

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ZipfRequestGenerator(10, 11)
        with pytest.raises(WorkloadError):
            ZipfRequestGenerator(10, 0)
        with pytest.raises(WorkloadError):
            ZipfRequestGenerator(10, 5, exponent=-1)

    def test_deterministic(self):
        a = ZipfRequestGenerator(100, 5, rng=np.random.default_rng(3))
        b = ZipfRequestGenerator(100, 5, rng=np.random.default_rng(3))
        for _ in range(10):
            assert a.generate() == b.generate()


class TestWithLimit:
    def test_fraction_applied(self, tiny_graph):
        gen = EgoRequestGenerator(tiny_graph, rng=np.random.default_rng(3))
        for req in with_limit(gen.stream(20), 0.5):
            assert req.limit_fraction == 0.5

    def test_items_preserved(self):
        base = [RandomRequestGenerator(50, 5, rng=np.random.default_rng(2)).generate()]
        [limited] = list(with_limit(base, 0.9))
        assert limited.items == base[0].items

"""Tests for the SNAP edge-list loader."""

from __future__ import annotations

import gzip

import pytest

from repro.errors import WorkloadError
from repro.workloads.snap import load_snap_edge_list

SAMPLE = """\
# Directed graph (each unordered pair of nodes is saved once):
# FromNodeId\tToNodeId
10\t20
10\t30
20\t30
30\t10
"""


class TestLoader:
    def test_basic_parse(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text(SAMPLE)
        g = load_snap_edge_list(path)
        assert g.n_nodes == 3  # ids compacted
        assert g.n_edges == 4

    def test_id_compaction_first_appearance(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text(SAMPLE)
        g = load_snap_edge_list(path)
        # 10 -> 0, 20 -> 1, 30 -> 2
        assert sorted(g.out_neighbors(0).tolist()) == [1, 2]
        assert g.out_neighbors(2).tolist() == [0]

    def test_gzip_support(self, tmp_path):
        path = tmp_path / "g.txt.gz"
        with gzip.open(path, "wt") as fh:
            fh.write(SAMPLE)
        g = load_snap_edge_list(path)
        assert g.n_edges == 4

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "soc-Slashdot0902.txt"
        path.write_text(SAMPLE)
        assert load_snap_edge_list(path).name == "soc-Slashdot0902"

    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError):
            load_snap_edge_list(tmp_path / "nope.txt")

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1\n")
        with pytest.raises(WorkloadError):
            load_snap_edge_list(path)

    def test_non_integer_ids(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a\tb\n")
        with pytest.raises(WorkloadError):
            load_snap_edge_list(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# only comments\n")
        with pytest.raises(WorkloadError):
            load_snap_edge_list(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\t1\n\n1\t2\n")
        assert load_snap_edge_list(path).n_edges == 2

"""Tests for trace recording and replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.types import Request
from repro.workloads.requests import EgoRequestGenerator
from repro.workloads.traces import TraceRequestGenerator, load_trace, save_trace


class TestRoundtrip:
    def test_basic(self, tmp_path):
        original = [Request(items=(1, 2, 3)), Request(items=(4,))]
        path = tmp_path / "t.jsonl"
        assert save_trace(original, path) == 2
        assert load_trace(path) == original

    def test_limit_preserved(self, tmp_path):
        original = [Request(items=(1, 2), limit_fraction=0.5)]
        path = tmp_path / "t.jsonl"
        save_trace(original, path)
        [loaded] = load_trace(path)
        assert loaded.limit_fraction == 0.5

    def test_recorded_ego_workload_replays(self, tmp_path, small_slashdot):
        gen = EgoRequestGenerator(small_slashdot, rng=np.random.default_rng(1))
        original = list(gen.stream(50))
        path = tmp_path / "ego.jsonl"
        save_trace(original, path)
        replay = TraceRequestGenerator(path)
        assert list(replay.stream(50)) == original


class TestLoadErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError):
            load_trace(tmp_path / "nope.jsonl")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(WorkloadError):
            load_trace(path)

    def test_missing_items(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"limit": 0.5}\n')
        with pytest.raises(WorkloadError):
            load_trace(path)

    def test_duplicate_items_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"items": [1, 1]}\n')
        with pytest.raises(WorkloadError):
            load_trace(path)

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n")
        with pytest.raises(WorkloadError):
            load_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"items": [1]}\n\n{"items": [2]}\n')
        assert len(load_trace(path)) == 2


class TestGenerator:
    def test_exhaustion_raises(self):
        gen = TraceRequestGenerator([Request(items=(1,))])
        gen.generate()
        with pytest.raises(WorkloadError):
            gen.generate()

    def test_loop_wraps(self):
        gen = TraceRequestGenerator(
            [Request(items=(1,)), Request(items=(2,))], loop=True
        )
        got = [r.items[0] for r in gen.stream(5)]
        assert got == [1, 2, 1, 2, 1]

    def test_len(self):
        gen = TraceRequestGenerator([Request(items=(1,))])
        assert len(gen) == 1

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            TraceRequestGenerator([])

"""Tests for the CSR social-graph container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.graphs import SocialGraph


class TestFromEdges:
    def test_basic(self):
        g = SocialGraph.from_edges(4, [(0, 1), (0, 2), (2, 3)])
        assert g.n_nodes == 4
        assert g.n_edges == 3
        assert sorted(g.out_neighbors(0).tolist()) == [1, 2]

    def test_self_loops_dropped(self):
        g = SocialGraph.from_edges(3, [(0, 0), (0, 1)])
        assert g.n_edges == 1

    def test_duplicates_dropped(self):
        g = SocialGraph.from_edges(3, [(0, 1), (0, 1), (1, 2)])
        assert g.n_edges == 2

    def test_out_of_range_rejected(self):
        with pytest.raises(WorkloadError):
            SocialGraph.from_edges(2, [(0, 5)])

    def test_empty_graph(self):
        g = SocialGraph.from_edges(3, [])
        assert g.n_edges == 0
        assert g.out_degree(0) == 0


class TestFromAdjacency:
    def test_roundtrip(self, tiny_graph):
        assert tiny_graph.n_nodes == 6
        assert tiny_graph.out_degree(5) == 5
        assert tiny_graph.out_degree(4) == 0
        assert sorted(tiny_graph.out_neighbors(0).tolist()) == [1, 2, 3]


class TestCSRValidation:
    def test_malformed_indptr(self):
        with pytest.raises(WorkloadError):
            SocialGraph(np.array([1, 2]), np.array([0]))

    def test_decreasing_indptr(self):
        with pytest.raises(WorkloadError):
            SocialGraph(np.array([0, 2, 1]), np.array([0, 1]))

    def test_target_out_of_range(self):
        with pytest.raises(WorkloadError):
            SocialGraph(np.array([0, 1]), np.array([5]))


class TestQueries:
    def test_degrees(self, tiny_graph):
        assert tiny_graph.out_degrees().tolist() == [3, 2, 1, 1, 0, 5]
        assert tiny_graph.mean_degree == pytest.approx(12 / 6)

    def test_node_out_of_range(self, tiny_graph):
        with pytest.raises(IndexError):
            tiny_graph.out_neighbors(6)
        with pytest.raises(IndexError):
            tiny_graph.out_neighbors(-1)

    def test_degree_histogram(self, tiny_graph):
        h = tiny_graph.degree_histogram()
        assert h.counts == {3: 1, 2: 1, 1: 2, 0: 1, 5: 1}
        assert h.total == 6

    def test_nonisolated(self, tiny_graph):
        assert tiny_graph.nonisolated_nodes().tolist() == [0, 1, 2, 3, 5]

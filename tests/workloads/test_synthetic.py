"""Tests for the calibrated synthetic graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.histograms import tail_exponent_estimate
from repro.errors import WorkloadError
from repro.workloads.synthetic import (
    DATASETS,
    DatasetSpec,
    make_epinions_like,
    make_slashdot_like,
    synthesize_graph,
)


class TestSpecs:
    def test_paper_statistics_encoded(self):
        sd = DATASETS["slashdot"]
        assert sd.n_nodes == 82_168
        assert sd.n_edges == 948_464
        assert sd.mean_degree == pytest.approx(11.54, abs=0.01)
        ep = DATASETS["epinions"]
        assert ep.n_nodes == 75_879
        assert ep.n_edges == 508_837
        assert ep.mean_degree == pytest.approx(6.71, abs=0.01)


class TestGeneration:
    @pytest.mark.parametrize("dataset", ["slashdot", "epinions"])
    def test_scaled_counts_within_tolerance(self, dataset):
        spec = DATASETS[dataset]
        g = synthesize_graph(spec, seed=11, scale=0.05)
        assert g.n_nodes == pytest.approx(spec.n_nodes * 0.05, rel=0.01)
        assert g.n_edges == pytest.approx(spec.n_edges * 0.05, rel=0.03)
        assert g.mean_degree == pytest.approx(spec.mean_degree, rel=0.05)

    def test_deterministic(self):
        a = make_slashdot_like(seed=3, scale=0.02)
        b = make_slashdot_like(seed=3, scale=0.02)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)

    def test_seed_changes_graph(self):
        a = make_slashdot_like(seed=3, scale=0.02)
        b = make_slashdot_like(seed=4, scale=0.02)
        assert not (
            len(a.indices) == len(b.indices) and np.array_equal(a.indices, b.indices)
        )

    def test_heavy_tail(self):
        g = make_slashdot_like(seed=5, scale=0.1)
        degrees = g.out_degrees()
        # a heavy tail: max degree far above the mean
        assert degrees.max() > 15 * degrees.mean()
        alpha = tail_exponent_estimate(g.degree_histogram(), xmin=10)
        assert 1.3 < alpha < 3.0

    def test_no_self_loops_or_duplicates(self):
        g = make_epinions_like(seed=2, scale=0.02)
        for node in range(0, g.n_nodes, 97):
            nbrs = g.out_neighbors(node)
            assert node not in nbrs
            assert len(np.unique(nbrs)) == len(nbrs)

    def test_invalid_scale(self):
        with pytest.raises(WorkloadError):
            synthesize_graph(DATASETS["slashdot"], scale=0.0)

    def test_popular_targets_shared(self):
        """Zipf wiring: some items appear in many ego networks (the
        affinity that makes RnB's overbooking work)."""
        g = make_slashdot_like(seed=9, scale=0.05)
        in_counts = np.bincount(g.indices, minlength=g.n_nodes)
        assert in_counts.max() > 30 * max(1.0, in_counts.mean())

    def test_custom_spec(self):
        spec = DatasetSpec(name="custom", n_nodes=500, n_edges=3000)
        g = synthesize_graph(spec, seed=1)
        assert g.n_nodes == 500
        assert g.n_edges == pytest.approx(3000, rel=0.03)

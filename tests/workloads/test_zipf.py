"""Tests for power-law/Zipf samplers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.zipf import (
    powerlaw_cutoff_pmf,
    sample_powerlaw_degrees,
    zipf_weights,
)


class TestPmf:
    def test_normalised(self):
        pmf = powerlaw_cutoff_pmf(100, 1.6, 30.0)
        assert pmf.sum() == pytest.approx(1.0)
        assert len(pmf) == 100

    def test_monotone_decreasing(self):
        pmf = powerlaw_cutoff_pmf(50, 1.6, 20.0)
        assert np.all(np.diff(pmf) <= 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            powerlaw_cutoff_pmf(0, 1.6, 10)
        with pytest.raises(ValueError):
            powerlaw_cutoff_pmf(10, -1, 10)
        with pytest.raises(ValueError):
            powerlaw_cutoff_pmf(10, 1.6, 0)


class TestDegreeSampler:
    def test_mean_calibration(self):
        rng = np.random.default_rng(0)
        degrees = sample_powerlaw_degrees(20_000, 11.54, rng=rng)
        assert degrees.mean() == pytest.approx(11.54, rel=0.05)

    def test_minimum_one(self):
        rng = np.random.default_rng(1)
        degrees = sample_powerlaw_degrees(5000, 3.0, rng=rng)
        assert degrees.min() >= 1

    def test_heavy_tail_present(self):
        rng = np.random.default_rng(2)
        degrees = sample_powerlaw_degrees(20_000, 10.0, rng=rng)
        assert degrees.max() > 10 * degrees.mean()

    def test_mean_too_small_rejected(self):
        with pytest.raises(ValueError):
            sample_powerlaw_degrees(100, 0.5)

    def test_unreachable_mean_rejected(self):
        with pytest.raises(ValueError):
            sample_powerlaw_degrees(100, 900.0, max_degree=100)


class TestZipfWeights:
    def test_normalised_and_decreasing(self):
        w = zipf_weights(100, 0.8)
        assert w.sum() == pytest.approx(1.0)
        assert np.all(np.diff(w) <= 0)

    def test_exponent_zero_uniform(self):
        w = zipf_weights(10, 0.0)
        assert np.allclose(w, 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(10, -0.1)

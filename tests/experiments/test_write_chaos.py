"""Write chaos: quorum writes under kills must converge, deterministically."""

from __future__ import annotations

from repro.experiments import write_chaos

TINY = dict(
    n_servers=8,
    replication=3,
    n_items=120,
    n_writes=400,
    n_kills=2,
    read_sample=60,
    scale=1.0,
)


def run_tiny(seed, **overrides):
    (result,) = write_chaos.run(seed=seed, **{**TINY, **overrides})
    return result


class TestAcceptance:
    def test_kills_happen_mid_burst_and_seed_divergence(self):
        result = run_tiny(11)
        kills = [e for e in result.meta["schedule"] if e[1] == "kill"]
        assert len(kills) == TINY["n_kills"]
        assert all(0 < at < TINY["n_writes"] for at, _, _ in kills)
        assert result.meta["writes_partial"] > 0
        assert result.meta["divergent_before_repair"] > 0

    def test_majority_quorum_survives_the_kills(self):
        result = run_tiny(11)
        # two kills, R=3: each write still reaches a majority
        assert result.meta["writes_failed"] == 0
        assert (
            result.meta["writes_committed"] + result.meta["writes_partial"]
            == TINY["n_writes"]
        )

    def test_converges_to_zero_divergent_keys(self):
        result = run_tiny(11)
        assert result.meta["divergent_after_scrub"] == 0
        assert result.meta["converged"] is True
        # read-repair alone does not finish the job — the scrubber must
        # have had real work (the unread tail)
        assert result.meta["scrub_repairs"] > 0

    def test_read_repair_is_throttled_through_the_executor(self):
        result = run_tiny(11)
        if result.meta["repairs_queued"]:
            assert result.meta["repair_drain_ticks"] >= 1

    def test_p99_overhead_reported(self):
        result = run_tiny(11)
        meta = result.meta
        assert meta["best_effort_p99"] > 0
        assert meta["quorum_p99"] > 0
        assert meta["quorum_p99_overhead"] == (
            meta["quorum_p99"] / meta["best_effort_p99"]
        )
        # waiting on every replica is never cheaper than a majority
        assert meta["all_replicas_p99"] >= meta["quorum_p99"]

    def test_w_all_flags_failures_instead_of_partials(self):
        result = run_tiny(11, w="all")
        assert result.meta["w_resolved"] == TINY["replication"]
        # with a server down, W=all writes cannot commit
        assert result.meta["writes_failed"] > 0
        assert result.meta["converged"] is True


class TestDeterminism:
    def test_same_seed_bit_identical(self):
        a, b = run_tiny(23), run_tiny(23)
        assert a.series == b.series
        assert a.meta["determinism_token"] == b.meta["determinism_token"]
        assert a.meta["metrics_token"] == b.meta["metrics_token"]
        assert a.meta["schedule"] == b.meta["schedule"]

    def test_different_seed_different_run(self):
        a, b = run_tiny(23), run_tiny(24)
        assert a.meta["determinism_token"] != b.meta["determinism_token"]
        assert a.meta["schedule"] != b.meta["schedule"]

"""Shape tests for the growth and queueing experiments."""

from __future__ import annotations

import pytest

from repro.experiments import growth, queueing
from repro.workloads.synthetic import make_slashdot_like


class TestGrowth:
    def test_rch_churn_near_ideal(self):
        churn, _ = growth.run(
            fleet_sizes=(8, 16), n_items=800, n_trials=30, seed=5
        )
        for i in range(2):
            rch = churn.series["rch churn"][i]
            ideal = churn.series["ideal churn R/(N+1)"][i]
            assert rch == pytest.approx(ideal, rel=0.4)

    def test_multihash_churn_large(self):
        churn, _ = growth.run(fleet_sizes=(16,), n_items=800, n_trials=20, seed=5)
        assert churn.series["multihash churn"][0] > 0.5

    def test_full_replication_stride(self):
        churn, _ = growth.run(
            fleet_sizes=(12,), replication=3, n_items=400, n_trials=10, seed=5
        )
        assert churn.series["full-repl min stride (servers)"][0] == pytest.approx(4.0)

    def test_tpr_continuity(self):
        _, tpr = growth.run(fleet_sizes=(16,), n_items=800, n_trials=60, seed=5)
        before = tpr.series["TPR at N"][0]
        after = tpr.series["TPR at N+1"][0]
        assert abs(after - before) / before < 0.15


class TestQueueing:
    @pytest.fixture(scope="class")
    def result(self):
        graph = make_slashdot_like(seed=5, scale=0.02)
        [res] = queueing.run(
            graph=graph,
            load_fractions=(0.2, 1.0),
            n_requests=1500,
            seed=5,
        )
        return res

    def test_low_load_latencies_equal(self, result):
        classic = result.series["classic p95 us"][0]
        rnb = result.series["RnB R=4 p95 us"][0]
        assert classic == pytest.approx(rnb, rel=0.25)

    def test_classic_saturates_at_unit_load(self, result):
        assert result.series["classic max util"][1] > 0.95
        assert result.series["classic p95 us"][1] > 3 * result.series["classic p95 us"][0]

    def test_rnb_survives_unit_load(self, result):
        assert result.series["RnB R=4 max util"][1] < 0.99
        assert (
            result.series["RnB R=4 p95 us"][1]
            < result.series["classic p95 us"][1]
        )

    def test_capacity_estimate_positive(self, result):
        assert result.meta["base_capacity_rps"] > 0


class TestQueueingDeterminism:
    """Seed-determinism regression: the queueing experiment is a pure
    function of its parameters.  The pinned token guards the whole
    result structure (series, meta, axes) against accidental
    nondeterminism sneaking into the DES or the request stream — e.g. a
    latency-multipliers default that stops being neutral."""

    PARAMS = {"scale": 0.05, "n_requests": 400, "seed": 2013}
    TOKEN = 8554413853448730497

    @staticmethod
    def _token(results) -> int:
        import json

        from repro.hashing.hashfns import stable_hash64

        return stable_hash64(
            json.dumps([r.to_dict() for r in results], sort_keys=True)
        )

    def test_pinned_token(self):
        assert self._token(queueing.run(**self.PARAMS)) == self.TOKEN

    def test_two_runs_identical(self):
        assert self._token(queueing.run(**self.PARAMS)) == self._token(
            queueing.run(**self.PARAMS)
        )

    def test_seed_moves_the_token(self):
        other = dict(self.PARAMS, seed=7)
        assert self._token(queueing.run(**other)) != self.TOKEN

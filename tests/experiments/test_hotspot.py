"""Tests for the hotspot soak experiment (overload defences vs straggler)."""

from __future__ import annotations

import pytest

from repro.experiments import hotspot
from repro.experiments.registry import EXPERIMENTS

PARAMS = {"scale": 0.25, "seed": 2013}


@pytest.fixture(scope="module")
def result():
    [res] = hotspot.run(**PARAMS)
    return res


class TestHotspotSoak:
    def test_registered(self):
        assert "hotspot" in EXPERIMENTS

    def test_overload_arm_beats_baseline_p99(self, result):
        assert result.meta["p99_speedup"] > 1.0
        assert result.meta["p999_speedup"] > 1.0

    def test_zero_failed_requests_in_both_arms(self, result):
        assert result.meta["requests_failed"] == 0
        assert result.series["requests failed"] == [0.0, 0.0]

    def test_defences_actually_engaged(self, result):
        # the speedup must come from the mechanisms under test, not noise
        assert result.meta["breaker_transitions"] > 0
        assert result.meta["hedges_issued"] > 0
        assert 0.0 <= result.meta["hedge_wins"] <= result.meta["hedges_issued"]

    def test_served_fraction_high_under_degradation(self, result):
        assert result.meta["served_fraction_overload"] > 0.9

    def test_arms_axis(self, result):
        assert result.x_values == ["baseline", "overload"]
        assert set(result.series) >= {
            "p50 latency (ms)",
            "p99 latency (ms)",
            "served fraction",
            "breaker transitions",
        }

    def test_deterministic_by_seed(self, result):
        [again] = hotspot.run(**PARAMS)
        assert again.meta["determinism_token"] == result.meta["determinism_token"]
        assert again.series == result.series

    def test_seed_moves_the_token(self, result):
        [other] = hotspot.run(scale=0.25, seed=7)
        assert other.meta["determinism_token"] != result.meta["determinism_token"]


class TestRequestStream:
    def test_streams_identical_across_calls(self):
        a = hotspot.make_requests(1, 300, 8, 50, 1.0)
        b = hotspot.make_requests(1, 300, 8, 50, 1.0)
        assert a == b

    def test_items_sorted_and_unique(self):
        for req in hotspot.make_requests(2, 300, 8, 20, 1.0):
            assert list(req.items) == sorted(set(req.items))
            assert len(req.items) == 8

"""Load soak experiment: arm ordering, zero failures, determinism."""

from __future__ import annotations

import pytest

from repro.experiments import load_soak
from repro.experiments.registry import EXPERIMENTS


@pytest.fixture(scope="module")
def result():
    return load_soak.run(scale=0.12, seed=2013)[0]


class TestLoadSoak:
    def test_registered(self):
        assert "load_soak" in EXPERIMENTS
        assert EXPERIMENTS["load_soak"] is load_soak.run

    def test_arms_axis(self, result):
        assert result.name == "load_soak"
        assert list(result.x_values) == ["steady", "diurnal", "flash"]

    def test_zero_failed_requests_everywhere(self, result):
        assert result.meta["requests_failed"] == 0
        assert all(v == 0.0 for v in result.series["requests failed"])

    def test_flash_arm_hurts_most(self, result):
        p99 = dict(zip(result.x_values, result.series["p99 latency (ms)"]))
        assert p99["flash"] >= p99["steady"]
        pain = [
            s + c
            for s, c in zip(
                result.series["shed rate"], result.series["deadline cut rate"]
            )
        ]
        by_arm = dict(zip(result.x_values, pain))
        assert by_arm["flash"] >= by_arm["steady"]

    def test_goodput_positive_in_every_arm(self, result):
        assert all(g > 0 for g in result.series["goodput (items/s)"])

    def test_deterministic_by_seed(self, result):
        again = load_soak.run(scale=0.12, seed=2013)[0]
        assert again.series == result.series
        assert again.meta["determinism_token"] == result.meta["determinism_token"]

    def test_seed_moves_the_token(self, result):
        other = load_soak.run(scale=0.12, seed=2014)[0]
        assert other.meta["determinism_token"] != result.meta["determinism_token"]

"""Chaos soak: acceptance criteria of the self-healing loop."""

from __future__ import annotations

from repro.experiments import chaos

TINY = dict(
    n_servers=8,
    replication=3,
    n_items=400,
    request_size=12,
    n_kills=2,
    n_joins=1,
    repair_rate=80,
    scale=1.0,
)


def run_tiny(seed):
    (result,) = chaos.run(seed=seed, **TINY)
    return result


class TestAcceptance:
    def test_single_failure_availability_is_one_at_r_ge_2(self):
        result = run_tiny(11)
        assert result.meta["availability_min"] == 1.0
        assert all(a == 1.0 for a in result.series["availability"])

    def test_full_replication_restored_within_horizon(self):
        result = run_tiny(11)
        assert result.meta["final_pending_repair"] == 0
        for event in result.meta["events"]:
            assert event["time_to_full_r"] is not None
            # the throttle bounds each batch's drain time
            assert (
                event["time_to_full_r"]
                <= event["repair_items"] / TINY["repair_rate"] + 2
            )

    def test_membership_actually_reacted(self):
        result = run_tiny(11)
        kinds = [e["kind"] for e in result.meta["events"]]
        assert "remove" in kinds and "recover" in kinds and "join" in kinds
        assert result.meta["final_epoch"] == len(result.meta["events"])
        assert result.meta["membership_commits"] >= 1  # client verdicts drove it

    def test_tpr_settles_after_the_storm(self):
        result = run_tiny(11)
        before, after = result.meta["tpr_before"], result.meta["tpr_after"]
        assert after <= before * 1.5  # no permanent degradation


class TestDeterminism:
    def test_same_seed_bit_identical(self):
        a, b = run_tiny(23), run_tiny(23)
        assert a.series == b.series
        assert a.meta["determinism_token"] == b.meta["determinism_token"]
        assert a.meta["schedule"] == b.meta["schedule"]
        assert a.meta["events"] == b.meta["events"]

    def test_different_seed_different_run(self):
        a, b = run_tiny(23), run_tiny(24)
        assert a.meta["determinism_token"] != b.meta["determinism_token"]
        assert a.meta["schedule"] != b.meta["schedule"]

"""Shape tests for the extension experiments (cover quality, scalability,
latency)."""

from __future__ import annotations

import math

import pytest

from repro.experiments import cover_quality, latency, scalability
from repro.workloads.synthetic import make_slashdot_like


@pytest.fixture(scope="module")
def tiny_sd():
    return make_slashdot_like(seed=5, scale=0.02)


class TestCoverQuality:
    def test_quality_ordering(self):
        quality, overhead = cover_quality.run(
            cases=((16, 20, 3),), n_trials=20, seed=5
        )
        opt = quality.series["optimal"][0]
        grd = quality.series["greedy"][0]
        ff = quality.series["first-fit"][0]
        rnd = quality.series["random"][0]
        assert opt <= grd <= ff <= rnd * 1.05

    def test_greedy_near_optimal(self):
        quality, _ = cover_quality.run(cases=((16, 30, 3),), n_trials=25, seed=6)
        opt = quality.series["optimal"][0]
        grd = quality.series["greedy"][0]
        assert grd / opt < 1.15  # within 15% in the mean

    def test_exact_limit_respected(self):
        quality, _ = cover_quality.run(
            cases=((16, 30, 2),), n_trials=5, exact_limit=10, seed=7
        )
        assert math.isnan(quality.series["optimal"][0])

    def test_overhead_positive(self):
        _, overhead = cover_quality.run(cases=((16, 20, 3),), n_trials=10, seed=8)
        for series in overhead.series.values():
            assert series[0] > 0


class TestScalability:
    def test_saving_peaks_then_tapers(self):
        [res] = scalability.run(
            server_counts=(16, 64, 1024), request_size=100, n_trials=60, seed=5
        )
        saving = res.series["saving (best R)"]
        # in the hole regime (N~M) the saving is large; at N>>M it tapers
        assert saving[1] > 0.4
        assert saving[2] < saving[1]

    def test_replication_ordering_at_scale(self):
        [res] = scalability.run(
            server_counts=(128,), request_size=100, n_trials=60, seed=6
        )
        assert res.series["R=4"][0] < res.series["R=2"][0] < res.series["R=1 (analytic)"][0]


class TestLatency:
    def test_structure(self, tiny_sd):
        [res] = latency.run(graph=tiny_sd, n_requests=150, warmup_requests=300, seed=5)
        labels = res.x_values
        tprs = dict(zip(labels, res.series["TPR"]))
        rounds = dict(zip(labels, res.series["2-round %"]))
        # roomy RnB: big TPR cut, no second rounds
        assert tprs["RnB R=4 roomy"] < tprs["classic"]
        assert rounds["classic"] == 0.0
        assert rounds["RnB R=4 roomy"] == 0.0
        # overbooked RnB pays a two-round tail
        assert rounds["RnB R=4 @2x"] > 0.0
        # hitchhiking shrinks (or at least never grows) the tail
        assert rounds["RnB R=4 @2x +hh"] <= rounds["RnB R=4 @2x"] + 1e-9

    def test_percentile_ordering(self, tiny_sd):
        [res] = latency.run(graph=tiny_sd, n_requests=100, warmup_requests=100, seed=6)
        for mean, p95, p99 in zip(
            res.series["mean us"], res.series["p95 us"], res.series["p99 us"]
        ):
            assert p95 <= p99
            assert mean > 0

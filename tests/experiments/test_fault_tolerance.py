"""The fault-tolerance experiment: acceptance-bar checks."""

from __future__ import annotations

from repro.experiments import fault_tolerance
from repro.experiments.registry import EXPERIMENTS
from repro.workloads.synthetic import make_slashdot_like


def small_run(seed=2013):
    graph = make_slashdot_like(seed=seed, scale=0.02)
    return fault_tolerance.run(
        graph,
        n_servers=8,
        replications=(1, 2),
        failure_rates=(0.0, 0.1),
        n_requests=100,
        seed=seed,
    )


class TestRegistration:
    def test_registered(self):
        assert EXPERIMENTS["fault_tolerance"] is fault_tolerance.run

    def test_result_shapes(self):
        results = small_run()
        names = [r.name for r in results]
        assert names == [
            "fault_tolerance_tpr",
            "fault_tolerance_unavailable",
            "fault_tolerance_retries",
        ]
        for r in results:
            assert r.x_values == [0.0, 0.1]
            assert set(r.series) == {"R=1", "R=2"}
            assert all(len(v) == 2 for v in r.series.values())


class TestAcceptance:
    def test_live_replica_guarantee_at_ten_percent(self):
        """10% crash-stop, R >= 2: every item with a live replica is read."""
        results = small_run()
        assert results[0].meta["live_covered_min"] == 1.0

    def test_same_seed_reproduces_identically(self):
        def fingerprint():
            return [
                (r.name, tuple(r.x_values), {k: tuple(v) for k, v in r.series.items()})
                for r in small_run()
            ]

        assert fingerprint() == fingerprint()

    def test_zero_failure_rate_is_clean(self):
        results = small_run()
        unavail = results[1].series
        retries = results[2].series
        for series in (unavail, retries):
            for values in series.values():
                assert values[0] == 0.0  # rate 0.0: nothing fails, no retries

    def test_replication_buys_availability(self):
        point_r1 = fault_tolerance.run_point(
            make_slashdot_like(seed=3, scale=0.02),
            n_servers=8,
            replication=1,
            crash_rate=0.3,
            timeout_rate=0.0,
            n_requests=100,
            seed=3,
        )
        point_r3 = fault_tolerance.run_point(
            make_slashdot_like(seed=3, scale=0.02),
            n_servers=8,
            replication=3,
            crash_rate=0.3,
            timeout_rate=0.0,
            n_requests=100,
            seed=3,
        )
        assert point_r1["unavailable_fraction"] > point_r3["unavailable_fraction"]
        assert point_r3["live_covered_fraction"] == 1.0

"""Tests for the ``rnb`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestList:
    def test_lists_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig02" in out and "fig13_14" in out


class TestRun:
    def test_run_fig02(self, capsys):
        assert main(["run", "fig02"]) == 0
        out = capsys.readouterr().out
        assert "TPRPS scaling factor" in out

    def test_run_fig07(self, capsys):
        assert main(["run", "fig07"]) == 0
        out = capsys.readouterr().out
        assert "request locality" in out

    def test_run_with_params(self, capsys):
        assert main(["run", "fig06", "--scale", "0.02", "--n-requests", "60"]) == 0
        out = capsys.readouterr().out
        assert "TPR slashdot" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestCalibrate:
    def test_calibrate_prints_model(self, capsys, monkeypatch):
        from dataclasses import dataclass

        @dataclass
        class P:
            txn_size: int
            transactions_per_s: float
            items_per_s: float
            n_transactions: int

        def fake_measure(sizes):
            return [
                P(m, 1e5 / (1 + 0.02 * m), m * 1e5 / (1 + 0.02 * m), 100)
                for m in sizes
            ]

        monkeypatch.setattr(
            "repro.protocol.microbench.measure_items_per_second", fake_measure
        )
        assert main(["calibrate"]) == 0
        out = capsys.readouterr().out
        assert "fitted:" in out
        assert "t_txn=" in out


class TestVersionAndErrors:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "rnb" in capsys.readouterr().out

    def test_no_command(self):
        with pytest.raises(SystemExit):
            main([])

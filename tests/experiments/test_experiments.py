"""Shape tests for every per-figure experiment driver (tiny parameters).

These are the executable versions of DESIGN.md's "expected shapes": each
driver runs at reduced size and the paper's qualitative claim is asserted
on the output series.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    ablations,
    fig02,
    fig03,
    fig04_05,
    fig06,
    fig07,
    fig08,
    fig11,
    fig12,
    fig13_14,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment
from repro.workloads.synthetic import make_slashdot_like

TINY = dict(scale=0.02, n_requests=150, seed=5)


@pytest.fixture(scope="module")
def tiny_sd():
    return make_slashdot_like(seed=5, scale=0.02)


class TestFig02:
    def test_shapes(self):
        [res] = fig02.run()
        assert isinstance(res, ExperimentResult)
        # M=1 is ideal everywhere
        assert all(v == pytest.approx(2.0) for v in res.series["M=1"])
        # larger M scales worse at small N
        m100 = res.series["M=100"]
        m10 = res.series["M=10"]
        assert m100[0] < m10[0] < 2.0
        # all factors approach 2 for huge N
        assert m100[-1] > 1.9

    def test_table_renders(self):
        [res] = fig02.run()
        out = res.table()
        assert "M=100" in out and "initial N" in out


class TestFig03:
    def test_multiget_hole_shape(self, tiny_sd):
        [res] = fig03.run(
            graph=tiny_sd, server_counts=(1, 2, 4, 8), n_requests=200, seed=5
        )
        measured = res.series["relative throughput"]
        ideal = res.series["ideal scaling"]
        # monotone growth but below ideal at the top end
        assert measured == sorted(measured)
        assert measured[-1] < ideal[-1]
        # TPR grows with N
        tprs = res.series["TPR"]
        assert tprs[0] == pytest.approx(1.0)
        assert tprs == sorted(tprs)


class TestFig04_05:
    def test_stats_match_spec(self):
        f4, f5 = fig04_05.run(scale=0.05, seed=5)
        assert f4.meta["mean_degree"] == pytest.approx(11.54, rel=0.05)
        assert f5.meta["mean_degree"] == pytest.approx(6.71, rel=0.05)
        assert sum(f4.series["nodes"]) == f4.meta["n_nodes"]


class TestFig06:
    def test_tpr_decreasing_in_replicas(self):
        [res] = fig06.run(replications=(1, 2, 4), **TINY)
        for label in ("TPR slashdot", "TPR epinions"):
            tprs = res.series[label]
            assert all(a > b for a, b in zip(tprs, tprs[1:]))

    def test_headline_reduction(self):
        [res] = fig06.run(replications=(1, 4), scale=0.05, n_requests=400, seed=5)
        rel = res.series["rel slashdot"]
        assert rel[-1] < 0.65  # strong reduction by 4 replicas


class TestFig07:
    def test_locality_example(self):
        [res] = fig07.run()
        assert res.series["server for item 1"] == ["A", "A"]
        assert res.series["server for item 2"] == ["A", "A"]
        assert "item 1 copy on C" in res.notes
        assert "item 2 copy on B" in res.notes


class TestFig08:
    def test_ratio_shape(self, tiny_sd):
        [res] = fig08.run(
            graph=tiny_sd,
            replications=(1, 3),
            memory_factors=(1.0, 2.0, 4.0),
            n_requests=200,
            warmup_requests=400,
            seed=5,
        )
        r1 = res.series["R=1"]
        r3 = res.series["R=3"]
        assert all(v == pytest.approx(1.0, abs=0.1) for v in r1)
        # more memory helps
        assert r3[-1] < r3[0]
        # at generous memory, replication wins clearly
        assert r3[-1] < 0.9


class TestFig11:
    def test_fraction_ordering(self):
        results = fig11.run(
            server_counts=(4, 16), request_sizes=(20,), n_trials=60, seed=5
        )
        [res] = results
        t50 = res.series["fetch 50%"]
        t90 = res.series["fetch 90%"]
        t100 = res.series["fetch 100%"]
        for i in range(len(t50)):
            assert t50[i] < t90[i] <= t100[i]


class TestFig12:
    def test_replication_ordering(self):
        results = fig12.run(
            server_counts=(16,),
            request_sizes=(20,),
            fractions=(0.9,),
            replications=(2, 5),
            n_trials=60,
            seed=5,
        )
        [res] = results
        assert res.series["R=5"][0] < res.series["R=2"][0]
        assert res.series["R=2"][0] < res.series["R=1 no LIMIT"][0]


class TestFig13_14:
    def test_microbench_curves(self):
        f13, f14 = fig13_14.run(
            txn_sizes=(1, 4, 16), n_keys=100, target_transactions=100
        )
        measured = f13.series["measured items/s"]
        assert measured[-1] > measured[0]
        assert "fitted model items/s" in f13.series
        assert len(f14.series["two clients items/s"]) == 3


class TestAblations:
    def test_all_ablations_run(self, tiny_sd):
        results = ablations.run(graph=tiny_sd, n_requests=120, warmup=200, seed=5)
        names = {r.name for r in results}
        assert names == {
            "ablation_tie_break",
            "ablation_hitchhiking",
            "ablation_single_item_rule",
            "ablation_placement",
            "ablation_lru_policy",
            "ablation_overbooking",
        }
        for r in results:
            assert r.table()

    def test_hitchhiking_tradeoff(self, tiny_sd):
        results = ablations.run(graph=tiny_sd, n_requests=200, warmup=400, seed=5)
        hh = next(r for r in results if r.name == "ablation_hitchhiking")
        tpr_on, tpr_off = hh.series["TPR"]
        traffic_on, traffic_off = hh.series["items transferred/request"]
        assert tpr_on <= tpr_off
        assert traffic_on > traffic_off


class TestRegistry:
    def test_all_figures_registered(self):
        for name in (
            "fig02",
            "fig03",
            "fig04_05",
            "fig06",
            "fig07",
            "fig08",
            "fig09",
            "fig10",
            "fig11",
            "fig12",
            "fig13_14",
            "ablations",
        ):
            assert name in EXPERIMENTS

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            get_experiment("fig99")

    def test_run_experiment_dispatch(self):
        results = run_experiment("fig02")
        assert results[0].name == "fig02"

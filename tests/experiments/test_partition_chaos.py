"""Partition chaos: split-brain safety gates and seeded determinism."""

from __future__ import annotations

from repro.experiments import partition_chaos
from repro.experiments.registry import EXPERIMENTS

# default 10/3 topology, scaled down: the majority must keep quorum even
# after its own victim crashes (6 reachable of 10 members >= 10//2+1)
TINY = dict(
    n_servers=10,
    replication=3,
    minority_size=3,
    n_items=600,
    n_steps=300,
    repair_rate=200,
    scrub_buckets=32,
    window=25,
    scale=0.3,
)


def run_tiny(seed, **overrides):
    (result,) = partition_chaos.run(seed=seed, **{**TINY, **overrides})
    return result


class TestSplit:
    def test_seeded_disjoint_split(self):
        majority, minority = partition_chaos.make_split(7, 10, 3)
        assert len(minority) == 3
        assert set(majority) | set(minority) == set(range(10))
        assert not set(majority) & set(minority)
        assert (majority, minority) == partition_chaos.make_split(7, 10, 3)
        assert (majority, minority) != partition_chaos.make_split(8, 10, 3)


class TestAcceptance:
    def test_safety_gates(self):
        meta = run_tiny(7).meta
        assert meta["violations"] == 0
        assert meta["consistent"] is True
        assert meta["violations_rendered"] == ""
        assert meta["divergent_after_scrub"] == 0
        assert meta["minority_epoch_commits"] == 0

    def test_minority_tried_and_was_refused(self):
        meta = run_tiny(7).meta
        assert meta["quorum_rejections"] > 0
        assert meta["noquorum_raised"] >= 1
        assert meta["writes_rejected"] > 0
        assert meta["epoch_min_at_heal"] == 0

    def test_partition_actually_bit(self):
        meta = run_tiny(7).meta
        assert meta["blocked_requests"] > 0
        assert meta["divergent_before_scrub"] > 0

    def test_majority_made_progress(self):
        meta = run_tiny(7).meta
        assert meta["writes_committed"] > 0
        assert meta["removal_committed"] is True
        # removal during the split + recovery after heal
        assert meta["final_epoch"] >= 2
        assert meta["victim"] in meta["majority"]

    def test_history_covers_the_whole_keyspace(self):
        meta = run_tiny(7).meta
        assert meta["history_final_reads"] >= meta["n_items"]
        assert meta["history_writes_acked"] > meta["n_items"] // 2


class TestDeterminism:
    def test_same_seed_bit_identical(self):
        a, b = run_tiny(7), run_tiny(7)
        assert a.series == b.series
        assert a.meta["determinism_token"] == b.meta["determinism_token"]
        assert a.meta["metrics_token"] == b.meta["metrics_token"]

    def test_different_seed_different_run(self):
        a, b = run_tiny(7), run_tiny(8)
        assert a.meta["determinism_token"] != b.meta["determinism_token"]

    def test_registered(self):
        assert EXPERIMENTS["partition_chaos"] is partition_chaos.run

"""Shape tests for the future-work experiments (limit memory, single-item
cross-request bundling) and result export."""

from __future__ import annotations

import json

import pytest

from repro.experiments import limit_memory, single_item
from repro.experiments.base import ExperimentResult
from repro.workloads.synthetic import make_slashdot_like


@pytest.fixture(scope="module")
def tiny_sd():
    return make_slashdot_like(seed=5, scale=0.02)


class TestLimitMemory:
    def test_working_set_shrinks_with_fraction(self, tiny_sd):
        tpr_res, ws_res = limit_memory.run(
            graph=tiny_sd,
            memory_factors=(1.5, 3.0),
            fractions=(1.0, 0.5),
            n_requests=150,
            warmup_requests=300,
            seed=5,
        )
        ws = ws_res.series["working set (copies)"]
        assert ws[1] < ws[0]  # 50% touches fewer replicas than 100%

    def test_memory_helps_every_fraction(self, tiny_sd):
        tpr_res, _ = limit_memory.run(
            graph=tiny_sd,
            memory_factors=(1.25, 3.0),
            fractions=(1.0, 0.9),
            n_requests=150,
            warmup_requests=300,
            seed=5,
        )
        for series in tpr_res.series.values():
            assert series[-1] < series[0]


class TestSingleItem:
    def test_window_one_is_floor(self):
        [res] = single_item.run(
            n_items=2000, windows=(1, 4), n_requests=400, seed=5
        )
        for series in res.series.values():
            assert series[0] == pytest.approx(1.0)

    def test_merging_and_replication_compose(self):
        [res] = single_item.run(
            n_items=2000, windows=(1, 8), n_requests=800, seed=5
        )
        no_repl = res.series["no replication"]
        rnb = res.series["RnB R=4"]
        # merging helps even without replication ...
        assert no_repl[1] < 1.0
        # ... and RnB amplifies the benefit at the merged window
        assert rnb[1] < no_repl[1]


class TestResultExport:
    @pytest.fixture()
    def result(self):
        return ExperimentResult(
            name="demo",
            title="Demo",
            x_label="x",
            x_values=[1, 2],
            series={"a": [0.5, 1.5], "b": [2.0, 3.0]},
            expectation="up and to the right",
            meta={"model": object()},
        )

    def test_to_dict_roundtrips_json(self, result):
        payload = json.loads(result.to_json())
        assert payload["name"] == "demo"
        assert payload["series"]["a"] == [0.5, 1.5]
        assert payload["x_values"] == [1, 2]

    def test_to_csv(self, result):
        lines = result.to_csv().strip().splitlines()
        assert lines[0] == "x,a,b"
        assert lines[1] == "1,0.5,2.0"
        assert len(lines) == 3

    def test_meta_stringified(self, result):
        payload = result.to_dict()
        assert isinstance(payload["meta"]["model"], str)


class TestCliFormats:
    def test_csv_format(self, capsys):
        from repro.cli import main

        assert main(["run", "fig02", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("initial N,M=1")

    def test_out_dir(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["run", "fig02", "--format", "json", "--out", str(tmp_path)]) == 0
        data = json.loads((tmp_path / "fig02.json").read_text())
        assert data["name"] == "fig02"

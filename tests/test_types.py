"""Tests for the core value types."""

from __future__ import annotations

import pytest

from repro.types import (
    ClusterStats,
    FetchPlan,
    FetchResult,
    ReplicaSet,
    Request,
    Transaction,
)


class TestRequest:
    def test_distinct_items_enforced(self):
        with pytest.raises(ValueError):
            Request(items=(1, 1, 2))

    def test_size(self):
        assert Request(items=(1, 2, 3)).size == 3

    def test_limit_fraction_validation(self):
        with pytest.raises(ValueError):
            Request(items=(1,), limit_fraction=0.0)
        with pytest.raises(ValueError):
            Request(items=(1,), limit_fraction=1.5)

    def test_required_items_full(self):
        assert Request(items=(1, 2, 3)).required_items == 3

    @pytest.mark.parametrize(
        "n,frac,expected",
        [
            (4, 0.5, 2),
            (3, 0.5, 2),  # ceil(1.5)
            (10, 0.9, 9),
            (10, 0.95, 10),  # ceil(9.5)
            (5, 1.0, 5),
            (3, 0.01, 1),  # never zero
            (20, 0.9, 18),
        ],
    )
    def test_required_items_limit(self, n, frac, expected):
        req = Request(items=tuple(range(n)), limit_fraction=frac)
        assert req.required_items == expected

    def test_empty_request_allowed(self):
        assert Request(items=()).size == 0


class TestTransaction:
    def test_n_items(self):
        t = Transaction(server=1, primary=(1, 2), hitchhikers=(3,))
        assert t.n_items == 3


class TestFetchPlan:
    def test_servers_and_planned(self):
        plan = FetchPlan(
            request=Request(items=(1, 2, 3)),
            transactions=(
                Transaction(server=0, primary=(1, 2)),
                Transaction(server=3, primary=(3,)),
            ),
        )
        assert plan.n_transactions == 2
        assert plan.servers == (0, 3)
        assert plan.planned_items() == {1, 2, 3}


class TestReplicaSet:
    def test_distinct_servers_enforced(self):
        with pytest.raises(ValueError):
            ReplicaSet(item=1, servers=(0, 0))

    def test_nonempty_enforced(self):
        with pytest.raises(ValueError):
            ReplicaSet(item=1, servers=())

    def test_distinguished_is_first(self):
        rs = ReplicaSet(item=1, servers=(4, 2, 7))
        assert rs.distinguished == 4
        assert rs.replication == 3


class TestClusterStats:
    def make_result(self, txns=2, items=5, sizes=(3, 2), servers=(0, 1)):
        return FetchResult(
            request=Request(items=tuple(range(items))),
            transactions=txns,
            items_fetched=items,
            items_transferred=items,
            misses=1,
            second_round_transactions=0,
            servers_contacted=servers,
            txn_sizes=sizes,
        )

    def test_record_and_tpr(self):
        stats = ClusterStats()
        stats.record(self.make_result(txns=2))
        stats.record(self.make_result(txns=4))
        assert stats.requests == 2
        assert stats.tpr == 3.0

    def test_tprps(self):
        stats = ClusterStats()
        stats.record(self.make_result(txns=4))
        assert stats.tprps(8) == 0.5
        with pytest.raises(ValueError):
            stats.tprps(0)

    def test_empty_tpr(self):
        assert ClusterStats().tpr == 0.0
        assert ClusterStats().miss_rate == 0.0

    def test_histograms_accumulate(self):
        stats = ClusterStats()
        stats.record(self.make_result(sizes=(3, 2)))
        stats.record(self.make_result(sizes=(3,)))
        assert stats.txn_size_histogram == {3: 2, 2: 1}

    def test_per_server_counts(self):
        stats = ClusterStats()
        stats.record(self.make_result(servers=(0, 1)))
        stats.record(self.make_result(servers=(1, 2)))
        assert stats.per_server_transactions == {0: 1, 1: 2, 2: 1}

    def test_merge(self):
        a, b = ClusterStats(), ClusterStats()
        a.record(self.make_result())
        b.record(self.make_result())
        a.merge(b)
        assert a.requests == 2
        assert a.txn_size_histogram == {3: 2, 2: 2}

    def test_miss_rate(self):
        stats = ClusterStats()
        stats.record(self.make_result(items=9))  # 1 miss, 9 fetched
        assert stats.miss_rate == pytest.approx(0.1)

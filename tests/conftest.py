"""Shared fixtures: small deterministic graphs, placers and clusters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.workloads.graphs import SocialGraph
from repro.workloads.synthetic import make_slashdot_like


@pytest.fixture(scope="session")
def tiny_graph() -> SocialGraph:
    """A hand-built 6-node graph with known adjacency."""
    adjacency = [
        [1, 2, 3],
        [0, 2],
        [0],
        [4],
        [],
        [0, 1, 2, 3, 4],
    ]
    return SocialGraph.from_adjacency(adjacency, name="tiny")


@pytest.fixture(scope="session")
def small_slashdot() -> SocialGraph:
    """A 1%-scale synthetic Slashdot graph (fast, heavy-tailed)."""
    return make_slashdot_like(seed=7, scale=0.02)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture()
def placer16() -> RangedConsistentHashPlacer:
    return RangedConsistentHashPlacer(n_servers=16, replication=3, vnodes=32, seed=0)


@pytest.fixture()
def cluster16(placer16) -> Cluster:
    return Cluster(placer16, items=range(2000), memory_factor=None)

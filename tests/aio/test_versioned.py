"""Async versioned write path: quorum set / versioned get parity."""

from __future__ import annotations

import asyncio

from repro.consistency.version import VersionStamp, decode_versioned, encode_versioned
from repro.protocol.codec import Command

from tests.aio.test_rnbclient import _Cluster


def run(coro):
    return asyncio.run(coro)


def backend_value(cluster, sid, key):
    entry = cluster.backends[sid]._get_live(key)
    return None if entry is None else entry.data


def plant(cluster, sid, key, data):
    cluster.backends[sid].execute(Command(name="set", keys=(key,), data=data))


class TestQuorumWrite:
    def test_committed_everywhere(self):
        async def go():
            async with _Cluster() as c:
                outcome = await c.client.set_versioned("k", b"hello")
                assert outcome.outcome == "committed"
                assert set(outcome.acked) == set(c.placer.servers_for("k"))
                # every replica holds the same enveloped value
                for sid in c.placer.servers_for("k"):
                    assert decode_versioned(backend_value(c, sid, "k")) == (
                        outcome.stamp,
                        b"hello",
                    )

        run(go())

    def test_dead_replica_fails_majority_at_r2(self):
        """R=2 makes majority equal to all: one dead replica, no commit."""

        async def go():
            async with _Cluster() as c:
                victim = c.placer.servers_for("k")[-1]
                await c.kill(victim)
                outcome = await c.client.set_versioned("k", b"v")
                assert outcome.outcome == "failed"
                assert victim in outcome.failed
                # the surviving ack still seeded divergence
                assert outcome.divergent

        run(go())

    def test_dead_replica_is_partial_in_leader_mode(self):
        async def go():
            async with _Cluster() as c:
                victim = c.placer.servers_for("k")[-1]
                await c.kill(victim)
                outcome = await c.client.set_versioned("k", b"v", w="leader")
                assert outcome.outcome == "partial"
                assert victim in outcome.failed
                assert outcome.committed and outcome.divergent

        run(go())

    def test_leader_mode_fails_without_the_distinguished_ack(self):
        async def go():
            async with _Cluster() as c:
                home = c.placer.distinguished_for("k")
                await c.kill(home)
                outcome = await c.client.set_versioned("k", b"v", w="leader")
                assert outcome.outcome == "failed"

        run(go())

    def test_stamps_are_monotonic(self):
        async def go():
            async with _Cluster() as c:
                first = (await c.client.set_versioned("k", b"1")).stamp
                second = (await c.client.set_versioned("k", b"2")).stamp
                assert second > first

        run(go())


class TestVersionedRead:
    def test_roundtrip(self):
        async def go():
            async with _Cluster() as c:
                outcome = await c.client.set_versioned("k", b"payload")
                read = await c.client.get_versioned("k")
                assert read.payload == b"payload"
                assert read.stamp == outcome.stamp
                assert not read.divergent

        run(go())

    def test_stale_replica_repaired_inline(self):
        async def go():
            async with _Cluster() as c:
                outcome = await c.client.set_versioned("k", b"new")
                victim = c.placer.servers_for("k")[-1]
                plant(
                    c, victim, "k", encode_versioned(b"old", VersionStamp(0, 0, 0))
                )
                read = await c.client.get_versioned("k")
                assert read.stale == (victim,) and read.divergent
                assert read.payload == b"new"
                assert victim in read.repaired
                assert decode_versioned(backend_value(c, victim, "k")) == (
                    outcome.stamp,
                    b"new",
                )

        run(go())

    def test_missing_replica_repaired_inline(self):
        async def go():
            async with _Cluster() as c:
                await c.client.set_versioned("k", b"v")
                victim = c.placer.servers_for("k")[-1]
                c.backends[victim].execute(Command(name="delete", keys=("k",)))
                read = await c.client.get_versioned("k")
                assert read.missing == (victim,)
                assert victim in read.repaired
                assert backend_value(c, victim, "k") is not None

        run(go())

    def test_dead_distinguished_served_from_replicas(self):
        async def go():
            async with _Cluster() as c:
                outcome = await c.client.set_versioned("k", b"v")
                home = c.placer.distinguished_for("k")
                await c.kill(home)
                read = await c.client.get_versioned("k")
                assert read.found and read.payload == b"v"
                assert read.stamp == outcome.stamp
                assert home in read.dead and read.source != home

        run(go())

    def test_unversioned_value_reads_back_plain(self):
        async def go():
            async with _Cluster() as c:
                c.preload({"legacy": b"plain"})
                read = await c.client.get_versioned("legacy")
                assert read.stamp is None and read.payload == b"plain"
                assert not read.divergent

        run(go())

    def test_repair_false_leaves_the_stale_copy(self):
        async def go():
            async with _Cluster() as c:
                stale = encode_versioned(b"old", VersionStamp(0, 0, 0))
                await c.client.set_versioned("k", b"new")
                victim = c.placer.servers_for("k")[-1]
                plant(c, victim, "k", stale)
                read = await c.client.get_versioned("k", repair=False)
                assert read.stale == (victim,)
                assert backend_value(c, victim, "k") == stale

        run(go())

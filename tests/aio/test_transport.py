"""Pipelined async transport: FIFO ordering, timeouts, pool balance."""

from __future__ import annotations

import asyncio

import pytest

from repro.aio.server import AsyncMemcachedServer
from repro.aio.transport import AsyncConnection, AsyncConnectionPool
from repro.errors import ServerTimeout
from repro.protocol.codec import Command, encode_command
from repro.protocol.memserver import MemcachedServer
from repro.protocol.retry import RetryPolicy


def run(coro):
    return asyncio.run(coro)


async def _with_server(fn):
    backend = MemcachedServer()
    server = AsyncMemcachedServer(backend)
    host, port = await server.start()
    try:
        return await fn(backend, host, port)
    finally:
        await server.stop()


class TestPipelining:
    def test_many_exchanges_one_connection_preserve_ordering(self):
        async def scenario(backend, host, port):
            for i in range(64):
                backend.execute(
                    Command(name="set", keys=(f"k{i}",), data=f"v{i}".encode())
                )
            conn = AsyncConnection(host, port)
            try:
                reqs = [
                    conn.exchange(encode_command(Command(name="get", keys=(f"k{i}",))))
                    for i in range(64)
                ]
                replies = await asyncio.gather(*reqs)
            finally:
                conn.close()
            assert len(conn._pending) == 0
            return replies

        replies = run(_with_server(scenario))
        # every caller got ITS response, not a neighbour's
        for i, [resp] in enumerate(replies):
            assert resp.values[f"k{i}"][1] == f"v{i}".encode()

    def test_concurrent_first_use_creates_one_socket(self):
        # racing first exchanges must share ONE socket + read loop, not
        # each open their own (the connect lock's reason to exist)
        async def scenario():
            server = AsyncMemcachedServer(MemcachedServer())
            host, port = await server.start()
            conn = AsyncConnection(host, port)
            try:
                await asyncio.gather(
                    *(
                        conn.exchange(
                            encode_command(
                                Command(name="set", keys=(f"x{i}",), data=b"v")
                            )
                        )
                        for i in range(20)
                    )
                )
                assert server.connections_accepted == 1
                assert conn.exchanges == 20
            finally:
                conn.close()
                await server.stop()

        run(scenario())


class TestTimeoutParity:
    """The PR-5 connect/read split, audited knob for knob vs TCPTransport."""

    def test_policy_is_the_default_source(self):
        policy = RetryPolicy(connect_timeout=3.5, request_timeout=7.5)
        conn = AsyncConnection("127.0.0.1", 1, policy=policy)
        assert conn.connect_timeout == 3.5
        assert conn.read_timeout == 7.5

    def test_legacy_timeout_overrides_both(self):
        policy = RetryPolicy(connect_timeout=3.5, request_timeout=7.5)
        conn = AsyncConnection("127.0.0.1", 1, policy=policy, timeout=1.25)
        assert conn.connect_timeout == 1.25
        assert conn.read_timeout == 1.25

    def test_per_phase_kwargs_beat_legacy(self):
        conn = AsyncConnection(
            "127.0.0.1", 1, timeout=9.0, connect_timeout=0.5, read_timeout=2.0
        )
        assert conn.connect_timeout == 0.5
        assert conn.read_timeout == 2.0

    def test_one_phase_overridden_other_from_legacy(self):
        conn = AsyncConnection("127.0.0.1", 1, timeout=9.0, connect_timeout=0.5)
        assert conn.connect_timeout == 0.5
        assert conn.read_timeout == 9.0

    def test_pool_propagates_the_split(self):
        pool = AsyncConnectionPool(
            "127.0.0.1", 1, timeout=9.0, connect_timeout=0.5, read_timeout=2.0
        )
        conn = pool._pick_connection()
        assert conn.connect_timeout == 0.5
        assert conn.read_timeout == 2.0


class TestReadTimeout:
    def test_silent_server_raises_server_timeout_and_tears_down(self):
        async def scenario():
            async def mute(reader, writer):
                await reader.read(65536)  # swallow the request, answer nothing

            server = await asyncio.start_server(mute, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            conn = AsyncConnection(host, port, read_timeout=0.1)
            try:
                with pytest.raises(ServerTimeout):
                    await conn.exchange(
                        encode_command(Command(name="get", keys=("k",)))
                    )
                assert not conn.connected  # FIFO desync prevention
            finally:
                conn.close()
                server.close()
                await server.wait_closed()

        run(scenario())


class TestPool:
    def test_grows_lazily_and_balances_by_in_flight(self):
        async def scenario(backend, host, port):
            pool = AsyncConnectionPool(host, port, size=3)
            try:
                await asyncio.gather(
                    *(
                        pool.exchange(
                            encode_command(
                                Command(name="set", keys=(f"p{i}",), data=b"v")
                            )
                        )
                        for i in range(30)
                    )
                )
                n_conns = len(pool.connections)
                total = sum(c.exchanges for c in pool.connections)
            finally:
                pool.close()
            assert 1 <= n_conns <= 3
            assert total == 30

        run(_with_server(scenario))

    def test_size_validated(self):
        with pytest.raises(ValueError):
            AsyncConnectionPool("127.0.0.1", 1, size=0)

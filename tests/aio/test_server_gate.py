"""Async server partition gate: refuse connections while the link is cut."""

from __future__ import annotations

import asyncio

from repro.aio.memclient import AsyncMemcachedClient
from repro.aio.server import AsyncMemcachedServer
from repro.aio.transport import AsyncConnection
from repro.errors import ProtocolError, ServerTimeout
from repro.protocol.memserver import MemcachedServer

#: what a client sees talking across a cut link: refused, dropped mid-
#: response, or hung until the deadline
CUT_ERRORS = (
    ConnectionError,
    OSError,
    asyncio.IncompleteReadError,
    ProtocolError,
    ServerTimeout,
)


def run(coro):
    return asyncio.run(coro)


class TestConnectionGate:
    def test_cut_gate_refuses_new_connections(self):
        async def scenario():
            server = AsyncMemcachedServer(MemcachedServer(), gate=lambda: True)
            host, port = await server.start()
            try:
                conn = AsyncConnection(host, port, timeout=2.0)
                client = AsyncMemcachedClient(conn)
                try:
                    await client.get("k")
                except CUT_ERRORS:
                    pass
                else:  # pragma: no cover - the cut must surface
                    raise AssertionError("gated server served a request")
                finally:
                    conn.close()
            finally:
                await server.stop()
            assert server.connections_refused >= 1
            assert server.connections_accepted == 0

        run(scenario())

    def test_open_gate_serves_normally(self):
        async def scenario():
            server = AsyncMemcachedServer(MemcachedServer(), gate=lambda: False)
            host, port = await server.start()
            conn = AsyncConnection(host, port, timeout=2.0)
            client = AsyncMemcachedClient(conn)
            try:
                assert await client.set("k", b"v")
                assert await client.get("k") == b"v"
            finally:
                conn.close()
                await server.stop()
            assert server.connections_refused == 0
            assert server.connections_accepted == 1

        run(scenario())

    def test_no_gate_is_the_default_path(self):
        async def scenario():
            server = AsyncMemcachedServer(MemcachedServer())
            host, port = await server.start()
            conn = AsyncConnection(host, port, timeout=2.0)
            client = AsyncMemcachedClient(conn)
            try:
                assert await client.set("k", b"v")
            finally:
                conn.close()
                await server.stop()
            assert server.connections_refused == 0

        run(scenario())

    def test_mid_connection_cut_drops_established_sessions(self):
        async def scenario():
            cut = {"on": False}
            server = AsyncMemcachedServer(MemcachedServer(), gate=lambda: cut["on"])
            host, port = await server.start()
            conn = AsyncConnection(host, port, timeout=2.0)
            client = AsyncMemcachedClient(conn)
            try:
                assert await client.set("k", b"v")  # session established
                cut["on"] = True  # the link goes down mid-session
                # a request already in flight past the gate check may
                # still be answered; the gate then closes the session,
                # so the *next* request deterministically fails
                try:
                    await client.get("k")
                except CUT_ERRORS:
                    pass
                try:
                    await client.get("k")
                except CUT_ERRORS:
                    pass
                else:  # pragma: no cover
                    raise AssertionError("request crossed a cut link")
            finally:
                conn.close()
                await server.stop()
            assert server.connections_refused >= 1

        run(scenario())

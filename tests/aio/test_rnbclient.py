"""AsyncRnBClient: bundled reads, failover, deadlines, busy sheds."""

from __future__ import annotations

import asyncio

import pytest

from repro.aio.memclient import AsyncMemcachedClient
from repro.aio.rnbclient import AsyncRnBClient
from repro.aio.server import AsyncMemcachedServer
from repro.aio.transport import AsyncConnection, AsyncConnectionPool
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.overload.load import AdmissionControl
from repro.protocol.codec import Command
from repro.protocol.memserver import MemcachedServer
from repro.protocol.retry import RetryPolicy

N_SERVERS = 4
R = 2
FAST = RetryPolicy(
    connect_timeout=2.0, request_timeout=2.0, max_retries=2, backoff_base=0.001
)


def run(coro):
    return asyncio.run(coro)


class _Cluster:
    """A live async fleet + client, torn down deterministically."""

    def __init__(self, *, admission=None, pool_size=2, retry_policy=FAST):
        self.placer = RangedConsistentHashPlacer(N_SERVERS, R, seed=0)
        self.backends = [
            MemcachedServer(
                name=f"s{i}",
                admission=admission() if admission is not None else None,
            )
            for i in range(N_SERVERS)
        ]
        self.servers = [AsyncMemcachedServer(b) for b in self.backends]
        self.pools: list[AsyncConnectionPool] = []
        self.pool_size = pool_size
        self.retry_policy = retry_policy
        self.client: AsyncRnBClient | None = None

    async def __aenter__(self) -> "_Cluster":
        addrs = [await s.start() for s in self.servers]
        self.pools = [
            AsyncConnectionPool(h, p, size=self.pool_size, timeout=2.0)
            for h, p in addrs
        ]
        self.client = AsyncRnBClient(
            {sid: AsyncMemcachedClient(pool) for sid, pool in enumerate(self.pools)},
            self.placer,
            retry_policy=self.retry_policy,
        )
        return self

    async def __aexit__(self, *exc):
        for pool in self.pools:
            pool.close()
        for server in self.servers:
            await server.stop()
        return False

    def preload(self, items: dict[str, bytes]) -> None:
        for key, value in items.items():
            cmd = Command(name="set", keys=(key,), data=value)
            for sid in self.placer.servers_for(key):
                self.backends[sid].execute(cmd)

    async def kill(self, sid: int) -> None:
        await self.servers[sid].stop()
        self.pools[sid].close()


ITEMS = {f"m{i:03d}": f"val{i}".encode() for i in range(60)}


class TestGetMulti:
    def test_bundled_fetch_returns_everything(self):
        async def scenario():
            async with _Cluster() as c:
                c.preload(ITEMS)
                outcome = await c.client.get_multi(sorted(ITEMS))
                assert outcome.values == ITEMS
                assert outcome.missing == ()
                assert not outcome.deadline_hit
                # bundling: far fewer transactions than items
                assert outcome.transactions <= N_SERVERS

        run(scenario())

    def test_many_inflight_requests_each_get_their_own_answer(self):
        # N concurrent get_multis multiplexed over the same pools: every
        # request sees exactly its keys (FIFO pipelining never crosses
        # responses between requests)
        async def scenario():
            async with _Cluster(pool_size=1) as c:
                c.preload(ITEMS)
                keysets = [tuple(sorted(ITEMS))[i : i + 6] for i in range(0, 54, 3)]
                outcomes = await asyncio.gather(
                    *(c.client.get_multi(ks) for ks in keysets)
                )
                for ks, outcome in zip(keysets, outcomes):
                    assert outcome.values == {k: ITEMS[k] for k in ks}
                # pool_size=1: one socket per server carried all of it
                for pool in c.pools:
                    assert len(pool.connections) <= 1

        run(scenario())

    def test_dead_server_fails_over_to_replicas(self):
        async def scenario():
            async with _Cluster() as c:
                c.preload(ITEMS)
                dead = c.placer.distinguished_for(next(iter(ITEMS)))
                await c.kill(dead)
                outcome = await c.client.get_multi(sorted(ITEMS))
                assert outcome.values == ITEMS
                assert dead in outcome.failed_servers
                assert outcome.second_round_transactions > 0

        run(scenario())

    def test_single_get_and_set_roundtrip(self):
        async def scenario():
            async with _Cluster() as c:
                await c.client.set("solo", b"payload")
                assert await c.client.get("solo") == b"payload"
                assert await c.client.get("absent") is None
                await c.client.delete("solo")
                assert await c.client.get("solo") is None

        run(scenario())


class TestDeadline:
    def test_deadline_degrades_instead_of_failing(self):
        async def scenario():
            async with _Cluster() as c:
                c.preload(ITEMS)

                # wedge every fetch behind an artificial stall
                real_fetch = c.client._fetch

                async def slow_fetch(sid, keys, counters=None, parent=None):
                    await asyncio.sleep(0.5)
                    return await real_fetch(sid, keys, counters)

                c.client._fetch = slow_fetch
                outcome = await c.client.get_multi(sorted(ITEMS), deadline=0.05)
                assert outcome.deadline_hit
                assert set(outcome.missing) == set(ITEMS)  # nothing arrived in time

        run(scenario())

    def test_per_request_deadlines_are_independent(self):
        # a tight deadline on one request must not cut a concurrent
        # request that has budget to spare
        async def scenario():
            async with _Cluster() as c:
                c.preload(ITEMS)
                real_fetch = c.client._fetch
                stalled_keys = set(list(ITEMS)[:6])

                async def selective(sid, keys, counters=None, parent=None):
                    if stalled_keys.intersection(keys):
                        await asyncio.sleep(0.3)
                    return await real_fetch(sid, keys, counters)

                c.client._fetch = selective
                tight, roomy = await asyncio.gather(
                    c.client.get_multi(sorted(stalled_keys), deadline=0.05),
                    c.client.get_multi(sorted(ITEMS), deadline=5.0),
                )
                assert tight.deadline_hit
                assert not roomy.deadline_hit
                assert roomy.values == ITEMS

        run(scenario())


class TestBusySheds:
    def test_busy_sheds_counted_and_request_still_served(self):
        # queue_limit=0 is invalid; use a bucket-free gate that always
        # rejects by saturating outstanding first
        def gate():
            ac = AdmissionControl(queue_limit=1)
            ac.outstanding = 1  # permanently full: every get sheds BUSY
            return ac

        async def scenario():
            async with _Cluster(admission=gate) as c:
                c.preload(ITEMS)
                keys = sorted(ITEMS)[:8]
                outcome = await c.client.get_multi(keys)
                # every server sheds, so nothing can be served...
                assert set(outcome.missing) == set(keys)
                # ...but the request completed (degraded), never raised,
                # and the sheds were counted
                assert outcome.busy_sheds > 0
                assert c.client.busy_sheds == outcome.busy_sheds

        run(scenario())


class TestConstructorContract:
    def test_connections_must_cover_the_placer(self):
        from repro.errors import ConfigurationError

        placer = RangedConsistentHashPlacer(3, 2, seed=0)
        with pytest.raises(ConfigurationError):
            AsyncRnBClient({0: object(), 1: object()}, placer)

    def test_breakers_autocreate_health(self):
        from repro.overload.breaker import BreakerBoard

        placer = RangedConsistentHashPlacer(3, 2, seed=0)
        client = AsyncRnBClient(
            {0: AsyncConnection("h", 1), 1: AsyncConnection("h", 1),
             2: AsyncConnection("h", 1)},
            placer,
            breakers=BreakerBoard(3),
        )
        assert client.health is not None

    def test_pipelined_connection_reused_not_restacked(self):
        # a transport carrying its own policy must not get client-level
        # retries stacked on top (attempts would compound)
        async def scenario():
            async with _Cluster() as c:
                c.preload(ITEMS)
                for sid, conn in c.client.connections.items():
                    conn.policy = FAST  # now each conn retries itself
                outcome = await c.client.get_multi(sorted(ITEMS)[:10])
                assert len(outcome.values) == 10

        run(scenario())

"""Async server front: shared backend, pipelining, BUSY verdicts."""

from __future__ import annotations

import asyncio
import socket

from repro.aio.memclient import AsyncMemcachedClient
from repro.aio.server import AsyncMemcachedServer, serve_aio
from repro.aio.transport import AsyncConnection
from repro.overload.load import AdmissionControl
from repro.protocol.memclient import MemcachedConnection
from repro.protocol.memserver import MemcachedServer, serve_tcp
from repro.protocol.transport import TCPTransport


def run(coro):
    return asyncio.run(coro)


class TestSharedBackend:
    def test_async_and_threaded_fronts_serve_one_store(self):
        backend = MemcachedServer()
        threaded, (th, tp) = serve_tcp(backend)
        aio_handle, (ah, ap) = serve_aio(backend)
        try:
            sync_client = MemcachedConnection(TCPTransport(th, tp, timeout=2.0))
            sync_client.set("via-sync", b"1")

            async def via_async():
                conn = AsyncConnection(ah, ap, timeout=2.0)
                client = AsyncMemcachedClient(conn)
                try:
                    # the async front reads what the threaded front wrote
                    assert await client.get("via-sync") == b"1"
                    assert await client.set("via-async", b"2")
                finally:
                    conn.close()

            run(via_async())
            # ... and vice versa
            assert sync_client.get("via-async") == b"2"
            sync_client.transport.close()
        finally:
            aio_handle.stop()
            threaded.shutdown()
            threaded.server_close()


class TestProtocol:
    def test_pipelined_burst_answers_in_order(self):
        # raw socket: write many commands before reading anything
        backend = MemcachedServer()
        handle, (host, port) = serve_aio(backend)
        try:
            with socket.create_connection((host, port), timeout=2.0) as sock:
                burst = b"".join(
                    b"set b%03d 0 0 2\r\nv%1d\r\n" % (i, i) for i in range(10)
                )
                burst += b"get b000 b005 b009\r\n"
                sock.sendall(burst)
                sock.settimeout(2.0)
                data = b""
                while data.count(b"STORED\r\n") < 10 or b"END\r\n" not in data:
                    data += sock.recv(65536)
            # responses in request order: 10 STOREDs then the get
            assert data.startswith(b"STORED\r\n" * 10)
            assert b"VALUE b000" in data and b"VALUE b009" in data
        finally:
            handle.stop()

    def test_malformed_input_answers_error_and_closes(self):
        handle, (host, port) = serve_aio(MemcachedServer())
        try:
            with socket.create_connection((host, port), timeout=2.0) as sock:
                sock.sendall(b"gibberish nonsense\r\n")
                sock.settimeout(2.0)
                assert sock.recv(65536) == b"ERROR\r\n"
                assert sock.recv(65536) == b""  # server closed the connection
        finally:
            handle.stop()


class TestAdmission:
    def test_busy_verdict_surfaces_through_the_async_front(self):
        gate = AdmissionControl(queue_limit=1)
        gate.outstanding = 1  # permanently full
        backend = MemcachedServer(admission=gate)

        async def scenario():
            server = AsyncMemcachedServer(backend)
            host, port = await server.start()
            conn = AsyncConnection(host, port, timeout=2.0)
            client = AsyncMemcachedClient(conn)
            try:
                from repro.errors import ServerBusy

                import pytest

                with pytest.raises(ServerBusy):
                    await client.get("anything")
            finally:
                conn.close()
                await server.stop()

        run(scenario())

    def test_port_zero_picks_a_free_port_per_server(self):
        async def scenario():
            servers = [AsyncMemcachedServer(MemcachedServer()) for _ in range(3)]
            addrs = [await s.start() for s in servers]
            ports = {p for _, p in addrs}
            for s in servers:
                await s.stop()
            assert len(ports) == 3

        run(scenario())


class TestStatsMetricsVerb:
    def test_async_front_serves_the_obs_catalog(self):
        # `stats metrics` delegates to the shared backend, so the async
        # front exports the same telemetry the threaded front does
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("rnb_requests_total", path="aio", outcome="ok").inc()
        backend = MemcachedServer(name="a0", metrics=registry)
        handle, (host, port) = serve_aio(backend)
        try:

            async def scrape():
                conn = AsyncConnection(host, port, timeout=2.0)
                client = AsyncMemcachedClient(conn)
                try:
                    await client.set("k", b"v")
                    return await client.stats("metrics")
                finally:
                    conn.close()

            stats = run(scrape())
            assert stats['rnb_requests_total{outcome="ok",path="aio"}'] == "1"
            assert stats['rnb_cache_cmd_set_total{server="a0"}'] == "1"
        finally:
            handle.stop()

"""DES + partition oracle: unreachable servers are refused pre-admission."""

from __future__ import annotations

import numpy as np

from repro.analysis.calibration import DEFAULT_MEMCACHED_MODEL
from repro.core.bundling import Bundler
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.obs import MetricsRegistry
from repro.overload.desim import simulate_overload
from repro.types import Request
from repro.utils.rng import derive_rng

N_SERVERS = 8
N_ITEMS = 400
COST = DEFAULT_MEMCACHED_MODEL


def make_requests(n, size=8, seed=5):
    rng = np.random.default_rng(seed)
    return [
        Request(
            items=tuple(
                sorted(int(i) for i in rng.choice(N_ITEMS, size, replace=False))
            )
        )
        for _ in range(n)
    ]


def run(*, unreachable=None, metrics=None, seed=11):
    bundler = Bundler(RangedConsistentHashPlacer(N_SERVERS, 2, seed=0, vnodes=32))
    return simulate_overload(
        make_requests(250),
        bundler,
        n_servers=N_SERVERS,
        cost_model=COST,
        arrival_rate=2000.0,
        rng=derive_rng(seed, 1),
        metrics=metrics,
        unreachable=unreachable,
    )


def always_cut(sid, now):
    return sid == 0


class TestPartitionOracle:
    def test_default_is_zero_blocked(self):
        result = run()
        assert result.partition_blocked == 0

    def test_cut_server_is_refused_and_counted(self):
        registry = MetricsRegistry()
        result = run(unreachable=always_cut, metrics=registry)
        assert result.partition_blocked > 0
        snap = registry.snapshot()["rnb_partition_blocked_total"]["series"]
        assert sum(snap.values()) == result.partition_blocked

    def test_requests_still_complete_around_the_cut(self):
        # R=2: every item on server 0 has a replica elsewhere, so the
        # cover re-routes and the workload still makes progress
        result = run(unreachable=always_cut)
        assert result.served_fraction > 0.5

    def test_windowed_cut_blocks_only_inside_the_window(self):
        calls = []

        def windowed(sid, now):
            hit = sid == 0 and 0.02 <= now < 0.05
            if hit:
                calls.append(now)
            return hit

        run(unreachable=windowed)
        assert calls  # the window really fired
        assert all(0.02 <= now < 0.05 for now in calls)

    def test_deterministic_under_the_oracle(self):
        a = run(unreachable=always_cut)
        b = run(unreachable=always_cut)
        assert a.partition_blocked == b.partition_blocked
        np.testing.assert_array_equal(a.latencies, b.latencies)

"""Off means off: every overload hook, disabled, is bit-identical to main.

The overload subsystem threads through the planner tie-break, the FIFO
DES, the engine's batched fast path and the simulated servers.  Each
hook defaults to *off*; these tests pin the contract that the default
path produces exactly the results it produced before the subsystem
existed — not approximately, bit for bit.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.analysis.calibration import DEFAULT_MEMCACHED_MODEL
from repro.core.bundling import Bundler
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.sim.config import ClientConfig, ClusterConfig, SimConfig
from repro.sim.des import make_bundled_planner, simulate_queueing
from repro.sim.engine import run_simulation
from repro.utils.rng import derive_rng
from repro.workloads.graphs import SocialGraph
from repro.workloads.requests import EgoRequestGenerator
from repro.workloads.synthetic import make_slashdot_like


@pytest.fixture(scope="module")
def graph() -> SocialGraph:
    return make_slashdot_like(seed=9, scale=0.02)


def sim(graph, **overrides) -> dict:
    defaults = dict(
        cluster=ClusterConfig(n_servers=8, replication=2),
        n_requests=400,
        warmup_requests=100,
        seed=17,
    )
    defaults.update(overrides)
    res = run_simulation(graph, SimConfig(**defaults))
    return {
        "stats": res.stats,
        "tpr": res.tpr,
        "hist": res.txn_histogram.counts,
    }


class TestEngineTieBreakOff:
    def test_default_config_fast_path_identity(self, graph):
        """The stock config (tie_break="lowest") stays bit-identical
        across the fast and scalar paths with the overload hooks in the
        tree."""
        assert sim(graph, fast_path=True) == sim(graph, fast_path=False)

    def test_least_loaded_deterministic_and_path_independent(self, graph):
        cfg = ClientConfig(tie_break="least_loaded")
        a = sim(graph, client=cfg, fast_path=True)
        b = sim(graph, client=cfg, fast_path=False)
        # the engine must force the scalar path for load-aware runs
        # (chunked planning would freeze the load signal), so both
        # settings take the same code path and agree exactly
        assert a == b
        assert a == sim(graph, client=cfg, fast_path=True)

    def test_least_loaded_still_covers_everything(self, graph):
        res = sim(graph, client=ClientConfig(tie_break="least_loaded"))
        assert res["stats"].misses == 0 or res["stats"].items_fetched > 0


class TestQueueingMultipliersOff:
    def _run(self, multipliers):
        graph = make_slashdot_like(seed=3, scale=0.02)
        placer = RangedConsistentHashPlacer(8, 2, vnodes=32)
        planner = make_bundled_planner(Bundler(placer))
        gen = EgoRequestGenerator(graph, rng=derive_rng(3, 1))
        return simulate_queueing(
            itertools.islice(gen.stream(), 600),
            planner,
            n_servers=8,
            cost_model=DEFAULT_MEMCACHED_MODEL,
            arrival_rate=3000.0,
            latency_multipliers=multipliers,
            rng=derive_rng(3, 2),
        )

    def test_none_equals_all_ones(self):
        """The new stragglers hook, fed neutral values, changes nothing."""
        off = self._run(None)
        neutral = self._run([1.0] * 8)
        np.testing.assert_array_equal(off.latencies, neutral.latencies)
        assert off.p95_latency == neutral.p95_latency
        assert off.max_utilization == neutral.max_utilization

    def test_straggler_actually_straggles(self):
        slow = self._run([1.0] * 7 + [30.0])
        off = self._run(None)
        assert slow.p95_latency > off.p95_latency

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            self._run([1.0, 1.0])


class TestServerGateOff:
    def test_fresh_server_has_no_admission(self):
        from repro.cluster.server import Server

        s = Server(0)
        assert s.admission is None

"""Tests for token buckets, admission control and the load tracker."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.overload.load import AdmissionControl, LoadTracker, TokenBucket


class TestTokenBucket:
    def test_starts_full_and_spends(self):
        b = TokenBucket(rate=1.0, burst=3.0)
        assert b.try_acquire(0.0)
        assert b.try_acquire(0.0)
        assert b.try_acquire(0.0)
        assert not b.try_acquire(0.0)  # bucket drained
        assert b.admitted == 3 and b.rejected == 1

    def test_refills_continuously_capped_at_burst(self):
        b = TokenBucket(rate=2.0, burst=4.0)
        for _ in range(4):
            assert b.try_acquire(0.0)
        assert b.tokens_at(1.0) == pytest.approx(2.0)  # 2 tokens/s refill
        assert b.tokens_at(100.0) == pytest.approx(4.0)  # never above burst

    def test_reject_has_no_side_effects(self):
        b = TokenBucket(rate=1.0, burst=1.0)
        assert b.try_acquire(0.0)
        level = b.tokens_at(0.0)
        assert not b.try_acquire(0.0, 1.0)
        assert b.tokens_at(0.0) == level

    def test_clock_never_runs_backwards(self):
        b = TokenBucket(rate=1.0, burst=5.0)
        b.try_acquire(10.0)
        # a stale timestamp must not mint tokens
        assert b.tokens_at(5.0) == pytest.approx(4.0)

    @pytest.mark.parametrize("kwargs", [{"rate": 0.0, "burst": 1.0}, {"rate": 1.0, "burst": 0.0}])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            TokenBucket(**kwargs)


class TestAdmissionControl:
    def test_queue_limit_bounds_outstanding(self):
        a = AdmissionControl(queue_limit=2)
        assert a.try_admit() and a.try_admit()
        assert not a.try_admit()  # full -> BUSY
        assert a.busy_rejections == 1
        a.finished()
        assert a.try_admit()

    def test_bucket_layered_on_queue(self):
        a = AdmissionControl(queue_limit=10, bucket=TokenBucket(rate=1.0, burst=1.0))
        assert a.try_admit(now=0.0)
        assert not a.try_admit(now=0.0)  # bucket empty, queue has room
        assert a.try_admit(now=1.0)  # refilled

    def test_drain_resets_tick_domain_occupancy(self):
        a = AdmissionControl(queue_limit=1)
        assert a.try_admit()
        assert not a.try_admit()
        a.drain()
        assert a.try_admit()

    def test_finished_never_goes_negative(self):
        a = AdmissionControl(queue_limit=1)
        a.finished()
        assert a.outstanding == 0

    def test_no_gates_means_always_admit(self):
        a = AdmissionControl()
        assert all(a.try_admit() for _ in range(100))
        assert a.busy_rejections == 0

    def test_rejects_bad_queue_limit(self):
        with pytest.raises(ConfigurationError):
            AdmissionControl(queue_limit=0)


class TestLoadTracker:
    def test_zero_signal_means_zero_load(self):
        t = LoadTracker(4)
        assert t.loads() == [0.0, 0.0, 0.0, 0.0]

    def test_outstanding_and_ewma_accumulate(self):
        t = LoadTracker(2)
        t.sent(0, n_items=10)
        assert t.load(0) == pytest.approx(1 + 10.0)
        t.finished(0)
        assert t.load(0) == pytest.approx(10.0)  # ewma persists until tick

    def test_tick_decays_recent_work(self):
        t = LoadTracker(1, decay=0.5)
        t.sent(0, n_items=8)
        t.finished(0)
        t.tick()
        assert t.load(0) == pytest.approx(4.0)
        t.tick()
        assert t.load(0) == pytest.approx(2.0)

    def test_busy_verdicts_weigh_heavily_and_age_out(self):
        t = LoadTracker(2)
        t.busy(0)
        assert t.load(0) == pytest.approx(LoadTracker.BUSY_WEIGHT)
        t.tick()
        assert t.load(0) == 0.0

    def test_ensure_capacity_grows(self):
        t = LoadTracker(2)
        t.ensure_capacity(5)
        assert t.n_servers == 5
        assert t.load(4) == 0.0

    def test_snapshot_breakdown(self):
        t = LoadTracker(1)
        t.sent(0, n_items=3)
        snap = t.snapshot()[0]
        assert snap["outstanding"] == 1.0 and snap["ewma"] == 3.0

    @pytest.mark.parametrize("kwargs", [{"n_servers": 0}, {"n_servers": 1, "decay": 1.0}])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            LoadTracker(**kwargs)

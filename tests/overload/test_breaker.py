"""Tests for the circuit-breaker board and its health-tracker wiring."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults.health import HealthTracker
from repro.overload.breaker import CLOSED, HALF_OPEN, OPEN, BreakerBoard


def trip(board: BreakerBoard, sid: int = 0) -> None:
    for _ in range(board.trip_after):
        board.record_failure(sid)


class TestStateMachine:
    def test_trips_after_window_failures(self):
        b = BreakerBoard(2, trip_after=3, window=8)
        b.record_failure(0)
        b.record_failure(0)
        assert b.state(0) == CLOSED
        b.record_failure(0)
        assert b.state(0) == OPEN
        assert b.tripped() == frozenset({0})

    def test_sliding_window_forgets_old_failures(self):
        b = BreakerBoard(1, trip_after=3, window=3)
        b.record_failure(0)
        b.record_success(0)
        b.record_failure(0)
        b.record_failure(0)  # window holds S,F,F -> only 2 failures
        assert b.state(0) == CLOSED

    def test_open_ripens_to_half_open(self):
        b = BreakerBoard(1, trip_after=1, window=1, open_ticks=4, seed=0)
        trip(b)
        # jitter is bounded by open_ticks // 2, so open_ticks * 1 + that
        b.advance(4 + 2)
        assert b.state(0) == HALF_OPEN

    def test_single_probe_slot(self):
        b = BreakerBoard(1, trip_after=1, window=1, open_ticks=1)
        trip(b)
        b.advance(2)
        assert b.state(0) == HALF_OPEN
        assert b.allow_probe(0)
        assert not b.allow_probe(0)  # slot already claimed
        assert b.tripped() == frozenset({0})  # probing server stays excluded

    def test_probe_success_closes_and_forgives(self):
        b = BreakerBoard(1, trip_after=1, window=1, open_ticks=1)
        trip(b)
        b.advance(2)
        assert b.allow_probe(0)
        b.record_success(0)
        assert b.state(0) == CLOSED
        assert b.tripped() == frozenset()

    def test_probe_failure_reopens_with_escalated_backoff(self):
        b = BreakerBoard(1, trip_after=1, window=1, open_ticks=10, seed=0)
        trip(b)
        first_retry = b._breakers[0].retry_at
        b.advance(first_retry)
        assert b.state(0) == HALF_OPEN
        b.record_failure(0)
        assert b.state(0) == OPEN
        second_wait = b._breakers[0].retry_at - b.tick
        assert second_wait >= 2 * 10  # doubled base, any jitter on top

    def test_backoff_escalation_caps(self):
        b = BreakerBoard(1, trip_after=1, window=1, open_ticks=10, seed=0)
        for _ in range(10):  # re-trip far past the cap
            trip(b)
            b.advance(b._breakers[0].retry_at - b.tick)
            b.record_failure(0)  # failed probe -> re-open
        wait = b._breakers[0].retry_at - b.tick
        assert wait <= 10 * BreakerBoard.MAX_BACKOFF_FACTOR + 5  # capped + jitter

    def test_failures_while_open_are_ignored(self):
        b = BreakerBoard(1, trip_after=1, window=4)
        trip(b)
        transitions = b.transitions_total()
        b.record_failure(0)
        b.record_failure(0)
        assert b.transitions_total() == transitions

    def test_record_recovery_forces_closed(self):
        b = BreakerBoard(1, trip_after=1, window=1)
        trip(b)
        b.record_recovery(0)
        assert b.state(0) == CLOSED
        assert b._breakers[0].trip_streak == 0

    def test_counts(self):
        b = BreakerBoard(3, trip_after=1, window=1)
        trip(b, 1)
        assert b.counts() == {CLOSED: 2, OPEN: 1, HALF_OPEN: 0}


class TestDeterminism:
    def test_same_seed_same_transitions(self):
        def run(seed):
            b = BreakerBoard(4, trip_after=2, window=4, open_ticks=7, seed=seed)
            log = []
            for step in range(200):
                sid = step % 4
                b.advance()
                if (step * 2654435761) % 3 == 0:
                    b.record_failure(sid)
                else:
                    b.record_success(sid)
                log.append((b.state(sid), tuple(sorted(b.tripped()))))
            return log, b.transitions_total()

        assert run(9) == run(9)

    def test_probe_jitter_varies_by_server(self):
        b = BreakerBoard(8, trip_after=1, window=1, open_ticks=40, seed=1)
        for sid in range(8):
            trip(b, sid)
        retries = {b._breakers[sid].retry_at for sid in range(8)}
        assert len(retries) > 1  # not all breakers probe in lockstep


class TestHealthWiring:
    def test_forwarding_to_health(self):
        h = HealthTracker(2, dead_after=2)
        b = BreakerBoard(2, trip_after=4, window=8, health=h)
        b.record_failure(0, hard=True)
        b.record_failure(0, hard=True)
        assert h.state(0) == "dead"
        b.record_success(0)
        assert h.state(0) == "alive"

    def test_soft_failures_never_reach_health(self):
        h = HealthTracker(1, dead_after=1)
        b = BreakerBoard(1, trip_after=1, window=1, health=h)
        b.record_failure(0)  # soft: BUSY shed
        assert h.state(0) == "alive"
        assert b.state(0) == OPEN

    def test_exclusions_union_dead_and_tripped(self):
        h = HealthTracker(3, dead_after=1)
        b = BreakerBoard(3, trip_after=1, window=1, health=h)
        h.record_error(1)  # dead via health only
        b._failure_local(2)  # tripped via breaker only
        assert b.exclusions() == frozenset({1, 2})

    def test_observer_wiring_feeds_board(self):
        # the inverse wiring: board listens to a tracker the read path
        # already reports to
        h = HealthTracker(2, dead_after=10)
        b = BreakerBoard(2, trip_after=2, window=4)
        h.add_observer(b)
        h.record_error(0)
        h.record_error(0)
        assert b.state(0) == OPEN
        h.record_recovery(0)
        assert b.state(0) == CLOSED

    def test_observer_grows_capacity_on_demand(self):
        b = BreakerBoard(1)
        b.observe(5, "success")
        assert b.n_servers == 6

    def test_observer_rejects_unknown_outcome(self):
        b = BreakerBoard(1)
        with pytest.raises(ConfigurationError):
            b.observe(0, "wat")


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_servers": 0},
            {"n_servers": 1, "trip_after": 0},
            {"n_servers": 1, "trip_after": 3, "window": 2},
            {"n_servers": 1, "open_ticks": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            BreakerBoard(**kwargs)

"""Tests for the event-heap overload simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.calibration import DEFAULT_MEMCACHED_MODEL
from repro.core.bundling import Bundler
from repro.errors import ConfigurationError
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.overload.desim import OverloadConfig, OverloadResult, simulate_overload
from repro.types import Request
from repro.utils.rng import derive_rng

N_SERVERS = 8
N_ITEMS = 400
COST = DEFAULT_MEMCACHED_MODEL


@pytest.fixture(scope="module")
def bundler():
    return Bundler(RangedConsistentHashPlacer(N_SERVERS, 2, seed=0, vnodes=32))


def make_requests(n, size=8, seed=5):
    rng = np.random.default_rng(seed)
    return [
        Request(items=tuple(sorted(int(i) for i in rng.choice(N_ITEMS, size, replace=False))))
        for _ in range(n)
    ]


def run(bundler, requests, *, config=None, rate=None, multipliers=None, seed=11):
    return simulate_overload(
        requests,
        bundler,
        n_servers=N_SERVERS,
        cost_model=COST,
        arrival_rate=rate or 2000.0,
        latency_multipliers=multipliers,
        config=config,
        rng=derive_rng(seed, 1),
    )


def assert_results_identical(a: OverloadResult, b: OverloadResult):
    np.testing.assert_array_equal(a.latencies, b.latencies)
    for name in (
        "p50_latency",
        "p99_latency",
        "p999_latency",
        "max_utilization",
        "served_fraction",
        "shed_rate",
        "hedges_issued",
        "hedge_wins",
        "busy_verdicts",
        "breaker_transitions",
        "ladder_counts",
    ):
        assert getattr(a, name) == getattr(b, name), name


FULL_CONFIG = OverloadConfig(
    queue_limit=8,
    breaker=True,
    trip_after=3,
    window=8,
    open_ticks=30,
    trip_latency=COST.txn_time(8) * 20,
    hedge_quantile=0.9,
    hedge_min_samples=16,
    deadline=COST.txn_time(8) * 500,
    partial_fraction=0.5,
    load_aware=True,
    seed=3,
)


class TestDeterminism:
    def test_same_seed_bitwise_identical(self, bundler):
        requests = make_requests(300)
        a = run(bundler, requests, config=FULL_CONFIG)
        b = run(bundler, requests, config=FULL_CONFIG)
        assert_results_identical(a, b)

    def test_baseline_same_seed_identical(self, bundler):
        requests = make_requests(300)
        assert_results_identical(run(bundler, requests), run(bundler, requests))

    def test_none_config_is_the_all_defaults_config(self, bundler):
        requests = make_requests(200)
        assert_results_identical(
            run(bundler, requests, config=None),
            run(bundler, requests, config=OverloadConfig()),
        )


class TestBaseline:
    def test_no_policy_serves_everything(self, bundler):
        res = run(bundler, make_requests(300))
        assert res.served_fraction == 1.0
        assert res.requests_failed == 0
        assert res.busy_verdicts == 0
        assert res.hedges_issued == 0
        assert res.breaker_transitions == 0
        assert res.shed_rate == res.drop_rate == res.deadline_cut_rate == 0.0
        assert res.ladder_counts == {"full": 300, "partial": 0, "distinguished": 0}

    def test_latency_includes_rtt(self, bundler):
        res = run(bundler, make_requests(100), rate=10.0)  # no queueing
        assert res.p50_latency >= 200e-6  # at least the RTT

    def test_utilization_scales_with_rate(self, bundler):
        requests = make_requests(200)
        slow = run(bundler, requests, rate=100.0)
        fast = run(bundler, requests, rate=5000.0)
        assert fast.max_utilization > slow.max_utilization


class TestBackpressure:
    def test_busy_verdicts_under_tiny_queues(self, bundler):
        cfg = OverloadConfig(queue_limit=1)
        res = run(bundler, make_requests(400), config=cfg, rate=20000.0)
        assert res.busy_verdicts > 0
        assert res.requests_failed == 0

    def test_accounting_identity(self, bundler):
        """Every item is served, shed, dropped or deadline-cut — exactly."""
        cfg = OverloadConfig(
            queue_limit=1, deadline=COST.txn_time(8) * 50, partial_fraction=0.5
        )
        res = run(bundler, make_requests(400), config=cfg, rate=20000.0)
        total = res.served_fraction + res.shed_rate + res.drop_rate + res.deadline_cut_rate
        assert total == pytest.approx(1.0)

    def test_token_bucket_rate_limits(self, bundler):
        cfg = OverloadConfig(bucket_rate=50.0, bucket_burst=2.0)
        res = run(bundler, make_requests(300), config=cfg, rate=20000.0)
        assert res.busy_verdicts > 0

    def test_sheds_route_to_replicas_first(self, bundler):
        """With R=2 and one bounded server, most items still get served:
        the re-cover walks the shed items onto alternate replicas."""
        cfg = OverloadConfig(queue_limit=2)
        res = run(bundler, make_requests(400), config=cfg, rate=8000.0)
        assert res.served_fraction > 0.9


class TestHedging:
    def test_hedges_fire_against_straggler(self, bundler):
        multipliers = [1.0] * N_SERVERS
        multipliers[2] = 25.0
        cfg = OverloadConfig(hedge_quantile=0.9, hedge_min_samples=16, seed=1)
        res = run(bundler, make_requests(400), config=cfg, rate=1500.0, multipliers=multipliers)
        assert res.hedges_issued > 0
        assert res.hedge_wins <= res.hedges_issued
        assert 0.0 <= res.hedge_win_rate <= 1.0
        assert res.requests_failed == 0
        assert res.served_fraction == 1.0  # hedging never drops items

    def test_hedging_cuts_tail_with_straggler(self, bundler):
        multipliers = [1.0] * N_SERVERS
        multipliers[2] = 25.0
        requests = make_requests(500)
        base = run(bundler, requests, rate=1500.0, multipliers=multipliers)
        cfg = OverloadConfig(hedge_quantile=0.9, hedge_min_samples=16, seed=1)
        hedged = run(bundler, requests, config=cfg, rate=1500.0, multipliers=multipliers)
        assert hedged.p99_latency < base.p99_latency

    def test_max_hedges_zero_disables(self, bundler):
        cfg = OverloadConfig(hedge_quantile=0.9, max_hedges=0)
        res = run(bundler, make_requests(200), config=cfg)
        assert res.hedges_issued == 0


class TestDeadline:
    def test_deadline_degrades_instead_of_failing(self, bundler):
        multipliers = [1.0] * N_SERVERS
        multipliers[0] = 200.0
        cfg = OverloadConfig(deadline=COST.txn_time(8) * 4)
        res = run(bundler, make_requests(300), config=cfg, rate=4000.0, multipliers=multipliers)
        assert res.deadline_cut_rate > 0.0
        assert res.requests_failed == 0
        assert res.p999_latency <= COST.txn_time(8) * 4 + 200e-6 + 1e-9

    def test_no_deadline_waits_forever(self, bundler):
        res = run(bundler, make_requests(200))
        assert res.deadline_cut_rate == 0.0


class TestBreakers:
    def test_breaker_trips_on_straggler(self, bundler):
        multipliers = [1.0] * N_SERVERS
        multipliers[3] = 50.0
        cfg = OverloadConfig(
            breaker=True, trip_after=3, window=8, open_ticks=40,
            trip_latency=COST.txn_time(8) * 10, seed=2,
        )
        res = run(bundler, make_requests(400), config=cfg, rate=2000.0, multipliers=multipliers)
        assert res.breaker_transitions > 0
        assert res.requests_failed == 0
        assert res.served_fraction == 1.0  # distinguished rung keeps coverage

    def test_ladder_counts_cover_every_request(self, bundler):
        cfg = OverloadConfig(queue_limit=1, partial_fraction=0.5)
        n = 400
        res = run(bundler, make_requests(n), config=cfg, rate=20000.0)
        assert sum(res.ladder_counts.values()) == n


class TestValidation:
    def test_rejects_bad_arrival_rate(self, bundler):
        with pytest.raises(ConfigurationError):
            run(bundler, make_requests(10), rate=-1.0)

    def test_rejects_empty_stream(self, bundler):
        with pytest.raises(ConfigurationError):
            run(bundler, [])

    def test_rejects_wrong_multiplier_length(self, bundler):
        with pytest.raises(ConfigurationError):
            run(bundler, make_requests(10), multipliers=[1.0, 2.0])

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bucket_rate": 0.0},
            {"deadline": 0.0},
            {"trip_latency": -1.0},
            {"partial_fraction": 0.0},
            {"queue_limit": 0},
        ],
    )
    def test_config_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            OverloadConfig(**kwargs)

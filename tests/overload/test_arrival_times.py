"""Explicit arrival times through the overload DES (the loadgen bridge)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.calibration import DEFAULT_MEMCACHED_MODEL
from repro.core.bundling import Bundler
from repro.errors import ConfigurationError
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.overload.desim import simulate_overload
from repro.types import Request
from repro.utils.rng import derive_rng


def _setup(n_requests=80):
    placer = RangedConsistentHashPlacer(4, 2, seed=0, vnodes=32)
    bundler = Bundler(placer)
    rng = derive_rng(5, 1)
    requests = [
        Request(items=tuple(sorted(int(i) for i in rng.choice(200, size=5, replace=False))))
        for _ in range(n_requests)
    ]
    return bundler, requests


def _run(bundler, requests, **kwargs):
    return simulate_overload(
        requests,
        bundler,
        n_servers=4,
        cost_model=DEFAULT_MEMCACHED_MODEL,
        warmup_fraction=0.0,
        **kwargs,
    )


class TestArrivalTimes:
    def test_explicit_times_are_deterministic_without_rng(self):
        bundler, requests = _setup()
        times = np.linspace(0.0, 0.1, len(requests))
        a = _run(bundler, requests, arrival_times=times)
        b = _run(bundler, requests, arrival_times=times)
        np.testing.assert_array_equal(a.latencies, b.latencies)

    def test_matches_equivalent_rate_run_shape(self):
        bundler, requests = _setup()
        result = _run(bundler, requests, arrival_times=np.linspace(0, 0.1, 80))
        assert result.n_requests == 80
        assert result.items_measured == sum(r.size for r in requests)
        assert result.horizon > 0.1  # servers drain after the last arrival

    def test_burst_at_one_instant_queues(self):
        bundler, requests = _setup()
        spread = _run(bundler, requests, arrival_times=np.linspace(0, 1.0, 80))
        burst = _run(bundler, requests, arrival_times=np.zeros(80))
        assert burst.p99_latency > spread.p99_latency

    def test_goodput_denominator_fields(self):
        bundler, requests = _setup()
        result = _run(bundler, requests, arrival_times=np.linspace(0, 0.05, 80))
        goodput = result.served_fraction * result.items_measured / result.horizon
        assert goodput > 0


class TestValidation:
    def test_exactly_one_arrival_source(self):
        bundler, requests = _setup(10)
        with pytest.raises(ConfigurationError):
            _run(bundler, requests)  # neither
        with pytest.raises(ConfigurationError):
            _run(
                bundler,
                requests,
                arrival_rate=100.0,
                arrival_times=np.zeros(10),
            )  # both

    def test_length_must_match_requests(self):
        bundler, requests = _setup(10)
        with pytest.raises(ConfigurationError):
            _run(bundler, requests, arrival_times=np.zeros(9))

    def test_times_must_be_sorted_and_non_negative(self):
        bundler, requests = _setup(3)
        with pytest.raises(ConfigurationError):
            _run(bundler, requests, arrival_times=[0.0, 0.2, 0.1])
        with pytest.raises(ConfigurationError):
            _run(bundler, requests, arrival_times=[-0.1, 0.0, 0.1])

    def test_poisson_path_unchanged(self):
        # the original API still works and still derives from rng
        bundler, requests = _setup(20)
        a = _run(bundler, requests, arrival_rate=500.0, rng=derive_rng(1, 2))
        b = _run(bundler, requests, arrival_rate=500.0, rng=derive_rng(1, 2))
        np.testing.assert_array_equal(a.latencies, b.latencies)

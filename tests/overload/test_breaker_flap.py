"""Regression: flap-damped recoveries must not force-close breakers.

A flapping server restores "authoritatively" on every up-phase.  Before
the damping fix, HealthTracker.record_recovery always notified
``"recovery"``, so an observing BreakerBoard force-closed and forgave
its escalated trip streak on every flap — the breaker could oscillate
as fast as the link did, defeating the exponential backoff entirely.
"""

from __future__ import annotations

from repro.faults.health import ALIVE, DEAD, HealthTracker
from repro.overload.breaker import CLOSED, HALF_OPEN, OPEN, BreakerBoard


def wired(flap_threshold=3):
    health = HealthTracker(4, dead_after=2, flap_threshold=flap_threshold)
    board = BreakerBoard(4, trip_after=2, window=4, open_ticks=10, seed=1)
    health.add_observer(board)
    return health, board


def flap_once(health):
    """One down/up cycle for server 0: die, then restore authoritatively."""
    health.record_error(0)
    health.record_error(0)  # dead_after=2 -> DEAD, breaker trips
    health.record_recovery(0)


class TestDampedRecovery:
    def test_first_death_recovery_still_force_closes(self):
        health, board = wired()
        flap_once(health)
        # one death is a crash, not a flap: recovery closes the breaker
        assert health.state(0) == ALIVE
        assert board.state(0) == CLOSED

    def test_repeat_flapper_cannot_reset_the_breaker(self):
        health, board = wired()
        flap_once(health)
        flap_once(health)  # second death: now a repeat offender
        streak_after_two = board._breakers[0].trip_streak
        flap_once(health)  # damped: notifies "success", not "recovery"
        assert health.state(0) == ALIVE  # health itself resets (authoritative)
        assert board.state(0) == OPEN  # but the breaker stays open
        assert board._breakers[0].trip_streak >= streak_after_two

    def test_backoff_keeps_escalating_across_flaps(self):
        health, board = wired()
        flap_once(health)
        flap_once(health)  # repeat offender: recoveries damped from here
        waits = []
        for _ in range(3):
            board.advance(board._breakers[0].retry_at - board.tick)
            health.record_error(0)  # the half-open probe fails
            health.record_recovery(0)  # up-phase: damped, stays OPEN
            waits.append(board._breakers[0].retry_at - board.tick)
        # each failed probe doubles the open period (2x per streak)
        assert waits[0] < waits[1] < waits[2]

    def test_half_open_probe_discipline_still_applies(self):
        health, board = wired()
        flap_once(health)
        flap_once(health)
        flap_once(health)  # damped; breaker OPEN with escalated backoff
        b = board._breakers[0]
        board.advance(b.retry_at - board.tick)
        assert board.state(0) == HALF_OPEN
        assert board.allow_probe(0)
        assert not board.allow_probe(0)  # single probe slot
        # the probe succeeding is what closes it — not the recovery signal
        health.record_success(0)
        assert board.state(0) == CLOSED

    def test_oscillation_is_rate_limited_by_backoff(self):
        health, board = wired()
        flap_once(health)
        flap_once(health)
        flap_once(health)
        # while the breaker waits out its backoff, further flaps cannot
        # re-admit the server to routing
        for _ in range(3):
            flap_once(health)
            assert 0 in board.tripped()

    def test_damped_success_counts_toward_rehabilitation(self):
        health, board = wired(flap_threshold=2)
        flap_once(health)
        flap_once(health)
        health.record_error(0)
        health.record_error(0)  # dead again (third death)
        health.record_success(0)  # 1 of 2: still damped
        assert health.state(0) == DEAD
        health.record_success(0)  # 2 of 2: rehabilitated
        assert health.state(0) == ALIVE


class TestDefaultBehaviour:
    def test_no_threshold_keeps_classic_force_close(self):
        health = HealthTracker(4, dead_after=2)  # flap_threshold=None
        board = BreakerBoard(4, trip_after=2, window=4, open_ticks=10, seed=1)
        health.add_observer(board)
        for _ in range(3):
            flap_once(health)
        # legacy semantics: every authoritative recovery force-closes
        assert board.state(0) == CLOSED
        assert board._breakers[0].trip_streak == 0

"""Tests for the hedge policy and the degradation ladder helpers."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.overload.hedging import (
    LADDER,
    HedgePolicy,
    ladder_required,
    validate_partial_fraction,
)


class TestHedgePolicy:
    def test_cold_start_uses_initial_delay(self):
        p = HedgePolicy(initial_delay=5e-3, min_samples=4)
        p.observe(1.0)
        p.observe(1.0)
        assert p.delay() == pytest.approx(5e-3)

    def test_nearest_rank_quantile(self):
        p = HedgePolicy(quantile=0.9, initial_delay=1.0, min_delay=1e-6, min_samples=10)
        for latency in [0.001 * k for k in range(1, 101)]:
            p.observe(latency)
        # nearest rank of q=0.9 over 100 samples is the 90th smallest
        assert p.delay() == pytest.approx(0.090)

    def test_window_slides(self):
        p = HedgePolicy(
            quantile=0.5, initial_delay=1.0, min_delay=1e-6, window=4, min_samples=2
        )
        for latency in (10.0, 10.0, 10.0, 10.0):
            p.observe(latency)
        for latency in (1.0, 1.0, 1.0, 1.0):
            p.observe(latency)  # old 10s fall out of the window
        assert p.delay() == pytest.approx(1.0)

    def test_min_delay_floor(self):
        p = HedgePolicy(quantile=0.5, min_delay=0.25, min_samples=2)
        p.observe(1e-6)
        p.observe(1e-6)
        assert p.delay() == 0.25

    def test_negative_latencies_ignored(self):
        p = HedgePolicy(min_samples=1, initial_delay=3.0)
        p.observe(-1.0)
        assert p.delay() == 3.0  # still cold

    def test_deterministic_pure_function_of_observations(self):
        def run():
            p = HedgePolicy(quantile=0.95, min_samples=8, min_delay=1e-6)
            for k in range(50):
                p.observe(((k * 2654435761) % 1000) / 1000.0)
            return p.delay()

        assert run() == run()

    def test_disabled_when_max_hedges_zero(self):
        assert not HedgePolicy(max_hedges=0).enabled
        assert HedgePolicy(max_hedges=1).enabled

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"quantile": 0.0},
            {"quantile": 1.0},
            {"initial_delay": 0.0},
            {"min_delay": 0.0},
            {"window": 4, "min_samples": 8},
            {"min_samples": 0},
            {"max_hedges": -1},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            HedgePolicy(**kwargs)


class TestLadder:
    def test_levels(self):
        assert LADDER == ("full", "partial", "distinguished")

    def test_full_and_distinguished_promise_everything(self):
        assert ladder_required("full", 10, 0.5) == 10
        assert ladder_required("distinguished", 10, 0.5) == 10

    def test_partial_is_the_limit_quota(self):
        assert ladder_required("partial", 10, 0.5) == 5
        assert ladder_required("partial", 10, 0.51) == 6  # ceil
        assert ladder_required("partial", 10, 0.01) == 1  # at least one
        assert ladder_required("partial", 1, 0.5) == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ConfigurationError):
            ladder_required("zeroth", 10, 0.5)

    @pytest.mark.parametrize("frac", [0.0, -0.1, 1.01])
    def test_partial_fraction_bounds(self, frac):
        with pytest.raises(ConfigurationError):
            validate_partial_fraction(frac)

    def test_partial_fraction_passthrough(self):
        assert validate_partial_fraction(1.0) == 1.0
        assert validate_partial_fraction(0.3) == 0.3

"""Backpressure + breaker wiring through the simulated and live clients.

The contract under test, on both read paths:

* an admission-gated server sheds with a retryable BUSY verdict instead
  of queueing without bound;
* BUSY sheds trip circuit breakers but never the health tracker (a
  shedding server is alive — it must not be declared dead);
* tripped servers are excluded from covers exactly like dead ones, and
  requests keep completing from the surviving replicas (R >= 2).
"""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.core.bundling import Bundler
from repro.errors import ServerBusy
from repro.faults import FaultTolerantRnBClient, HealthTracker
from repro.faults.health import ALIVE
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.overload import AdmissionControl, BreakerBoard, TokenBucket
from repro.protocol.memclient import MemcachedConnection
from repro.protocol.memserver import MemcachedServer
from repro.protocol.rnbclient import RnBProtocolClient
from repro.protocol.transport import LoopbackTransport
from repro.types import Request

N_SERVERS = 6
N_ITEMS = 240


def never_admit() -> AdmissionControl:
    """An admission gate that sheds everything (empty, barely-refilling bucket)."""
    return AdmissionControl(bucket=TokenBucket(rate=1e-12, burst=1e-9))


class TestSimulatedServerGate:
    def test_multi_get_raises_busy_when_shedding(self):
        placer = RangedConsistentHashPlacer(N_SERVERS, 2, seed=0, vnodes=32)
        cluster = Cluster(placer, range(N_ITEMS))
        server = cluster.servers[0]
        server.attach_admission(AdmissionControl(queue_limit=1))
        items = [i for i in range(N_ITEMS) if 0 in placer.servers_for(i)][:2]
        server.multi_get((items[0],), ())  # fills the queue (tick domain)
        with pytest.raises(ServerBusy):
            server.multi_get((items[1],), ())

    def test_busy_is_retryable_connection_error(self):
        assert issubclass(ServerBusy, ConnectionError)

    def test_no_admission_behaves_as_before(self):
        placer = RangedConsistentHashPlacer(N_SERVERS, 2, seed=0, vnodes=32)
        cluster = Cluster(placer, range(N_ITEMS))
        item = next(i for i in range(N_ITEMS) if placer.distinguished_for(i) == 0)
        hits, missed, hh = cluster.servers[0].multi_get((item,), ())
        assert hits == [item] and not missed


@pytest.fixture()
def ft_setup():
    placer = RangedConsistentHashPlacer(N_SERVERS, 2, seed=0, vnodes=32)
    cluster = Cluster(placer, range(N_ITEMS))
    board = BreakerBoard(N_SERVERS, trip_after=2, window=4, open_ticks=5, seed=7)
    health = HealthTracker(N_SERVERS)
    client = FaultTolerantRnBClient(
        cluster, Bundler(placer), health=health, breakers=board
    )
    return cluster, client, board, health


class TestFaultTolerantClient:
    def test_requests_complete_despite_shedding_server(self, ft_setup):
        cluster, client, board, health = ft_setup
        cluster.servers[0].attach_admission(never_admit())
        for start in range(0, N_ITEMS, 10):
            res = client.execute(Request(items=tuple(range(start, start + 10))))
            assert res.items_fetched == 10
            assert not res.unavailable

    def test_sheds_trip_breaker_but_not_health(self, ft_setup):
        cluster, client, board, health = ft_setup
        cluster.servers[0].attach_admission(never_admit())
        for start in range(0, 100, 10):
            client.execute(Request(items=tuple(range(start, start + 10))))
        assert board.state(0) in ("open", "half-open")
        assert health.state(0) == ALIVE

    def test_tripped_server_left_out_of_covers(self, ft_setup):
        cluster, client, board, health = ft_setup
        cluster.servers[0].attach_admission(never_admit())
        for start in range(0, 100, 10):
            client.execute(Request(items=tuple(range(start, start + 10))))
        assert board.state(0) == "open"
        res = client.execute(Request(items=tuple(range(10))))
        assert res.items_fetched == 10
        assert res.failovers == 0  # never even tried the tripped server
        assert 0 not in res.servers_contacted

    def test_breaker_heals_after_gate_lifts(self, ft_setup):
        cluster, client, board, health = ft_setup
        cluster.servers[0].attach_admission(never_admit())
        for start in range(0, 100, 10):
            client.execute(Request(items=tuple(range(start, start + 10))))
        cluster.servers[0].attach_admission(None)  # pressure gone
        # breaker clock advances one tick per request; once half-open, a
        # cover that touches server 0 is the probe — sweep the keyspace
        # so one eventually does — and its success closes the breaker
        for t in range(300):
            start = (t * 10) % (N_ITEMS - 10)
            client.execute(Request(items=tuple(range(start, start + 10))))
            if board.state(0) == "closed":
                break
        assert board.state(0) == "closed"

    def test_hard_faults_still_reach_health_through_observer(self, ft_setup):
        cluster, client, board, health = ft_setup
        # the observer wiring forwards ordinary errors: a dead server
        # trips the breaker too, with no second reporting call-site
        for _ in range(3):
            health.record_error(2)
        assert health.state(2) == "dead"
        assert board.state(2) == "open"

    def test_client_without_board_unchanged(self):
        placer = RangedConsistentHashPlacer(N_SERVERS, 2, seed=0, vnodes=32)
        cluster = Cluster(placer, range(N_ITEMS))
        client = FaultTolerantRnBClient(cluster, Bundler(placer))
        assert client.breakers is None
        res = client.execute(Request(items=(0, 1, 2)))
        assert res.items_fetched == 3


@pytest.fixture()
def live_setup():
    placer = RangedConsistentHashPlacer(4, 2, seed=0, vnodes=32)
    servers = {i: MemcachedServer() for i in range(4)}
    conns = {i: MemcachedConnection(LoopbackTransport(servers[i])) for i in range(4)}
    board = BreakerBoard(4, trip_after=2, window=4, open_ticks=3, seed=3)
    client = RnBProtocolClient(conns, placer, breakers=board)
    keys = [f"key:{i}" for i in range(60)]
    for k in keys:
        client.set(k, k.encode())
    return servers, client, board, keys


class TestProtocolClient:
    def test_health_auto_created_for_observer_wiring(self, live_setup):
        _, client, board, _ = live_setup
        assert client.health is not None

    def test_busy_server_fails_over_to_replicas(self, live_setup):
        servers, client, board, keys = live_setup
        servers[0].admission = never_admit()
        for start in range(0, 60, 10):
            out = client.get_multi(keys[start : start + 10])
            assert not out.missing
        assert servers[0].stats["busy_rejections"] > 0

    def test_sheds_trip_breaker_but_not_health(self, live_setup):
        servers, client, board, keys = live_setup
        servers[0].admission = never_admit()
        for start in range(0, 60, 10):
            client.get_multi(keys[start : start + 10])
        assert board.state(0) in ("open", "half-open")
        assert client.health.state(0) == ALIVE

    def test_tripped_server_excluded_from_plans(self, live_setup):
        servers, client, board, keys = live_setup
        servers[0].admission = never_admit()
        for start in range(0, 60, 10):
            client.get_multi(keys[start : start + 10])
        assert board.state(0) == "open"
        before = servers[0].stats["busy_rejections"]
        out = client.get_multi(keys[:10])
        assert not out.missing
        assert servers[0].stats["busy_rejections"] == before  # not contacted

    def test_memserver_counts_busy_rejections(self):
        server = MemcachedServer(admission=AdmissionControl(queue_limit=1))
        conn = MemcachedConnection(LoopbackTransport(server))
        conn.set("a", b"1")  # storage ops bypass the gate
        server.admission.outstanding = 1  # gate now full
        with pytest.raises(ServerBusy):
            conn.get("a")
        assert server.stats["busy_rejections"] == 1
        server.admission.finished()
        assert conn.get("a") == b"1"

"""Load-aware tie-break: identity when unloaded, steering when loaded."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.core.bundling import Bundler
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.overload.load import LoadTracker
from repro.overload.tiebreak import counter_tie_break, least_loaded_tie_break
from repro.types import Request

N_SERVERS = 10
N_ITEMS = 600


@pytest.fixture(scope="module")
def placer():
    return RangedConsistentHashPlacer(N_SERVERS, 3, seed=0, vnodes=64)


def random_requests(n, size, rng):
    return [
        Request(items=tuple(sorted(int(i) for i in rng.choice(N_ITEMS, size, replace=False))))
        for _ in range(n)
    ]


class TestIdentityWhenOff:
    def test_zero_signal_matches_lowest_policy_exactly(self, placer):
        """The load-aware cover with no load signal is bit-identical to
        the stock "lowest" tie-break — the property that makes it safe
        to leave always-on."""
        stock = Bundler(placer)
        aware = Bundler(placer, tie_break=least_loaded_tie_break(LoadTracker(N_SERVERS)))
        rng = np.random.default_rng(42)
        for request in random_requests(80, 12, rng):
            a = stock.plan(request)
            b = aware.plan(request)
            assert a.transactions == b.transactions

    def test_fresh_counters_match_lowest_policy_exactly(self, placer):
        cluster = Cluster(placer, range(N_ITEMS))
        stock = Bundler(placer)
        aware = Bundler(placer, tie_break=counter_tie_break(cluster))
        rng = np.random.default_rng(43)
        for request in random_requests(80, 12, rng):
            assert stock.plan(request).transactions == aware.plan(request).transactions

    def test_zero_signal_identity_with_exclusions(self, placer):
        stock = Bundler(placer)
        aware = Bundler(placer, tie_break=least_loaded_tie_break(LoadTracker(N_SERVERS)))
        rng = np.random.default_rng(44)
        for request in random_requests(40, 10, rng):
            ex = frozenset({0, 5})
            assert (
                stock.plan(request, exclude=ex).transactions
                == aware.plan(request, exclude=ex).transactions
            )


class TestSteering:
    def test_pick_prefers_least_loaded(self):
        tracker = LoadTracker(4)
        tracker.sent(0, n_items=50)
        pick = least_loaded_tie_break(tracker)
        assert pick([0, 2, 3]) == 2  # 0 is hot; ties resolve to lowest id

    def test_pick_ties_resolve_to_lowest_id(self):
        pick = least_loaded_tie_break(LoadTracker(4))
        assert pick([3, 1, 2]) == 1

    def test_busy_verdicts_repel_covers(self, placer):
        tracker = LoadTracker(N_SERVERS)
        aware = Bundler(placer, tie_break=least_loaded_tie_break(tracker))
        rng = np.random.default_rng(45)
        requests = random_requests(60, 12, rng)
        hot = 0
        for _ in range(20):
            tracker.busy(hot)  # server 0 keeps shedding
        hot_txns = sum(
            1
            for request in requests
            for txn in aware.plan(request).transactions
            if txn.server == hot
        )
        stock_hot_txns = sum(
            1
            for request in requests
            for txn in Bundler(placer).plan(request).transactions
            if txn.server == hot
        )
        assert hot_txns < stock_hot_txns

    def test_counter_tie_break_follows_live_counters(self, placer):
        cluster = Cluster(placer, range(N_ITEMS))
        pick = counter_tie_break(cluster)
        cluster.servers[0].counters.transactions = 100
        assert pick([0, 1]) == 1
        cluster.servers[1].counters.transactions = 200
        assert pick([0, 1]) == 0

    def test_coverage_never_sacrificed(self, placer):
        """Steering only moves equal-gain picks: every plan still covers."""
        tracker = LoadTracker(N_SERVERS)
        for sid in range(0, N_SERVERS, 2):
            tracker.sent(sid, n_items=30)
        aware = Bundler(placer, tie_break=least_loaded_tie_break(tracker))
        rng = np.random.default_rng(46)
        for request in random_requests(40, 15, rng):
            plan = aware.plan(request)
            assert set(plan.planned_items()) == set(request.items)

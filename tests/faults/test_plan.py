"""Determinism and semantics of the failure schedule."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults.plan import FaultConfig, FaultPlan


class TestFaultConfig:
    def test_defaults_are_benign(self):
        cfg = FaultConfig()
        assert cfg.crash_rate == 0.0
        assert cfg.timeout_rate == 0.0
        assert cfg.slow_rate == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crash_rate": -0.1},
            {"crash_rate": 1.5},
            {"timeout_rate": 2.0},
            {"slow_rate": -1.0},
            {"slow_factor": 0.5},
            {"horizon": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultConfig(**kwargs)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        cfg = FaultConfig(crash_rate=0.4, slow_rate=0.3, timeout_rate=0.2, seed=42)
        a = FaultPlan(16, cfg)
        b = FaultPlan(16, cfg)
        assert a.schedule() == b.schedule()
        assert a.ever_crashed() == b.ever_crashed()
        assert a.slow_servers() == b.slow_servers()
        for tick in range(0, 50, 7):
            for sid in range(16):
                assert a.is_crashed(sid, tick) == b.is_crashed(sid, tick)
                for attempt in range(3):
                    assert a.is_timeout(sid, tick, attempt) == b.is_timeout(
                        sid, tick, attempt
                    )

    def test_different_seed_different_schedule(self):
        schedules = {
            FaultPlan(
                32, FaultConfig(crash_rate=0.5, slow_rate=0.5, seed=s)
            ).schedule()
            for s in range(5)
        }
        assert len(schedules) > 1

    def test_queries_do_not_mutate(self):
        plan = FaultPlan(8, FaultConfig(crash_rate=0.5, timeout_rate=0.5, seed=3))
        before = plan.schedule()
        plan.is_timeout(0, 0, 0)
        plan.is_crashed(0, 0)
        plan.crashed_at(10)
        assert plan.schedule() == before


class TestCrashStop:
    def test_crash_is_permanent(self):
        plan = FaultPlan(8, FaultConfig(crash_rate=1.0, horizon=10, seed=1))
        assert plan.ever_crashed() == frozenset(range(8))
        for sid in range(8):
            crash = min(t for t in range(10) if plan.is_crashed(sid, t))
            assert not plan.is_crashed(sid, crash - 1)
            assert all(plan.is_crashed(sid, t) for t in range(crash, 20))

    def test_crashed_at_monotone(self):
        plan = FaultPlan(16, FaultConfig(crash_rate=0.6, horizon=30, seed=9))
        prev: frozenset[int] = frozenset()
        for tick in range(35):
            now = plan.crashed_at(tick)
            assert prev <= now
            prev = now
        assert prev == plan.ever_crashed()

    def test_zero_rate_no_crashes(self):
        plan = FaultPlan(16, FaultConfig(seed=5))
        assert plan.ever_crashed() == frozenset()
        assert plan.schedule() == ()


class TestTimeouts:
    def test_attempts_draw_independently(self):
        plan = FaultPlan(4, FaultConfig(timeout_rate=0.5, seed=7))
        draws = {
            (sid, tick, attempt): plan.is_timeout(sid, tick, attempt)
            for sid in range(4)
            for tick in range(20)
            for attempt in range(4)
        }
        assert any(draws.values()) and not all(draws.values())
        # a retry is not doomed to repeat the first attempt's outcome
        assert any(
            draws[(s, t, 0)] and not draws[(s, t, 1)]
            for s in range(4)
            for t in range(20)
        )

    def test_rate_is_roughly_honoured(self):
        plan = FaultPlan(8, FaultConfig(timeout_rate=0.2, seed=11))
        n = 8 * 200
        hits = sum(
            plan.is_timeout(sid, tick, 0) for sid in range(8) for tick in range(200)
        )
        assert 0.1 < hits / n < 0.3


class TestSlowServers:
    def test_multiplier(self):
        plan = FaultPlan(16, FaultConfig(slow_rate=0.5, slow_factor=6.0, seed=2))
        slow = plan.slow_servers()
        assert slow
        for sid in range(16):
            expected = 6.0 if sid in slow else 1.0
            assert plan.latency_multiplier(sid) == expected

    def test_slow_events_in_schedule(self):
        plan = FaultPlan(16, FaultConfig(slow_rate=1.0, seed=2))
        kinds = {e.kind for e in plan.schedule()}
        assert kinds == {"slow"}
        assert len(plan.schedule()) == 16

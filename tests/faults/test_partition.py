"""Link-level fault family: rules, plans, windows, and the injector gate."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.placement import make_placer
from repro.errors import (
    ConfigurationError,
    ServerDown,
    ServerTimeout,
    ServerUnreachable,
)
from repro.faults.injector import DynamicFaultInjector
from repro.faults.partition import (
    CLIENT,
    LinkRule,
    PartitionPlan,
    PartitionedInjector,
    link_blackout_windows,
)
from repro.obs import MetricsRegistry


class TestLinkRule:
    def test_window_edges(self):
        rule = LinkRule(srcs=None, dsts=None, start=5, end=10)
        assert not rule.active(4)
        assert rule.active(5)
        assert rule.active(9)
        assert not rule.active(10)  # end is exclusive

    def test_open_ended(self):
        rule = LinkRule(srcs=None, dsts=None, start=3)
        assert rule.active(3) and rule.active(10_000)

    def test_endpoint_matching(self):
        rule = LinkRule(srcs=frozenset({CLIENT}), dsts=frozenset({1, 2}))
        assert rule.blocks(CLIENT, 1, 0)
        assert rule.blocks(CLIENT, 2, 0)
        assert not rule.blocks(CLIENT, 3, 0)
        assert not rule.blocks(1, CLIENT, 0)  # directed

    def test_none_matches_everything(self):
        rule = LinkRule(srcs=None, dsts=None)
        assert rule.blocks(-7, 123, 0)

    def test_flap_duty_cycle_is_pure_arithmetic(self):
        rule = LinkRule(srcs=None, dsts=None, start=10, period=10, duty=0.3)
        pattern = [rule.active(10 + t) for t in range(20)]
        # 3 blocked ticks per 10-tick period, phase-locked to start
        assert pattern == ([True] * 3 + [False] * 7) * 2
        # and identical when asked again (no hidden state)
        assert pattern == [rule.active(10 + t) for t in range(20)]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinkRule(srcs=None, dsts=None, start=5, end=4)
        with pytest.raises(ConfigurationError):
            LinkRule(srcs=None, dsts=None, period=1)
        with pytest.raises(ConfigurationError):
            LinkRule(srcs=None, dsts=None, duty=0.0)


class TestPartitionPlan:
    def test_symmetric_split_blocks_both_directions(self):
        plan = PartitionPlan()
        plan.symmetric_split((CLIENT, 0, 1), (2, 3), start=0)
        assert plan.blocked(CLIENT, 2, 0)
        assert plan.blocked(2, CLIENT, 0)
        assert plan.blocked(0, 3, 0)
        assert not plan.blocked(0, 1, 0)  # same side stays connected
        assert not plan.blocked(2, 3, 0)

    def test_split_validation(self):
        plan = PartitionPlan()
        with pytest.raises(ConfigurationError):
            plan.symmetric_split((), (1,))
        with pytest.raises(ConfigurationError):
            plan.symmetric_split((0, 1), (1, 2))

    def test_one_way_is_asymmetric(self):
        plan = PartitionPlan()
        plan.one_way((CLIENT,), (4,), start=0)
        assert plan.blocked(CLIENT, 4, 0)
        assert not plan.blocked(4, CLIENT, 0)

    def test_heal_closes_open_rules_but_keeps_history(self):
        plan = PartitionPlan()
        plan.symmetric_split((CLIENT,), (1,), start=2)
        assert plan.blocked(CLIENT, 1, 5)
        assert plan.heal(7) == 2  # both directed rules were open
        assert not plan.blocked(CLIENT, 1, 7)
        assert plan.blocked(CLIENT, 1, 5)  # the past still answers truthfully

    def test_heal_none_clears_everything(self):
        plan = PartitionPlan()
        plan.one_way(None, (1,), start=0)
        plan.heal()
        assert not plan.rules

    def test_heal_never_produces_invalid_rules(self):
        plan = PartitionPlan()
        plan.one_way((CLIENT,), (1,), start=50)  # scheduled in the future
        plan.heal(10)  # heal *before* the rule opens
        assert all(r.end is None or r.end >= r.start for r in plan.rules)
        assert not plan.blocked(CLIENT, 1, 60)

    def test_describe_fingerprint_is_deterministic(self):
        def build():
            plan = PartitionPlan()
            plan.symmetric_split((CLIENT, 0), (1, 2), start=3, end=9)
            plan.flapping_link((CLIENT,), (4,), period=6, duty=0.5, start=0)
            return plan

        assert build().describe() == build().describe()


class TestLinkBlackoutWindows:
    def test_deterministic_and_cross_seed_distinct(self):
        a = link_blackout_windows(7, 1000)
        assert a == link_blackout_windows(7, 1000)
        assert a != link_blackout_windows(8, 1000)

    def test_sorted_non_overlapping_within_horizon(self):
        windows = link_blackout_windows(3, 500, n_windows=4, min_len=10, max_len=50)
        assert windows == tuple(sorted(windows))
        for (s1, e1), (s2, _e2) in zip(windows, windows[1:]):
            assert e1 < s2
        assert all(0 <= s < e <= 500 for s, e in windows)

    def test_small_horizon_yields_fewer_windows_not_errors(self):
        windows = link_blackout_windows(3, 30, n_windows=5, min_len=10, max_len=20)
        assert len(windows) <= 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            link_blackout_windows(1, 0)
        with pytest.raises(ConfigurationError):
            link_blackout_windows(1, 100, min_len=5, max_len=4)


class TestPartitionedInjector:
    def make(self, *, inner=None, metrics=None):
        plan = PartitionPlan()
        return plan, PartitionedInjector(plan, inner, metrics=metrics)

    def test_request_edge_cut_refuses_immediately(self):
        plan, injector = self.make()
        plan.one_way((CLIENT,), (2,), start=0)
        with pytest.raises(ServerUnreachable):
            injector.check(2)
        injector.check(3)  # other servers unaffected
        assert injector.blocked_requests == 1

    def test_reply_edge_cut_surfaces_as_timeout(self):
        plan, injector = self.make()
        plan.one_way((2,), (CLIENT,), start=0)
        with pytest.raises(ServerTimeout):
            injector.check(2)
        assert injector.blocked_replies == 1

    def test_rules_expire_with_the_clock(self):
        plan, injector = self.make()
        plan.one_way((CLIENT,), (1,), start=0, end=3)
        with pytest.raises(ServerUnreachable):
            injector.check(1)
        injector.advance(3)
        injector.check(1)  # the cut expired

    def test_inner_node_faults_still_fire(self):
        inner = DynamicFaultInjector()
        plan = PartitionPlan()
        injector = PartitionedInjector(plan, inner)
        inner.kill(4)
        with pytest.raises(ServerDown):
            injector.check(4)
        # a cut takes precedence over the node fault (checked first)
        plan.one_way((CLIENT,), (4,), start=0)
        with pytest.raises(ServerUnreachable):
            injector.check(4)

    def test_advance_moves_both_clocks(self):
        inner = DynamicFaultInjector()
        plan = PartitionPlan()
        injector = PartitionedInjector(plan, inner)
        injector.advance(5)
        assert injector.tick == 5
        assert inner.tick == 5

    def test_can_reach_is_round_trip_and_vantage_explicit(self):
        inner = DynamicFaultInjector()
        plan, injector = PartitionPlan(), None
        injector = PartitionedInjector(plan, inner, vantage=CLIENT)
        plan.one_way((5,), (-2,), start=0)  # only the reply path to -2
        assert injector.can_reach(CLIENT, 5)  # client -1 unaffected
        assert not injector.can_reach(-2, 5)  # round trip broken for -2
        inner.kill(3)
        assert not injector.can_reach(CLIENT, 3)  # dead is unreachable too

    def test_vantage_is_repointable(self):
        plan, injector = self.make()
        plan.symmetric_split((-1, 0), (-2, 1), start=0)
        injector.vantage = -1
        with pytest.raises(ServerUnreachable):
            injector.check(1)
        injector.vantage = -2
        injector.check(1)  # same side now
        with pytest.raises(ServerUnreachable):
            injector.check(0)

    def test_gates_cluster_access(self):
        placer = make_placer("rch", 4, 2, seed=0, vnodes=16)
        cluster = Cluster(placer, range(20), memory_factor=None)
        plan = PartitionPlan()
        injector = PartitionedInjector(plan, DynamicFaultInjector())
        cluster.attach_injector(injector)
        plan.one_way((CLIENT,), (0,), start=0)
        with pytest.raises(ServerUnreachable):
            cluster.server(0)
        cluster.server(1)

    def test_metrics_families(self):
        registry = MetricsRegistry()
        plan, injector = self.make(metrics=registry)
        plan.one_way((CLIENT,), (1,), start=0)
        with pytest.raises(ServerUnreachable):
            injector.check(1)
        snap = registry.snapshot()
        assert "rnb_partition_blocked_total" in snap
        assert "rnb_partition_links_active" in snap
        series = snap["rnb_partition_links_active"]["series"]
        assert list(series.values()) == [1.0]

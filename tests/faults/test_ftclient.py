"""The fault-tolerant read path: failover, degraded reads, the guarantee."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.core.bundling import Bundler
from repro.errors import ConfigurationError
from repro.faults.ftclient import DegradedFetchResult, FaultTolerantRnBClient
from repro.faults.health import HealthTracker
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultConfig, FaultPlan
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.types import Request

N_ITEMS = 60


def make_stack(
    *,
    n_servers: int = 6,
    replication: int = 2,
    crash_rate: float = 0.0,
    timeout_rate: float = 0.0,
    seed: int = 0,
    horizon: int = 64,
    **client_kwargs,
):
    placer = RangedConsistentHashPlacer(n_servers, replication, vnodes=32, seed=0)
    cluster = Cluster(placer, range(N_ITEMS), memory_factor=None)
    plan = FaultPlan(
        n_servers,
        FaultConfig(
            crash_rate=crash_rate,
            timeout_rate=timeout_rate,
            horizon=horizon,
            seed=seed,
        ),
    )
    injector = FaultInjector(plan)
    cluster.attach_injector(injector)
    client = FaultTolerantRnBClient(cluster, Bundler(placer), **client_kwargs)
    return placer, cluster, injector, client


class TestValidation:
    def test_placer_mismatch(self):
        placer, cluster, _, _ = make_stack()
        other = RangedConsistentHashPlacer(6, 2, vnodes=32, seed=1)
        with pytest.raises(ConfigurationError):
            FaultTolerantRnBClient(cluster, Bundler(other))

    def test_bad_knobs(self):
        placer, cluster, _, _ = make_stack()
        with pytest.raises(ConfigurationError):
            FaultTolerantRnBClient(cluster, Bundler(placer), max_retries=-1)
        with pytest.raises(ConfigurationError):
            FaultTolerantRnBClient(cluster, Bundler(placer), timeout_strikes=0)


class TestHealthyPath:
    def test_no_faults_full_fetch(self):
        _, _, _, client = make_stack()
        request = Request(items=tuple(range(12)))
        result = client.execute(request)
        assert isinstance(result, DegradedFetchResult)
        assert result.items_fetched == 12
        assert result.unavailable == ()
        assert not result.degraded
        assert result.unavailable_fraction == 0.0
        assert result.failovers == 0
        assert result.retries == 0
        assert result.transactions >= 1

    def test_empty_request(self):
        _, _, _, client = make_stack()
        result = client.execute(Request(items=()))
        assert result.items_fetched == 0
        assert result.transactions == 0


class TestCrashStop:
    def test_failover_reads_everything_with_a_live_replica(self):
        placer, _, injector, client = make_stack(
            crash_rate=0.4, replication=2, seed=13
        )
        for start in range(0, N_ITEMS, 10):
            request = Request(items=tuple(range(start, start + 10)))
            result = client.execute(request)
            dead = injector.crashed_now()
            for item in request.items:
                if any(s not in dead for s in placer.servers_for(item)):
                    assert item not in result.unavailable
            assert result.items_fetched + len(result.unavailable) == request.size

    def test_all_replicas_dead_is_degraded_not_fatal(self):
        placer, _, injector, client = make_stack(
            n_servers=4, replication=2, crash_rate=1.0, horizon=1, seed=3
        )
        request = Request(items=tuple(range(10)))
        result = client.execute(request)  # tick 1: everything is down
        assert injector.crashed_now() == frozenset(range(4))
        assert result.items_fetched == 0
        assert set(result.unavailable) == set(range(10))
        assert result.degraded
        assert result.unavailable_fraction == 1.0

    def test_health_learns_and_plans_route_around(self):
        health = HealthTracker(6, dead_after=1)
        placer, _, injector, client = make_stack(
            crash_rate=0.4, replication=2, seed=13, horizon=1, health=health
        )
        request = Request(items=tuple(range(N_ITEMS)))
        first = client.execute(request)
        assert first.failovers > 0  # paid for discovering the dead
        assert health.exclusions() == injector.crashed_now()
        second = client.execute(request)
        # the plan now routes around the dead: every *successful*
        # transaction lands on a live server (the remaining failovers are
        # the waves re-probing believed-dead servers for items with no
        # surviving replica — stale health must not strand an item)
        assert set(second.servers_contacted).isdisjoint(injector.crashed_now())
        assert set(second.unavailable) == set(first.unavailable)


class TestTransientTimeouts:
    def test_retries_ride_out_flakiness(self):
        _, _, injector, client = make_stack(
            timeout_rate=0.3, seed=21, max_retries=4, timeout_strikes=4
        )
        total_unavailable = 0
        retries = 0
        for start in range(0, N_ITEMS, 10):
            result = client.execute(Request(items=tuple(range(start, start + 10))))
            total_unavailable += len(result.unavailable)
            retries += result.retries
        assert injector.timeouts_injected > 0
        assert retries > 0
        # nobody actually died: every item is readable with enough patience
        assert total_unavailable == 0

    def test_zero_retries_still_fail_over(self):
        # max_retries=0 disables in-place retry, but waves still re-dispatch
        _, _, injector, client = make_stack(
            timeout_rate=0.3, seed=21, max_retries=0, timeout_strikes=6
        )
        result = client.execute(Request(items=tuple(range(20))))
        assert result.retries == 0
        assert result.unavailable == ()


class TestLimitRequests:
    def test_limit_satisfied_under_crashes(self):
        _, _, _, client = make_stack(crash_rate=0.3, replication=2, seed=5)
        request = Request(items=tuple(range(20)), limit_fraction=0.5)
        result = client.execute(request)
        assert result.items_fetched >= request.required_items
        assert result.unavailable == ()  # quota met: nothing is "unavailable"


class TestDeterminism:
    def test_same_seed_same_results(self):
        def run():
            _, _, _, client = make_stack(
                crash_rate=0.3, timeout_rate=0.2, replication=2, seed=99
            )
            out = []
            for start in range(0, N_ITEMS, 10):
                r = client.execute(Request(items=tuple(range(start, start + 10))))
                out.append(
                    (
                        r.transactions,
                        r.items_fetched,
                        r.retries,
                        r.failovers,
                        r.unavailable,
                        r.servers_contacted,
                    )
                )
            return out

        assert run() == run()


@given(
    seed=st.integers(0, 1_000),
    crash_rate=st.floats(0.0, 0.6),
    items=st.lists(
        st.integers(0, N_ITEMS - 1), min_size=1, max_size=15, unique=True
    ),
)
@settings(max_examples=60, deadline=None)
def test_property_live_replica_implies_served(seed, crash_rate, items):
    """Crash-only faults: any item with >= 1 live replica is always read."""
    placer, _, injector, client = make_stack(
        crash_rate=crash_rate, replication=2, seed=seed
    )
    result = client.execute(Request(items=tuple(items)))
    dead = injector.crashed_now()
    for item in items:
        if any(s not in dead for s in placer.servers_for(item)):
            assert item not in result.unavailable
    assert result.items_fetched + len(result.unavailable) == len(items)

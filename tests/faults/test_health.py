"""The alive / suspected / dead state machine."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults.health import ALIVE, DEAD, SUSPECTED, HealthTracker


class TestValidation:
    def test_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            HealthTracker(0)
        with pytest.raises(ConfigurationError):
            HealthTracker(4, suspect_after=0)
        with pytest.raises(ConfigurationError):
            HealthTracker(4, suspect_after=3, dead_after=2)


class TestStateMachine:
    def test_starts_all_alive(self):
        t = HealthTracker(4)
        assert t.counts() == {ALIVE: 4, SUSPECTED: 0, DEAD: 0}
        assert t.exclusions() == frozenset()
        assert t.alive_servers() == frozenset(range(4))

    def test_thresholds(self):
        t = HealthTracker(2, suspect_after=1, dead_after=3)
        t.record_error(0)
        assert t.state(0) == SUSPECTED
        t.record_error(0)
        assert t.state(0) == SUSPECTED
        t.record_error(0)
        assert t.state(0) == DEAD
        assert t.state(1) == ALIVE

    def test_success_fully_rehabilitates(self):
        t = HealthTracker(1, dead_after=2)
        t.record_error(0)
        t.record_error(0)
        assert t.state(0) == DEAD
        t.record_success(0)
        assert t.state(0) == ALIVE
        # the error streak restarts from zero
        t.record_error(0)
        assert t.state(0) == SUSPECTED

    def test_non_consecutive_errors_do_not_kill(self):
        t = HealthTracker(1, dead_after=3)
        for _ in range(10):
            t.record_error(0)
            t.record_error(0)
            t.record_success(0)
        assert t.state(0) == ALIVE
        assert t.snapshot()[0].total_errors == 20
        assert t.snapshot()[0].total_successes == 10


class TestRecovery:
    def test_record_recovery_resets_state(self):
        t = HealthTracker(2, dead_after=2)
        t.record_error(0)
        t.record_error(0)
        assert t.state(0) == DEAD
        t.record_recovery(0)
        assert t.state(0) == ALIVE
        # the streak restarts, history counters persist
        t.record_error(0)
        assert t.state(0) == SUSPECTED
        assert t.snapshot()[0].total_errors == 3

    def test_record_recovery_bypasses_flap_damping(self):
        t = HealthTracker(1, dead_after=1, flap_threshold=3)
        for _ in range(3):  # a serial flapper
            t.record_error(0)
            t.record_recovery(0)
        assert t.state(0) == ALIVE

    def test_ensure_capacity_grows_only(self):
        t = HealthTracker(2)
        t.ensure_capacity(4)
        assert t.n_servers == 4
        assert t.state(3) == ALIVE
        t.ensure_capacity(1)  # never shrinks
        assert t.n_servers == 4


class TestFlapDamping:
    def test_default_off_single_success_rehabilitates(self):
        t = HealthTracker(1, dead_after=1)
        for _ in range(5):
            t.record_error(0)
            t.record_success(0)
        assert t.state(0) == ALIVE

    def test_first_death_recovers_cheaply(self):
        t = HealthTracker(1, dead_after=1, flap_threshold=3)
        t.record_error(0)
        assert t.state(0) == DEAD
        t.record_success(0)  # one death is not a flap pattern
        assert t.state(0) == ALIVE

    def test_repeat_offender_needs_consecutive_successes(self):
        t = HealthTracker(1, dead_after=1, flap_threshold=3)
        t.record_error(0)
        t.record_success(0)  # first death: cheap recovery
        t.record_error(0)  # second death: now damped
        assert t.state(0) == DEAD
        t.record_success(0)
        t.record_success(0)
        assert t.state(0) == DEAD  # 2 of 3 — still not trusted
        t.record_success(0)
        assert t.state(0) == ALIVE
        assert t.snapshot()[0].flaps == 2

    def test_error_resets_the_success_streak(self):
        t = HealthTracker(1, dead_after=1, flap_threshold=2)
        t.record_error(0)
        t.record_success(0)
        t.record_error(0)  # flap #2 -> damped
        t.record_success(0)
        t.record_error(0)  # streak broken while still dead
        t.record_success(0)
        assert t.state(0) == DEAD
        t.record_success(0)
        assert t.state(0) == ALIVE

    def test_flap_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            HealthTracker(1, flap_threshold=0)


class TestExclusions:
    def test_dead_only_by_default(self):
        t = HealthTracker(3, suspect_after=1, dead_after=2)
        t.record_error(0)  # suspected
        t.record_error(1)
        t.record_error(1)  # dead
        assert t.exclusions() == frozenset({1})
        assert t.exclusions(include_suspected=True) == frozenset({0, 1})
        assert t.is_available(0)
        assert not t.is_available(1)
        assert t.alive_servers() == frozenset({0, 2})

    def test_snapshot_is_a_copy(self):
        t = HealthTracker(1)
        snap = t.snapshot()
        snap[0].state = DEAD
        assert t.state(0) == ALIVE

"""Nemesis timelines: seeded composition of node and link faults."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ServerBusy, ServerUnreachable
from repro.faults.injector import DynamicFaultInjector
from repro.faults.nemesis import (
    LINK_ACTIONS,
    NODE_ACTIONS,
    Nemesis,
    NemesisEvent,
    make_nemesis_schedule,
)
from repro.faults.partition import CLIENT, PartitionPlan, PartitionedInjector
from repro.obs import MetricsRegistry


class TestSchedule:
    def test_deterministic_per_seed(self):
        a = make_nemesis_schedule(5, 8, 200)
        assert a == make_nemesis_schedule(5, 8, 200)
        assert a != make_nemesis_schedule(6, 8, 200)

    def test_sorted_and_inside_horizon(self):
        schedule = make_nemesis_schedule(5, 8, 200, n_faults=6)
        ticks = [e.tick for e in schedule]
        assert ticks == sorted(ticks)
        assert all(0 <= t < 200 for t in ticks)

    def test_node_faults_are_paired_with_heals(self):
        schedule = make_nemesis_schedule(5, 8, 200, n_faults=8)
        opens = {"kill": "restore", "busy": "clear_busy", "slow": "clear_slow"}
        for action, closer in opens.items():
            n_open = sum(1 for e in schedule if e.action == action)
            n_close = sum(1 for e in schedule if e.action == closer)
            assert n_open == n_close

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_nemesis_schedule(1, 1, 200)
        with pytest.raises(ConfigurationError):
            make_nemesis_schedule(1, 8, 10)
        with pytest.raises(ConfigurationError):
            make_nemesis_schedule(1, 8, 200, kinds=("meteor",))


class TestNemesis:
    def equipment(self):
        inner = DynamicFaultInjector()
        plan = PartitionPlan()
        gate = PartitionedInjector(plan, inner)
        return inner, plan, gate

    def test_requires_matching_equipment(self):
        with pytest.raises(ConfigurationError):
            Nemesis([NemesisEvent(0, "kill", 1)], injector=None)
        with pytest.raises(ConfigurationError):
            Nemesis([NemesisEvent(0, "cut", ((1,), 5))], plan=None)

    def test_applies_due_events_once(self):
        inner, plan, gate = self.equipment()
        schedule = [
            NemesisEvent(2, "kill", 1),
            NemesisEvent(4, "busy", 2),
            NemesisEvent(6, "restore", 1),
        ]
        nemesis = Nemesis(schedule, injector=inner, plan=plan)
        assert nemesis.pending() == 3
        assert [e.action for e in nemesis.apply(4)] == ["kill", "busy"]
        assert 1 in inner.down and 2 in inner.busy
        assert nemesis.apply(4) == []  # idempotent at the same tick
        nemesis.apply(6)
        assert 1 not in inner.down
        assert nemesis.pending() == 0
        assert len(nemesis.applied) == 3

    def test_busy_action_sheds_accesses(self):
        inner, plan, gate = self.equipment()
        nemesis = Nemesis([NemesisEvent(0, "busy", 3)], injector=inner, plan=plan)
        nemesis.apply(0)
        with pytest.raises(ServerBusy):
            gate.check(3)
        Nemesis([NemesisEvent(1, "clear_busy", 3)], injector=inner).apply(1)
        gate.check(3)

    def test_cut_and_heal_drive_the_plan(self):
        inner, plan, gate = self.equipment()
        schedule = [
            NemesisEvent(0, "cut", ((0, 1), 50)),
            NemesisEvent(10, "heal", None),
        ]
        nemesis = Nemesis(schedule, injector=inner, plan=plan)
        nemesis.apply(0)
        with pytest.raises(ServerUnreachable):
            gate.check(0)
        gate.advance(10)
        nemesis.apply(10)
        gate.check(0)

    def test_flap_installs_both_directions(self):
        inner, plan, gate = self.equipment()
        nemesis = Nemesis(
            [NemesisEvent(0, "flap", ((2,), 100, 8, 0.5))],
            injector=inner,
            plan=plan,
        )
        nemesis.apply(0)
        assert plan.blocked(CLIENT, 2, 0)
        assert plan.blocked(2, CLIENT, 0)
        assert not plan.blocked(CLIENT, 2, 4)  # flap phase open

    def test_on_kill_and_on_restore_callbacks(self):
        inner, plan, _ = self.equipment()
        seen = []
        nemesis = Nemesis(
            [NemesisEvent(0, "kill", 5), NemesisEvent(1, "restore", 5)],
            injector=inner,
            plan=plan,
            on_kill=lambda sid: seen.append(("kill", sid)),
            on_restore=lambda sid: seen.append(("restore", sid)),
        )
        nemesis.apply(1)
        assert seen == [("kill", 5), ("restore", 5)]

    def test_metrics_count_applied_events(self):
        inner, plan, _ = self.equipment()
        registry = MetricsRegistry()
        nemesis = Nemesis(
            [NemesisEvent(0, "kill", 1), NemesisEvent(2, "restore", 1)],
            injector=inner,
            plan=plan,
            metrics=registry,
        )
        nemesis.apply(3)
        snap = registry.snapshot()["rnb_nemesis_events_total"]["series"]
        assert snap['kind="kill"'] == 1
        assert snap['kind="restore"'] == 1

    def test_full_generated_schedule_replays_cleanly(self):
        inner, plan, gate = self.equipment()
        schedule = make_nemesis_schedule(9, 6, 120, n_faults=6)
        nemesis = Nemesis(schedule, injector=inner, plan=plan)
        for tick in range(120):
            nemesis.apply(tick)
            gate.advance(1)
        assert nemesis.pending() == 0
        assert not inner.down and not inner.busy and not inner.slow

    def test_actions_partition_cleanly(self):
        assert not (NODE_ACTIONS & LINK_ACTIONS)

"""Cross-layer integration tests.

The most important one pins the *simulator* against the *protocol
implementation*: executing the same request stream through both must
produce the identical transaction counts, since the simulator claims to
model exactly what the real client/server pair does.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.core.bundling import Bundler
from repro.core.client import RnBClient
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.protocol.memclient import MemcachedConnection
from repro.protocol.memserver import MemcachedServer
from repro.protocol.rnbclient import RnBProtocolClient
from repro.protocol.transport import LoopbackTransport
from repro.sim.config import ClientConfig, ClusterConfig, SimConfig
from repro.sim.engine import run_simulation
from repro.types import Request
from repro.workloads.requests import EgoRequestGenerator


class TestSimulatorMatchesProtocol:
    """Same placer, same requests: simulated TPR == live protocol TPR."""

    N_SERVERS = 8
    REPLICATION = 3
    N_ITEMS = 400

    def make_both(self):
        placer = RangedConsistentHashPlacer(self.N_SERVERS, self.REPLICATION, vnodes=32)
        # simulator side
        cluster = Cluster(placer, range(self.N_ITEMS), memory_factor=None)
        sim_client = RnBClient(cluster, Bundler(placer))
        # protocol side (string keys mirror the integer items)
        servers = {i: MemcachedServer() for i in range(self.N_SERVERS)}
        conns = {
            i: MemcachedConnection(LoopbackTransport(servers[i]))
            for i in range(self.N_SERVERS)
        }

        class IntKeyPlacer:
            """Adapter: the protocol client sees the same placement for
            'item:<n>' keys as the simulator sees for integer n."""

            n_servers = self.N_SERVERS
            replication = self.REPLICATION

            def servers_for(self, key):
                return placer.servers_for(int(key.split(":")[1]))

            def distinguished_for(self, key):
                return self.servers_for(key)[0]

            def replicas_for(self, key):
                from repro.types import ReplicaSet

                return ReplicaSet(item=key, servers=self.servers_for(key))

        int_placer = IntKeyPlacer()
        proto_client = RnBProtocolClient(
            conns, int_placer, bundler=Bundler(int_placer)
        )
        for i in range(self.N_ITEMS):
            proto_client.set(f"item:{i}", str(i).encode())
        return sim_client, proto_client

    def test_transaction_counts_agree(self):
        sim_client, proto_client = self.make_both()
        rng = np.random.default_rng(0)
        for _ in range(40):
            size = int(rng.integers(2, 30))
            items = rng.choice(self.N_ITEMS, size=size, replace=False)
            sim_res = sim_client.execute(
                Request(items=tuple(int(i) for i in items))
            )
            proto_res = proto_client.get_multi([f"item:{i}" for i in items])
            assert sim_res.transactions == proto_res.transactions
            assert sim_res.items_fetched == len(proto_res.values)

    def test_limit_agrees(self):
        sim_client, proto_client = self.make_both()
        rng = np.random.default_rng(1)
        for _ in range(20):
            items = rng.choice(self.N_ITEMS, size=20, replace=False)
            sim_res = sim_client.execute(
                Request(items=tuple(int(i) for i in items), limit_fraction=0.5)
            )
            proto_res = proto_client.get_multi(
                [f"item:{i}" for i in items], limit_fraction=0.5
            )
            assert sim_res.transactions == proto_res.transactions


class TestHeadlineResults:
    """The paper's top-line claims, asserted end to end."""

    def test_rnb_halves_transactions_on_social_workload(self, small_slashdot):
        base = run_simulation(
            small_slashdot,
            SimConfig(
                cluster=ClusterConfig(n_servers=16, replication=1, memory_factor=1.0),
                client=ClientConfig(mode="noreplication"),
                n_requests=500,
                warmup_requests=0,
                seed=3,
            ),
        )
        rnb = run_simulation(
            small_slashdot,
            SimConfig(
                cluster=ClusterConfig(n_servers=16, replication=4),
                client=ClientConfig(mode="rnb"),
                n_requests=500,
                warmup_requests=0,
                seed=3,
            ),
        )
        # paper: >50% reduction with 4 copies "in some cases"; demand 35%+
        assert rnb.tpr < 0.65 * base.tpr

    def test_full_replication_pays_exactly_k(self, small_slashdot):
        """k system copies behave like an N/k-server system per request."""
        full = run_simulation(
            small_slashdot,
            SimConfig(
                cluster=ClusterConfig(n_servers=16, replication=2),
                client=ClientConfig(mode="fullreplication"),
                n_requests=500,
                warmup_requests=0,
                seed=4,
            ),
        )
        half_fleet = run_simulation(
            small_slashdot,
            SimConfig(
                cluster=ClusterConfig(n_servers=8, replication=1, memory_factor=1.0),
                client=ClientConfig(mode="noreplication"),
                n_requests=500,
                warmup_requests=0,
                seed=4,
            ),
        )
        assert full.tpr == pytest.approx(half_fleet.tpr, rel=0.1)

    def test_rnb_improves_efficiency_where_full_replication_cannot(
        self, small_slashdot
    ):
        """The paper's core comparison.  Full-system replication scales
        throughput only by adding hardware: doubling the fleet into two
        banks leaves the work *per server per request* (TPRPS) unchanged —
        "one gets exactly what one pays for".  RnB instead adds memory to
        the SAME servers and genuinely lowers TPR/TPRPS."""
        base = run_simulation(
            small_slashdot,
            SimConfig(
                cluster=ClusterConfig(n_servers=16, replication=1, memory_factor=1.0),
                client=ClientConfig(mode="noreplication"),
                n_requests=600,
                warmup_requests=0,
                seed=5,
            ),
        )
        # full replication: 2x hardware (two 16-server banks = 32 servers)
        rigid = run_simulation(
            small_slashdot,
            SimConfig(
                cluster=ClusterConfig(n_servers=32, replication=2),
                client=ClientConfig(mode="fullreplication"),
                n_requests=600,
                warmup_requests=0,
                seed=5,
            ),
        )
        # RnB: same 16 servers, 4x memory
        rnb = run_simulation(
            small_slashdot,
            SimConfig(
                cluster=ClusterConfig(n_servers=16, replication=4),
                client=ClientConfig(mode="rnb"),
                n_requests=600,
                warmup_requests=0,
                seed=5,
            ),
        )
        # full replication: identical per-request work to the baseline
        assert rigid.tpr == pytest.approx(base.tpr, rel=0.1)
        assert rigid.tprps == pytest.approx(base.tprps / 2, rel=0.1)
        # RnB: strictly less per-request work on the same hardware
        assert rnb.tpr < 0.7 * base.tpr
        assert rnb.tprps < 0.7 * base.tprps

    def test_ego_workload_requests_resolve_fully(self, small_slashdot):
        placer = RangedConsistentHashPlacer(16, 3, vnodes=32)
        cluster = Cluster(placer, range(small_slashdot.n_nodes), memory_factor=1.5)
        client = RnBClient(cluster, Bundler(placer, hitchhiking=True))
        gen = EgoRequestGenerator(small_slashdot, rng=np.random.default_rng(6))
        for req in gen.stream(300):
            res = client.execute(req)
            assert res.items_fetched == req.size

"""Tests for multi-hash replica placement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hashing.multihash import MultiHashPlacer


class TestValidation:
    def test_replication_range(self):
        with pytest.raises(ConfigurationError):
            MultiHashPlacer(4, 5)
        with pytest.raises(ConfigurationError):
            MultiHashPlacer(4, 0)
        with pytest.raises(ConfigurationError):
            MultiHashPlacer(0, 1)

    def test_full_replication_allowed(self):
        placer = MultiHashPlacer(4, 4)
        assert set(placer.servers_for(7)) == {0, 1, 2, 3}


class TestReplicaSets:
    def test_distinct_after_reprobe(self):
        """Collision re-probing guarantees distinct servers even when R ~ N."""
        placer = MultiHashPlacer(5, 4)
        for item in range(1000):
            servers = placer.servers_for(item)
            assert len(set(servers)) == 4

    def test_deterministic(self):
        a = MultiHashPlacer(16, 3, seed=2)
        b = MultiHashPlacer(16, 3, seed=2)
        for item in range(300):
            assert a.servers_for(item) == b.servers_for(item)

    def test_string_keys_supported(self):
        placer = MultiHashPlacer(8, 2)
        assert placer.servers_for("user:123") == placer.servers_for("user:123")
        assert len(set(placer.servers_for("user:123"))) == 2

    def test_seed_changes_placement(self):
        a = MultiHashPlacer(16, 2, seed=0)
        b = MultiHashPlacer(16, 2, seed=1)
        diffs = sum(a.servers_for(i) != b.servers_for(i) for i in range(200))
        assert diffs > 150

    def test_distinguished_uses_hash_zero(self):
        """The distinguished copy depends only on hash function 0 — the
        same location regardless of the replication level."""
        r1 = MultiHashPlacer(16, 1, seed=4)
        r4 = MultiHashPlacer(16, 4, seed=4)
        for item in range(300):
            assert r1.distinguished_for(item) == r4.distinguished_for(item)


class TestBalance:
    def test_replica_load_balanced(self):
        placer = MultiHashPlacer(16, 3)
        counts = np.zeros(16)
        n_items = 4000
        for item in range(n_items):
            for s in placer.servers_for(item):
                counts[s] += 1
        expected = 3 * n_items / 16
        assert counts.min() > 0.8 * expected
        assert counts.max() < 1.2 * expected

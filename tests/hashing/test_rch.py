"""Tests for Ranged Consistent Hashing placement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.placement import SingleHashPlacer
from repro.errors import ConfigurationError
from repro.hashing.rch import RangedConsistentHashPlacer


class TestValidation:
    def test_bad_replication(self):
        with pytest.raises(ConfigurationError):
            RangedConsistentHashPlacer(4, 5)
        with pytest.raises(ConfigurationError):
            RangedConsistentHashPlacer(4, 0)

    def test_bad_servers(self):
        with pytest.raises(ConfigurationError):
            RangedConsistentHashPlacer(0, 1)


class TestReplicaSets:
    def test_distinct_servers(self):
        placer = RangedConsistentHashPlacer(16, 4, vnodes=32)
        for item in range(500):
            servers = placer.servers_for(item)
            assert len(servers) == 4
            assert len(set(servers)) == 4
            assert all(0 <= s < 16 for s in servers)

    def test_deterministic_across_instances(self):
        a = RangedConsistentHashPlacer(16, 3, seed=5)
        b = RangedConsistentHashPlacer(16, 3, seed=5)
        for item in range(200):
            assert a.servers_for(item) == b.servers_for(item)

    def test_distinguished_is_plain_consistent_hashing(self):
        """RnB's distinguished copy = classic memcached location, so a
        deployment can be migrated in place (paper section IV)."""
        rch = RangedConsistentHashPlacer(16, 4, vnodes=32, seed=3)
        single = SingleHashPlacer(16, vnodes=32, seed=3)
        for item in range(300):
            assert rch.distinguished_for(item) == single.distinguished_for(item)

    def test_replicas_prefix_stable_in_replication(self):
        """Raising R only appends replicas — existing copies never move."""
        r2 = RangedConsistentHashPlacer(16, 2, vnodes=32, seed=1)
        r4 = RangedConsistentHashPlacer(16, 4, vnodes=32, seed=1)
        for item in range(200):
            assert r4.servers_for(item)[:2] == r2.servers_for(item)

    def test_replicas_for_wraps_servers(self):
        placer = RangedConsistentHashPlacer(8, 2)
        rs = placer.replicas_for(42)
        assert rs.item == 42
        assert rs.servers == placer.servers_for(42)
        assert rs.distinguished == placer.distinguished_for(42)


class TestBalance:
    def test_replica_load_balanced(self):
        """Every server hosts ~ R*items/N replicas."""
        placer = RangedConsistentHashPlacer(16, 3, vnodes=128)
        counts = np.zeros(16)
        n_items = 4000
        for item in range(n_items):
            for s in placer.servers_for(item):
                counts[s] += 1
        expected = 3 * n_items / 16
        assert counts.min() > 0.6 * expected
        assert counts.max() < 1.5 * expected

    def test_distinguished_load_balanced(self):
        placer = RangedConsistentHashPlacer(8, 3, vnodes=128)
        counts = np.zeros(8)
        n_items = 4000
        for item in range(n_items):
            counts[placer.distinguished_for(item)] += 1
        expected = n_items / 8
        assert counts.min() > 0.6 * expected
        assert counts.max() < 1.5 * expected

    def test_pairwise_coverage(self):
        """Replica sets hit many distinct server pairs (spread, not banks)."""
        placer = RangedConsistentHashPlacer(12, 2, vnodes=64)
        pairs = {tuple(sorted(placer.servers_for(i))) for i in range(2000)}
        assert len(pairs) > 50  # of C(12,2)=66 possible

"""Property tests: hash-ring behaviour under arbitrary membership churn."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.hashring import ConsistentHashRing

# sequences of (add|remove, server-id); applied only when legal
membership_ops = st.lists(
    st.tuples(st.sampled_from(["add", "remove"]), st.integers(0, 9)),
    max_size=25,
)

PROBE_KEYS = list(range(40))


@settings(max_examples=60, deadline=None)
@given(membership_ops)
def test_lookup_always_member_and_deterministic(ops):
    ring = ConsistentHashRing(range(3), vnodes=16)
    members = {0, 1, 2}
    for op, sid in ops:
        if op == "add" and sid not in members:
            ring.add_server(sid)
            members.add(sid)
        elif op == "remove" and sid in members and len(members) > 1:
            ring.remove_server(sid)
            members.remove(sid)
        assert ring.servers == frozenset(members)
        for key in PROBE_KEYS:
            owner = ring.lookup(key)
            assert owner in members


@settings(max_examples=40, deadline=None)
@given(membership_ops)
def test_history_independence(ops):
    """The mapping depends only on the CURRENT membership, never on the
    sequence of joins/leaves that produced it — the property that lets
    every stateless client agree without communication."""
    ring = ConsistentHashRing(range(3), vnodes=16)
    members = {0, 1, 2}
    for op, sid in ops:
        if op == "add" and sid not in members:
            ring.add_server(sid)
            members.add(sid)
        elif op == "remove" and sid in members and len(members) > 1:
            ring.remove_server(sid)
            members.remove(sid)
    fresh = ConsistentHashRing(sorted(members), vnodes=16)
    for key in PROBE_KEYS:
        assert ring.lookup(key) == fresh.lookup(key)
    for key in PROBE_KEYS[:10]:
        k = min(3, len(members))
        assert ring.distinct_successors(key, k) == fresh.distinct_successors(key, k)

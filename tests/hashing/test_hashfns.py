"""Tests for the stable hash functions: determinism, range, uniformity."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.hashfns import hash64_int, stable_hash64, stable_hash_unit

keys = st.one_of(
    st.integers(min_value=-(1 << 64), max_value=1 << 64),
    st.text(max_size=40),
    st.binary(max_size=40),
)


class TestStableHash64:
    def test_deterministic(self):
        assert stable_hash64("hello") == stable_hash64("hello")

    def test_known_types_distinct_encodings(self):
        # int 97 must not collide with the bytes/str of "a" by construction
        assert stable_hash64(97) != stable_hash64("a")
        assert stable_hash64(b"a") != stable_hash64("a")

    def test_seed_changes_hash(self):
        assert stable_hash64("x", seed=0) != stable_hash64("x", seed=1)

    def test_tuple_support(self):
        assert stable_hash64(("a", 1)) == stable_hash64(("a", 1))
        assert stable_hash64(("ab", "c")) != stable_hash64(("a", "bc"))
        assert stable_hash64(("a",)) != stable_hash64("a")

    def test_nested_tuple(self):
        assert stable_hash64((1, (2, 3))) != stable_hash64((1, 2, 3))

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            stable_hash64(3.14)

    def test_negative_int_ok(self):
        assert stable_hash64(-1) != stable_hash64(1)

    @given(keys, st.integers(min_value=0, max_value=1000))
    def test_range_property(self, key, seed):
        h = stable_hash64(key, seed)
        assert 0 <= h < 1 << 64


class TestHash64Int:
    def test_deterministic(self):
        assert hash64_int(12345, 7) == hash64_int(12345, 7)

    def test_seed_independence(self):
        xs = [hash64_int(5, s) for s in range(10)]
        assert len(set(xs)) == 10

    @given(st.integers(min_value=0, max_value=1 << 62))
    def test_range_property(self, v):
        assert 0 <= hash64_int(v) < 1 << 64

    def test_avalanche(self):
        """Neighbouring inputs differ in ~half the 64 bits on average."""
        diffs = [
            bin(hash64_int(i) ^ hash64_int(i + 1)).count("1") for i in range(500)
        ]
        assert 24 < np.mean(diffs) < 40


class TestUniformity:
    def test_unit_interval(self):
        xs = [stable_hash_unit(i) for i in range(2000)]
        assert all(0.0 <= x < 1.0 for x in xs)
        # mean of U(0,1) over 2000 samples: within 5 sigma of 0.5
        assert abs(np.mean(xs) - 0.5) < 5 * (1 / np.sqrt(12 * 2000))

    def test_bucket_chi_square(self):
        """Hashing 0..9999 into 16 buckets is statistically uniform."""
        buckets = np.zeros(16)
        for i in range(10_000):
            buckets[hash64_int(i) % 16] += 1
        expected = 10_000 / 16
        chi2 = float(((buckets - expected) ** 2 / expected).sum())
        # 15 dof: P(chi2 > 37.7) ~ 0.001
        assert chi2 < 37.7

    def test_modulo_uniformity_stable_hash(self):
        buckets = np.zeros(8)
        for i in range(4000):
            buckets[stable_hash64(f"key-{i}") % 8] += 1
        expected = 4000 / 8
        chi2 = float(((buckets - expected) ** 2 / expected).sum())
        assert chi2 < 24.3  # 7 dof, p ~ 0.001

"""Tests for the consistent hash ring: correctness and CH properties."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, PlacementError
from repro.hashing.hashring import ConsistentHashRing


def make_ring(n=8, vnodes=64, seed=0):
    return ConsistentHashRing(range(n), vnodes=vnodes, seed=seed)


class TestConstruction:
    def test_empty_ring(self):
        ring = ConsistentHashRing()
        assert ring.n_servers == 0
        with pytest.raises(PlacementError):
            ring.lookup("k")

    def test_vnodes_validation(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing(vnodes=0)

    def test_duplicate_server_rejected(self):
        ring = make_ring(2)
        with pytest.raises(ConfigurationError):
            ring.add_server(0)

    def test_remove_unknown_rejected(self):
        ring = make_ring(2)
        with pytest.raises(ConfigurationError):
            ring.remove_server(99)


class TestLookup:
    def test_deterministic(self):
        a, b = make_ring(), make_ring()
        for i in range(100):
            assert a.lookup(i) == b.lookup(i)

    def test_returns_member(self):
        ring = make_ring(5)
        for i in range(200):
            assert ring.lookup(i) in ring.servers

    def test_seed_changes_mapping(self):
        a = make_ring(seed=0)
        b = make_ring(seed=1)
        diffs = sum(a.lookup(i) != b.lookup(i) for i in range(200))
        assert diffs > 100


class TestConsistency:
    """The defining property: removing a server only remaps its keys."""

    def test_remove_remaps_only_owned_keys(self):
        ring = make_ring(8)
        before = {i: ring.lookup(i) for i in range(1000)}
        ring.remove_server(3)
        for key, owner in before.items():
            if owner != 3:
                assert ring.lookup(key) == owner
            else:
                assert ring.lookup(key) != 3

    def test_add_only_steals_keys(self):
        ring = make_ring(8)
        before = {i: ring.lookup(i) for i in range(1000)}
        ring.add_server(100)
        moved = 0
        for key, owner in before.items():
            after = ring.lookup(key)
            if after != owner:
                assert after == 100  # keys only move TO the new server
                moved += 1
        # the newcomer should take roughly 1/9 of the keys
        assert 40 < moved < 250

    def test_add_remove_roundtrip(self):
        ring = make_ring(8)
        before = {i: ring.lookup(i) for i in range(300)}
        ring.add_server(100)
        ring.remove_server(100)
        assert {i: ring.lookup(i) for i in range(300)} == before


class TestUniformity:
    def test_load_share_balanced(self):
        ring = make_ring(8, vnodes=128)
        shares = ring.load_share(samples=20_000)
        for share in shares.values():
            assert 0.07 < share < 0.19  # 1/8 = 0.125 +- ~50%

    def test_more_vnodes_tighter_balance(self):
        few = make_ring(8, vnodes=8).load_share(samples=20_000)
        many = make_ring(8, vnodes=256).load_share(samples=20_000)
        assert np.std(list(many.values())) < np.std(list(few.values()))


class TestWalk:
    def test_walk_covers_all_points(self):
        ring = make_ring(4, vnodes=16)
        owners = list(ring.walk("key"))
        assert len(owners) == 4 * 16
        assert set(owners) == set(range(4))

    def test_distinct_successors_basic(self):
        ring = make_ring(8)
        got = ring.distinct_successors("k", 3)
        assert len(got) == 3
        assert len(set(got)) == 3

    def test_distinct_successors_all(self):
        ring = make_ring(5)
        assert set(ring.distinct_successors("k", 5)) == set(range(5))

    def test_first_successor_is_lookup(self):
        ring = make_ring(8)
        for i in range(50):
            assert ring.distinct_successors(i, 1)[0] == ring.lookup(i)

    def test_too_many_requested(self):
        ring = make_ring(3)
        with pytest.raises(PlacementError):
            ring.distinct_successors("k", 4)

    def test_k_validation(self):
        ring = make_ring(3)
        with pytest.raises(ValueError):
            ring.distinct_successors("k", 0)

    def test_successors_prefix_stable(self):
        """distinct_successors(k, j) is a prefix of distinct_successors(k, j+1)."""
        ring = make_ring(8)
        for key in range(30):
            s4 = ring.distinct_successors(key, 4)
            for j in range(1, 4):
                assert ring.distinct_successors(key, j) == s4[:j]

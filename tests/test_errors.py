"""The exception hierarchy contract: one root to catch them all."""

from __future__ import annotations

import pytest

from repro.errors import (
    CapacityError,
    ConfigurationError,
    CoverError,
    PlacementError,
    ProtocolError,
    RnBError,
    WorkloadError,
)


@pytest.mark.parametrize(
    "exc",
    [
        ConfigurationError,
        PlacementError,
        CapacityError,
        ProtocolError,
        WorkloadError,
        CoverError,
    ],
)
def test_all_derive_from_rnberror(exc):
    assert issubclass(exc, RnBError)
    with pytest.raises(RnBError):
        raise exc("boom")


def test_rnberror_is_exception():
    assert issubclass(RnBError, Exception)

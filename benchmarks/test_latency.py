"""Bench: structural latency impact of RnB (paper §V-B future work)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import latency


def test_latency(benchmark, archive, bench_profile):
    results = run_once(
        benchmark,
        latency.run,
        scale=bench_profile["scale"],
        n_requests=bench_profile["n_requests"],
        warmup_requests=bench_profile["warmup_requests"],
    )
    archive(results)
    [res] = results
    by = {label: i for i, label in enumerate(res.x_values)}
    mean = res.series["mean us"]
    rounds = res.series["2-round %"]
    tpr = res.series["TPR"]
    # roomy RnB: latency within 10% of classic, TPR roughly halved
    assert mean[by["RnB R=4 roomy"]] < 1.1 * mean[by["classic"]]
    assert tpr[by["RnB R=4 roomy"]] < 0.65 * tpr[by["classic"]]
    # overbooking pays a two-round tail; hitchhiking does not enlarge it
    assert rounds[by["RnB R=4 @2x"]] > 0
    assert rounds[by["RnB R=4 @2x +hh"]] <= rounds[by["RnB R=4 @2x"]] + 1e-9

"""Bench: Fig 2 — analytic TPRPS scaling factor when doubling servers."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import fig02


def test_fig02_scaling_factor(benchmark, archive):
    results = run_once(benchmark, fig02.run)
    archive(results)
    [res] = results
    # regression pins on the analytic values
    assert res.series["M=1"][0] == 2.0
    assert 1.55 < res.series["M=50"][res.x_values.index(64)] < 1.75

"""Bench: Fig 8 — TPR reduction vs memory under overbooking."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import fig08


def test_fig08_limited_memory(benchmark, archive, bench_profile):
    results = run_once(
        benchmark,
        fig08.run,
        scale=bench_profile["scale"],
        n_requests=bench_profile["n_requests"],
        warmup_requests=bench_profile["warmup_requests"],
        max_workers=bench_profile["max_workers"],
    )
    archive(results)
    [res] = results
    r1 = res.series["R=1"]
    r4 = res.series["R=4"]
    # R=1 pinned-only is the baseline itself
    assert all(abs(v - 1.0) < 0.08 for v in r1)
    # more memory monotone-ish helps R=4 (allow tiny noise)
    assert r4[-1] < r4[0]
    # paper headline: a free disaster-recovery copy (2.0x) ~ 25% cut
    idx2 = res.x_values.index(2.0)
    assert r4[idx2] < 0.85
    # and aggressive overbooking at 1.0x memory can exceed the baseline
    assert r4[0] > 1.0

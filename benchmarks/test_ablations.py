"""Bench: ablations of RnB design decisions (DESIGN.md section 6)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import ablations


def test_ablations(benchmark, archive, bench_profile):
    results = run_once(
        benchmark,
        ablations.run,
        scale=bench_profile["scale"],
        n_requests=bench_profile["n_requests"],
        warmup=bench_profile["warmup_requests"],
    )
    archive(results)
    by_name = {r.name: r for r in results}

    hh = by_name["ablation_hitchhiking"]
    assert hh.series["TPR"][0] <= hh.series["TPR"][1]  # on <= off
    assert (
        hh.series["items transferred/request"][0]
        > hh.series["items transferred/request"][1]
    )

    ob = by_name["ablation_overbooking"]
    tprs = ob.series["TPR"]
    # the U shape: some overbooking helps, excessive overbooking hurts
    assert min(tprs[1:-1]) < tprs[0]
    assert tprs[-1] > min(tprs)

    pl = by_name["ablation_placement"]
    tpr_lo, tpr_hi = min(pl.series["TPR"]), max(pl.series["TPR"])
    assert tpr_hi / tpr_lo < 1.1  # placement scheme barely matters for TPR

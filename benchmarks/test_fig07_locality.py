"""Bench: Fig 7 — the request-locality example (deterministic)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import fig07


def test_fig07_locality(benchmark, archive):
    results = run_once(benchmark, fig07.run)
    archive(results)
    [res] = results
    assert res.series["server for item 1"] == ["A", "A"]
    assert res.series["server for item 2"] == ["A", "A"]

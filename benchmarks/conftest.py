"""Benchmark harness glue.

Each ``bench_*`` module regenerates one figure of the paper via
pytest-benchmark: the *timing* measures the cost of the reproduction
pipeline, and the *output tables* — the actual figure data — are printed
and archived under ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md
can cite them.

Scale knobs:

* default — laptop-quick (~seconds per figure, scaled-down graphs);
* ``RNB_BENCH_FULL=1`` — paper-scale graphs and request counts (minutes);
* ``RNB_BENCH_WORKERS=N`` — worker count for sweep parallelism in the
  full profile (default: all cores but one).

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

FULL_SCALE = os.environ.get("RNB_BENCH_FULL", "") not in ("", "0")


@pytest.fixture(scope="session")
def bench_profile() -> dict:
    """Size parameters for experiment drivers, quick vs full."""
    if FULL_SCALE:
        workers_env = os.environ.get("RNB_BENCH_WORKERS", "")
        if workers_env:
            max_workers = max(1, int(workers_env))
        else:
            max_workers = max(1, (os.cpu_count() or 1) - 1)
        return {
            "scale": 1.0,
            "n_requests": 4000,
            "warmup_requests": 20_000,
            "mc_trials": 1000,
            "max_workers": max_workers,
        }
    return {
        "scale": 0.1,
        "n_requests": 1200,
        "warmup_requests": 2500,
        "mc_trials": 300,
        "max_workers": 1,
    }


@pytest.fixture(scope="session")
def archive(request):
    """Print an experiment's tables and archive them under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    capmanager = request.config.pluginmanager.getplugin("capturemanager")

    def _archive(results) -> None:
        for res in results:
            text = res.table()
            # suspend pytest's fd capture so the figure data lands in the
            # terminal / tee'd bench log, not only in results/
            if capmanager is not None:
                with capmanager.global_and_fixture_disabled():
                    sys.stdout.write("\n" + text + "\n")
                    sys.stdout.flush()
            else:  # pragma: no cover - capture plugin always present
                print("\n" + text)
            (RESULTS_DIR / f"{res.name}.txt").write_text(text + "\n")

    return _archive


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer.

    Simulation experiments are far too heavy for pytest-benchmark's
    auto-calibrated many-round timing; a single timed round is the same
    trade the paper's own harness makes.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)

"""Bench: overbooking gain vs workload affinity strength.

Validates EXPERIMENTS.md's explanation of the Fig 8 quantitative gap:
stronger ego-network overlap (higher Zipf popularity exponent) must
lower both the miss rate and the overbooked TPR ratio.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import sensitivity


def test_sensitivity_affinity(benchmark, archive, bench_profile):
    results = run_once(
        benchmark,
        sensitivity.run,
        scale=bench_profile["scale"],
        n_requests=max(600, bench_profile["n_requests"] // 2),
        warmup_requests=max(1500, bench_profile["warmup_requests"] // 2),
    )
    archive(results)
    [res] = results
    ratios = res.series["TPR ratio"]
    misses = res.series["miss rate"]
    # strongest-affinity point clearly beats the weakest on both metrics
    assert ratios[-1] < ratios[0] - 0.05
    assert misses[-1] < misses[0]

"""Bench: section II-A — closed-form urn model vs Monte-Carlo simulation."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.urn import expected_tpr
from repro.experiments.base import ExperimentResult
from repro.sim.montecarlo import mc_tpr


def _run(n_trials: int) -> list[ExperimentResult]:
    ns = [2, 4, 8, 16, 32, 64]
    m = 20
    analytic = [expected_tpr(n, m) for n in ns]
    simulated = [mc_tpr(n, m, 1, n_trials=n_trials, seed=11).mean_tpr for n in ns]
    return [
        ExperimentResult(
            name="urn_model",
            title=f"Section II-A: analytic W(N,M) vs Monte-Carlo (M={m})",
            x_label="servers",
            x_values=ns,
            series={"analytic TPR": analytic, "simulated TPR": simulated},
            expectation="the two columns agree to sampling noise",
        )
    ]


def test_urn_model_vs_simulation(benchmark, archive, bench_profile):
    results = run_once(benchmark, _run, bench_profile["mc_trials"] * 3)
    archive(results)
    [res] = results
    for a, s in zip(res.series["analytic TPR"], res.series["simulated TPR"]):
        assert s == pytest.approx(a, rel=0.05)

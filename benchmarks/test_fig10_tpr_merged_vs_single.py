"""Bench: Fig 10 — absolute TPR, merged-2 vs single-request handling."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import fig10


def test_fig10_tpr_merged_vs_single(benchmark, archive, bench_profile):
    results = run_once(
        benchmark,
        fig10.run,
        scale=bench_profile["scale"],
        n_requests=bench_profile["n_requests"],
        warmup_requests=bench_profile["warmup_requests"],
        max_workers=bench_profile["max_workers"],
    )
    archive(results)
    merged = next(r for r in results if r.meta["merge_window"] == 2)
    single = next(r for r in results if r.meta["merge_window"] == 1)
    # merging lowers the whole family of curves, per original request
    for label in ("R=1", "R=4", "no-repl baseline"):
        for m, s in zip(merged.series[label], single.series[label]):
            assert m < s

"""Bench: Fig 11 — LIMIT requests without replication (Monte-Carlo)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import fig11


def test_fig11_limit_no_replication(benchmark, archive, bench_profile):
    results = run_once(benchmark, fig11.run, n_trials=bench_profile["mc_trials"])
    archive(results)
    for res in results:
        t50 = res.series["fetch 50%"]
        t100 = res.series["fetch 100%"]
        # halving the required fraction cuts transactions substantially
        assert all(a < 0.75 * b for a, b in zip(t50, t100))
        # lower fraction => lower TPR pointwise across all fractions
        t90, t95 = res.series["fetch 90%"], res.series["fetch 95%"]
        for i in range(len(t50)):
            assert t50[i] < t90[i] <= t95[i] <= t100[i] * 1.01

"""Bench: Fig 13 — single-client calibration micro-benchmark."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import fig13_14


def test_fig13_microbench(benchmark, archive):
    results = run_once(benchmark, fig13_14.run)
    fig13 = [r for r in results if r.name == "fig13"]
    archive(fig13)
    [res] = fig13
    measured = res.series["measured items/s"]
    # items/s grows with transaction size: per-txn cost dominates
    assert measured[-1] > 2 * measured[0]
    fitted = res.meta["fitted_model"]
    assert fitted.t_txn > 0
    # per-transaction overhead exceeds per-item cost (the premise of RnB)
    assert fitted.t_txn > fitted.t_item

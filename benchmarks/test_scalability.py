"""Bench: RnB at large fleet sizes (paper §V-B future work)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import scalability


def test_scalability(benchmark, archive, bench_profile):
    results = run_once(
        benchmark, scalability.run, n_trials=max(60, bench_profile["mc_trials"] // 2)
    )
    archive(results)
    [res] = results
    saving = dict(zip(res.x_values, res.series["saving (best R)"]))
    # the saving peaks in the multi-get-hole regime (N ~ M = 100) ...
    assert saving[64] > 0.5
    # ... and tapers once N >> M
    assert saving[4096] < saving[64] / 2
    # replication ordering holds at every fleet size
    for i in range(len(res.x_values)):
        assert res.series["R=4"][i] < res.series["R=2"][i] < res.series["R=1 (analytic)"][i]

"""Bench: future-work experiments — LIMIT memory and single-item bundling."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments import limit_memory, single_item


def test_limit_memory(benchmark, archive, bench_profile):
    results = run_once(
        benchmark,
        limit_memory.run,
        scale=bench_profile["scale"],
        n_requests=max(400, bench_profile["n_requests"] // 2),
        warmup_requests=max(800, bench_profile["warmup_requests"] // 2),
    )
    archive(results)
    tpr_res, ws_res = results
    ws = ws_res.series["working set (copies)"]
    # working set strictly shrinks with the fetch fraction
    assert ws == sorted(ws, reverse=True)
    assert ws[-1] < 0.7 * ws[0]
    # memory helps at every fraction
    for series in tpr_res.series.values():
        assert series[-1] < series[0]


def test_single_item_cross_request_bundling(benchmark, archive):
    results = run_once(benchmark, single_item.run)
    archive(results)
    [res] = results
    no_repl = res.series["no replication"]
    rnb = res.series["RnB R=4"]
    assert no_repl[0] == pytest.approx(1.0)
    assert rnb[0] == pytest.approx(1.0)
    # at window 16, RnB bundling cuts transactions per lookup hard
    assert rnb[-1] < 0.35
    assert rnb[-1] < 0.6 * no_repl[-1]

"""Bench: Fig 9 — the Fig 8 sweep with 2-request merging."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import fig09


def test_fig09_merged_requests(benchmark, archive, bench_profile):
    results = run_once(
        benchmark,
        fig09.run,
        scale=bench_profile["scale"],
        n_requests=bench_profile["n_requests"],
        warmup_requests=bench_profile["warmup_requests"],
        max_workers=bench_profile["max_workers"],
    )
    archive(results)
    [res] = results
    r4 = res.series["R=4"]
    assert r4[-1] < r4[0]  # replication still helps under merging
    assert res.meta["merge_window"] == 2

"""Bench: Figs 4-5 — degree histograms of the workload graphs."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments import fig04_05


def test_fig04_05_degree_histograms(benchmark, archive, bench_profile):
    results = run_once(benchmark, fig04_05.run, scale=bench_profile["scale"])
    archive(results)
    f4, f5 = results
    assert f4.meta["mean_degree"] == pytest.approx(11.54, rel=0.05)
    assert f5.meta["mean_degree"] == pytest.approx(6.71, rel=0.05)
    # heavy tails span at least two decades past the mean
    assert any("[101," in str(label) or "[100," in str(label) for label in f4.x_values)

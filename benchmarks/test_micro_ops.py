"""Bench: hot-path micro-operations of the library itself.

Unlike the figure benches (one timed round of a whole experiment), these
use pytest-benchmark's calibrated multi-round timing — they are the
library's performance regression net: placement lookups, cover solving,
plan construction, LRU churn and protocol round-trips.
"""

from __future__ import annotations

import pytest

from repro.cluster.lru import PinnedLRU
from repro.core.bundling import Bundler
from repro.core.setcover import greedy_set_cover
from repro.hashing.hashring import ConsistentHashRing
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.protocol.memclient import MemcachedConnection
from repro.protocol.memserver import MemcachedServer
from repro.protocol.transport import LoopbackTransport
from repro.types import Request
from repro.utils.bitset import from_indices


@pytest.fixture(scope="module")
def placer():
    p = RangedConsistentHashPlacer(16, 4, vnodes=64)
    for item in range(2000):  # pre-warm the memoisation
        p.servers_for(item)
    return p


def test_ring_lookup(benchmark):
    ring = ConsistentHashRing(range(16), vnodes=64)
    benchmark(lambda: ring.lookup(123456))


def test_rch_placement_cold(benchmark):
    counter = iter(range(10_000_000))

    def place():
        p = RangedConsistentHashPlacer(16, 4, vnodes=64, cache_size=1)
        return p.servers_for(next(counter))

    # includes ring construction; measures the truly-uncached path
    benchmark(place)


def test_rch_placement_warm(benchmark, placer):
    benchmark(lambda: placer.servers_for(777))


def test_greedy_cover_m40_n16(benchmark, placer):
    subsets = {}
    for idx in range(40):
        for s in placer.servers_for(idx):
            subsets[s] = subsets.get(s, 0) | (1 << idx)
    benchmark(lambda: greedy_set_cover(subsets, 40))


def test_bundler_plan_m40(benchmark, placer):
    bundler = Bundler(placer, hitchhiking=True)
    request = Request(items=tuple(range(40)))
    benchmark(lambda: bundler.plan(request))


def test_lru_put_touch(benchmark):
    store = PinnedLRU(replica_capacity=1000)
    store.pin_all(range(10_000, 10_100))
    i = iter(range(100_000_000))

    def op():
        k = next(i) % 2000
        store.put(k)
        store.touch(k)

    benchmark(op)


def test_bitset_roundtrip(benchmark):
    benchmark(lambda: from_indices(range(0, 200, 3)).bit_count())


def test_protocol_multiget_10keys(benchmark):
    server = MemcachedServer()
    conn = MemcachedConnection(LoopbackTransport(server))
    keys = [f"k{i}" for i in range(10)]
    for k in keys:
        conn.set(k, b"x" * 10)
    benchmark(lambda: conn.get_multi(keys))

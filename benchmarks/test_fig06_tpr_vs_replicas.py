"""Bench: Fig 6 — mean TPR vs replication level (16 servers, naive memory)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import fig06


def test_fig06_tpr_vs_replicas(benchmark, archive, bench_profile):
    results = run_once(
        benchmark,
        fig06.run,
        scale=bench_profile["scale"],
        n_requests=bench_profile["n_requests"],
    )
    archive(results)
    [res] = results
    for graph in ("slashdot", "epinions"):
        tprs = res.series[f"TPR {graph}"]
        rel = res.series[f"rel {graph}"]
        assert all(a > b for a, b in zip(tprs, tprs[1:])), "TPR must fall with R"
        # paper headline: big reduction by 4 replicas (>50% in some cases)
        assert rel[3] < 0.6

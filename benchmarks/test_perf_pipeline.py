"""Bench: the fast-path read pipeline (PR 4's perf-regression net).

Runs the same layers as ``rnb perfbench`` — cover kernel, batched
planning, end-to-end simulation, telemetry overhead, sharded engine —
under pytest-benchmark, plus a regression gate comparing the measured
speedups against the committed ``BENCH_PR9.json`` baseline.  Absolute
rates are machine-dependent, so only *speedups* (fast vs baseline arm,
same machine, same run) are gated, with the generous tolerance
``repro.perf.bench`` defaults to.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.perf.bench import (
    compare_against_baseline,
    run_perfbench,
)
from repro.sim.config import ClientConfig, ClusterConfig, SimConfig
from repro.sim.engine import run_simulation
from repro.workloads.synthetic import make_slashdot_like

from .conftest import run_once

BASELINE_PATH = Path(__file__).parent.parent / "BENCH_PR9.json"


@pytest.fixture(scope="module")
def graph(bench_profile):
    return make_slashdot_like(scale=bench_profile["scale"], seed=7)


def _config(fast_path: bool, bench_profile) -> SimConfig:
    return SimConfig(
        cluster=ClusterConfig(n_servers=16, replication=3),
        client=ClientConfig(mode="rnb"),
        n_requests=bench_profile["n_requests"],
        warmup_requests=0,
        seed=2013,
        fast_path=fast_path,
    )


def test_end_to_end_fast(benchmark, graph, bench_profile):
    run_once(benchmark, run_simulation, graph, _config(True, bench_profile))


def test_end_to_end_reference(benchmark, graph, bench_profile):
    run_once(benchmark, run_simulation, graph, _config(False, bench_profile))


def test_fast_path_bit_identical(graph, bench_profile):
    """The acceptance invariant: both arms produce the same numbers."""
    fast = run_simulation(graph, _config(True, bench_profile))
    slow = run_simulation(graph, _config(False, bench_profile))
    assert fast.stats == slow.stats
    assert fast.txn_histogram == slow.txn_histogram
    assert fast.meta == slow.meta


def test_perfbench_regression_gate(benchmark):
    """Quick perfbench run compared against the committed baseline."""
    doc = run_once(benchmark, run_perfbench, quick=True)
    baseline = json.loads(BASELINE_PATH.read_text())
    failures = compare_against_baseline(doc, baseline)
    assert not failures, "\n".join(failures)

"""Bench: flexible fleet growth — replica churn and TPR continuity."""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments import growth


def test_growth(benchmark, archive):
    results = run_once(benchmark, growth.run)
    archive(results)
    churn, tpr = results
    ideal = churn.series["ideal churn R/(N+1)"]
    rch = churn.series["rch churn"]
    mh = churn.series["multihash churn"]
    for i in range(len(churn.x_values)):
        # RCH tracks the consistent-hashing ideal within 30%
        assert rch[i] == pytest.approx(ideal[i], rel=0.3)
        # independent multi-hash remaps the majority of the data
        assert mh[i] > 0.5
        assert mh[i] > 4 * rch[i]
    # TPR is continuous across a one-server join (<12% change)
    for before, after in zip(tpr.series["TPR at N"], tpr.series["TPR at N+1"]):
        assert abs(after - before) / before < 0.12

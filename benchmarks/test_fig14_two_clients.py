"""Bench: Fig 14 — two concurrent clients against one server."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import fig13_14


def test_fig14_two_clients(benchmark, archive):
    results = run_once(benchmark, fig13_14.run)
    fig14 = [r for r in results if r.name == "fig14"]
    archive(fig14)
    [res] = fig14
    two = res.series["two clients items/s"]
    one = res.series["one client items/s"]
    # the paper's conclusion: two clients never double the delivered rate
    assert all(t < 1.9 * s for t, s in zip(two, one))
    # and large transactions still deliver far more items than small ones
    assert two[-1] > 1.5 * two[0]

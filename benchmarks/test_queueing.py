"""Bench: latency vs offered load with queueing (saturation knee)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import queueing


def test_queueing(benchmark, archive, bench_profile):
    results = run_once(
        benchmark,
        queueing.run,
        scale=bench_profile["scale"],
        n_requests=max(4000, bench_profile["n_requests"] * 3),
    )
    archive(results)
    [res] = results
    loads = list(res.x_values)
    classic = res.series["classic p95 us"]
    rnb = [v for k, v in res.series.items() if k.startswith("RnB") and k.endswith("p95 us")][0]
    i_low = loads.index(0.2)
    i_unit = loads.index(1.0)
    # equal latency when idle (RTT-bound)
    assert abs(classic[i_low] - rnb[i_low]) / classic[i_low] < 0.15
    # at the classic capacity point, classic has exploded and RnB has not
    assert classic[i_unit] > 4 * rnb[i_unit]
    # RnB eventually saturates too (no free lunch)
    assert rnb[-1] > 3 * rnb[i_low]

"""Bench: Fig 3 — relative throughput vs fleet size (the multi-get hole)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import fig03


def test_fig03_multiget_hole(benchmark, archive, bench_profile):
    results = run_once(
        benchmark,
        fig03.run,
        scale=bench_profile["scale"],
        n_requests=bench_profile["n_requests"],
    )
    archive(results)
    [res] = results
    measured = res.series["relative throughput"]
    ideal = res.series["ideal scaling"]
    # the hole: at 32 servers, measured throughput is far below ideal
    assert measured[-1] < 0.5 * ideal[-1]
    # but still monotone increasing
    assert all(a <= b for a, b in zip(measured, measured[1:]))

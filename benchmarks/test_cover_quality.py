"""Bench: bundling-algorithm quality and overhead (paper §I-C, §V-B)."""

from __future__ import annotations

import math

from benchmarks.conftest import run_once
from repro.experiments import cover_quality


def test_cover_quality(benchmark, archive, bench_profile):
    results = run_once(
        benchmark, cover_quality.run, n_trials=max(30, bench_profile["mc_trials"] // 5)
    )
    archive(results)
    quality, overhead = results
    for i, label in enumerate(quality.x_values):
        opt = quality.series["optimal"][i]
        grd = quality.series["greedy"][i]
        ff = quality.series["first-fit"][i]
        if not math.isnan(opt):
            # "considerable benefits even with sub-optimal selection":
            # greedy within 15% of optimal in the mean
            assert grd / opt < 1.15, label
        assert grd < ff, label
    # overhead: greedy under a millisecond everywhere
    assert all(us < 1000 for us in overhead.series["greedy us"])

"""Bench: semi-analytic RnB model vs Monte-Carlo (accuracy table)."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.rnb_model import predicted_tpr
from repro.experiments.base import ExperimentResult
from repro.sim.montecarlo import mc_tpr


def _run(n_trials: int) -> list[ExperimentResult]:
    labels, model, mc, errs = [], [], [], []
    for n, m, r in [
        (16, 20, 2),
        (16, 40, 3),
        (16, 100, 4),
        (32, 40, 2),
        (32, 100, 4),
        (64, 100, 5),
    ]:
        labels.append(f"N={n} M={m} R={r}")
        pred = predicted_tpr(n, m, r)
        truth = mc_tpr(n, m, r, n_trials=n_trials, seed=21).mean_tpr
        model.append(pred)
        mc.append(truth)
        errs.append(abs(pred - truth) / truth)
    return [
        ExperimentResult(
            name="rnb_model",
            title="Semi-analytic greedy model vs Monte-Carlo TPR",
            x_label="instance",
            x_values=labels,
            series={"model": model, "monte-carlo": mc, "rel err": errs},
            expectation="model within ~15% everywhere, ~6% in the mean",
        )
    ]


def test_rnb_model_accuracy(benchmark, archive, bench_profile):
    results = run_once(benchmark, _run, bench_profile["mc_trials"])
    archive(results)
    [res] = results
    errs = res.series["rel err"]
    assert max(errs) < 0.2
    assert float(np.mean(errs)) < 0.10

"""Bench: Fig 12 — LIMIT requests with replication (Monte-Carlo)."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments import fig12


def test_fig12_limit_with_replication(benchmark, archive, bench_profile):
    results = run_once(benchmark, fig12.run, n_trials=bench_profile["mc_trials"])
    archive(results)
    for res in results:
        # replication strictly helps at every fleet size
        for i in range(len(res.x_values)):
            assert (
                res.series["R=5"][i]
                < res.series["R=3"][i]
                < res.series["R=1 LIMIT"][i]
            )
    # paper headlines at 90%, large fleets: R=5 ~30%, R=2 ~65% of the
    # R=1 full-fetch TPR
    res90 = next(r for r in results if r.meta["fraction"] == 0.9)
    i = res90.x_values.index(64)
    base = res90.series["R=1 no LIMIT"][i]
    assert res90.series["R=5"][i] / base < 0.45
    assert 0.5 < res90.series["R=2"][i] / base < 0.8

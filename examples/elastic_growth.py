#!/usr/bin/env python3
"""Growing a live RnB cluster one server at a time.

The paper dismisses full-system replication partly because it "only
permits system enlargement in relatively large strides" (§II-C) while
RnB on Ranged Consistent Hashing "supports smooth scalability" (§V).
This demo performs an actual online expansion:

1. run a 4-server RnB cluster, write 300 keys (R=3);
2. bring up a 5th server, build the N=5 placer, and migrate ONLY the
   replica assignments that moved (RCH moves ~R/(N+1) of them);
3. verify every key is still fully readable mid- and post-migration.

Run:  python examples/elastic_growth.py
"""

from repro.core.bundling import Bundler
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.protocol.memclient import MemcachedConnection
from repro.protocol.memserver import MemcachedServer
from repro.protocol.rnbclient import RnBProtocolClient
from repro.protocol.transport import LoopbackTransport

REPLICATION = 3
N_KEYS = 300


def make_client(conns, n_servers):
    placer = RangedConsistentHashPlacer(n_servers, REPLICATION, vnodes=64)
    return placer, RnBProtocolClient(
        {i: conns[i] for i in range(n_servers)}, placer, bundler=Bundler(placer)
    )


def main() -> None:
    servers = {i: MemcachedServer(name=f"m{i}") for i in range(5)}
    conns = {i: MemcachedConnection(LoopbackTransport(servers[i])) for i in range(5)}
    keys = [f"user:{i}" for i in range(N_KEYS)]

    # --- phase 1: 4-server cluster ---
    old_placer, old_client = make_client(conns, 4)
    for k in keys:
        old_client.set(k, f"value-of-{k}".encode())
    out = old_client.get_multi(keys)
    print(f"4 servers: {len(out.values)}/{N_KEYS} keys readable, "
          f"{out.transactions} transactions")

    # --- phase 2: compute the migration plan for server #5 ---
    new_placer, new_client = make_client(conns, 5)
    to_copy: list[tuple[str, int]] = []
    to_drop: list[tuple[str, int]] = []
    for k in keys:
        old_set, new_set = set(old_placer.servers_for(k)), set(new_placer.servers_for(k))
        to_copy += [(k, s) for s in new_set - old_set]
        to_drop += [(k, s) for s in old_set - new_set]
    moved = len(to_copy) / (N_KEYS * REPLICATION)
    print(
        f"join of server 4: copy {len(to_copy)} replicas, drop {len(to_drop)} "
        f"({moved:.1%} of all assignments; consistent-hashing ideal ~"
        f"{1 / 5:.1%})"
    )

    # --- phase 3: migrate (copy first, then drop — no read outage) ---
    for key, sid in to_copy:
        value = old_client.get(key)
        conns[sid].set(key, value)
    mid = new_client.get_multi(keys)
    assert not mid.missing, "reads must survive mid-migration"
    for key, sid in to_drop:
        conns[sid].delete(key)

    out = new_client.get_multi(keys)
    print(f"5 servers: {len(out.values)}/{N_KEYS} keys readable, "
          f"{out.transactions} transactions")
    assert not out.missing

    print(
        "\nContrast: a 2-bank full-replication fleet of 4 servers could only "
        "grow by 2 servers\n(a whole half-bank stride) and would re-shard "
        "every key inside each bank."
    )


if __name__ == "__main__":
    main()

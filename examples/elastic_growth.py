#!/usr/bin/env python3
"""A self-healing RnB cluster: join, crash, repair, recover — one epoch
at a time.

The paper claims RnB "supports smooth scalability" (§V) and that its
replicas "already exist for reliability" (§I-C).  This demo drives both
claims through the membership subsystem over a live (loopback) protocol
stack:

1. run a 4-server RnB cluster (R=3), write 300 keys;
2. **join** server 4 via a topology epoch: the epoch delta copies ONLY
   the replica assignments that moved (~1/(N+1) under RCH), throttled,
   with reads verified mid-migration;
3. **kill** a server: the client's health tracker reaches a dead
   verdict, promotes it into a membership proposal, the epoch commits,
   placement promotes distinguished copies, and repair re-replicates
   from surviving replicas;
4. **recover** the server: it rejoins empty, and repair restores its
   canonical arcs.

Run:  python examples/elastic_growth.py
"""

from repro.faults.health import HealthTracker
from repro.membership import (
    EpochedPlacer,
    MembershipService,
    RepairExecutor,
    protocol_repair_fns,
)
from repro.protocol.memclient import MemcachedConnection
from repro.protocol.memserver import MemcachedServer
from repro.protocol.rnbclient import RnBProtocolClient
from repro.protocol.transport import LoopbackTransport

REPLICATION = 3
N_KEYS = 300


class KillableTransport(LoopbackTransport):
    """Loopback transport with a kill switch (crash-stop simulation)."""

    def __init__(self, server):
        super().__init__(server)
        self.alive = True

    def exchange(self, request, n_responses=1):
        if not self.alive:
            raise ConnectionError("server down")
        return super().exchange(request, n_responses)


def drain(service, *, window: int) -> int:
    """Pump the repair throttle dry; returns how many windows it took."""
    windows = 0
    while service.pending_repair():
        service.tick(clock=windows)
        windows += 1
    return max(windows, 1)


def main() -> None:
    backends = {i: MemcachedServer(name=f"m{i}") for i in range(5)}
    transports = {i: KillableTransport(backends[i]) for i in range(5)}
    conns = {i: MemcachedConnection(transports[i]) for i in range(5)}
    keys = [f"user:{i}" for i in range(N_KEYS)]

    # --- phase 1: 4-server cluster at epoch 0 ---
    placer = EpochedPlacer("rch", 4, REPLICATION, vnodes=64)
    copy_fn, drop_fn = protocol_repair_fns(conns)
    service = MembershipService(
        placer,
        keys,
        executor=RepairExecutor(copy_fn, drop_fn),
        confirm_after=1,
        repair_rate=60,  # item copies per repair window
    )
    health = HealthTracker(5, dead_after=2)
    client = RnBProtocolClient(
        {i: conns[i] for i in range(4)},
        placer,
        health=health,
        membership=service,
    )
    for k in keys:
        client.set(k, f"value-of-{k}".encode())
    out = client.get_multi(keys)
    print(
        f"epoch {placer.epoch}: 4 servers, {len(out.values)}/{N_KEYS} keys "
        f"readable in {out.transactions} transactions"
    )

    # --- phase 2: server 4 joins; the epoch delta migrates the minimum ---
    client.connections[4] = conns[4]
    service.announce_join(4)
    event = service.events[-1]
    moved = event.repair_items / (N_KEYS * REPLICATION)
    print(
        f"epoch {placer.epoch}: join of server 4 -> copy {event.repair_items} "
        f"replicas ({moved:.1%} of assignments; consistent-hashing ideal "
        f"~{1 / 5:.1%})"
    )
    service.tick(clock=0)  # one throttle window only
    mid = client.get_multi(keys)
    assert not mid.missing, "reads must survive mid-migration"
    windows = 1 + drain(service, window=1)
    out = client.get_multi(keys)
    assert not out.missing
    print(
        f"  migrated over {windows} windows of <= 60 copies; reads stayed "
        f"complete throughout ({out.transactions} transactions now)"
    )

    # --- phase 3: crash a server; the client heals the topology ---
    victim = 1
    transports[victim].alive = False
    on_victim = [k for k in keys if victim in placer.servers_for(k)]
    while True:  # keep reading until the dead verdict commits an epoch
        out = client.get_multi(on_victim)
        assert not out.missing, "surviving replicas cover every read"
        if out.membership_commits:
            break
    event = service.events[-1]
    print(
        f"epoch {placer.epoch}: client verdict removed server {victim}; "
        f"promotion + {event.repair_items} repair copies from survivors"
    )
    drain(service, window=1)
    out = client.get_multi(keys)
    assert not out.missing
    assert all(victim not in placer.servers_for(k) for k in keys)
    print(f"  full R={REPLICATION} restored without server {victim}")

    # --- phase 4: the server restarts (empty) and is re-replicated ---
    transports[victim].alive = True
    conns[victim].flush_all()  # a restarted cache comes back empty
    health.record_recovery(victim)
    service.announce_recovery(victim)
    event = service.events[-1]
    drain(service, window=1)
    out = client.get_multi(keys)
    assert not out.missing
    print(
        f"epoch {placer.epoch}: server {victim} recovered; "
        f"{event.repair_items} copies restored its canonical placement"
    )

    print(
        "\nThe whole join -> crash -> repair -> recover cycle ran through "
        "topology epochs:\nreads never degraded, and every migration shipped "
        "only the assignments that moved."
    )


if __name__ == "__main__":
    main()

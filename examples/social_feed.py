#!/usr/bin/env python3
"""Social feed serving: RnB vs the alternatives on a realistic workload.

The scenario from the paper's introduction: a social web application
serves each user a feed assembled from all of their friends' statuses,
cached in a fleet of RAM key-value servers.  This example:

1. generates a Slashdot-shaped social graph (82k users scaled down 10x);
2. replays ego-network feed requests against four deployments —
   classic consistent hashing, full-system replication, basic RnB, and
   RnB with overbooking + hitchhiking at a 2.5x memory budget;
3. reports TPR and the calibrated maximum request throughput of each.

Run:  python examples/social_feed.py
"""

from repro import DEFAULT_MEMCACHED_MODEL, ClientConfig, ClusterConfig, SimConfig
from repro.sim.engine import run_simulation
from repro.workloads.synthetic import make_slashdot_like

N_SERVERS = 16
N_REQUESTS = 1500
WARMUP = 2500
SEED = 7


def main() -> None:
    graph = make_slashdot_like(seed=SEED, scale=0.1)
    print(f"workload: {graph}\n")

    deployments = {
        "classic (1 copy)": SimConfig(
            cluster=ClusterConfig(n_servers=N_SERVERS, replication=1, memory_factor=1.0),
            client=ClientConfig(mode="noreplication"),
            n_requests=N_REQUESTS,
            warmup_requests=0,
            seed=SEED,
        ),
        "full replication x2 (2x servers' worth of memory, rigid)": SimConfig(
            cluster=ClusterConfig(n_servers=N_SERVERS, replication=2),
            client=ClientConfig(mode="fullreplication"),
            n_requests=N_REQUESTS,
            warmup_requests=0,
            seed=SEED,
        ),
        "RnB R=4, naive memory (4x)": SimConfig(
            cluster=ClusterConfig(n_servers=N_SERVERS, replication=4),
            client=ClientConfig(mode="rnb"),
            n_requests=N_REQUESTS,
            warmup_requests=0,
            seed=SEED,
        ),
        "RnB R=4 overbooked into 2.5x memory + hitchhiking": SimConfig(
            cluster=ClusterConfig(
                n_servers=N_SERVERS, replication=4, memory_factor=2.5
            ),
            client=ClientConfig(mode="rnb", hitchhiking=True),
            n_requests=N_REQUESTS,
            warmup_requests=WARMUP,
            seed=SEED,
        ),
    }

    print(f"{'deployment':55s} {'TPR':>6s} {'miss%':>6s} {'req/s':>9s}")
    baseline_tpr = None
    for label, cfg in deployments.items():
        res = run_simulation(graph, cfg)
        throughput = res.throughput(DEFAULT_MEMCACHED_MODEL)
        if baseline_tpr is None:
            baseline_tpr = res.tpr
        print(
            f"{label:55s} {res.tpr:6.2f} {100 * res.miss_rate:6.2f} "
            f"{throughput:9.0f}  ({res.tpr / baseline_tpr:.0%} of baseline TPR)"
        )

    print(
        "\nTakeaway: RnB cuts per-request server work on the SAME hardware;"
        "\nfull-system replication only scales by buying more of everything."
    )


if __name__ == "__main__":
    main()

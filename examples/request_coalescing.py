#!/usr/bin/env python3
"""Cross-request coalescing with the batching proxy (paper §III-E).

A busy front-end serves many users concurrently; moxi-style middleware
holds each user's fetch for a moment and merges temporally-close
requests into one bundled RnB multi-get.  This demo:

1. runs 200 ego-feed requests through the RnB client one at a time;
2. replays the identical requests through :class:`BatchingClient` with
   windows 2 and 8;
3. reports the transaction savings — and verifies every user still got
   exactly their own items.

Run:  python examples/request_coalescing.py
"""

import numpy as np

from repro.core.bundling import Bundler
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.protocol.batching import BatchingClient
from repro.protocol.memclient import MemcachedConnection
from repro.protocol.memserver import MemcachedServer
from repro.protocol.rnbclient import RnBProtocolClient
from repro.protocol.transport import LoopbackTransport
from repro.workloads.requests import EgoRequestGenerator
from repro.workloads.synthetic import make_slashdot_like

N_SERVERS = 8
REPLICATION = 3
N_REQUESTS = 200


def build_client(graph):
    placer = RangedConsistentHashPlacer(N_SERVERS, REPLICATION, vnodes=64)
    servers = {i: MemcachedServer(name=f"m{i}") for i in range(N_SERVERS)}
    conns = {i: MemcachedConnection(LoopbackTransport(servers[i])) for i in range(N_SERVERS)}
    client = RnBProtocolClient(conns, placer, bundler=Bundler(placer))
    for node in range(graph.n_nodes):
        client.set(f"status:{node}", f"status of user {node}".encode())
    return client


def main() -> None:
    graph = make_slashdot_like(seed=11, scale=0.01)
    gen = EgoRequestGenerator(graph, rng=np.random.default_rng(4))
    feeds = [[f"status:{i}" for i in req.items] for req in gen.stream(N_REQUESTS)]
    print(f"workload: {N_REQUESTS} feed requests over {graph.n_nodes} users\n")

    # --- one at a time ---
    client = build_client(graph)
    solo_txns = 0
    for keys in feeds:
        out = client.get_multi(keys)
        assert len(out.values) == len(keys)
        solo_txns += out.transactions
    print(f"unbatched      : {solo_txns} transactions "
          f"({solo_txns / N_REQUESTS:.2f} per request)")

    # --- batched ---
    for window in (2, 8):
        client = build_client(graph)
        proxy = BatchingClient(client, window=window)
        tickets = [(keys, proxy.submit(keys)) for keys in feeds]
        proxy.flush()
        for keys, ticket in tickets:
            assert set(ticket.result()) == set(keys), "every user gets their feed"
        print(
            f"window {window:2d}      : {proxy.transactions} transactions "
            f"({proxy.transactions / N_REQUESTS:.2f} per request, "
            f"saved {1 - proxy.transactions / solo_txns:.0%})"
        )

    print(
        "\nCaveat (paper §III-E): merged covers can dilute per-request "
        "locality under\nmemory pressure — quantified by Figs 9-10 in "
        "the simulator."
    )


if __name__ == "__main__":
    main()

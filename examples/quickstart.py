#!/usr/bin/env python3
"""Quickstart: RnB in 30 lines.

Builds a 16-server simulated cluster with 4-way replication, executes one
multi-item request, and contrasts the transaction count with the classic
no-replication deployment — the paper's headline effect.

Run:  python examples/quickstart.py
"""

from repro import (
    Bundler,
    Cluster,
    RangedConsistentHashPlacer,
    Request,
    RnBClient,
    SingleHashPlacer,
    NoReplicationClient,
    expected_tpr,
)


def main() -> None:
    n_servers, n_items = 16, 100_000
    request = Request(items=tuple(range(1000, 1040)))  # 40 items

    # --- classic memcached: one copy per item, consistent hashing ---
    single = SingleHashPlacer(n_servers)
    classic_cluster = Cluster(single, items=range(n_items), memory_factor=1.0)
    classic = NoReplicationClient(classic_cluster)
    classic_result = classic.execute(request)

    # --- RnB: 4 replicas per item, greedy set-cover bundling ---
    placer = RangedConsistentHashPlacer(n_servers, replication=4)
    rnb_cluster = Cluster(placer, items=range(n_items))  # unlimited memory
    rnb = RnBClient(rnb_cluster, Bundler(placer))
    rnb_result = rnb.execute(request)

    print(f"request size            : {request.size} items")
    print(f"servers                 : {n_servers}")
    print(f"analytic no-repl TPR    : {expected_tpr(n_servers, request.size):.2f}")
    print(f"classic transactions    : {classic_result.transactions}")
    print(f"RnB (R=4) transactions  : {rnb_result.transactions}")
    saving = 1 - rnb_result.transactions / classic_result.transactions
    print(f"server work saved       : {saving:.0%}")

    assert rnb_result.items_fetched == request.size


if __name__ == "__main__":
    main()

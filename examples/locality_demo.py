#!/usr/bin/env python3
"""Fig 7, runnable: request locality makes some replicas permanently cold.

Two similar requests ({1,2,3} and {1,2,4}) both fetch the shared items 1
and 2 from server A, because the greedy set cover breaks ties the same
way every time.  The alternate copies (item 1 on C, item 2 on B) never
see a hit; when other, actually-used replicas (items 7 and 8 here)
compete for the same limited LRU space, the cold copies lose it — that
is why a cluster can declare R logical replicas while physically holding
far fewer ("overbooking with a distinguished copy", paper III-C1).

Run:  python examples/locality_demo.py
"""

from repro.cluster.cluster import Cluster
from repro.core.bundling import Bundler
from repro.core.client import RnBClient
from repro.experiments.fig07 import FixedPlacer, SERVER_NAMES
from repro.types import Request

# item -> ordered replica servers (0=A, 1=B, 2=C); first = distinguished
PLACEMENT = {
    1: (0, 2),  # A (always used), C (cold alternate)
    2: (0, 1),  # A (always used), B (cold alternate)
    3: (1,),  # B
    4: (2,),  # C
    7: (2, 1),  # C, with a replica on B that real traffic uses
    8: (1, 2),  # B, with a replica on C that real traffic uses
}

REQUESTS = [
    Request(items=(1, 2, 3)),  # the paper's request I
    Request(items=(1, 2, 4)),  # the paper's request II
    Request(items=(3, 7)),  # keeps item 7's replica on B warm
    Request(items=(4, 8)),  # keeps item 8's replica on C warm
]


def main() -> None:
    placer = FixedPlacer(PLACEMENT, n_servers=3)
    # memory 1.5x: each server gets ONE replica slot beyond its pinned copies
    cluster = Cluster(placer, items=sorted(PLACEMENT), memory_factor=1.5)
    client = RnBClient(cluster, Bundler(placer, single_item_rule=False))

    print("placement (first server = distinguished copy):")
    for item, servers in PLACEMENT.items():
        print(f"  item {item}: " + ", ".join(SERVER_NAMES[s] for s in servers))

    print("\nreplaying the four requests 50 times each ...")
    for _ in range(50):
        for req in REQUESTS:
            res = client.execute(req)
            assert res.items_fetched == req.size

    print("\nfinal state:")
    for sid, server in enumerate(cluster):
        pinned = sorted(i for i in PLACEMENT if server.store.is_pinned(i))
        replicas = sorted(server.store.replica_keys())
        print(
            f"  server {SERVER_NAMES[sid]}: pinned {pinned}, warm replicas "
            f"{replicas}, {server.counters.transactions} transactions served"
        )

    b_replicas = set(cluster.server(1).store.replica_keys())
    c_replicas = set(cluster.server(2).store.replica_keys())
    assert 2 not in b_replicas and 7 in b_replicas
    assert 1 not in c_replicas and 8 in c_replicas
    print(
        "\nitems 1 and 2 were always fetched from A, so their alternate "
        "copies on C and B\nstayed cold and lost their LRU slots to the "
        "actually-used replicas of items 7 and 8."
    )


if __name__ == "__main__":
    main()

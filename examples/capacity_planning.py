#!/usr/bin/env python3
"""Capacity planning with the calibration pipeline.

The paper's appendix calibrates its simulator from memaslap
micro-benchmarks so simulated transaction histograms translate into real
requests/second.  This example runs the whole pipeline:

1. micro-benchmark the in-process memcached server (items/s vs
   transaction size);
2. fit the affine cost model ``t(m) = t_txn + t_item*m`` (+ optional
   bandwidth cap);
3. simulate a candidate deployment on the social workload;
4. convert the simulated transaction histogram into a throughput
   estimate, and answer a planning question: how many replicas does it
   take to serve a target load on a fixed fleet?

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro import (
    DEFAULT_MEMCACHED_MODEL,
    ClientConfig,
    ClusterConfig,
    SimConfig,
    fit_cost_model,
)
from repro.protocol.microbench import measure_items_per_second
from repro.sim.engine import run_simulation
from repro.workloads.synthetic import make_slashdot_like

N_SERVERS = 16
TARGET_RPS_FACTOR = 1.4  # we must serve 1.4x what the classic setup can


def main() -> None:
    # --- step 1+2: calibrate ---
    print("calibrating against the in-process server ...")
    points = measure_items_per_second([1, 2, 5, 10, 20, 50], target_transactions=800)
    fitted = fit_cost_model(
        [p.txn_size for p in points], [p.items_per_s for p in points]
    )
    print(
        f"  fitted (this machine): t_txn={fitted.t_txn * 1e6:.1f}us, "
        f"t_item={fitted.t_item * 1e6:.2f}us/item, cap={fitted.bandwidth_items_per_s}"
    )
    # A pure-Python server pays far more per item than real memcached does;
    # plan against the paper-shaped model (memaslap on a Core i7 + 1GbE),
    # where per-transaction cost dominates — the regime RnB targets.
    model = DEFAULT_MEMCACHED_MODEL
    print(
        f"  planning model (paper-shaped): t_txn={model.t_txn * 1e6:.1f}us, "
        f"t_item={model.t_item * 1e6:.2f}us/item, cap={model.bandwidth_items_per_s:.0f}\n"
    )

    # --- step 3: simulate candidate deployments ---
    graph = make_slashdot_like(seed=1, scale=0.1)
    print(f"workload: {graph}")

    def throughput(replication: int) -> float:
        if replication == 1:
            cfg = SimConfig(
                cluster=ClusterConfig(
                    n_servers=N_SERVERS, replication=1, memory_factor=1.0
                ),
                client=ClientConfig(mode="noreplication"),
                n_requests=800,
                warmup_requests=0,
                seed=1,
            )
        else:
            cfg = SimConfig(
                cluster=ClusterConfig(n_servers=N_SERVERS, replication=replication),
                client=ClientConfig(mode="rnb"),
                n_requests=800,
                warmup_requests=0,
                seed=1,
            )
        return run_simulation(graph, cfg).throughput(model)

    # --- step 4: find the cheapest replication meeting the target ---
    base = throughput(1)
    target = TARGET_RPS_FACTOR * base
    print(f"classic deployment capacity : {base:8.0f} req/s")
    print(f"target capacity             : {target:8.0f} req/s (x{TARGET_RPS_FACTOR})\n")

    # instant first guess from the semi-analytic greedy model (no
    # simulation): which R cuts TPR by the required factor?
    from repro.analysis.rnb_model import predicted_tpr, required_replication
    from repro.analysis.urn import expected_tpr

    mean_m = round(
        float(np.mean([graph.out_degree(int(n)) for n in graph.nonisolated_nodes()]))
    )
    base_tpr = expected_tpr(N_SERVERS, mean_m)
    guess = required_replication(
        N_SERVERS, mean_m, target_tpr=base_tpr / TARGET_RPS_FACTOR
    )
    print(
        f"analytic first guess (mean request size {mean_m}): R={guess} "
        f"(model TPR {predicted_tpr(N_SERVERS, mean_m, guess or 1):.2f} vs "
        f"baseline {base_tpr:.2f})\n"
    )

    print(f"{'replicas':>8s} {'memory':>7s} {'req/s':>9s} {'meets target?':>14s}")
    for r in (2, 3, 4, 5):
        cap = throughput(r)
        print(f"{r:8d} {r:6d}x {cap:9.0f} {'YES' if cap >= target else 'no':>14s}")
        if cap >= target:
            print(
                f"\n=> add {r - 1}x extra RAM (no new servers) to reach the target; "
                "full-system replication would need "
                f"{TARGET_RPS_FACTOR:.1f}x more servers instead."
            )
            break
    else:
        print("\n=> target not reachable by replication alone on this fleet")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""LIMIT-style queries: "fetch me at least X items out of this list".

Social feeds rarely need *every* candidate item — showing 90% of a user's
friends' statuses is indistinguishable from 100% (paper section III-F).
RnB exploits that freedom twice: the greedy cover skips the servers that
would each contribute only an item or two, and replication multiplies
the skipping opportunities.

This example sweeps fetch fractions and replication levels with the
simplified Monte-Carlo simulator, then demonstrates the same behaviour
end-to-end on the live protocol stack.

Run:  python examples/limit_queries.py
"""

from repro import mc_tpr
from repro.core.bundling import Bundler
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.protocol.memclient import MemcachedConnection
from repro.protocol.memserver import MemcachedServer
from repro.protocol.rnbclient import RnBProtocolClient
from repro.protocol.transport import LoopbackTransport

N_SERVERS = 32
REQUEST_SIZE = 100


def monte_carlo_sweep() -> None:
    print(f"Monte-Carlo: {REQUEST_SIZE}-item requests on {N_SERVERS} servers")
    print(f"{'fetch':>6s} " + " ".join(f"R={r:<5d}" for r in (1, 2, 3, 5)))
    for fraction in (1.0, 0.95, 0.9, 0.5):
        row = []
        for r in (1, 2, 3, 5):
            res = mc_tpr(
                N_SERVERS,
                REQUEST_SIZE,
                r,
                limit_fraction=fraction,
                n_trials=300,
                seed=42,
            )
            row.append(f"{res.mean_tpr:7.2f}")
        print(f"{fraction:6.0%} " + "".join(row))
    print()


def live_demo() -> None:
    placer = RangedConsistentHashPlacer(8, 3)
    servers = {i: MemcachedServer() for i in range(8)}
    conns = {i: MemcachedConnection(LoopbackTransport(servers[i])) for i in range(8)}
    client = RnBProtocolClient(conns, placer, bundler=Bundler(placer))

    keys = [f"story:{i}" for i in range(60)]
    for k in keys:
        client.set(k, f"payload-of-{k}".encode())

    full = client.get_multi(keys)
    ninety = client.get_multi(keys, limit_fraction=0.9)
    half = client.get_multi(keys, limit_fraction=0.5)

    print("live protocol stack, 60 keys on 8 servers (R=3):")
    print(f"  fetch 100%: {len(full.values):3d} values in {full.transactions} transactions")
    print(f"  fetch  90%: {len(ninety.values):3d} values in {ninety.transactions} transactions")
    print(f"  fetch  50%: {len(half.values):3d} values in {half.transactions} transactions")


if __name__ == "__main__":
    monte_carlo_sweep()
    live_demo()

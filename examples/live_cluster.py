#!/usr/bin/env python3
"""A live RnB cluster over real TCP sockets.

Starts four memcached-protocol servers on localhost, connects an RnB
client through real sockets, and demonstrates the full proof-of-concept
from paper section IV:

* replicated writes via Ranged Consistent Hashing;
* bundled multi-gets (watch the per-server transaction counters);
* miss repair from the distinguished copy after a replica is evicted;
* the atomic-update scheme (strip replicas, CAS the distinguished copy);
* **self-healing**: one server is killed for real, the client's dead
  verdict commits a topology epoch, and re-replication repair restores
  full R on the survivors (docs/RECOVERY.md).

Run:  python examples/live_cluster.py
"""

from repro.core.bundling import Bundler
from repro.faults.health import HealthTracker
from repro.membership import (
    EpochedPlacer,
    MembershipService,
    RepairExecutor,
    protocol_repair_fns,
)
from repro.protocol.consistency import atomic_update
from repro.protocol.memclient import MemcachedConnection
from repro.protocol.memserver import MemcachedServer, serve_tcp
from repro.protocol.rnbclient import RnBProtocolClient
from repro.protocol.retry import RetryPolicy
from repro.protocol.transport import TCPTransport

N_SERVERS = 4
REPLICATION = 3

# one config object carries every network knob end-to-end: socket
# timeouts, bounded retries, and the backoff schedule between them
POLICY = RetryPolicy(
    connect_timeout=2.0,
    request_timeout=1.0,
    max_retries=2,
    backoff_base=0.02,
    backoff_max=0.2,
)


def main() -> None:
    backends, tcp_servers, conns = {}, [], {}
    try:
        for sid in range(N_SERVERS):
            backend = MemcachedServer(name=f"mem{sid}")
            server, (host, port) = serve_tcp(backend)
            backends[sid] = backend
            tcp_servers.append(server)
            conns[sid] = MemcachedConnection(
                TCPTransport(host, port, policy=POLICY), policy=POLICY
            )
            print(f"server {sid} listening on {host}:{port}")

        placer = EpochedPlacer("rch", N_SERVERS, REPLICATION)
        keys = [f"user:{i}:status" for i in range(40)]
        copy_fn, drop_fn = protocol_repair_fns(conns)
        membership = MembershipService(
            placer, keys, executor=RepairExecutor(copy_fn, drop_fn)
        )
        health = HealthTracker(N_SERVERS, dead_after=2)
        client = RnBProtocolClient(
            conns,
            placer,
            bundler=Bundler(placer),
            retry_policy=POLICY,
            health=health,
            membership=membership,
        )

        # --- replicated writes ---
        for i, key in enumerate(keys):
            client.set(key, f"status update #{i}".encode())
        print(f"\nwrote {len(keys)} keys, {REPLICATION} replicas each")
        for sid, backend in backends.items():
            print(f"  server {sid}: {backend.curr_items} items resident")

        # --- bundled read ---
        out = client.get_multi(keys)
        print(
            f"\nmulti-get of {len(keys)} keys: {out.transactions} transactions "
            f"(classic hashing would need ~{N_SERVERS})"
        )
        assert not out.missing

        # --- miss repair ---
        victim = keys[0]
        for sid in placer.servers_for(victim)[1:]:
            conns[sid].delete(victim)
        out = client.get_multi(keys)
        print(
            f"after evicting {victim!r} replicas: repaired "
            f"{out.misses_repaired} miss via {out.second_round_transactions} "
            "second-round transaction(s); nothing lost"
        )
        assert not out.missing

        # --- atomic update ---
        atomic_update(
            client, victim, lambda old: (old or b"") + b" (edited)", repopulate=True
        )
        print(f"atomic update: {victim!r} -> {client.get(victim)!r}")

        # --- self-healing: kill a server for real ---
        dead_sid = 3
        tcp_servers[dead_sid].shutdown()
        tcp_servers[dead_sid].server_close()
        conns[dead_sid].transport.close()
        print(f"\nkilled server {dead_sid} (socket closed)")
        on_dead = [k for k in keys if dead_sid in placer.servers_for(k)]
        while True:  # reads keep completing while the verdict forms
            out = client.get_multi(on_dead)
            assert not out.missing, "surviving replicas cover every read"
            if out.membership_commits:
                break
        event = membership.events[-1]
        membership.tick()  # unthrottled: drain the repair queue
        out = client.get_multi(keys)
        assert not out.missing
        print(
            f"epoch {placer.epoch}: removed server {dead_sid}, repaired "
            f"{event.repair_items} replicas onto the survivors; all "
            f"{len(keys)} keys at full R={REPLICATION} again"
        )

    finally:
        for server in tcp_servers:
            server.shutdown()
            server.server_close()
        for conn in conns.values():
            conn.transport.close()
        print("\ncluster shut down cleanly")


if __name__ == "__main__":
    main()

"""LRU caches with two service classes.

Memcached servers keep "a local LRU list of the items stored on the
server, and drop unused items when running out of space" (paper section
III-C1).  RnB needs the LRU to treat *distinguished copies* differently
from ordinary replicas so that every item keeps at least one
memory-resident copy.  The paper lists "several approaches for handling
two service classes in LRU based caching systems" as a contribution; this
module implements three:

* :class:`PinnedLRU` — class-A entries are pinned (never evicted); the
  remaining capacity is a plain LRU over class-B entries.  This is the
  policy the paper's evaluation uses ("ensuring that the distinguished
  copies of the items will never suffer a miss", section III-D).
* :class:`PartitionedLRU` — each class gets its own fixed capacity and its
  own LRU list; classes never steal from each other.
* :class:`PriorityLRU` — one shared capacity; eviction removes the least
  recently used class-B entry first and only touches class-A entries once
  no class-B entry remains.

All caches count capacity in *item units* (the paper assumes equally
sized items, section III-B).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterable

from repro.errors import CapacityError

CLASS_REPLICA = 0
CLASS_DISTINGUISHED = 1


class LRUCache:
    """A plain single-class LRU cache of keys (no values — presence only).

    ``capacity=None`` means unlimited (used for the naive, memory-rich
    experiments of Fig 6).
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 0:
            raise CapacityError("capacity must be non-negative")
        self.capacity = capacity
        self._entries: OrderedDict[Hashable, None] = OrderedDict()
        self.evictions = 0

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def touch(self, key: Hashable) -> bool:
        """Mark ``key`` most-recently-used; returns False if absent."""
        if key not in self._entries:
            return False
        self._entries.move_to_end(key)
        return True

    def put(self, key: Hashable) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry if full."""
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        if self.capacity is not None:
            if self.capacity == 0:
                self.evictions += 1  # immediately dropped
                return
            while len(self._entries) >= self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        self._entries[key] = None

    def put_all(self, keys: Iterable[Hashable]) -> None:
        """Insert many keys; equivalent to ``put`` per key, in order.

        With unlimited capacity and *fresh* keys the per-key path reduces
        to appending each key, so a single bulk dict update — which
        preserves iteration order for new keys — produces the identical
        LRU state without a Python-level loop.  Any key already present,
        or any capacity bound, falls back to the per-key path (``update``
        would skip the move-to-end refresh an existing key gets).
        """
        if self.capacity is None:
            fresh = dict.fromkeys(keys)
            if not self._entries or not any(k in self._entries for k in fresh):
                self._entries.update(fresh)
                return
            keys = fresh
        for key in keys:
            self.put(key)

    def discard(self, key: Hashable) -> bool:
        if key in self._entries:
            del self._entries[key]
            return True
        return False

    def keys(self) -> list:
        """Keys from least to most recently used."""
        return list(self._entries)


class PinnedLRU:
    """Two-class store: pinned class-A entries plus an LRU of class-B.

    ``replica_capacity`` bounds only the class-B (replica) entries; pinned
    entries are accounted separately because the paper reserves "for the
    distinguished copies the same amount of memory that the original
    system had" (section III-D).
    """

    def __init__(self, replica_capacity: int | None = None) -> None:
        self._pinned: set[Hashable] = set()
        self._lru = LRUCache(replica_capacity)

    @property
    def replica_capacity(self) -> int | None:
        return self._lru.capacity

    @property
    def evictions(self) -> int:
        return self._lru.evictions

    def pin(self, key: Hashable) -> None:
        """Insert ``key`` as a pinned (distinguished) entry."""
        self._pinned.add(key)
        self._lru.discard(key)

    def pin_all(self, keys: Iterable[Hashable]) -> None:
        if not len(self._lru):
            # nothing to displace: pinning is a plain set update
            self._pinned.update(keys)
            return
        for k in keys:
            self.pin(k)

    def is_pinned(self, key: Hashable) -> bool:
        return key in self._pinned

    def __contains__(self, key: Hashable) -> bool:
        return key in self._pinned or key in self._lru

    def __len__(self) -> int:
        return len(self._pinned) + len(self._lru)

    @property
    def n_pinned(self) -> int:
        return len(self._pinned)

    @property
    def n_replicas(self) -> int:
        return len(self._lru)

    def touch(self, key: Hashable) -> bool:
        """Record an access; returns True iff the key was present."""
        if key in self._pinned:
            return True
        return self._lru.touch(key)

    def put(self, key: Hashable) -> None:
        """Insert a replica copy (no-op if the key is pinned here)."""
        if key in self._pinned:
            return
        self._lru.put(key)

    def put_all(self, keys: Iterable[Hashable]) -> None:
        """Bulk :meth:`put`; order-equivalent to putting one at a time."""
        pinned = self._pinned
        if pinned:
            keys = [k for k in keys if k not in pinned]
        self._lru.put_all(keys)

    def discard(self, key: Hashable) -> bool:
        """Remove a replica copy; pinned entries cannot be discarded."""
        return self._lru.discard(key)

    def unpin(self, key: Hashable) -> bool:
        if key in self._pinned:
            self._pinned.remove(key)
            return True
        return False

    def replica_keys(self) -> list:
        return self._lru.keys()

    def pinned_keys(self) -> list:
        """Pinned (distinguished) entries, deterministically ordered."""
        return sorted(self._pinned, key=repr)

    def wipe(self) -> None:
        """Drop every entry, pinned or not, keeping the capacity.

        Models a server restart after a crash: the memory is gone but the
        provisioned budget is unchanged (re-replication must repopulate).
        """
        self._pinned.clear()
        self._lru = LRUCache(self._lru.capacity)


class PriorityClassStore:
    """A :class:`PinnedLRU`-compatible store backed by :class:`PriorityLRU`.

    Instead of reserving dedicated space for distinguished copies (the
    pinned policy), this store shares ONE capacity between both classes:
    replicas may use any space distinguished copies do not currently
    need, but are always evicted first, so a distinguished copy is never
    displaced by a replica.  This is the "shared budget" alternative in
    the two-service-class design space; the ``lru_policy`` ablation
    compares it against the pinned reserve.

    ``capacity`` is the server's TOTAL item budget (pinned + replicas),
    unlike ``PinnedLRU.replica_capacity`` which counts replicas only.
    """

    def __init__(self, capacity: int | None = None) -> None:
        self._lru = PriorityLRU(capacity)
        self._distinguished: set[Hashable] = set()

    @property
    def replica_capacity(self) -> int | None:
        if self._lru.capacity is None:
            return None
        return max(0, self._lru.capacity - len(self._distinguished))

    @property
    def evictions(self) -> int:
        return self._lru.evictions

    def pin(self, key: Hashable) -> None:
        self._distinguished.add(key)
        self._lru.put(key, CLASS_DISTINGUISHED)
        if key not in self._lru:  # pragma: no cover - capacity misconfig guard
            raise CapacityError(
                "priority store capacity too small for distinguished copies"
            )

    def pin_all(self, keys: Iterable[Hashable]) -> None:
        for k in keys:
            self.pin(k)

    def is_pinned(self, key: Hashable) -> bool:
        return key in self._distinguished

    def __contains__(self, key: Hashable) -> bool:
        return key in self._lru

    def __len__(self) -> int:
        return len(self._lru)

    @property
    def n_pinned(self) -> int:
        return len(self._distinguished)

    @property
    def n_replicas(self) -> int:
        return len(self._lru) - len(self._distinguished)

    def touch(self, key: Hashable) -> bool:
        return self._lru.touch(key)

    def put(self, key: Hashable) -> None:
        if key in self._distinguished:
            self._lru.touch(key)
            return
        self._lru.put(key, CLASS_REPLICA)

    def put_all(self, keys: Iterable[Hashable]) -> None:
        """Bulk :meth:`put`; order-equivalent to putting one at a time."""
        for key in keys:
            self.put(key)

    def discard(self, key: Hashable) -> bool:
        if key in self._distinguished:
            return False
        return self._lru.discard(key)

    def unpin(self, key: Hashable) -> bool:
        if key not in self._distinguished:
            return False
        self._distinguished.remove(key)
        self._lru.discard(key)
        return True

    def replica_keys(self) -> list:
        return [k for k in self._lru._b.keys()]

    def pinned_keys(self) -> list:
        """Distinguished entries, deterministically ordered."""
        return sorted(self._distinguished, key=repr)

    def wipe(self) -> None:
        """Drop every entry, keeping the capacity (server restart)."""
        self._distinguished.clear()
        self._lru = PriorityLRU(self._lru.capacity)


class PartitionedLRU:
    """Two independent LRU lists with fixed per-class capacities."""

    def __init__(self, capacity_a: int | None, capacity_b: int | None) -> None:
        self._a = LRUCache(capacity_a)
        self._b = LRUCache(capacity_b)

    def _seg(self, klass: int) -> LRUCache:
        return self._a if klass == CLASS_DISTINGUISHED else self._b

    def __contains__(self, key: Hashable) -> bool:
        return key in self._a or key in self._b

    def __len__(self) -> int:
        return len(self._a) + len(self._b)

    @property
    def evictions(self) -> int:
        return self._a.evictions + self._b.evictions

    def touch(self, key: Hashable) -> bool:
        return self._a.touch(key) or self._b.touch(key)

    def put(self, key: Hashable, klass: int = CLASS_REPLICA) -> None:
        # an entry lives in exactly one segment: re-inserting under a new
        # class migrates it
        other = self._b if klass == CLASS_DISTINGUISHED else self._a
        other.discard(key)
        self._seg(klass).put(key)

    def discard(self, key: Hashable) -> bool:
        return self._a.discard(key) or self._b.discard(key)


class PriorityLRU:
    """One shared capacity; class-B entries are always evicted first.

    Within a class, eviction order is least-recently-used.  Inserting into
    a cache whose capacity is exhausted by class-A entries silently drops
    class-B inserts and evicts the LRU class-A entry for class-A inserts.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 0:
            raise CapacityError("capacity must be non-negative")
        self.capacity = capacity
        self._a = LRUCache(None)
        self._b = LRUCache(None)
        self.evictions = 0

    def __contains__(self, key: Hashable) -> bool:
        return key in self._a or key in self._b

    def __len__(self) -> int:
        return len(self._a) + len(self._b)

    def touch(self, key: Hashable) -> bool:
        return self._a.touch(key) or self._b.touch(key)

    def _evict_one(self) -> bool:
        victim_seg = self._b if len(self._b) else self._a
        keys = victim_seg.keys()
        if not keys:
            return False
        victim_seg.discard(keys[0])
        self.evictions += 1
        return True

    def put(self, key: Hashable, klass: int = CLASS_REPLICA) -> None:
        seg = self._a if klass == CLASS_DISTINGUISHED else self._b
        other = self._b if klass == CLASS_DISTINGUISHED else self._a
        other.discard(key)
        if key in seg:
            seg.touch(key)
            return
        if self.capacity is not None:
            if self.capacity == 0:
                self.evictions += 1
                return
            while len(self) >= self.capacity:
                # never evict class A to admit class B
                if klass == CLASS_REPLICA and len(self._b) == 0:
                    self.evictions += 1
                    return
                if not self._evict_one():
                    return
        seg.put(key)

    def discard(self, key: Hashable) -> bool:
        return self._a.discard(key) or self._b.discard(key)

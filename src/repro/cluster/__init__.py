"""Simulated memcached fleet: LRU stores, servers, placement, cluster.

The cluster model captures exactly what the paper's simulator needed
(section III-B): per-server transaction counts, per-transaction item
counts, and — for the limited-memory experiments (section III-D) — LRU
eviction with pinned *distinguished copies*.
"""

from repro.cluster.cluster import Cluster
from repro.cluster.lru import (
    LRUCache,
    PartitionedLRU,
    PinnedLRU,
    PriorityClassStore,
    PriorityLRU,
)
from repro.cluster.placement import (
    FullReplicationPlacer,
    ReplicaPlacer,
    SingleHashPlacer,
    make_placer,
)
from repro.cluster.server import Server

__all__ = [
    "Cluster",
    "FullReplicationPlacer",
    "LRUCache",
    "PartitionedLRU",
    "PinnedLRU",
    "PriorityClassStore",
    "PriorityLRU",
    "ReplicaPlacer",
    "Server",
    "SingleHashPlacer",
    "make_placer",
]

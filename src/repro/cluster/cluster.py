"""The server fleet: placement + memory budgeting + provisioning.

A :class:`Cluster` ties together a replica placer and N servers, and
implements the paper's memory accounting (section III-D):

* the *distinguished copy* of every item is pinned on its home server,
  consuming exactly the memory a no-replication deployment would use;
* the *additional* memory — ``(memory_factor - 1) x n_items`` item units,
  split evenly across servers — backs each server's replica LRU;
* ``memory_factor=None`` models unlimited memory (naive allocation,
  Fig 6), where every logical replica is physically resident.

``memory_factor`` is the paper's Fig 8 x-axis: 1.0 is "exactly enough
memory to store one copy of the data".
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

import numpy as np

from repro.cluster.lru import PinnedLRU, PriorityClassStore
from repro.cluster.placement import ReplicaPlacer
from repro.cluster.server import Server
from repro.errors import CapacityError, ConfigurationError
from repro.types import ItemId


class Cluster:
    """A fleet of simulated memcached servers behind one placer."""

    def __init__(
        self,
        placer: ReplicaPlacer,
        items: Iterable[ItemId],
        *,
        memory_factor: float | None = None,
        lru_policy: str = "pinned",
    ) -> None:
        self.placer = placer
        self.items: tuple[ItemId, ...] = tuple(items)
        if not self.items:
            raise ConfigurationError("a cluster must store at least one item")
        if memory_factor is not None and memory_factor < 1.0:
            raise CapacityError(
                "memory_factor below 1.0 cannot hold the distinguished copies "
                f"(got {memory_factor})"
            )
        if lru_policy not in ("pinned", "priority"):
            raise ConfigurationError(
                f"lru_policy must be 'pinned' or 'priority'; got {lru_policy!r}"
            )
        self.memory_factor = memory_factor
        self.lru_policy = lru_policy
        self.n_servers = placer.n_servers

        # When the placer is a compiled table covering exactly our items,
        # grouping by home server is an argsort instead of a per-item loop
        # (order-equivalent: stable sort keeps items ascending per group,
        # exactly as appending while iterating items in order does).
        table = getattr(placer, "table", None)
        if table is not None and self.items == tuple(range(table.shape[0])):
            grouped = self._group_by_server(np.arange(len(self.items)), table[:, 0])
            homes: dict[int, list[ItemId]] = {
                sid: items.tolist() for sid, items in grouped
            }
        else:
            table = None
            homes = defaultdict(list)
            for item in self.items:
                homes[placer.distinguished_for(item)].append(item)

        self.servers: list[Server] = []
        for sid in range(self.n_servers):
            if memory_factor is None:
                store = PinnedLRU(None) if lru_policy == "pinned" else PriorityClassStore(None)
            elif lru_policy == "pinned":
                # fixed reserve: distinguished copies outside the LRU, the
                # extra memory split evenly as replica space (paper III-D)
                extra_total = (memory_factor - 1.0) * len(self.items)
                store = PinnedLRU(int(round(extra_total / self.n_servers)))
            else:
                # shared budget: one capacity for both classes; replicas
                # always evicted first.  Clamped so every server can hold
                # its distinguished copies even under placement imbalance.
                budget = int(round(memory_factor * len(self.items) / self.n_servers))
                store = PriorityClassStore(max(budget, len(homes.get(sid, ()))))
            self.servers.append(Server(sid, store=store))

        for sid, pinned in homes.items():
            self.servers[sid].pin_distinguished(pinned)

        # Initial data load: a write in RnB goes to every logical replica
        # (section III-G), so all replicas are inserted at load time; with
        # limited memory the per-server LRUs immediately trim the overflow,
        # and the warmup phase then re-orders survivors by actual use.
        # With memory_factor=None (naive allocation) everything stays
        # resident, giving exactly Fig 6's setting.
        if table is not None:
            # Each server receives its replica items in ascending item
            # order either way (an item never maps twice to one server),
            # so bulk insertion reproduces the per-item load exactly.
            replicas = table[:, 1:]
            if replicas.size:
                flat_item = np.repeat(
                    np.arange(len(self.items)), replicas.shape[1]
                )
                for sid, items in self._group_by_server(flat_item, replicas.ravel()):
                    self.servers[sid].store.put_all(items.tolist())
        else:
            for item in self.items:
                for sid in placer.servers_for(item)[1:]:
                    self.servers[sid].store.put(item)

        #: optional fault-injection gate (see repro.faults.injector); when
        #: attached, server accesses may raise ServerDown / ServerTimeout
        self.injector = None

    @staticmethod
    def _group_by_server(items: np.ndarray, sids: np.ndarray):
        """Group ``items`` by server id, items ascending within each group."""
        order = np.lexsort((items, sids))
        sids_sorted = sids[order]
        items_sorted = items[order]
        boundaries = np.flatnonzero(np.diff(sids_sorted)) + 1
        starts = np.concatenate(([0], boundaries))
        return zip(
            sids_sorted[starts].tolist(), np.split(items_sorted, boundaries)
        )

    # -- access -----------------------------------------------------------

    def server(self, sid: int) -> Server:
        """The server behind ``sid`` — the *faultable* access path.

        With an injector attached this raises
        :class:`repro.errors.ServerDown` for crash-stopped servers and
        :class:`repro.errors.ServerTimeout` for transiently failing
        attempts; callers that need raw access (provisioning, metrics)
        should index ``cluster.servers`` directly.
        """
        if self.injector is not None:
            self.injector.check(sid)
        return self.servers[sid]

    def attach_injector(self, injector) -> "Cluster":
        """Gate ``server()`` accesses through a fault injector.

        Also stamps per-server latency multipliers for slow servers.
        Pass ``None`` to detach.  Returns the cluster for chaining.
        """
        self.injector = injector
        if injector is not None:
            injector.apply_latency(self)
        else:
            for server in self.servers:
                server.latency_multiplier = 1.0
        return self

    def add_server(self, sid: int) -> Server:
        """Provision empty server slots up through id ``sid`` (elastic join).

        New servers start with nothing resident; membership repair (or
        foreground misses) populates them.  Under limited memory each
        new server gets the same replica budget existing ones got —
        joining grows the fleet's total memory, as in the paper's
        provisioning model.
        """
        while len(self.servers) <= sid:
            new_id = len(self.servers)
            if self.memory_factor is None:
                store = (
                    PinnedLRU(None)
                    if self.lru_policy == "pinned"
                    else PriorityClassStore(None)
                )
            elif self.lru_policy == "pinned":
                extra_total = (self.memory_factor - 1.0) * len(self.items)
                store = PinnedLRU(int(round(extra_total / self.n_servers)))
            else:
                budget = int(
                    round(self.memory_factor * len(self.items) / self.n_servers)
                )
                store = PriorityClassStore(max(budget, 1))
            self.servers.append(Server(new_id, store=store))
        self.n_servers = len(self.servers)
        return self.servers[sid]

    def wipe_server(self, sid: int) -> None:
        """Simulate a crash losing server ``sid``'s memory (not its budget).

        The fleet keeps serving; re-replication (``repro.membership``)
        is responsible for restoring the lost copies elsewhere.
        """
        self.servers[sid].wipe()

    def __len__(self) -> int:
        return self.n_servers

    def __iter__(self):
        return iter(self.servers)

    # -- memory introspection ----------------------------------------------

    @property
    def replica_capacity_per_server(self) -> int | None:
        return self.servers[0].store.replica_capacity

    def total_resident_items(self) -> int:
        """Physically resident copies across the fleet (pinned + replicas)."""
        return sum(s.resident_items for s in self.servers)

    def effective_memory_factor(self) -> float:
        """Resident copies relative to one full copy of the data.

        For limited-memory runs this converges to ``memory_factor`` once
        the LRUs fill; for unlimited memory it equals the replication
        level.
        """
        return self.total_resident_items() / len(self.items)

    # -- counters -----------------------------------------------------------

    def reset_counters(self) -> None:
        """Clear per-server work counters (used between warmup and measure)."""
        for s in self.servers:
            s.reset_counters()

    def total_transactions(self) -> int:
        return sum(s.counters.transactions for s in self.servers)

    def per_server_transactions(self) -> list[int]:
        return [s.counters.transactions for s in self.servers]

    def txn_size_histogram(self):
        """Fleet-wide histogram of items per transaction."""
        from repro.utils.histogram import Histogram

        h = Histogram()
        for s in self.servers:
            h.merge(s.counters.txn_sizes)
        return h

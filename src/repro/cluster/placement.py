"""Replica-placement policies and the ``ReplicaPlacer`` protocol.

A placer is any object mapping an item to an ordered tuple of distinct
server ids (index 0 = distinguished copy).  The library ships four:

* :class:`repro.hashing.rch.RangedConsistentHashPlacer` — the paper's
  recommended scheme (section IV).
* :class:`repro.hashing.multihash.MultiHashPlacer` — one independent hash
  function per replica (section III-B simulations).
* :class:`SingleHashPlacer` — plain consistent hashing, the no-replication
  baseline (industry solution 1 in section II-C).
* :class:`FullReplicationPlacer` — full-system replication in *banks*
  (industry solution 3 in section II-C, the paper's baseline): the fleet
  is split into ``banks`` groups, each holding a complete copy of the
  data, and a client directs any given request to one bank.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.errors import ConfigurationError
from repro.hashing.hashfns import hash64_int, stable_hash64
from repro.hashing.multihash import MultiHashPlacer
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.types import ReplicaSet


@runtime_checkable
class ReplicaPlacer(Protocol):
    """Structural protocol all placement policies satisfy."""

    n_servers: int
    replication: int

    def replicas_for(self, item) -> ReplicaSet: ...

    def servers_for(self, item) -> tuple: ...

    def distinguished_for(self, item) -> int: ...


class SingleHashPlacer:
    """Classic one-copy consistent hashing (the no-replication baseline).

    Thin wrapper over :class:`RangedConsistentHashPlacer` with R=1 so the
    distinguished copy of every item coincides with the location a plain
    memcached deployment would use.
    """

    def __init__(self, n_servers: int, *, vnodes: int = 128, seed: int = 0) -> None:
        self._inner = RangedConsistentHashPlacer(
            n_servers, 1, vnodes=vnodes, seed=seed
        )
        self.n_servers = n_servers
        self.replication = 1

    def replicas_for(self, item) -> ReplicaSet:
        return self._inner.replicas_for(item)

    def servers_for(self, item) -> tuple:
        return self._inner.servers_for(item)

    def distinguished_for(self, item) -> int:
        return self._inner.distinguished_for(item)


class FullReplicationPlacer:
    """Full-system replication: ``banks`` complete copies of the dataset.

    The ``n_servers`` fleet is split into ``banks`` equal groups; within a
    bank an item is placed by consistent hashing over the bank's servers.
    Replica ``j`` of an item lives in bank ``j`` at the *same relative
    position*, mirroring Facebook's reported deployment where whole
    memcached pools are cloned (paper ref [2]).

    The paper's point — "one gets exactly what one pays for: k replicas of
    the system yield a k-fold increase in the throughput, but no more" —
    falls out of this placer combined with
    :class:`repro.core.baselines.FullReplicationClient`.
    """

    def __init__(
        self, n_servers: int, banks: int, *, vnodes: int = 128, seed: int = 0
    ) -> None:
        if banks <= 0:
            raise ConfigurationError("banks must be positive")
        if n_servers % banks != 0:
            raise ConfigurationError(
                f"n_servers ({n_servers}) must be divisible by banks ({banks})"
            )
        self.n_servers = n_servers
        self.banks = banks
        self.bank_size = n_servers // banks
        self.replication = banks
        self._inner = RangedConsistentHashPlacer(
            self.bank_size, 1, vnodes=vnodes, seed=seed
        )
        # Plain dict memo (see RangedConsistentHashPlacer for why not an
        # instance-bound lru_cache).
        self._cache: dict = {}
        self._cache_size = 1 << 20

    def _compute(self, item) -> tuple:
        pos = self._inner.distinguished_for(item)
        return tuple(pos + b * self.bank_size for b in range(self.banks))

    def replicas_for(self, item) -> ReplicaSet:
        return ReplicaSet(item=item, servers=self.servers_for(item))

    def servers_for(self, item) -> tuple:
        cache = self._cache
        servers = cache.get(item)
        if servers is None:
            servers = self._compute(item)
            if len(cache) >= self._cache_size:
                cache.clear()
            cache[item] = servers
        return servers

    def distinguished_for(self, item) -> int:
        return self.servers_for(item)[0]


class RandomPlacer:
    """Uniform random distinct replica sets, memoised per item.

    Not a deployable policy (it needs a directory to be shared between
    clients) but the exact placement model of the paper's *simplified*
    Monte-Carlo simulator (section III-F) and a useful idealised
    reference: hash-based placers should match its statistics.
    """

    def __init__(self, n_servers: int, replication: int, *, seed: int = 0) -> None:
        if not (1 <= replication <= n_servers):
            raise ConfigurationError("replication must be in [1, n_servers]")
        self.n_servers = n_servers
        self.replication = replication
        self.seed = seed
        # Plain dict memo (see RangedConsistentHashPlacer for why not an
        # instance-bound lru_cache).
        self._cache: dict = {}
        self._cache_size = 1 << 20

    def _compute(self, item) -> tuple:
        # Deterministic "random" choice derived from the item id: do a
        # seeded partial Fisher-Yates over server ids.
        servers = list(range(self.n_servers))
        out = []
        for j in range(self.replication):
            if isinstance(item, int):
                h = hash64_int(item, seed=self.seed * 7919 + j)
            else:
                h = stable_hash64(item, seed=self.seed * 7919 + j)
            idx = j + (h % (self.n_servers - j))
            servers[j], servers[idx] = servers[idx], servers[j]
            out.append(servers[j])
        return tuple(out)

    def replicas_for(self, item) -> ReplicaSet:
        return ReplicaSet(item=item, servers=self.servers_for(item))

    def servers_for(self, item) -> tuple:
        cache = self._cache
        servers = cache.get(item)
        if servers is None:
            servers = self._compute(item)
            if len(cache) >= self._cache_size:
                cache.clear()
            cache[item] = servers
        return servers

    def distinguished_for(self, item) -> int:
        return self.servers_for(item)[0]


_PLACER_FACTORIES = {
    "rch": RangedConsistentHashPlacer,
    "multihash": MultiHashPlacer,
    "random": RandomPlacer,
}


def make_placer(
    kind: str, n_servers: int, replication: int, *, seed: int = 0, **kwargs
) -> ReplicaPlacer:
    """Build a placer by name: ``rch``, ``multihash`` or ``random``.

    ``single`` and ``full`` have dedicated constructors
    (:class:`SingleHashPlacer`, :class:`FullReplicationPlacer`) because
    their signatures differ.
    """
    try:
        factory = _PLACER_FACTORIES[kind]
    except KeyError:
        raise ConfigurationError(
            f"unknown placement kind {kind!r}; expected one of {sorted(_PLACER_FACTORIES)}"
        ) from None
    return factory(n_servers, replication, seed=seed, **kwargs)

"""A simulated memcached server.

The server model tracks exactly what the paper's metrics need: every
multi-get counts one *transaction*; per-transaction item counts feed the
throughput calibration; hits/misses come from a two-class LRU when memory
is limited (sections III-B to III-D).

Items are presence-only (all items are the same size, section III-B); a
server therefore stores keys, not values.  The live key-value protocol
implementation lives in :mod:`repro.protocol` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.cluster.lru import PinnedLRU
from repro.errors import ServerBusy
from repro.types import ItemId
from repro.utils.histogram import Histogram


@dataclass(slots=True)
class ServerCounters:
    """Work counters for one server (reset between warmup and measure)."""

    transactions: int = 0
    items_requested: int = 0
    items_returned: int = 0
    hits: int = 0
    misses: int = 0
    hitchhiker_hits: int = 0
    hitchhiker_misses: int = 0
    writes: int = 0
    txn_sizes: Histogram = field(default_factory=Histogram)

    def reset(self) -> None:
        self.transactions = 0
        self.items_requested = 0
        self.items_returned = 0
        self.hits = 0
        self.misses = 0
        self.hitchhiker_hits = 0
        self.hitchhiker_misses = 0
        self.writes = 0
        self.txn_sizes = Histogram()


class Server:
    """One storage node.

    Parameters
    ----------
    server_id:
        Id within the cluster.
    replica_capacity:
        LRU capacity (item units) for *replica* copies; distinguished
        copies are pinned separately and never evicted.  ``None`` means
        unlimited (the naive allocation of Fig 6, where physical memory
        equals replication level times the item count).
    """

    def __init__(
        self,
        server_id: int,
        replica_capacity: int | None = None,
        *,
        store=None,
    ) -> None:
        self.server_id = server_id
        # any PinnedLRU-compatible two-class store may be injected (e.g.
        # PriorityClassStore for the shared-budget policy ablation)
        self.store = store if store is not None else PinnedLRU(replica_capacity)
        self.counters = ServerCounters()
        #: per-key version stamps (repro.consistency); items are
        #: presence-only so the "value envelope" on the simulated path is
        #: (presence, stamp).  Keys written by unversioned paths simply
        #: have no entry here, which decodes as stamp None.
        self.stamps: dict[ItemId, object] = {}
        #: latency inflation for slow servers (set by the fault injector;
        #: consumed by latency models — 1.0 means healthy)
        self.latency_multiplier: float = 1.0
        #: optional backpressure gate (repro.overload.load.AdmissionControl);
        #: None — the default — admits everything, exactly as before
        self.admission = None
        self._admission_clock: float = 0.0

    # -- provisioning ---------------------------------------------------

    def pin_distinguished(self, items: Iterable[ItemId]) -> None:
        """Install the distinguished copies this server is home to."""
        self.store.pin_all(items)

    def preload_replicas(self, items: Iterable[ItemId]) -> None:
        """Warm the replica LRU (used by memory-rich experiments)."""
        for item in items:
            self.store.put(item)

    # -- the transaction ------------------------------------------------

    def multi_get(
        self,
        primary: Sequence[ItemId],
        hitchhikers: Sequence[ItemId] = (),
    ) -> tuple[list[ItemId], list[ItemId], list[ItemId]]:
        """Serve one multi-get transaction.

        Returns ``(hits, misses, hitchhiker_hits)`` over the primary and
        hitchhiker item lists.  Per the paper's policy (section III-C2)
        the LRU is updated for primary hits and for hitchhiker *hits*,
        never for hitchhiker misses.
        """
        if not primary and not hitchhikers:
            raise ValueError("a transaction must request at least one item")
        if self.admission is not None and not self.admission.try_admit(
            now=self._admission_clock
        ):
            raise ServerBusy(
                f"server {self.server_id} shed a {len(primary)}-item transaction"
            )
        hits: list[ItemId] = []
        misses: list[ItemId] = []
        hh_hits: list[ItemId] = []
        for item in primary:
            if self.store.touch(item):
                hits.append(item)
            else:
                misses.append(item)
        for item in hitchhikers:
            if self.store.touch(item):
                hh_hits.append(item)
            else:
                self.counters.hitchhiker_misses += 1
        c = self.counters
        c.transactions += 1
        n_req = len(primary) + len(hitchhikers)
        c.items_requested += n_req
        c.items_returned += len(hits) + len(hh_hits)
        c.hits += len(hits)
        c.misses += len(misses)
        c.hitchhiker_hits += len(hh_hits)
        c.txn_sizes.add(n_req)
        return hits, misses, hh_hits

    def attach_admission(self, admission) -> None:
        """Install a backpressure gate; ``multi_get`` raises
        :class:`repro.errors.ServerBusy` when it rejects."""
        self.admission = admission

    def advance_admission_clock(self, dt: float) -> None:
        """Move the admission token-bucket clock (logical time; the
        caller — a tick loop or test — owns the time domain)."""
        if dt > 0:
            self._admission_clock += dt

    def write_back(self, item: ItemId, *, stamp=None) -> None:
        """Insert a replica copy after a DB fetch (miss path).

        ``stamp`` (a :class:`repro.consistency.version.VersionStamp`)
        carries the version of the copy being installed — miss repair
        propagates the stamp it read from the source replica so
        write-backs never masquerade as fresh writes.
        """
        self.store.put(item)
        if stamp is not None and item in self.store:
            self.stamps[item] = stamp
        self.counters.writes += 1

    def wipe(self) -> None:
        """Lose all stored data (crash): capacity survives, contents do not."""
        self.store.wipe()
        self.stamps.clear()

    # -- introspection ----------------------------------------------------

    @property
    def resident_items(self) -> int:
        return len(self.store)

    @property
    def pinned_items(self) -> int:
        return self.store.n_pinned

    def resident_keys(self) -> list:
        """Every key this server currently holds (pinned + replicas),
        deterministically ordered — the scrubber's scan surface."""
        return self.store.pinned_keys() + self.store.replica_keys()

    def reset_counters(self) -> None:
        self.counters.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Server(id={self.server_id}, pinned={self.store.n_pinned}, "
            f"replicas={self.store.n_replicas}, txns={self.counters.transactions})"
        )

"""Plain-text table rendering for experiment output.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output aligned and diff-friendly without
pulling in a formatting dependency.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    ``rows`` may contain any mix of strings, ints and floats; floats are
    shown with four significant digits.
    """
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
) -> str:
    """Render multiple named series against a shared x axis.

    This is the canonical "figure as text" format used by the per-figure
    benchmarks: one row per x value, one column per series.
    """
    headers = [x_label, *series.keys()]
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(f"series {name!r} length does not match x values")
    rows = [
        [x, *(series[name][i] for name in series)] for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)

"""Deterministic random-number plumbing.

Every stochastic component of the library takes either a seed or a
``numpy.random.Generator``.  Components never touch global RNG state, so
two runs with the same seeds produce byte-identical results regardless of
what else the process has done — a prerequisite for reproducible
experiments and for resumable parameter sweeps.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | np.random.SeedSequence | None"


def ensure_rng(seed_or_rng=None) -> np.random.Generator:
    """Return a ``Generator``, treating an existing generator as pass-through.

    Accepts ``None`` (fresh entropy), an integer seed, a ``SeedSequence``,
    or a ``Generator``.
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def derive_rng(seed: int, *stream: int) -> np.random.Generator:
    """Derive an independent generator for a named sub-stream.

    ``derive_rng(seed, 3, 7)`` always yields the same stream, and streams
    with different suffixes are statistically independent (SeedSequence
    spawning semantics).  Use one stream per (experiment, sweep-point) so
    that adding sweep points does not perturb existing ones.
    """
    return np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=tuple(stream)))


def spawn_seeds(seed: int, n: int) -> list[int]:
    """Derive ``n`` independent 63-bit integer seeds from a master seed."""
    ss = np.random.SeedSequence(seed)
    children = ss.spawn(n)
    return [int(c.generate_state(1, dtype=np.uint64)[0] >> 1) for c in children]

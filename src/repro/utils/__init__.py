"""Shared low-level utilities: bitsets, RNG plumbing, tables, histograms."""

from repro.utils.bitset import (
    bit_indices,
    from_indices,
    iter_bits,
    lowest_bit_index,
    popcount,
)
from repro.utils.histogram import Histogram
from repro.utils.rng import derive_rng, ensure_rng, spawn_seeds
from repro.utils.tables import format_series, format_table

__all__ = [
    "Histogram",
    "bit_indices",
    "derive_rng",
    "ensure_rng",
    "format_series",
    "format_table",
    "from_indices",
    "iter_bits",
    "lowest_bit_index",
    "popcount",
    "spawn_seeds",
]

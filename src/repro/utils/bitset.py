"""Bitset helpers on Python arbitrary-precision integers.

The paper's proof-of-concept implements the greedy minimum-set-cover
"based on bit-sets, which finds a cover solution using a relatively small
number of CPU cycles" (section IV).  In CPython the natural analogue is an
``int`` used as a bit vector: ``&``, ``|``, ``~`` and ``int.bit_count()``
are all implemented in C, so a cover step over a 16–1024 server fleet or a
few-hundred-item request costs a handful of machine-word operations.

All helpers treat bit *i* as "element *i* is in the set".
"""

from __future__ import annotations

from typing import Iterable, Iterator


def popcount(mask: int) -> int:
    """Number of set bits (set cardinality)."""
    return mask.bit_count()


def from_indices(indices: Iterable[int]) -> int:
    """Build a bitset from element indices."""
    mask = 0
    for i in indices:
        if i < 0:
            raise ValueError("bitset indices must be non-negative")
        mask |= 1 << i
    return mask


def bit_indices(mask: int) -> list[int]:
    """Decode a bitset into a sorted list of element indices."""
    if mask < 0:
        raise ValueError("bitset must be non-negative")
    out: list[int] = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


def iter_bits(mask: int) -> Iterator[int]:
    """Iterate set-bit indices in increasing order without materialising."""
    if mask < 0:
        raise ValueError("bitset must be non-negative")
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def lowest_bit_index(mask: int) -> int:
    """Index of the lowest set bit; raises on the empty set."""
    if mask <= 0:
        raise ValueError("empty bitset has no lowest bit")
    return (mask & -mask).bit_length() - 1

"""Integer-valued histogram with summary statistics.

Used for transaction-size histograms (the input to throughput
calibration, paper section III-B) and node-degree histograms (Figs 4–5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np


@dataclass(slots=True)
class Histogram:
    """Counts of non-negative integer observations."""

    counts: dict[int, int] = field(default_factory=dict)

    @classmethod
    def from_values(cls, values: Iterable[int]) -> "Histogram":
        h = cls()
        h.update(values)
        return h

    def add(self, value: int, count: int = 1) -> None:
        if value < 0:
            raise ValueError("histogram values must be non-negative")
        if count <= 0:
            raise ValueError("count must be positive")
        self.counts[value] = self.counts.get(value, 0) + count

    def update(self, values: Iterable[int]) -> None:
        for v in values:
            self.add(v)

    def merge(self, other: "Histogram") -> None:
        for v, c in other.counts.items():
            self.add(v, c)

    def __iter__(self) -> Iterator[tuple[int, int]]:
        return iter(sorted(self.counts.items()))

    def __len__(self) -> int:
        return len(self.counts)

    @property
    def total(self) -> int:
        """Total number of observations."""
        return sum(self.counts.values())

    @property
    def mean(self) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return sum(v * c for v, c in self.counts.items()) / total

    @property
    def max(self) -> int:
        if not self.counts:
            raise ValueError("empty histogram has no max")
        return max(self.counts)

    @property
    def min(self) -> int:
        if not self.counts:
            raise ValueError("empty histogram has no min")
        return min(self.counts)

    def quantile(self, q: float) -> int:
        """Smallest value v such that P(X <= v) >= q."""
        if not (0.0 <= q <= 1.0):
            raise ValueError("quantile must be in [0, 1]")
        if not self.counts:
            raise ValueError("empty histogram has no quantiles")
        target = q * self.total
        seen = 0
        for v, c in sorted(self.counts.items()):
            seen += c
            if seen >= target:
                return v
        return max(self.counts)

    def binned(self, bin_edges: Iterable[int]) -> list[tuple[str, int]]:
        """Aggregate counts into labelled half-open bins ``[lo, hi)``.

        ``bin_edges`` are ascending; a final open bin ``[last, inf)`` is
        appended.  Used to print degree histograms compactly.
        """
        edges = list(bin_edges)
        if edges != sorted(edges) or len(set(edges)) != len(edges):
            raise ValueError("bin edges must be strictly ascending")
        labels: list[str] = []
        totals: list[int] = []
        for lo, hi in zip(edges, edges[1:]):
            labels.append(f"[{lo},{hi})")
            totals.append(0)
        labels.append(f"[{edges[-1]},inf)")
        totals.append(0)
        for v, c in self.counts.items():
            idx = int(np.searchsorted(edges, v, side="right")) - 1
            if idx < 0:
                raise ValueError(f"value {v} below first bin edge {edges[0]}")
            idx = min(idx, len(totals) - 1)
            totals[idx] += c
        return list(zip(labels, totals))

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return (values, counts) as sorted numpy arrays."""
        if not self.counts:
            return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        items = sorted(self.counts.items())
        vals = np.array([v for v, _ in items], dtype=np.int64)
        cnts = np.array([c for _, c in items], dtype=np.int64)
        return vals, cnts

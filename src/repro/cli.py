"""Command-line interface: ``rnb`` / ``python -m repro``.

Subcommands
-----------
``rnb list``
    List available experiments.
``rnb run fig08 [--scale 0.1] [--seed 2013] [--n-requests 1200]``
    Run one experiment (or ``all``) and print its figure tables.
    ``rnb run hotspot`` is the overload soak (docs/OVERLOAD.md): a
    Zipf-skewed workload plus one straggler, with and without the
    backpressure / breaker / hedging stack.  ``rnb run write_chaos``
    is the replicated-write-path convergence proof
    (docs/CONSISTENCY.md): quorum writes with servers killed
    mid-burst, then read-repair and anti-entropy scrub back to zero
    divergent keys, deterministically by seed.
``rnb calibrate``
    Run the in-process micro-benchmark and print the fitted cost model.
``rnb perfbench [--quick] [--workers N] [--out BENCH.json] [--baseline BENCH_PR9.json]``
    Benchmark the fast-path read pipeline (cover kernel, batched
    planning, end-to-end simulation, telemetry overhead, sharded
    multiprocessing engine) and optionally fail on regression against a
    committed baseline.  ``--workers`` sizes the sharded section
    (default ``RNB_BENCH_WORKERS``, else 1).
``rnb loadtest [--users 5000] [--curve flash] [--out REPORT.json]``
    Open-loop load test against a real in-process async server fleet
    (docs/SERVING.md): one coroutine per simulated user, arrival times
    from a seeded rate curve, RnB bundling over pipelined connections.
    ``--min-goodput`` / ``--max-failed`` turn it into a CI gate.
``rnb stats [ADDR ...] [--boot-demo] [--require [FAMILY ...]]``
    Scrape ``stats metrics`` telemetry from a live fleet and merge it
    into Prometheus-style samples (docs/OBSERVABILITY.md).
    ``--boot-demo`` starts a loopback fleet with traffic applied;
    ``--require`` gates on metric-family presence (the obs-smoke job).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro._version import __version__
from repro.experiments.registry import EXPERIMENTS, run_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="rnb",
        description="Replicate and Bundle (RnB) reproduction harness",
    )
    parser.add_argument("--version", action="version", version=f"rnb {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_p = sub.add_parser("run", help="run an experiment and print its tables")
    run_p.add_argument(
        "experiment",
        help="experiment name (see 'rnb list') or 'all'",
    )
    run_p.add_argument("--scale", type=float, default=None, help="graph scale (0-1]")
    run_p.add_argument("--seed", type=int, default=None)
    run_p.add_argument("--n-requests", type=int, default=None, dest="n_requests")
    run_p.add_argument(
        "--nemesis",
        type=int,
        default=None,
        dest="nemesis_seed",
        metavar="SEED",
        help="run under a seeded link-blackout nemesis schedule "
        "(experiments that accept nemesis_seed only)",
    )
    run_p.add_argument(
        "--format",
        choices=("table", "json", "csv"),
        default="table",
        help="output format for the figure data",
    )
    run_p.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="also write one <figure>.<format> file per result into DIR",
    )

    sub.add_parser("calibrate", help="fit a cost model from the in-process server")

    perf_p = sub.add_parser(
        "perfbench", help="benchmark the fast-path read pipeline"
    )
    perf_p.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke profile: fewer requests and repeats",
    )
    perf_p.add_argument("--scale", type=float, default=0.1, help="graph scale (0-1]")
    perf_p.add_argument("--seed", type=int, default=2013)
    perf_p.add_argument("--n-requests", type=int, default=1500, dest="n_requests")
    perf_p.add_argument("--repeats", type=int, default=5)
    perf_p.add_argument(
        "--out", default=None, metavar="FILE", help="write the result JSON to FILE"
    )
    perf_p.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="compare speedups against a committed baseline JSON; "
        "exit 1 on regression",
    )
    perf_p.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional speedup drop vs baseline (default 0.4)",
    )
    perf_p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for the sharded section "
        "(default: RNB_BENCH_WORKERS, else 1)",
    )

    load_p = sub.add_parser(
        "loadtest",
        help="open-loop load test against a real async server fleet",
    )
    load_p.add_argument("--users", type=int, default=1000)
    load_p.add_argument(
        "--duration", type=float, default=2.0, help="arrival-schedule span, seconds"
    )
    load_p.add_argument(
        "--curve", choices=("constant", "diurnal", "flash"), default="constant"
    )
    load_p.add_argument(
        "--scheduler", choices=("poisson", "deterministic"), default="poisson"
    )
    load_p.add_argument("--servers", type=int, default=4, dest="n_servers")
    load_p.add_argument("--replication", type=int, default=2)
    load_p.add_argument("--items", type=int, default=2000, dest="n_items")
    load_p.add_argument("--request-size", type=int, default=8, dest="request_size")
    load_p.add_argument("--zipf", type=float, default=0.8, dest="zipf_exponent")
    load_p.add_argument("--seed", type=int, default=0)
    load_p.add_argument(
        "--pool-size", type=int, default=4, help="pipelined sockets per server"
    )
    load_p.add_argument(
        "--deadline",
        type=float,
        default=5.0,
        help="per-request budget, seconds; 0 disables (degrade, never fail)",
    )
    load_p.add_argument(
        "--queue-limit",
        type=int,
        default=None,
        help="per-server admission bound; sheds BUSY above it",
    )
    load_p.add_argument(
        "--nemesis",
        type=int,
        default=None,
        dest="nemesis_seed",
        metavar="SEED",
        help="cut one server's link during seeded blackout windows "
        "(the fleet refuses connections; default: no partition)",
    )
    load_p.add_argument(
        "--out", default=None, metavar="FILE", help="write the report JSON to FILE"
    )
    load_p.add_argument(
        "--min-goodput",
        type=float,
        default=None,
        help="exit 1 if goodput (items/s) falls below this floor",
    )
    load_p.add_argument(
        "--max-failed",
        type=int,
        default=None,
        help="exit 1 if more than this many requests fail outright",
    )

    stats_p = sub.add_parser(
        "stats",
        help="scrape `stats metrics` telemetry from a live fleet",
    )
    stats_p.add_argument(
        "addresses",
        nargs="*",
        metavar="HOST:PORT",
        help="servers to scrape (omit with --boot-demo)",
    )
    stats_p.add_argument(
        "--boot-demo",
        action="store_true",
        help="boot a loopback demo fleet with traffic and scrape it",
    )
    stats_p.add_argument(
        "--format",
        choices=("prom", "json"),
        default="prom",
        help="prom: one `sample value` line each; json: merged object",
    )
    stats_p.add_argument(
        "--per-server",
        action="store_true",
        help="print each server's samples separately instead of merging",
    )
    stats_p.add_argument(
        "--require",
        nargs="*",
        default=None,
        metavar="FAMILY",
        help="exit 1 unless these metric families are present after the "
        "merge (no argument: the core request catalog)",
    )
    stats_p.add_argument(
        "--timeout", type=float, default=2.0, help="per-server scrape budget, seconds"
    )
    return parser


def _run_one(name: str, args) -> None:
    kwargs = {}
    fn = EXPERIMENTS[name]
    import inspect

    accepted = inspect.signature(fn).parameters
    for attr in ("scale", "seed", "n_requests", "nemesis_seed"):
        value = getattr(args, attr, None)
        if value is not None and attr in accepted:
            kwargs[attr] = value
    start = time.perf_counter()
    results = run_experiment(name, **kwargs)
    elapsed = time.perf_counter() - start

    fmt = getattr(args, "format", "table")
    render = {
        "table": lambda r: r.table(),
        "json": lambda r: r.to_json(),
        "csv": lambda r: r.to_csv(),
    }[fmt]
    for res in results:
        print(render(res))
        print()

    out_dir = getattr(args, "out", None)
    if out_dir is not None:
        from pathlib import Path

        path = Path(out_dir)
        path.mkdir(parents=True, exist_ok=True)
        suffix = {"table": "txt", "json": "json", "csv": "csv"}[fmt]
        for res in results:
            (path / f"{res.name}.{suffix}").write_text(render(res) + "\n")
    print(f"[{name}: {elapsed:.1f}s]")


def _run_stats(args) -> int:
    """``rnb stats``: scrape a fleet's telemetry (docs/OBSERVABILITY.md)."""
    import json

    from repro.errors import ProtocolError
    from repro.obs.export import CORE_REQUEST_FAMILIES
    from repro.obs.metrics import format_value
    from repro.obs.scrape import (
        boot_demo_fleet,
        merged_fleet_samples,
        missing_families,
        scrape_fleet,
    )

    demo_servers: list = []
    addresses = list(args.addresses)
    try:
        if args.boot_demo:
            demo_addresses, demo_servers, _registry = boot_demo_fleet()
            addresses = addresses + demo_addresses
        if not addresses:
            print("no addresses given (pass HOST:PORT or --boot-demo)", file=sys.stderr)
            return 2
        try:
            per_server = scrape_fleet(addresses, timeout=args.timeout)
        except (ProtocolError, ConnectionError, OSError) as exc:
            print(f"scrape failed: {exc}", file=sys.stderr)
            return 1
        merged = merged_fleet_samples(per_server)
        if args.format == "json":
            doc = per_server if args.per_server else merged
            print(json.dumps(doc, indent=2, sort_keys=True))
        elif args.per_server:
            for address in addresses:
                print(f"# server {address}")
                for name, value in sorted(per_server[address].items()):
                    print(f"{name} {format_value(value)}")
        else:
            for name, value in sorted(merged.items()):
                print(f"{name} {format_value(value)}")
        if args.require is not None:
            required = tuple(args.require) or CORE_REQUEST_FAMILIES
            absent = missing_families(merged, required)
            if absent:
                print(f"GATE: missing metric families: {absent}", file=sys.stderr)
                return 1
            print(f"[all {len(required)} required families present]", file=sys.stderr)
        return 0
    finally:
        for server in demo_servers:
            server.shutdown()


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "list":
        for name in sorted(EXPERIMENTS):
            doc = (sys.modules[EXPERIMENTS[name].__module__].__doc__ or "").strip()
            headline = doc.splitlines()[0] if doc else ""
            print(f"{name:12s} {headline}")
        return 0

    if args.command == "run":
        names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        for name in names:
            if name not in EXPERIMENTS:
                print(
                    f"unknown experiment {name!r}; try 'rnb list'", file=sys.stderr
                )
                return 2
            _run_one(name, args)
        return 0

    if args.command == "calibrate":
        from repro.analysis.calibration import fit_cost_model
        from repro.protocol.microbench import measure_items_per_second

        points = measure_items_per_second([1, 2, 5, 10, 20, 50])
        model = fit_cost_model(
            [p.txn_size for p in points], [p.items_per_s for p in points]
        )
        print("txn_size  txns/s      items/s")
        for p in points:
            print(f"{p.txn_size:8d}  {p.transactions_per_s:10.0f}  {p.items_per_s:10.0f}")
        print(
            f"fitted: t_txn={model.t_txn:.3g}s  t_item={model.t_item:.3g}s  "
            f"cap={model.bandwidth_items_per_s}"
        )
        return 0

    if args.command == "perfbench":
        import json
        from pathlib import Path

        from repro.perf.bench import (
            DEFAULT_TOLERANCE,
            compare_against_baseline,
            dumps,
            format_report,
            run_perfbench,
        )

        doc = run_perfbench(
            scale=args.scale,
            seed=args.seed,
            n_requests=args.n_requests,
            repeats=args.repeats,
            quick=args.quick,
            workers=args.workers,
        )
        print(format_report(doc))
        if args.out is not None:
            Path(args.out).write_text(dumps(doc))
            print(f"[wrote {args.out}]")
        if args.baseline is not None:
            baseline = json.loads(Path(args.baseline).read_text())
            tolerance = (
                DEFAULT_TOLERANCE if args.tolerance is None else args.tolerance
            )
            failures = compare_against_baseline(
                doc, baseline, tolerance=tolerance
            )
            if failures:
                for failure in failures:
                    print(f"REGRESSION: {failure}", file=sys.stderr)
                return 1
            print(f"[no regression vs {args.baseline} (tolerance {tolerance:.0%})]")
        return 0

    if args.command == "loadtest":
        from pathlib import Path

        from repro.loadgen import LoadTestConfig, run_loadtest

        config = LoadTestConfig(
            users=args.users,
            duration=args.duration,
            curve=args.curve,
            scheduler=args.scheduler,
            n_servers=args.n_servers,
            replication=args.replication,
            n_items=args.n_items,
            request_size=args.request_size,
            zipf_exponent=args.zipf_exponent,
            seed=args.seed,
            pool_size=args.pool_size,
            deadline=args.deadline if args.deadline > 0 else None,
            queue_limit=args.queue_limit,
            nemesis_seed=args.nemesis_seed,
        )
        report = run_loadtest(config)
        print(report.summary())
        if args.out is not None:
            Path(args.out).write_text(report.to_json() + "\n")
            print(f"[wrote {args.out}]")
        status = 0
        if args.max_failed is not None and report.measured["failed"] > args.max_failed:
            print(
                f"GATE: {report.measured['failed']} failed requests "
                f"(allowed {args.max_failed})",
                file=sys.stderr,
            )
            status = 1
        if (
            args.min_goodput is not None
            and report.measured["goodput_items_per_s"] < args.min_goodput
        ):
            print(
                f"GATE: goodput {report.measured['goodput_items_per_s']:.0f} items/s "
                f"below floor {args.min_goodput:.0f}",
                file=sys.stderr,
            )
            status = 1
        return status

    if args.command == "stats":
        return _run_stats(args)

    return 2  # pragma: no cover - argparse enforces valid commands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Load-aware tie-breaking for the greedy set cover.

The greedy cover's pick is determined by marginal gain; the *tie-break*
among equal-gain candidates is where replica freedom lives (paper
section III-C1 uses it for locality; the content-replication literature
uses it for load).  This module supplies tie-break callables — the
pluggable policy slot :data:`repro.core.setcover.TieBreak` already
accepts — that prefer lightly loaded servers among equal-gain
candidates:

* :func:`least_loaded_tie_break` over a :class:`repro.overload.load.
  LoadTracker` (client-observed load: outstanding work, BUSY verdicts);
* :func:`counter_tie_break` over a simulated
  :class:`repro.cluster.cluster.Cluster`'s per-server transaction
  counters (tick-domain load, used by ``ClientConfig(tie_break=
  "least_loaded")``).

Both resolve load ties toward the lowest server id, so with no load
signal at all they reproduce the default ``"lowest"`` policy pick for
pick — and because they are plain tie-breaks, turning them off is
bit-identical to never having had them (property-tested against the
reference solver in ``tests/overload/test_tiebreak.py``).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.overload.load import LoadTracker


def least_loaded_tie_break(
    tracker: LoadTracker,
) -> Callable[[Sequence[int]], int]:
    """Tie-break preferring the candidate with the smallest tracked load.

    Candidates arrive in ascending id order (the solver guarantees it),
    so ``min`` over ``(load, id)`` tuples resolves load ties to the
    lowest id — the stock policy.
    """

    def pick(candidates: Sequence[int]) -> int:
        return min(candidates, key=lambda sid: (tracker.load(sid), sid))

    return pick


def counter_tie_break(cluster) -> Callable[[Sequence[int]], int]:
    """Tie-break on the cluster's live per-server transaction counters.

    The tick-domain twin of :func:`least_loaded_tie_break`: the
    simulated cluster already counts transactions per server, and that
    running total *is* the load signal (requests are simulated
    individually, so queue depth has no meaning there).  Steering
    equal-gain picks to the least-worked server flattens hot spots that
    sticky lowest-id picks would otherwise reinforce.
    """
    servers = cluster.servers

    def pick(candidates: Sequence[int]) -> int:
        return min(
            candidates, key=lambda sid: (servers[sid].counters.transactions, sid)
        )

    return pick

"""Event-driven overload simulator: the full serving loop under pressure.

:mod:`repro.sim.des` answers "where does the fleet saturate?" with exact
FIFO bookkeeping and no client policy at all — every transaction stalls
in whatever queue its cover picked.  This module is the other half of
the overload story: a true event-heap DES in which the *client reacts*:

* servers run bounded FIFO queues with optional token-bucket admission
  (:class:`repro.overload.load.AdmissionControl`); an overflowing
  dispatch gets an immediate BUSY verdict instead of queueing;
* a BUSY verdict triggers re-covering the shed items onto alternate
  replicas (replica freedom), walking the degradation ladder
  ``full -> LIMIT partial -> distinguished-copies-only`` when pressure
  leaves no alternative (:mod:`repro.overload.hedging`);
* circuit breakers (:class:`repro.overload.breaker.BreakerBoard`) trip
  on repeated sheds / straggling transactions and exclude the server
  from covers until a seeded half-open probe heals it;
* the greedy cover breaks gain ties toward the least-loaded server
  (:func:`repro.overload.tiebreak.least_loaded_tie_break`);
* hedging re-issues the slowest outstanding bundle after a quantile
  delay, first response wins (:class:`repro.overload.hedging.
  HedgePolicy`);
* per-request deadlines complete degraded (partial response) rather
  than fail.

Determinism is load-bearing (the overload-smoke CI job diffs two runs
byte for byte): arrivals draw from a caller-seeded generator, the event
heap breaks time ties by insertion sequence, breaker probe jitter is
hash-seeded, and nothing reads a wall clock.

A request is **never failed**: every item is either delivered, shed
under backpressure, dropped by the LIMIT rung, or cut off by the
deadline — all counted separately in :class:`OverloadResult`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.analysis.calibration import CostModel
from repro.core.bundling import Bundler
from repro.errors import ConfigurationError
from repro.obs.metrics import MetricsRegistry
from repro.overload.breaker import HALF_OPEN, BreakerBoard
from repro.overload.hedging import HedgePolicy, ladder_required, validate_partial_fraction
from repro.overload.load import AdmissionControl, LoadTracker, TokenBucket
from repro.overload.tiebreak import least_loaded_tie_break
from repro.types import ItemId, Request
from repro.utils.rng import ensure_rng

_ARRIVAL, _TXN_DONE, _HEDGE, _DEADLINE = 0, 1, 2, 3


@dataclass(frozen=True, slots=True)
class OverloadConfig:
    """Feature switches and knobs of the overload serving loop.

    Every feature defaults to *off*; the all-defaults config reproduces
    plain unbounded-FIFO serving (the baseline arm of the hotspot soak).

    ``queue_limit`` bounds per-server outstanding transactions;
    ``bucket_rate``/``bucket_burst`` add token-bucket admission (tokens
    are transactions, refilled per simulated second).  ``breaker`` turns
    on circuit breakers with ``trip_latency`` marking a completed
    transaction slower than this as a breaker failure.  ``hedge_quantile``
    enables hedging (None = off).  ``deadline`` is the per-request budget
    in seconds (None = wait forever); ``partial_fraction`` is the LIMIT
    rung's quota.  ``load_aware`` switches the cover tie-break to
    least-loaded.
    """

    queue_limit: int | None = None
    bucket_rate: float | None = None
    bucket_burst: float = 8.0
    breaker: bool = False
    trip_after: int = 3
    window: int = 8
    open_ticks: int = 50
    trip_latency: float | None = None
    hedge_quantile: float | None = None
    hedge_min_samples: int = 32
    max_hedges: int = 1
    deadline: float | None = None
    partial_fraction: float = 1.0
    load_aware: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.queue_limit is not None and self.queue_limit < 1:
            raise ConfigurationError("queue_limit must be >= 1 (or None)")
        if self.bucket_rate is not None and self.bucket_rate <= 0:
            raise ConfigurationError("bucket_rate must be positive (or None)")
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigurationError("deadline must be positive (or None)")
        if self.trip_latency is not None and self.trip_latency <= 0:
            raise ConfigurationError("trip_latency must be positive (or None)")
        validate_partial_fraction(self.partial_fraction)

    @property
    def admission_enabled(self) -> bool:
        return self.queue_limit is not None or self.bucket_rate is not None


@dataclass(slots=True)
class _Txn:
    server: int
    items: tuple[ItemId, ...]
    dispatched_at: float
    done_at: float
    req: "_Req"
    is_hedge: bool = False
    is_probe: bool = False
    #: completion time of the bundle this hedge raced (hedges only)
    rival_done: float = float("inf")
    #: shared per-issuance marker so a multi-txn hedge wins at most once
    hedge_won: list = field(default_factory=list)
    #: open tracing span for this round-trip (tracing runs only)
    span: object = None


@dataclass(slots=True)
class _Req:
    request: Request
    arrival: float
    idx: int = 0
    remaining: set = field(default_factory=set)
    outstanding: list = field(default_factory=list)
    last_delivery: float = 0.0
    completed: bool = False
    completed_at: float = 0.0
    level: str = "full"
    hedges_used: int = 0
    shed: int = 0
    dropped: int = 0
    deadline_cut: int = 0
    #: open tracing span for the whole request (tracing runs only)
    span: object = None


@dataclass(slots=True)
class OverloadResult:
    """Steady-state metrics of one overload run (all requests complete)."""

    n_requests: int
    mean_latency: float
    p50_latency: float
    p99_latency: float
    p999_latency: float
    max_utilization: float
    mean_utilization: float
    #: fraction of requested items delivered (1.0 = nothing degraded)
    served_fraction: float
    #: items refused by admission after the whole ladder (per item asked)
    shed_rate: float
    #: items given up by the LIMIT rung (per item asked)
    drop_rate: float
    #: items cut off by the per-request deadline (per item asked)
    deadline_cut_rate: float
    requests_degraded: int
    requests_failed: int
    hedges_issued: int
    hedge_wins: int
    busy_verdicts: int
    breaker_transitions: int
    breaker_open_final: int
    #: simulated time until the last server drained (goodput denominator)
    horizon: float = 0.0
    #: items asked for by the measured (post-warmup) requests
    items_measured: int = 0
    #: dispatches refused because the partition oracle cut the edge
    partition_blocked: int = 0
    ladder_counts: dict[str, int] = field(default_factory=dict)
    latencies: np.ndarray = field(repr=False, default=None)
    #: structured telemetry snapshot (repro.obs registry) of this run —
    #: experiments diff telemetry, not just headline outcomes
    metrics: dict = field(repr=False, default_factory=dict)
    #: 64-bit digest of ``metrics`` (same-seed runs match byte for byte)
    metrics_token: int = 0

    @property
    def hedge_win_rate(self) -> float:
        return self.hedge_wins / self.hedges_issued if self.hedges_issued else 0.0


def simulate_overload(
    requests: Iterable[Request],
    bundler: Bundler,
    *,
    n_servers: int,
    cost_model: CostModel,
    arrival_rate: float | None = None,
    arrival_times: Sequence[float] | None = None,
    rtt: float = 200e-6,
    latency_multipliers: Sequence[float] | None = None,
    config: OverloadConfig | None = None,
    warmup_fraction: float = 0.2,
    rng=None,
    metrics: MetricsRegistry | None = None,
    tracer=None,
    unreachable=None,
) -> OverloadResult:
    """Run an open-loop workload through the overload serving loop.

    Arrivals come either from ``arrival_rate`` (a homogeneous Poisson
    process drawn from ``rng``, the original behaviour) or from
    ``arrival_times`` — one pre-computed, non-decreasing timestamp per
    request, which is how :func:`repro.loadgen.schedule.arrival_times`
    drives diurnal and flash-crowd rate curves through the DES
    (the ``load_soak`` experiment).  Exactly one of the two must be set.

    ``bundler`` supplies covers (and, for the ladder's last rung, the
    distinguished routing); ``latency_multipliers`` inflates per-server
    service times (stragglers — 1.0 is healthy).  All client policies
    come from ``config``; the all-defaults config is the no-policy
    baseline.  Deterministic for a fixed ``(requests, config, rng)``.

    Telemetry: the run always feeds a :class:`repro.obs.MetricsRegistry`
    (the caller's ``metrics``, or a private one) with the shared metric
    catalog (docs/OBSERVABILITY.md) and attaches its snapshot and token
    to the result.  ``tracer`` (a :class:`repro.obs.Tracer`) records one
    ``request`` span per arrival with ``plan``/``txn`` children stamped
    in simulated time — same-seed runs trace byte-identically.

    ``unreachable`` (optional) is a link-level partition oracle
    ``(sid, now) -> bool``: a True verdict refuses the dispatch before
    admission, feeds the breaker a *soft* failure (so covers re-route
    around the cut exactly as around BUSY sheds) and is counted into
    ``rnb_partition_blocked_total`` / ``OverloadResult.
    partition_blocked``.  Drive it from a
    :class:`repro.faults.partition.PartitionPlan` with ticks derived
    from simulated time (the ``load_soak`` nemesis arm does this).
    """
    if (arrival_rate is None) == (arrival_times is None):
        raise ConfigurationError(
            "exactly one of arrival_rate / arrival_times must be given"
        )
    if arrival_rate is not None and arrival_rate <= 0:
        raise ConfigurationError("arrival_rate must be positive")
    if not (0.0 <= warmup_fraction < 1.0):
        raise ConfigurationError("warmup_fraction must be in [0, 1)")
    cfg = config or OverloadConfig()
    rng = ensure_rng(rng)
    requests = list(requests)
    if not requests:
        raise ConfigurationError("empty request stream")

    mult = (
        np.ones(n_servers, dtype=np.float64)
        if latency_multipliers is None
        else np.asarray(latency_multipliers, dtype=np.float64)
    )
    if mult.shape != (n_servers,):
        raise ConfigurationError("latency_multipliers must have one entry per server")

    server_free = np.zeros(n_servers, dtype=np.float64)
    busy_time = np.zeros(n_servers, dtype=np.float64)

    admissions: list[AdmissionControl] | None = None
    if cfg.admission_enabled:
        admissions = [
            AdmissionControl(
                queue_limit=cfg.queue_limit,
                bucket=(
                    TokenBucket(cfg.bucket_rate, cfg.bucket_burst)
                    if cfg.bucket_rate is not None
                    else None
                ),
            )
            for _ in range(n_servers)
        ]
    board = (
        BreakerBoard(
            n_servers,
            trip_after=cfg.trip_after,
            window=cfg.window,
            open_ticks=cfg.open_ticks,
            seed=cfg.seed,
        )
        if cfg.breaker
        else None
    )
    load = LoadTracker(n_servers) if cfg.load_aware else None
    hedge = (
        HedgePolicy(
            quantile=cfg.hedge_quantile,
            initial_delay=cost_model.txn_time(8) * 4,
            min_delay=cost_model.t_txn,
            min_samples=cfg.hedge_min_samples,
            max_hedges=cfg.max_hedges,
        )
        if cfg.hedge_quantile is not None
        else None
    )
    registry = metrics if metrics is not None else MetricsRegistry()
    m_busy = registry.counter(
        "rnb_busy_sheds_total", "dispatches shed by admission control", path="sim"
    )
    m_deadline = registry.counter(
        "rnb_deadline_hits_total", "requests cut off by their deadline", path="sim"
    )
    registry.counter("rnb_retries_total", "transport retries", path="sim")
    m_ladder = {
        level: registry.counter(
            "rnb_ladder_total", "degradation-ladder outcomes", path="sim", level=level
        )
        for level in ("full", "partial", "distinguished")
    }
    m_hedges = {
        result: registry.counter(
            "rnb_hedges_total", "hedged bundles", path="sim", result=result
        )
        for result in ("fired", "won")
    }
    if load is not None:
        load.bind_metrics(registry)
    if board is not None:
        board.bind_metrics(registry)
    if admissions is not None:
        for sid, gate in enumerate(admissions):
            gate.bind_metrics(registry, server=sid)
    # The planning bundler: same placer and enhancements as the caller's
    # (never mutated), rebuilt so plans feed the registry — and, when
    # load awareness is on, with the least-loaded tie-break.
    plan_bundler = Bundler(
        bundler.placer,
        hitchhiking=bundler.hitchhiking,
        single_item_rule=bundler.single_item_rule,
        tie_break=(
            least_loaded_tie_break(load) if load is not None else bundler.tie_break
        ),
        rng=bundler.rng,
        metrics=registry,
    )

    heap: list = []
    seq = 0

    def push(t: float, kind: int, payload) -> None:
        nonlocal seq
        heapq.heappush(heap, (t, seq, kind, payload))
        seq += 1

    stats = {
        "busy": 0,
        "hedges": 0,
        "hedge_wins": 0,
        "degraded": 0,
        "unreachable": 0,
        "ladder": {"full": 0, "partial": 0, "distinguished": 0},
    }
    m_unreachable = registry.counter(
        "rnb_partition_blocked_total",
        "cluster accesses blocked by a partition rule",
        edge="request",
        path="sim",
    )

    # -- dispatch machinery -------------------------------------------------

    def admit(sid: int, now: float) -> bool:
        if admissions is None:
            return True
        if admissions[sid].try_admit(now):
            return True
        stats["busy"] += 1
        m_busy.inc()
        if load is not None:
            load.busy(sid)
        if board is not None:
            board.record_failure(sid)  # soft: shedding servers are alive
        return False

    def dispatch(req: _Req, sid: int, items: tuple, now: float, *,
                 is_hedge: bool = False, rival_done: float = float("inf"),
                 hedge_won: list | None = None) -> "_Txn | None":
        if unreachable is not None and unreachable(sid, now):
            # link cut: refused before admission — a soft breaker
            # failure, so later covers route around the dark edge
            stats["unreachable"] += 1
            m_unreachable.inc()
            if board is not None:
                board.record_failure(sid)
            return None
        if not admit(sid, now):
            return None
        is_probe = board is not None and board.state(sid) == HALF_OPEN and board.allow_probe(sid)
        service = cost_model.txn_time(len(items)) * float(mult[sid])
        start = max(float(server_free[sid]), now)
        done = start + service
        server_free[sid] = done
        busy_time[sid] += service
        if load is not None:
            load.sent(sid, len(items))
        txn = _Txn(
            server=sid,
            items=items,
            dispatched_at=now,
            done_at=done,
            req=req,
            is_hedge=is_hedge,
            is_probe=is_probe,
            rival_done=rival_done,
            hedge_won=[] if hedge_won is None else hedge_won,
        )
        if tracer is not None:
            txn.span = tracer.start(
                "txn",
                parent=req.span,
                at=now,
                server=sid,
                n_items=len(items),
                **({"hedge": True} if is_hedge else {}),
            )
        req.outstanding.append(txn)
        push(done, _TXN_DONE, txn)
        return txn

    def cover_dispatch(req: _Req, items, exclude: set, now: float) -> list:
        """Dispatch a (re-)cover of ``items``, re-covering around BUSY
        verdicts; returns the items no admissible cover would take."""
        leftover = sorted(items)
        busy_seen: set[int] = set()
        while leftover:
            ex = exclude | busy_seen
            plan = plan_bundler.plan(
                Request(items=tuple(leftover)), exclude=ex if ex else None
            )
            if not plan.transactions:
                break
            next_left = set(leftover) - set(plan.planned_items())
            progressed = False
            busy_before = len(busy_seen)
            for txn in plan.transactions:
                if dispatch(req, txn.server, txn.primary, now) is not None:
                    progressed = True
                else:
                    busy_seen.add(txn.server)
                    next_left.update(txn.primary)
            if not progressed and len(busy_seen) == busy_before:
                break  # no dispatch and no new exclusions: stuck
            leftover = sorted(next_left)
        return leftover

    def dispatch_request(req: _Req, now: float) -> None:
        """The degradation ladder: full cover -> LIMIT partial ->
        distinguished-copies-only -> shed."""
        exclude = set(board.exclusions()) if board is not None else set()
        leftover = cover_dispatch(req, req.remaining, exclude, now)
        level = "full"
        if leftover:
            required = ladder_required(
                "partial", req.request.size, cfg.partial_fraction
            )
            delivered_or_inflight = req.request.size - len(leftover)
            if cfg.partial_fraction < 1.0 and delivered_or_inflight >= required:
                # LIMIT rung: quota already in flight; give the rest up
                level = "partial"
                req.dropped += len(leftover)
                req.remaining.difference_update(leftover)
                leftover = []
            else:
                # distinguished rung: route straight to the home copy,
                # ignoring breaker verdicts (stale trips must not strand
                # items) — admission still has the last word
                level = "distinguished"
                plan = plan_bundler.plan_distinguished(req.request, sorted(leftover))
                shed: list = []
                for txn in plan.transactions:
                    if dispatch(req, txn.server, txn.primary, now) is None:
                        shed.extend(txn.primary)
                req.shed += len(shed)
                req.remaining.difference_update(shed)
                leftover = []
        req.level = level
        stats["ladder"][level] += 1
        m_ladder[level].inc()
        if tracer is not None:
            tracer.finish(tracer.start("plan", parent=req.span, at=now, level=level), at=now)

    def complete(req: _Req, now: float) -> None:
        req.completed = True
        req.completed_at = now
        if req.shed or req.dropped or req.deadline_cut:
            stats["degraded"] += 1
        if tracer is not None and req.span is not None:
            tracer.finish(
                req.span,
                at=now,
                level=req.level,
                shed=req.shed,
                dropped=req.dropped,
                deadline_cut=req.deadline_cut,
            )

    # -- event loop ---------------------------------------------------------

    if arrival_times is not None:
        times = np.asarray(arrival_times, dtype=np.float64)
        if times.shape != (len(requests),):
            raise ConfigurationError(
                f"arrival_times must have one entry per request "
                f"({times.shape} vs {len(requests)} requests)"
            )
        if len(times) and (times[0] < 0 or np.any(np.diff(times) < 0)):
            raise ConfigurationError(
                "arrival_times must be non-negative and non-decreasing"
            )
    else:
        # scalar draws, exactly as before arrival_times existed: the
        # overload-smoke CI diffs runs byte for byte across versions
        acc, ticks = 0.0, []
        for _ in requests:
            acc += rng.exponential(1.0 / arrival_rate)
            ticks.append(acc)
        times = np.asarray(ticks, dtype=np.float64)
    reqs: list[_Req] = []
    for idx, (request, t) in enumerate(zip(requests, times)):
        now = float(t)
        req = _Req(request=request, arrival=now, idx=idx, remaining=set(request.items))
        req.last_delivery = now
        reqs.append(req)
        push(now, _ARRIVAL, req)

    while heap:
        now, _, kind, payload = heapq.heappop(heap)

        if kind == _ARRIVAL:
            req = payload
            if board is not None:
                board.advance()
            if load is not None:
                load.tick()
            if tracer is not None:
                req.span = tracer.start(
                    "request", at=now, idx=req.idx, n_items=req.request.size
                )
            dispatch_request(req, now)
            if not req.remaining and not req.outstanding:
                complete(req, now)  # everything shed/dropped: degenerate
                continue
            if hedge is not None and hedge.enabled:
                push(now + hedge.delay(), _HEDGE, req)
            if cfg.deadline is not None:
                push(now + cfg.deadline, _DEADLINE, req)

        elif kind == _TXN_DONE:
            txn = payload
            req = txn.req
            sid = txn.server
            latency = now - txn.dispatched_at
            if admissions is not None:
                admissions[sid].finished()
            if load is not None:
                load.finished(sid)
            if hedge is not None:
                hedge.observe(latency)
            if board is not None:
                if cfg.trip_latency is not None and latency > cfg.trip_latency:
                    board.record_failure(sid, hard=False)
                else:
                    board.record_success(sid)
            if txn in req.outstanding:
                req.outstanding.remove(txn)
            if tracer is not None and txn.span is not None:
                tracer.finish(txn.span, at=now)
            if req.completed:
                continue
            delivered = req.remaining.intersection(txn.items)
            if delivered:
                req.remaining.difference_update(delivered)
                req.last_delivery = now
                if txn.is_hedge and now < txn.rival_done and not txn.hedge_won:
                    txn.hedge_won.append(True)
                    stats["hedge_wins"] += 1
                    m_hedges["won"].inc()
            if not req.remaining:
                complete(req, req.last_delivery)

        elif kind == _HEDGE:
            req = payload
            if req.completed or not req.remaining or req.hedges_used >= (
                hedge.max_hedges if hedge is not None else 0
            ):
                continue
            # slowest outstanding bundle still owing items
            candidates = [
                t for t in req.outstanding if req.remaining.intersection(t.items)
            ]
            if not candidates:
                continue
            slowest = max(candidates, key=lambda t: (t.done_at, t.server))
            if slowest.done_at <= now:
                continue
            items = tuple(sorted(req.remaining.intersection(slowest.items)))
            exclude = {slowest.server}
            if board is not None:
                exclude |= board.exclusions()
            req.hedges_used += 1
            stats["hedges"] += 1
            m_hedges["fired"].inc()
            plan = plan_bundler.plan(
                Request(items=items), exclude=exclude
            )
            won_marker: list = []
            for txn in plan.transactions:
                dispatch(
                    req, txn.server, txn.primary, now,
                    is_hedge=True, rival_done=slowest.done_at,
                    hedge_won=won_marker,
                )
            if req.hedges_used < (hedge.max_hedges if hedge is not None else 0):
                push(now + hedge.delay(), _HEDGE, req)

        else:  # _DEADLINE
            req = payload
            if req.completed:
                continue
            # degrade, don't fail: answer with what we have, at the budget
            m_deadline.inc()
            req.deadline_cut += len(req.remaining)
            req.remaining.clear()
            req.last_delivery = now
            complete(req, now)

    # -- metrics -------------------------------------------------------------

    n = len(reqs)
    skip = int(n * warmup_fraction)
    measured = reqs[skip:]
    latencies = np.asarray(
        [r.completed_at - r.arrival + rtt for r in measured], dtype=np.float64
    )
    # servers may still be draining hedge losers after the last request
    # completes; utilization is busy time over the full busy horizon
    horizon = max(
        max((r.completed_at for r in reqs), default=0.0), float(server_free.max())
    )
    span = horizon if horizon > 0 else 1.0
    utilizations = busy_time / span

    total_items = sum(r.request.size for r in measured)
    shed = sum(r.shed for r in measured)
    dropped = sum(r.dropped for r in measured)
    cut = sum(r.deadline_cut for r in measured)
    denom = max(total_items, 1)

    lat_hist = registry.histogram(
        "rnb_request_latency_seconds", "end-to-end request latency", path="sim"
    )
    lat_hist.observe_many(latencies)
    degraded_measured = sum(
        1 for r in measured if r.shed or r.dropped or r.deadline_cut
    )
    registry.counter(
        "rnb_requests_total", "measured requests by outcome", path="sim", outcome="ok"
    ).inc(len(measured) - degraded_measured)
    registry.counter(
        "rnb_requests_total", "measured requests by outcome",
        path="sim", outcome="degraded",
    ).inc(degraded_measured)
    registry.counter(
        "rnb_requests_total", "measured requests by outcome",
        path="sim", outcome="failed",
    )
    for outcome, count in (
        ("served", total_items - shed - dropped - cut),
        ("shed", shed),
        ("dropped", dropped),
        ("deadline_cut", cut),
    ):
        registry.counter(
            "rnb_items_total", "measured items by outcome", path="sim", outcome=outcome
        ).inc(count)
    metrics_snapshot = registry.snapshot()
    return OverloadResult(
        n_requests=len(measured),
        mean_latency=float(latencies.mean()),
        p50_latency=float(np.percentile(latencies, 50)),
        p99_latency=float(np.percentile(latencies, 99)),
        p999_latency=float(np.percentile(latencies, 99.9)),
        max_utilization=float(utilizations.max()),
        mean_utilization=float(utilizations.mean()),
        served_fraction=1.0 - (shed + dropped + cut) / denom,
        shed_rate=shed / denom,
        drop_rate=dropped / denom,
        deadline_cut_rate=cut / denom,
        requests_degraded=stats["degraded"],
        requests_failed=0,
        hedges_issued=stats["hedges"],
        hedge_wins=stats["hedge_wins"],
        busy_verdicts=stats["busy"],
        breaker_transitions=board.transitions_total() if board is not None else 0,
        breaker_open_final=(
            board.counts()["open"] if board is not None else 0
        ),
        horizon=horizon,
        items_measured=total_items,
        partition_blocked=stats["unreachable"],
        ladder_counts=dict(stats["ladder"]),
        latencies=latencies,
        metrics=metrics_snapshot,
        metrics_token=registry.token(),
    )

"""Per-server load accounting and admission control (backpressure).

Two sides of the overload story live here:

* **Server side** — :class:`TokenBucket` and :class:`AdmissionControl`
  decide whether a server *accepts* a transaction.  A bounded queue plus
  a token bucket turn "the server silently grows an unbounded backlog"
  into an immediate, retryable BUSY verdict
  (:class:`repro.errors.ServerBusy`), which is what lets clients exploit
  replica freedom instead of stalling behind a hot server.
* **Client side** — :class:`LoadTracker` folds per-server signals the
  read path already observes (outstanding transactions, BUSY verdicts,
  EWMA of recent work) into a load estimate the load-aware cover
  tie-break consumes (:mod:`repro.overload.tiebreak`).

Everything here is deterministic: no wall clocks, no RNG.  Time, where
needed, is a caller-supplied float (the DES clock) or a logical tick.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


class TokenBucket:
    """Deterministic token-bucket rate limiter.

    Tokens refill continuously at ``rate`` per unit of caller-supplied
    time, capped at ``burst``.  ``try_acquire(now, n)`` either spends
    ``n`` tokens and admits, or rejects without side effects.  The clock
    is an argument rather than ``time.time`` so the simulator, the tick
    domain and tests all stay reproducible.
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ConfigurationError("rate must be positive")
        if burst <= 0:
            raise ConfigurationError("burst must be positive")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._last = 0.0
        self.admitted = 0
        self.rejected = 0

    def _refill(self, now: float) -> None:
        if now > self._last:
            self._tokens = min(self.burst, self._tokens + (now - self._last) * self.rate)
            self._last = now

    def tokens_at(self, now: float) -> float:
        """Token level at ``now`` without consuming anything."""
        self._refill(now)
        return self._tokens

    def try_acquire(self, now: float, n: float = 1.0) -> bool:
        """Admit (and spend ``n`` tokens) or reject; never blocks."""
        self._refill(now)
        if self._tokens >= n:
            self._tokens -= n
            self.admitted += 1
            return True
        self.rejected += 1
        return False


@dataclass(slots=True)
class AdmissionControl:
    """Bounded queue + optional token bucket for one server.

    ``queue_limit`` bounds the transactions a server may hold
    (in-service plus queued); ``bucket`` optionally rate-limits
    admissions on top.  ``try_admit`` is the single gate: it returns
    False — a BUSY verdict — instead of letting the backlog grow.  The
    caller owns queue occupancy bookkeeping via ``started`` / ``finished``
    because completion times are its domain (DES event heap, or the
    tick-domain request loop calling ``drain`` between requests).
    """

    queue_limit: int | None = None
    bucket: TokenBucket | None = None
    outstanding: int = 0
    busy_rejections: int = 0

    def __post_init__(self) -> None:
        if self.queue_limit is not None and self.queue_limit < 1:
            raise ConfigurationError("queue_limit must be >= 1 (or None)")

    def bind_metrics(self, registry, **labels) -> None:
        """Expose this gate as callback gauges on an obs registry.

        ``rnb_admission_outstanding`` and ``rnb_admission_rejects`` read
        live state at snapshot time; ``labels`` (typically ``server=``)
        distinguish gates in a fleet.  See docs/OBSERVABILITY.md.
        """
        registry.gauge(
            "rnb_admission_outstanding",
            "transactions currently admitted (in service or queued)",
            fn=lambda: float(self.outstanding),
            **labels,
        )
        registry.gauge(
            "rnb_admission_rejects",
            "lifetime BUSY verdicts issued by this gate",
            fn=lambda: float(self.busy_rejections),
            **labels,
        )

    def try_admit(self, now: float = 0.0, cost: float = 1.0) -> bool:
        """One admission decision; False means shed (BUSY)."""
        if self.queue_limit is not None and self.outstanding >= self.queue_limit:
            self.busy_rejections += 1
            return False
        if self.bucket is not None and not self.bucket.try_acquire(now, cost):
            self.busy_rejections += 1
            return False
        self.outstanding += 1
        return True

    def finished(self) -> None:
        """A previously admitted transaction left the server."""
        if self.outstanding > 0:
            self.outstanding -= 1

    def drain(self) -> None:
        """Tick-domain bookkeeping: all admitted work completed."""
        self.outstanding = 0


@dataclass(slots=True)
class _ServerLoad:
    """One server's client-observed load signals."""

    outstanding: int = 0
    ewma: float = 0.0
    busy: int = 0
    total_sent: int = 0


class LoadTracker:
    """Client-side per-server load estimate feeding the cover tie-break.

    The estimate blends what the client can actually observe:

    * ``outstanding`` — its own in-flight transactions per server;
    * ``ewma`` — exponentially weighted recent work sent to the server
      (items, so a 50-item bundle weighs more than a singleton);
    * ``busy`` — BUSY verdicts since the last decay, a strong signal the
      server's queue is full.

    ``load(sid)`` is the scalar the tie-break compares.  Ties in load
    fall back to the lowest server id, so a tracker with no signal
    reproduces the default ``"lowest"`` policy exactly — that identity
    is what makes the load-aware cover safe to keep always-on in
    overload deployments (property-tested in ``tests/overload``).
    """

    #: weight of one BUSY verdict relative to one in-flight item
    BUSY_WEIGHT = 8.0

    def __init__(self, n_servers: int, *, decay: float = 0.8) -> None:
        if n_servers < 1:
            raise ConfigurationError("n_servers must be >= 1")
        if not (0.0 <= decay < 1.0):
            raise ConfigurationError("decay must be in [0, 1)")
        self.decay = decay
        self._loads = [_ServerLoad() for _ in range(n_servers)]
        self._registry = None

    # -- metrics ----------------------------------------------------------

    def bind_metrics(self, registry) -> None:
        """Expose per-server load signals as callback gauges.

        ``rnb_server_load{server=...}`` is the tie-break scalar;
        ``rnb_server_outstanding`` / ``rnb_server_busy_signal`` /
        ``rnb_server_sent_transactions`` break it down.  This is the
        supported way to read the tracker's internals — reaching into
        the private ``_loads`` list is deprecated (docs/OBSERVABILITY.md
        release note) and the fields may move without notice.  Servers
        that join later (:meth:`ensure_capacity`) are bound
        automatically.
        """
        self._registry = registry
        for sid in range(len(self._loads)):
            self._bind_server(sid)

    def _bind_server(self, sid: int) -> None:
        if self._registry is None:
            return
        s = self._loads[sid]
        self._registry.gauge(
            "rnb_server_load",
            "client-side load estimate feeding the cover tie-break",
            server=sid,
            fn=lambda sid=sid: self.load(sid),
        )
        self._registry.gauge(
            "rnb_server_outstanding",
            "this client's in-flight transactions per server",
            server=sid,
            fn=lambda s=s: float(s.outstanding),
        )
        self._registry.gauge(
            "rnb_server_busy_signal",
            "BUSY verdicts since the last decay tick",
            server=sid,
            fn=lambda s=s: float(s.busy),
        )
        self._registry.gauge(
            "rnb_server_sent_transactions",
            "lifetime transactions dispatched to this server",
            server=sid,
            fn=lambda s=s: float(s.total_sent),
        )

    # -- fleet size -------------------------------------------------------

    def ensure_capacity(self, n_servers: int) -> None:
        """Grow the tracked id space (elastic join); never shrinks."""
        while len(self._loads) < n_servers:
            self._loads.append(_ServerLoad())
            if self._registry is not None:
                self._bind_server(len(self._loads) - 1)

    @property
    def n_servers(self) -> int:
        return len(self._loads)

    # -- observations -----------------------------------------------------

    def sent(self, sid: int, n_items: int = 1) -> None:
        """A transaction of ``n_items`` was dispatched to ``sid``."""
        s = self._loads[sid]
        s.outstanding += 1
        s.ewma += float(n_items)
        s.total_sent += 1

    def finished(self, sid: int) -> None:
        """A dispatched transaction completed (any outcome)."""
        s = self._loads[sid]
        if s.outstanding > 0:
            s.outstanding -= 1

    def busy(self, sid: int) -> None:
        """The server shed our transaction (BUSY verdict)."""
        self._loads[sid].busy += 1

    def tick(self) -> None:
        """Age the recent-work signals (call once per request/tick)."""
        for s in self._loads:
            s.ewma *= self.decay
            s.busy = 0 if s.busy == 0 else s.busy - 1

    # -- queries ----------------------------------------------------------

    def load(self, sid: int) -> float:
        """Comparable load scalar; higher means busier."""
        s = self._loads[sid]
        return s.outstanding + s.ewma + self.BUSY_WEIGHT * s.busy

    def loads(self) -> list[float]:
        return [self.load(sid) for sid in range(len(self._loads))]

    def snapshot(self) -> dict[int, dict[str, float]]:
        """Per-server signal breakdown (metrics/debugging)."""
        return {
            sid: {
                "outstanding": float(s.outstanding),
                "ewma": s.ewma,
                "busy": float(s.busy),
                "total_sent": float(s.total_sent),
            }
            for sid, s in enumerate(self._loads)
        }

"""Overload-robust serving: backpressure, breakers, hedging, degradation.

The fault stack (:mod:`repro.faults`) handles servers that die; this
package handles servers that are merely *drowning*.  It threads four
cooperating mechanisms through the read path (docs/OVERLOAD.md):

* admission control and load accounting (:mod:`repro.overload.load`);
* circuit breakers layered on the health tracker
  (:mod:`repro.overload.breaker`);
* load-aware cover tie-breaks (:mod:`repro.overload.tiebreak`);
* hedged bundles and deadline degradation ladders
  (:mod:`repro.overload.hedging`);

and composes them in an event-heap DES (:mod:`repro.overload.desim`)
that the ``hotspot`` experiment drives.
"""

from repro.overload.breaker import CLOSED, HALF_OPEN, OPEN, BreakerBoard, BreakerState
from repro.overload.desim import OverloadConfig, OverloadResult, simulate_overload
from repro.overload.hedging import (
    LADDER,
    HedgePolicy,
    ladder_required,
    validate_partial_fraction,
)
from repro.overload.load import AdmissionControl, LoadTracker, TokenBucket
from repro.overload.tiebreak import counter_tie_break, least_loaded_tie_break

__all__ = [
    "AdmissionControl",
    "BreakerBoard",
    "BreakerState",
    "CLOSED",
    "HALF_OPEN",
    "HedgePolicy",
    "LADDER",
    "LoadTracker",
    "OPEN",
    "OverloadConfig",
    "OverloadResult",
    "TokenBucket",
    "counter_tie_break",
    "ladder_required",
    "least_loaded_tie_break",
    "simulate_overload",
    "validate_partial_fraction",
]

"""Hedged bundle transactions and per-request deadline budgets.

**Hedging** (Dean & Barroso, *The Tail at Scale*): once a request has
waited past the ``quantile``-th latency of recently completed bundle
transactions, re-issue its slowest outstanding bundle to an *alternate*
cover — replica freedom guarantees one exists at R >= 2 — and take
whichever response lands first.  Hedging at a high quantile (the classic
p95) bounds the extra load to ~5% of transactions while cutting the
tail that stragglers and hot queues produce.

:class:`HedgePolicy` tracks the latency estimate over a bounded sliding
window of observed transaction latencies.  It is deterministic: the
delay is a pure function of the observation sequence (no wall clock, no
RNG), and before ``min_samples`` observations it falls back to
``initial_delay`` so cold starts neither hedge-storm nor never hedge.

**Deadline budgets**: every request gets ``deadline`` seconds; rather
than timing out, a request that cannot make its deadline degrades
through the ladder (docs/OVERLOAD.md):

1. **full** — the ordinary greedy cover over all admissible servers;
2. **partial** — a LIMIT-style partial cover (paper section III-F):
   serve at least ``partial_fraction`` of the items, any subset;
3. **distinguished** — one transaction per distinguished server,
   bypassing the cover entirely: the cheapest plan that still touches
   only pinned copies (never a cold replica).

:func:`ladder_required` maps a ladder level to the item count a plan
must deliver; the DES (:mod:`repro.overload.desim`) walks the ladder
when admission rejections or open breakers make the higher rung
infeasible, and accounts every degraded response as *served partial*,
never as a failure.
"""

from __future__ import annotations

import math
from collections import deque

from repro.errors import ConfigurationError

#: ladder levels, best to cheapest
LADDER = ("full", "partial", "distinguished")


class HedgePolicy:
    """Quantile-triggered hedging with a bounded observation window.

    Parameters
    ----------
    quantile:
        Latency quantile of recent transactions after which a still-
        outstanding bundle is hedged (0.95 hedges the slowest ~5%).
    initial_delay:
        Hedge trigger used until ``min_samples`` latencies are observed.
    min_delay:
        Floor under the computed trigger, so a burst of fast responses
        cannot drive the trigger to ~0 and hedge everything.
    window:
        Number of most recent latencies the quantile runs over.
    min_samples:
        Observations required before the empirical quantile is trusted.
    max_hedges:
        Hedge transactions allowed per request (1 = classic hedging).
    """

    def __init__(
        self,
        *,
        quantile: float = 0.95,
        initial_delay: float = 1e-3,
        min_delay: float = 1e-4,
        window: int = 512,
        min_samples: int = 32,
        max_hedges: int = 1,
    ) -> None:
        if not (0.0 < quantile < 1.0):
            raise ConfigurationError("quantile must be in (0, 1)")
        if initial_delay <= 0 or min_delay <= 0:
            raise ConfigurationError("delays must be positive")
        if window < min_samples or min_samples < 1:
            raise ConfigurationError("need 1 <= min_samples <= window")
        if max_hedges < 0:
            raise ConfigurationError("max_hedges must be >= 0")
        self.quantile = quantile
        self.initial_delay = initial_delay
        self.min_delay = min_delay
        self.window = window
        self.min_samples = min_samples
        self.max_hedges = max_hedges
        self._samples: deque[float] = deque(maxlen=window)

    @property
    def enabled(self) -> bool:
        return self.max_hedges > 0

    def observe(self, latency: float) -> None:
        """Fold in one completed transaction's latency."""
        if latency >= 0.0:
            self._samples.append(latency)

    def delay(self) -> float:
        """Current hedge trigger (seconds after dispatch)."""
        if len(self._samples) < self.min_samples:
            return max(self.initial_delay, self.min_delay)
        ordered = sorted(self._samples)
        # nearest-rank quantile: deterministic, no interpolation noise
        rank = min(len(ordered) - 1, int(math.ceil(self.quantile * len(ordered))) - 1)
        return max(ordered[max(rank, 0)], self.min_delay)


def ladder_required(level: str, n_items: int, partial_fraction: float) -> int:
    """Items a plan at ladder ``level`` must deliver.

    ``full`` and ``distinguished`` both promise every item (the
    distinguished rung degrades *cost*, not coverage — it gives up
    bundling, not items); ``partial`` promises the LIMIT quota.
    """
    if level not in LADDER:
        raise ConfigurationError(f"unknown ladder level {level!r}")
    if level == "partial":
        return min(n_items, max(1, math.ceil(partial_fraction * n_items)))
    return n_items


def validate_partial_fraction(partial_fraction: float) -> float:
    if not (0.0 < partial_fraction <= 1.0):
        raise ConfigurationError("partial_fraction must be in (0, 1]")
    return partial_fraction

"""Per-server circuit breakers (closed / open / half-open).

The :class:`repro.faults.health.HealthTracker` handles servers that
*die*: consecutive hard errors mark a server dead and one success (or an
authoritative recovery) rehabilitates it.  Overload looks different — a
server sheds or straggles *intermittently*, so consecutive-error
counting never trips, yet every request routed at it pays.  The
classic remedy is the circuit breaker (Nygard, *Release It!*):

* **closed** — traffic flows; failures within a sliding window are
  counted.  ``trip_after`` failures in the last ``window`` observations
  open the breaker.
* **open** — the server is excluded from covers exactly like a dead one
  (``tripped()`` feeds the same ``exclude`` set the health tracker's
  exclusions do).  After ``open_ticks`` (plus a seeded deterministic
  jitter so a fleet of breakers doesn't probe in lockstep) it moves to
  half-open.
* **half-open** — exactly one *probe* transaction is let through
  (:meth:`BreakerBoard.allow_probe`).  Success closes the breaker;
  failure re-opens it with the backoff doubled (capped).

The board is clock-driven by logical ticks (one per request in the
simulators; the DES maps its float clock onto ticks) and fully
deterministic: probe jitter comes from :func:`repro.hashing.hashfns.
hash64_int` keyed by ``(seed, server, trip_count)``, never from shared
RNG state.

Layering: the board *observes* a :class:`HealthTracker` when one is
passed — every ``record_success`` / ``record_error`` is forwarded — so
the read path keeps a single reporting call-site, and exclusions merge
dead and tripped servers with one union.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.faults.health import HealthTracker
from repro.hashing.hashfns import hash64_int

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(slots=True)
class BreakerState:
    """Mutable record for one server's breaker."""

    state: str = CLOSED
    #: sliding window of recent outcomes (True = failure)
    window: deque = field(default_factory=deque)
    failures_in_window: int = 0
    #: tick at which an OPEN breaker may go half-open
    retry_at: int = 0
    #: consecutive trips without an intervening close (backoff escalation)
    trip_streak: int = 0
    #: lifetime transitions, the soak experiment's "breaker transitions"
    transitions: int = 0
    #: True once the half-open probe slot has been handed out this period
    probe_inflight: bool = False


class BreakerBoard:
    """A fleet of circuit breakers sharing one config and logical clock.

    Parameters
    ----------
    n_servers:
        Fleet size (server ids ``0..n_servers-1``).
    trip_after:
        Failures within the sliding window that open the breaker.
    window:
        Number of most-recent observations the failure count runs over.
    open_ticks:
        Base ticks an open breaker waits before allowing a probe; the
        actual wait adds a seeded jitter of up to ``open_ticks // 2``
        and doubles per consecutive re-trip (capped at 8x).
    health:
        Optional :class:`HealthTracker` to forward observations to, so
        callers report each outcome exactly once.
    seed:
        Probe-jitter seed; two boards with equal seeds and observation
        sequences transition identically.
    """

    MAX_BACKOFF_FACTOR = 8

    def __init__(
        self,
        n_servers: int,
        *,
        trip_after: int = 3,
        window: int = 8,
        open_ticks: int = 10,
        health: HealthTracker | None = None,
        seed: int = 0,
    ) -> None:
        if n_servers < 1:
            raise ConfigurationError("n_servers must be >= 1")
        if trip_after < 1 or window < trip_after:
            raise ConfigurationError(
                "need 1 <= trip_after <= window; got "
                f"trip_after={trip_after}, window={window}"
            )
        if open_ticks < 1:
            raise ConfigurationError("open_ticks must be >= 1")
        self.trip_after = trip_after
        self.window = window
        self.open_ticks = open_ticks
        self.health = health
        self.seed = seed
        self.tick = 0
        self._breakers = [BreakerState() for _ in range(n_servers)]
        self._registry = None

    # -- metrics ----------------------------------------------------------

    #: numeric encoding of breaker states for the per-server gauge
    STATE_CODES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

    def bind_metrics(self, registry) -> None:
        """Expose breaker state as callback gauges on an obs registry.

        ``rnb_breaker_state{server=...}`` is 0/1/2 for
        closed/half-open/open, ``rnb_breakers{state=...}`` counts the
        fleet per state, and ``rnb_breaker_transitions`` is the lifetime
        transition total.  This replaces reaching into the private
        ``_breakers`` list, which is deprecated (docs/OBSERVABILITY.md
        release note).  Servers that join later
        (:meth:`ensure_capacity`) are bound automatically.
        """
        self._registry = registry
        for sid in range(len(self._breakers)):
            self._bind_server(sid)
        for state in (CLOSED, OPEN, HALF_OPEN):
            registry.gauge(
                "rnb_breakers",
                "breakers currently in each state",
                state=state,
                fn=lambda state=state: float(self.counts()[state]),
            )
        registry.gauge(
            "rnb_breaker_transitions",
            "lifetime breaker state transitions across the fleet",
            fn=lambda: float(self.transitions_total()),
        )

    def _bind_server(self, sid: int) -> None:
        if self._registry is None:
            return
        self._registry.gauge(
            "rnb_breaker_state",
            "per-server breaker state (0 closed, 1 half-open, 2 open)",
            server=sid,
            fn=lambda sid=sid: float(self.STATE_CODES[self.state(sid)]),
        )

    # -- fleet size -------------------------------------------------------

    @property
    def n_servers(self) -> int:
        return len(self._breakers)

    def ensure_capacity(self, n_servers: int) -> None:
        """Grow the tracked id space (elastic join); never shrinks."""
        while len(self._breakers) < n_servers:
            self._breakers.append(BreakerState())
            if self._registry is not None:
                self._bind_server(len(self._breakers) - 1)
        if self.health is not None:
            self.health.ensure_capacity(n_servers)

    # -- clock ------------------------------------------------------------

    def advance(self, ticks: int = 1) -> None:
        """Move the logical clock; open breakers ripen toward half-open."""
        self.tick += ticks
        for b in self._breakers:
            if b.state == OPEN and self.tick >= b.retry_at:
                b.state = HALF_OPEN
                b.probe_inflight = False
                b.transitions += 1

    # -- observations -----------------------------------------------------

    def _observe(self, sid: int, failure: bool) -> None:
        b = self._breakers[sid]
        b.window.append(failure)
        if failure:
            b.failures_in_window += 1
        while len(b.window) > self.window:
            if b.window.popleft():
                b.failures_in_window -= 1

    def _trip(self, sid: int) -> None:
        b = self._breakers[sid]
        if b.state != OPEN:
            b.transitions += 1
        b.state = OPEN
        b.trip_streak += 1
        factor = min(2 ** (b.trip_streak - 1), self.MAX_BACKOFF_FACTOR)
        jitter = hash64_int(sid * 1_000_003 + b.trip_streak, seed=self.seed) % (
            max(self.open_ticks // 2, 1)
        )
        b.retry_at = self.tick + self.open_ticks * factor + jitter
        b.window.clear()
        b.failures_in_window = 0
        b.probe_inflight = False

    def _success_local(self, sid: int) -> None:
        b = self._breakers[sid]
        if b.state == HALF_OPEN:
            # the probe came back: close and forgive the backoff streak
            b.state = CLOSED
            b.trip_streak = 0
            b.probe_inflight = False
            b.transitions += 1
            b.window.clear()
            b.failures_in_window = 0
            return
        self._observe(sid, failure=False)

    def _failure_local(self, sid: int) -> None:
        b = self._breakers[sid]
        if b.state == HALF_OPEN:
            self._trip(sid)  # probe failed: straight back to OPEN
            return
        if b.state == OPEN:
            return
        self._observe(sid, failure=True)
        if b.failures_in_window >= self.trip_after:
            self._trip(sid)

    def record_success(self, sid: int) -> None:
        """A transaction to ``sid`` completed normally."""
        if self.health is not None:
            self.health.record_success(sid)
        self._success_local(sid)

    def record_failure(self, sid: int, *, hard: bool = False) -> None:
        """A transaction to ``sid`` failed.

        ``hard`` marks failures that should also advance the health
        tracker's dead-server state machine (crash refusal, timeout);
        soft failures (BUSY sheds, deadline misses) only feed the
        breaker — a shedding server is *alive*, just overloaded, and
        must not be declared dead.
        """
        if self.health is not None and hard:
            self.health.record_error(sid)
        self._failure_local(sid)

    def record_recovery(self, sid: int) -> None:
        """Authoritative recovery: force the breaker closed, streak forgiven."""
        b = self._breakers[sid]
        if b.state != CLOSED:
            b.transitions += 1
        b.state = CLOSED
        b.trip_streak = 0
        b.probe_inflight = False
        b.window.clear()
        b.failures_in_window = 0

    def observe(self, sid: int, outcome: str) -> None:
        """:meth:`repro.faults.health.HealthTracker.add_observer` hook.

        The inverse wiring of ``health=``: a read path that already
        reports to a health tracker feeds this board for free.  Only
        breaker-side state is touched — never the health tracker — so
        the two wirings cannot recurse into each other.
        """
        if sid >= len(self._breakers):
            self.ensure_capacity(sid + 1)
        if outcome == "success":
            self._success_local(sid)
        elif outcome == "error":
            self._failure_local(sid)
        elif outcome == "recovery":
            self.record_recovery(sid)
        else:
            raise ConfigurationError(f"unknown health outcome {outcome!r}")

    # -- routing queries --------------------------------------------------

    def allow_probe(self, sid: int) -> bool:
        """Claim the single half-open probe slot for ``sid``.

        Returns True for exactly one caller per half-open period; the
        probe's outcome (``record_success`` / ``record_failure``)
        decides the next state.
        """
        b = self._breakers[sid]
        if b.state != HALF_OPEN or b.probe_inflight:
            return False
        b.probe_inflight = True
        return True

    def state(self, sid: int) -> str:
        return self._breakers[sid].state

    def tripped(self) -> frozenset[int]:
        """Servers covers must avoid: OPEN, plus HALF_OPEN ones whose
        probe slot is already taken."""
        return frozenset(
            sid
            for sid, b in enumerate(self._breakers)
            if b.state == OPEN or (b.state == HALF_OPEN and b.probe_inflight)
        )

    def exclusions(self) -> frozenset[int]:
        """Union of breaker trips and (when layered) health exclusions."""
        out = self.tripped()
        if self.health is not None:
            out = out | self.health.exclusions()
        return out

    def transitions_total(self) -> int:
        """Lifetime state transitions across the fleet (soak metric)."""
        return sum(b.transitions for b in self._breakers)

    def counts(self) -> dict[str, int]:
        """How many breakers are in each state."""
        out = {CLOSED: 0, OPEN: 0, HALF_OPEN: 0}
        for b in self._breakers:
            out[b.state] += 1
        return out

"""Cross-request merging (paper section III-E).

Real memcached front-ends (moxi, spymemcached — paper refs [12], [13])
collect several nearby end-user requests and issue them as one, halving
or better the per-original-request transaction count.  RnB composes with
merging, but the paper warns it can dilute *request locality*: items from
unrelated requests have no intrinsic affinity, so a merged cover may pick
different replicas than the per-request covers would, enlarging the
memory footprint under overbooking.

``merge_requests`` combines a window of requests into one; the union is
deduplicated because a multi-get for the same key twice costs the server
once.  TPR figures for merged workloads are reported **per original
request** (the paper normalises Fig 9/10 the same way), which callers get
by dividing by the window size — see
:func:`repro.sim.engine.run_simulation`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.types import Request


def merge_requests(requests: Sequence[Request]) -> Request:
    """Merge a batch of requests into a single deduplicated request.

    LIMIT clauses do not compose across users (each user needs *their*
    fraction), so merging requires plain requests.
    """
    if not requests:
        raise ValueError("cannot merge an empty batch")
    for r in requests:
        if r.limit_fraction is not None:
            raise ValueError("cannot merge LIMIT-style requests")
    seen: dict[int, None] = {}
    for r in requests:
        for item in r.items:
            seen.setdefault(item)
    return Request(items=tuple(seen))


def merge_stream(requests: Iterable[Request], window: int) -> Iterator[Request]:
    """Merge every ``window`` consecutive requests of a stream.

    ``window=1`` is the identity; the paper evaluates ``window=2``
    (Figs 9–10).  A trailing partial batch is merged as-is.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    batch: list[Request] = []
    for r in requests:
        batch.append(r)
        if len(batch) == window:
            yield merge_requests(batch)
            batch = []
    if batch:
        yield merge_requests(batch)

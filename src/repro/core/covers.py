"""Alternative cover strategies: quality/overhead companions to greedy.

The paper uses the greedy heuristic and notes that "considerable benefits
are obtained even with sub-optimal server selection" (section I-C), and
its future work asks about "the quality and overhead of the bundling
algorithms" at scale (section V-B).  This module provides the comparison
points:

* :func:`exact_min_cover` — optimal cover by branch-and-bound over
  bitmasks; exponential worst case, fine for request-sized instances
  (the quality yardstick).
* :func:`first_fit_cover` — the cheapest conceivable heuristic: walk the
  items in order, send each to its first replica already in use, else
  open its distinguished server.  O(M·R), no coverage counting at all.
* :func:`random_cover` — pick random useful servers until covered; the
  lower bound on cleverness.

All return :class:`repro.core.setcover.CoverResult`, so
:mod:`repro.experiments.cover_quality` can sweep them interchangeably
with :func:`repro.core.setcover.greedy_set_cover`.
"""

from __future__ import annotations

from typing import AbstractSet, Mapping, Sequence

from repro.core.setcover import CoverResult
from repro.errors import CoverError
from repro.utils.rng import ensure_rng


def _drop_excluded(
    subsets: Mapping[int, int], exclude: AbstractSet[int] | None
) -> Mapping[int, int]:
    if not exclude:
        return subsets
    return {k: v for k, v in subsets.items() if k not in exclude}


def _validate(subsets: Mapping[int, int], n_elements: int) -> int:
    union = 0
    for mask in subsets.values():
        union |= mask
    if union != (1 << n_elements) - 1:
        raise CoverError("instance is infeasible: union does not cover universe")
    return union


def _assignment_from_selection(
    subsets: Mapping[int, int], selection: Sequence[int], n_elements: int
) -> CoverResult:
    """Assign every element to the first selected set containing it."""
    uncovered = (1 << n_elements) - 1
    assignment: dict[int, int] = {}
    kept: list[int] = []
    for key in selection:
        newly = subsets[key] & uncovered
        if newly:
            assignment[key] = newly
            kept.append(key)
            uncovered &= ~newly
    return CoverResult(
        selected=tuple(kept),
        assignment=assignment,
        covered=(1 << n_elements) - 1 - uncovered,
        n_elements=n_elements,
    )


def exact_min_cover(
    subsets: Mapping[int, int],
    n_elements: int,
    *,
    exclude: AbstractSet[int] | None = None,
) -> CoverResult:
    """Optimal minimum set cover via branch-and-bound.

    Branches on the lowest uncovered element (it must be covered by one
    of the sets containing it), pruning with the best size found so far
    and a trivial ceil(remaining / max-set-size) lower bound.  Worst-case
    exponential; practical for the M <= ~200, N <= ~64 instances RnB
    requests produce.  ``exclude`` removes unavailable servers before
    solving (the instance must stay feasible without them).
    """
    if n_elements == 0:
        return CoverResult(selected=(), assignment={}, covered=0, n_elements=0)
    subsets = _drop_excluded(subsets, exclude)
    _validate(subsets, n_elements)
    keys = sorted(subsets, key=lambda k: -subsets[k].bit_count())
    masks = {k: subsets[k] for k in keys}
    max_size = max(m.bit_count() for m in masks.values())
    universe = (1 << n_elements) - 1

    best: list[int] | None = None

    def search(uncovered: int, chosen: list[int]) -> None:
        nonlocal best
        if uncovered == 0:
            if best is None or len(chosen) < len(best):
                best = list(chosen)
            return
        if best is not None:
            remaining = uncovered.bit_count()
            lower = len(chosen) + -(-remaining // max_size)
            if lower >= len(best):
                return
        target = uncovered & -uncovered  # lowest uncovered element
        for key in keys:
            if masks[key] & target:
                chosen.append(key)
                search(uncovered & ~masks[key], chosen)
                chosen.pop()

    search(universe, [])
    assert best is not None  # feasibility checked above
    return _assignment_from_selection(subsets, best, n_elements)


def first_fit_cover(
    replica_lists: Sequence[Sequence[int]],
    *,
    exclude: AbstractSet[int] | None = None,
) -> CoverResult:
    """O(M·R) cover with zero coverage counting.

    For each item in request order: if any of its replicas is a server we
    already opened, bundle it there (first such replica wins); otherwise
    open its distinguished server (replica 0).  This is the natural
    "streaming" client implementation and the floor the greedy cover is
    judged against.

    With ``exclude``, unavailable servers are never opened: an item falls
    back to its first *surviving* replica, and an item with no surviving
    replica is left uncovered (partial result — check ``is_full_cover``).
    """
    exclude = exclude or frozenset()

    opened: list[int] = []
    opened_set: set[int] = set()
    assignment: dict[int, int] = {}
    for i, servers in enumerate(replica_lists):
        if not servers and not exclude:
            raise CoverError(f"element {i} has an empty replica list")
        live = [s for s in servers if s not in exclude]
        if not live:
            continue  # every replica is down: degraded read, item missing
        chosen = next((s for s in live if s in opened_set), None)
        if chosen is None:
            chosen = live[0]
            opened.append(chosen)
            opened_set.add(chosen)
        assignment[chosen] = assignment.get(chosen, 0) | (1 << i)

    covered = 0
    for mask in assignment.values():
        covered |= mask
    return CoverResult(
        selected=tuple(opened),
        assignment=assignment,
        covered=covered,
        n_elements=len(replica_lists),
    )


def random_cover(
    subsets: Mapping[int, int],
    n_elements: int,
    *,
    rng=None,
    exclude: AbstractSet[int] | None = None,
) -> CoverResult:
    """Pick uniformly random *useful* servers until everything is covered.

    A useful server covers at least one uncovered element.  This is the
    "no bundling intelligence at all" reference point.  ``exclude``
    removes unavailable servers first (the instance must stay feasible).
    """
    if n_elements == 0:
        return CoverResult(selected=(), assignment={}, covered=0, n_elements=0)
    subsets = _drop_excluded(subsets, exclude)
    _validate(subsets, n_elements)
    rng = ensure_rng(rng)
    uncovered = (1 << n_elements) - 1
    selected: list[int] = []
    assignment: dict[int, int] = {}
    remaining = dict(subsets)
    while uncovered:
        useful = [k for k, m in remaining.items() if m & uncovered]
        choice = useful[int(rng.integers(len(useful)))]
        newly = remaining.pop(choice) & uncovered
        assignment[choice] = newly
        selected.append(choice)
        uncovered &= ~newly
    return CoverResult(
        selected=tuple(selected),
        assignment=assignment,
        covered=(1 << n_elements) - 1,
        n_elements=n_elements,
    )

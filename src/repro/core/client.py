"""The RnB client: executes fetch plans against a cluster.

Implements the full read path of paper sections III-A/C/D:

1. **Round one** — issue the plan's transactions (cover + hitchhikers).
2. **Miss handling** — items that missed (their replica was evicted under
   overbooking) and were not rescued by a hitchhiker hit elsewhere are
   fetched in a **second round** from their *distinguished copies*, which
   are pinned and never miss.  Second-round fetches are bundled by
   distinguished server, "so the penalty is not exactly a transaction per
   miss" (section III-D).
3. **Write-back** — a missed item is written "only to the replica that
   was the first to be picked by the greedy set cover algorithm"
   (section III-C2), i.e. the server where the planned fetch missed.

LIMIT requests (section III-F) stop the second round as soon as the
required item count has been reached, and skip it entirely when round one
already returned enough.
"""

from __future__ import annotations

from collections import defaultdict

from repro.cluster.cluster import Cluster
from repro.core.bundling import Bundler
from repro.errors import ConfigurationError
from repro.types import FetchPlan, FetchResult, ItemId, Request


class RnBClient:
    """Stateless front-end client executing RnB reads.

    Parameters
    ----------
    cluster:
        The simulated fleet to read from.
    bundler:
        Plan builder; its placer must be the cluster's placer, otherwise
        the client would look for replicas where none were provisioned.
    write_back:
        Write missed items back to the first-picked replica (paper
        policy).  Disable for ablation.
    """

    def __init__(
        self,
        cluster: Cluster,
        bundler: Bundler,
        *,
        write_back: bool = True,
    ) -> None:
        if bundler.placer is not cluster.placer:
            raise ConfigurationError(
                "bundler and cluster must share the same placer instance"
            )
        self.cluster = cluster
        self.bundler = bundler
        self.write_back = write_back

    # -- public API -----------------------------------------------------------

    def execute(self, request: Request) -> FetchResult:
        """Serve one end-user request; returns per-request metrics."""
        plan = self.bundler.plan(request)
        return self.execute_plan(plan)

    def execute_plan(self, plan: FetchPlan) -> FetchResult:
        request = plan.request
        obtained: set[ItemId] = set()
        missed: dict[ItemId, int] = {}  # item -> planned (first-picked) server
        servers_contacted: list[int] = []
        txn_sizes: list[int] = []
        items_transferred = 0

        # ---- round one ----
        for txn in plan.transactions:
            server = self.cluster.server(txn.server)
            hits, misses, hh_hits = server.multi_get(txn.primary, txn.hitchhikers)
            obtained.update(hits)
            obtained.update(hh_hits)
            for item in misses:
                missed[item] = txn.server
            servers_contacted.append(txn.server)
            txn_sizes.append(txn.n_items)
            items_transferred += len(hits) + len(hh_hits)

        # hitchhikers elsewhere may have rescued a miss
        still_missing = [i for i in missed if i not in obtained]

        # ---- write-back of missed items (DB fetch side effect) ----
        if self.write_back:
            for item in missed:
                if item not in obtained:
                    self.cluster.server(missed[item]).write_back(
                        item, stamp=self._authoritative_stamp(item)
                    )

        # ---- round two: distinguished copies ----
        second_round = 0
        required = request.required_items
        if still_missing and len(obtained) < required:
            groups: dict[int, list[ItemId]] = defaultdict(list)
            for item in still_missing:
                groups[self.bundler.placer.distinguished_for(item)].append(item)
            for server_id, group in self._second_round_order(groups):
                need = required - len(obtained)
                if need <= 0:
                    break
                fetch = group[:need] if request.limit_fraction is not None else group
                server = self.cluster.server(server_id)
                hits, misses2, _ = server.multi_get(fetch)
                # distinguished copies are pinned; a miss here means the
                # cluster was mis-provisioned
                if misses2:  # pragma: no cover - invariant guard
                    raise ConfigurationError(
                        f"distinguished copies missing on server {server_id}: {misses2}"
                    )
                obtained.update(hits)
                servers_contacted.append(server_id)
                txn_sizes.append(len(fetch))
                items_transferred += len(hits)
                second_round += 1

        return FetchResult(
            request=request,
            transactions=len(plan.transactions) + second_round,
            items_fetched=len(obtained),
            items_transferred=items_transferred,
            misses=len(missed),
            second_round_transactions=second_round,
            servers_contacted=tuple(servers_contacted),
            txn_sizes=tuple(txn_sizes),
        )

    def tally_plan(self, plan: FetchPlan) -> FetchResult:
        """Account a plan that cannot miss, without walking the stores.

        Precondition (the caller's to guarantee — the simulation engine
        checks it once per run): every planned primary item is resident on
        its transaction's server and *stays* resident, i.e. unlimited
        memory (``memory_factor=None``) with the pinned LRU policy, no
        hitchhikers, and no fault injection.  Under naive allocation every
        logical replica is preloaded and nothing is ever evicted, so each
        ``multi_get`` would return all-hits and the recency reordering it
        performs can never influence anything observable.  This method
        applies exactly the counter updates those all-hit transactions
        would and returns the identical :class:`FetchResult`
        (property-tested against :meth:`execute_plan`).
        """
        items_total = 0
        servers_contacted: list[int] = []
        txn_sizes: list[int] = []
        servers = self.cluster.servers
        for txn in plan.transactions:
            n = len(txn.primary)
            c = servers[txn.server].counters
            c.transactions += 1
            c.items_requested += n
            c.items_returned += n
            c.hits += n
            c.txn_sizes.add(n)
            servers_contacted.append(txn.server)
            txn_sizes.append(n)
            items_total += n
        return FetchResult(
            request=plan.request,
            transactions=len(plan.transactions),
            items_fetched=items_total,
            items_transferred=items_total,
            misses=0,
            second_round_transactions=0,
            servers_contacted=tuple(servers_contacted),
            txn_sizes=tuple(txn_sizes),
        )

    def tally_footprint(
        self, request: Request, footprint: tuple[tuple[int, int], ...]
    ) -> FetchResult:
        """Account a plan *footprint* — ``(server, n_primary)`` pairs.

        Same precondition and counter updates as :meth:`tally_plan`, but
        driven by ``Bundler.plan_footprints`` output so the fast path
        never materialises plan objects at all.  Returns the identical
        :class:`FetchResult` that ``execute_plan(plan(request))`` would.
        """
        items_total = 0
        servers = self.cluster.servers
        txn_sizes = []
        servers_contacted = []
        for sid, n in footprint:
            c = servers[sid].counters
            c.transactions += 1
            c.items_requested += n
            c.items_returned += n
            c.hits += n
            c.txn_sizes.add(n)
            servers_contacted.append(sid)
            txn_sizes.append(n)
            items_total += n
        return FetchResult(
            request=request,
            transactions=len(footprint),
            items_fetched=items_total,
            items_transferred=items_total,
            misses=0,
            second_round_transactions=0,
            servers_contacted=tuple(servers_contacted),
            txn_sizes=tuple(txn_sizes),
        )

    # -- helpers ---------------------------------------------------------------

    def _authoritative_stamp(self, item: ItemId):
        """Version stamp a DB-fetched copy of ``item`` should carry.

        The backing store serves the committed version, which the pinned
        distinguished copy mirrors — so write-backs inherit the
        distinguished server's stamp instead of installing an unversioned
        copy that anti-entropy would flag as divergent.  An unreachable
        home (chaos) yields ``None``: the copy is installed unversioned
        and reconciled by the scrubber later.
        """
        try:
            home = self.cluster.server(self.bundler.placer.distinguished_for(item))
        except (ConnectionError, OSError):
            return None
        return home.stamps.get(item)

    @staticmethod
    def _second_round_order(groups: dict[int, list[ItemId]]):
        """Largest groups first so LIMIT second rounds use fewest transactions;
        ties break on lowest server id for determinism."""
        return sorted(groups.items(), key=lambda kv: (-len(kv[1]), kv[0]))

"""The RnB mechanism itself: set-cover bundling and the client.

* :mod:`repro.core.setcover` — bit-set greedy minimum set cover, with the
  partial-cover variant used for LIMIT requests.
* :mod:`repro.core.bundling` — turns a request plus a replica placement
  into a :class:`repro.types.FetchPlan` (cover + single-item rule +
  hitchhikers).
* :mod:`repro.core.client` — executes plans against a
  :class:`repro.cluster.Cluster`, handling misses, second rounds and
  write-back.
* :mod:`repro.core.baselines` — the industry comparators from paper
  section II-C (no replication; full-system replication).
* :mod:`repro.core.merge` — cross-request merging (section III-E).
"""

from repro.core.baselines import FullReplicationClient, NoReplicationClient
from repro.core.bundling import Bundler
from repro.core.client import RnBClient
from repro.core.merge import merge_requests, merge_stream
from repro.core.setcover import CoverResult, greedy_partial_cover, greedy_set_cover

__all__ = [
    "Bundler",
    "CoverResult",
    "FullReplicationClient",
    "NoReplicationClient",
    "RnBClient",
    "greedy_partial_cover",
    "greedy_set_cover",
    "merge_requests",
    "merge_stream",
]

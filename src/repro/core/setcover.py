"""Bit-set greedy minimum set cover.

Finding the minimum group of servers that jointly hold all requested
items is the classic NP-complete minimum set cover problem (Karp 1972;
paper section III-A), so RnB uses the greedy approximation: repeatedly
pick the server covering the most still-uncovered items.  Greedy achieves
the optimal ln(n)+1 approximation ratio, and the paper observes it is
"extremely good" on RnB instances in the mean.

Following the paper's proof-of-concept (section IV: "an implementation
based on bit-sets, which finds a cover solution using a relatively small
number of CPU cycles"), sets are Python integers used as bit vectors over
the request's items, so one greedy step over an N-server candidate list
costs N ``and``/``popcount`` machine-word operations.

Two implementations share the same contract:

* :func:`greedy_partial_cover` — the production kernel.  It is an
  *incremental* (lazy-decreasing) greedy: per-server gains live in a
  priority heap and are revalidated only when a server reaches the top
  (Minoux's accelerated greedy, 1978).  Because gains are submodular —
  covering elements can only shrink another server's marginal gain — a
  heap entry whose recorded gain matches its recomputed gain is globally
  maximal, so each pick touches only the handful of servers whose gains
  went stale instead of rescanning every candidate.
* :func:`greedy_partial_cover_reference` — the original O(S·picks)
  rescan loop, kept as the executable specification.  Property tests
  assert the kernel matches it pick-for-pick (selection order,
  assignment masks, rng consumption) on random instances.

Tie-breaking matters for RnB beyond determinism: breaking ties toward the
lowest server id makes replica choices *sticky* across similar requests,
which is what lets per-server LRUs identify globally cold replicas
(section III-C1, Fig 7).  A randomised tie-break is provided for the
ablation that quantifies this effect.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import AbstractSet, Callable, Mapping, Sequence, TypeAlias

import numpy as np

from repro.errors import CoverError

#: Tie-break policy: ``"lowest"`` / ``"random"``, or a callable that
#: receives the tied candidate keys (ascending) and returns the winner.
TieBreak: TypeAlias = "str | Callable[[Sequence[int]], int]"


@dataclass(frozen=True, slots=True)
class CoverResult:
    """Outcome of a (partial) greedy cover.

    ``selected`` lists chosen set keys in pick order; ``assignment`` maps
    each chosen key to the bitmask of elements it *newly* covered (the
    items that will be fetched from that server); ``covered`` is the union
    bitmask.
    """

    selected: tuple[int, ...]
    assignment: dict[int, int]
    covered: int
    n_elements: int

    @property
    def n_covered(self) -> int:
        return self.covered.bit_count()

    @property
    def n_selected(self) -> int:
        return len(self.selected)

    def is_full_cover(self) -> bool:
        return self.n_covered == self.n_elements

    def missing_indices(self) -> tuple[int, ...]:
        """Element indices left uncovered (empty for a full cover).

        Non-empty only for partial covers: LIMIT requests that stopped
        early, or degraded covers where every replica of an element sat
        on an excluded (failed) server.
        """
        missing = ~self.covered & ((1 << self.n_elements) - 1)
        out = []
        while missing:
            low = missing & -missing
            out.append(low.bit_length() - 1)
            missing ^= low
        return tuple(out)


def _resolve_tie_break(tie_break: TieBreak, rng: np.random.Generator | None):
    if callable(tie_break):
        return tie_break
    if tie_break == "lowest":
        return lambda candidates: candidates[0]
    if tie_break == "random":
        if rng is None:
            raise ValueError("tie_break='random' requires an rng")
        return lambda candidates: candidates[int(rng.integers(len(candidates)))]
    raise ValueError(f"unknown tie_break {tie_break!r}")


def _trim_overshoot(newly: int, need: int) -> int:
    """LIMIT trimming: keep only ``need`` elements of ``newly`` (lowest
    element indices first, deterministic)."""
    trimmed = 0
    for _ in range(need):
        low = newly & -newly
        trimmed |= low
        newly ^= low
    return trimmed


def greedy_partial_cover(
    subsets: Mapping[int, int],
    n_elements: int,
    required: int,
    *,
    tie_break: TieBreak = "lowest",
    rng: np.random.Generator | None = None,
    exclude: AbstractSet[int] | None = None,
    allow_partial: bool = False,
) -> CoverResult:
    """Greedy cover stopping once ``required`` elements are covered.

    Incremental (lazy-decreasing) kernel: picks are identical to
    :func:`greedy_partial_cover_reference`, but each greedy step costs
    O(stale log S) heap work instead of an O(S) rescan of every
    candidate.

    Parameters
    ----------
    subsets:
        Maps a set key (server id) to a bitmask over ``n_elements``
        element indices.
    n_elements:
        Universe size; element indices are ``0..n_elements-1``.
    required:
        Stop when this many elements are covered.  ``required ==
        n_elements`` is the ordinary full cover; smaller values implement
        the LIMIT clause (paper section III-F): "ceasing to pick servers
        after enough items are covered".
    tie_break:
        ``"lowest"`` (stable, locality-friendly), ``"random"`` (ablation),
        or a callable receiving the tied candidate keys.
    exclude:
        Set keys (server ids) that must not be chosen — the failover
        path passes the servers currently believed down.  Excluded keys
        are removed before the union feasibility check, so an element
        whose every replica is excluded counts as uncoverable.
    allow_partial:
        Degraded-read mode: instead of raising on an infeasible
        instance, cover as many of the required elements as the
        surviving subsets allow and return a partial
        :class:`CoverResult` (``missing_indices`` lists the casualties).

    Raises
    ------
    CoverError
        If fewer than ``required`` elements appear in the union of all
        (non-excluded) subsets and ``allow_partial`` is false.
    """
    if not (0 <= required <= n_elements):
        raise ValueError(f"required must be in [0, n_elements]; got {required}")
    lowest = tie_break == "lowest"
    pick = None if lowest else _resolve_tie_break(tie_break, rng)
    if exclude:
        subsets = {k: v for k, v in subsets.items() if k not in exclude}
    # The no-exclude path reads ``subsets`` in place: the kernel never
    # mutates the mapping, so no defensive copy is needed.

    union = 0
    for mask in subsets.values():
        union |= mask
    if union.bit_count() < required:
        if not allow_partial:
            raise CoverError(
                f"instance is infeasible: union covers {union.bit_count()} of the "
                f"{required} required elements"
            )
        required = union.bit_count()

    selected: list[int] = []
    assignment: dict[int, int] = {}
    covered = 0
    if required == 0:
        return CoverResult(
            selected=(), assignment=assignment, covered=0, n_elements=n_elements
        )

    # Heap of (-recorded_gain, key).  Recorded gains are upper bounds on
    # the true marginal gain (gains only decrease as coverage grows), so
    # an entry whose recomputed gain equals its recorded gain is maximal.
    # Keys are inserted in ascending order purely for determinism of the
    # initial heapify; correctness rests on tuple ordering alone.
    heap: list[tuple[int, int]] = []
    for key in sorted(subsets):
        gain = subsets[key].bit_count()
        if gain:
            heap.append((-gain, key))
    heapq.heapify(heap)

    uncovered = (1 << n_elements) - 1
    covered_count = 0

    while covered_count < required:
        # Revalidate the top until its recorded gain is fresh.
        while heap:
            neg_gain, key = heap[0]
            actual = (subsets[key] & uncovered).bit_count()
            if actual == -neg_gain:
                break
            if actual:
                heapq.heapreplace(heap, (-actual, key))
            else:
                heapq.heappop(heap)
        if not heap:  # pragma: no cover - guarded by union check above
            raise CoverError("greedy stalled before reaching required coverage")
        best_gain = -heap[0][0]

        if lowest:
            # Tuple order already yields the lowest key among maximal
            # gains: any lower key with true gain == best_gain would have
            # a recorded gain >= best_gain and therefore sit above the
            # validated top — impossible.
            choice = heapq.heappop(heap)[1]
        else:
            # Collect *all* keys whose true gain equals best_gain.  Only
            # entries with recorded gain == best_gain can qualify (the
            # top is the maximum recorded gain), and equal-priority pops
            # arrive in ascending key order, matching the reference
            # scan's candidate order.
            candidates: list[int] = []
            stale: list[tuple[int, int]] = []
            while heap and -heap[0][0] == best_gain:
                neg_gain, key = heapq.heappop(heap)
                actual = (subsets[key] & uncovered).bit_count()
                if actual == best_gain:
                    candidates.append(key)
                elif actual:
                    stale.append((-actual, key))
            choice = pick(candidates)
            for key in candidates:
                if key != choice:
                    heapq.heappush(heap, (-best_gain, key))
            for entry in stale:
                heapq.heappush(heap, entry)

        newly = subsets[choice] & uncovered

        # LIMIT trimming: if the last pick overshoots, keep only as many
        # items as needed (lowest element indices first, deterministic).
        need = required - covered_count
        if best_gain > need:
            newly = _trim_overshoot(newly, need)

        selected.append(choice)
        assignment[choice] = newly
        covered |= newly
        uncovered &= ~newly
        covered_count = covered.bit_count()

    return CoverResult(
        selected=tuple(selected),
        assignment=assignment,
        covered=covered,
        n_elements=n_elements,
    )


def greedy_partial_cover_reference(
    subsets: Mapping[int, int],
    n_elements: int,
    required: int,
    *,
    tie_break: TieBreak = "lowest",
    rng: np.random.Generator | None = None,
    exclude: AbstractSet[int] | None = None,
    allow_partial: bool = False,
) -> CoverResult:
    """The original rescan greedy — executable specification.

    Recomputes every candidate's gain on every pick (O(S·picks)).  Kept
    for the property tests that pin the incremental kernel to it, and as
    the "pre-PR pipeline" side of ``rnb perfbench``.  Semantics and
    parameters are identical to :func:`greedy_partial_cover`.
    """
    if not (0 <= required <= n_elements):
        raise ValueError(f"required must be in [0, n_elements]; got {required}")
    pick = _resolve_tie_break(tie_break, rng)
    if exclude:
        subsets = {k: v for k, v in subsets.items() if k not in exclude}

    union = 0
    for mask in subsets.values():
        union |= mask
    if union.bit_count() < required:
        if not allow_partial:
            raise CoverError(
                f"instance is infeasible: union covers {union.bit_count()} of the "
                f"{required} required elements"
            )
        required = union.bit_count()

    # Work on a mutable copy; keys sorted once so "lowest" tie-break and
    # iteration order are deterministic regardless of dict order.
    remaining = {k: subsets[k] for k in sorted(subsets)}
    uncovered = (1 << n_elements) - 1
    covered = 0
    selected: list[int] = []
    assignment: dict[int, int] = {}

    while covered.bit_count() < required:
        best_gain = 0
        candidates: list[int] = []
        for key, mask in remaining.items():
            gain = (mask & uncovered).bit_count()
            if gain > best_gain:
                best_gain = gain
                candidates = [key]
            elif gain == best_gain and gain > 0:
                candidates.append(key)
        if best_gain == 0:  # pragma: no cover - guarded by union check above
            raise CoverError("greedy stalled before reaching required coverage")
        choice = pick(candidates)
        newly = remaining[choice] & uncovered

        need = required - covered.bit_count()
        if newly.bit_count() > need:
            newly = _trim_overshoot(newly, need)

        selected.append(choice)
        assignment[choice] = newly
        covered |= newly
        uncovered &= ~newly
        del remaining[choice]

    return CoverResult(
        selected=tuple(selected),
        assignment=assignment,
        covered=covered,
        n_elements=n_elements,
    )


def greedy_set_cover(
    subsets: Mapping[int, int],
    n_elements: int,
    *,
    tie_break: TieBreak = "lowest",
    rng: np.random.Generator | None = None,
    exclude: AbstractSet[int] | None = None,
    allow_partial: bool = False,
) -> CoverResult:
    """Full greedy set cover (cover every element)."""
    return greedy_partial_cover(
        subsets,
        n_elements,
        n_elements,
        tie_break=tie_break,
        rng=rng,
        exclude=exclude,
        allow_partial=allow_partial,
    )


def cover_from_replica_lists(
    replica_lists: Sequence[Sequence[int]],
    *,
    required: int | None = None,
    tie_break: TieBreak = "lowest",
    rng: np.random.Generator | None = None,
    exclude: AbstractSet[int] | None = None,
    allow_partial: bool = False,
) -> CoverResult:
    """Convenience wrapper: build server bitmasks from per-item replica lists.

    ``replica_lists[i]`` is the list of servers holding element ``i``.
    This is the exact shape the bundler produces; exposed separately so
    tests and the Monte-Carlo simulator can call the solver directly.

    With ``exclude`` / ``allow_partial`` this is the failover re-cover:
    residual items are covered from surviving replicas only, and items
    with no surviving replica are reported via ``missing_indices()``
    instead of raising (when ``allow_partial`` is set).
    """
    subsets: dict[int, int] = {}
    for i, servers in enumerate(replica_lists):
        if not servers and not allow_partial:
            raise CoverError(f"element {i} has an empty replica list")
        bit = 1 << i
        for s in servers:
            subsets[s] = subsets.get(s, 0) | bit
    n = len(replica_lists)
    return greedy_partial_cover(
        subsets,
        n,
        n if required is None else required,
        tie_break=tie_break,
        rng=rng,
        exclude=exclude,
        allow_partial=allow_partial,
    )

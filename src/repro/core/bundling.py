"""The Bundler: request + placement → fetch plan.

Bundling is the "B" of RnB (paper section III-A): compute the replica
locations of every requested item, pick a small group of servers that
jointly possess (enough of) the request set via greedy set cover, and
bundle all items assigned to a server into one transaction.

Two refinements from the paper are applied after the cover:

* **Single-item rule** (section III-C1): "whenever an item is not
  bundled, we access its distinguished copy in order not to pollute other
  server caches with its copies."  Any transaction left with exactly one
  item is redirected to that item's distinguished server; redirected
  items headed for the same distinguished server are re-bundled together,
  and items whose plan already includes a transaction to their
  distinguished server simply join it.
* **Hitchhiking** (section III-C2): every transaction additionally
  carries, as redundant *hitchhikers*, all other requested items that
  have a logical replica on that server.  Hitchhikers cost traffic but no
  transactions, and rescue first-round misses under overbooking.
"""

from __future__ import annotations

from collections import defaultdict
from typing import AbstractSet, Iterable, Sequence

import numpy as np

from repro.cluster.placement import ReplicaPlacer
from repro.core.setcover import greedy_partial_cover
from repro.errors import CoverError
from repro.perf.batchcover import (
    HAS_BITWISE_COUNT,
    MAX_BATCH_ELEMENTS,
    CoverWorkspace,
    batch_greedy_cover,
    batch_greedy_cover_wide,
    batch_masks,
)
from repro.types import FetchPlan, ItemId, Request, Transaction
from repro.utils.bitset import iter_bits


class Bundler:
    """Builds :class:`FetchPlan` objects for requests.

    Parameters
    ----------
    placer:
        The replica placement in force.
    hitchhiking:
        Enable the hitchhiker enhancement.
    single_item_rule:
        Apply the single-item → distinguished-copy redirection.
    tie_break:
        Greedy tie-breaking policy (see :mod:`repro.core.setcover`).
    rng:
        Required when ``tie_break="random"``.
    metrics:
        Optional :class:`repro.obs.MetricsRegistry`.  When set, every
        finished plan increments ``rnb_plans_total`` (labelled by the
        tie-break policy in force) and records its transaction count in
        the ``rnb_cover_size`` histogram — the distribution-level
        evidence the paper's cover-size argument rests on.  ``None``
        (the default) costs one predictable branch per plan.
    """

    def __init__(
        self,
        placer: ReplicaPlacer,
        *,
        hitchhiking: bool = False,
        single_item_rule: bool = True,
        tie_break="lowest",
        rng: np.random.Generator | None = None,
        metrics=None,
    ) -> None:
        self.placer = placer
        self.hitchhiking = hitchhiking
        self.single_item_rule = single_item_rule
        self.tie_break = tie_break
        self.rng = rng
        self.metrics = metrics
        #: lazily-created scratch shared by every batch cover this
        #: bundler plans (one allocation per sweep, not per chunk)
        self._workspace: CoverWorkspace | None = None
        if metrics is not None:
            policy = tie_break if isinstance(tie_break, str) else "callable"
            self._m_plans = metrics.counter(
                "rnb_plans_total", "cover plans computed", tie_break=policy
            )
            self._m_cover = metrics.histogram(
                "rnb_cover_size", "transactions per fetch plan"
            )
        else:
            self._m_plans = None
            self._m_cover = None

    def _record_plan(self, n_transactions: int) -> None:
        if self._m_plans is not None:
            self._m_plans.inc()
            self._m_cover.observe(n_transactions)

    def _record_plan_sizes(self, sizes: list[int]) -> None:
        """Bulk :meth:`_record_plan` for the vectorised batch path.

        Cover sizes are small integers that repeat heavily across a
        batch, so grouping them first turns ~N hook calls into one
        counter add plus one histogram upsert per distinct size — the
        difference between the telemetry layer costing a few percent of
        the fast path and costing nothing measurable.
        """
        if self._m_plans is None or not sizes:
            return
        self._m_plans.inc(len(sizes))
        grouped: dict[int, int] = {}
        for size in sizes:
            grouped[size] = grouped.get(size, 0) + 1
        for size, n in grouped.items():
            self._m_cover.observe_n(size, n)

    # -- plan construction -------------------------------------------------

    def plan(
        self, request: Request, *, exclude: AbstractSet[int] | None = None
    ) -> FetchPlan:
        """Compute the first-round transactions for ``request``.

        ``exclude`` names servers currently believed unavailable (from a
        :class:`repro.faults.health.HealthTracker` or a failed first
        attempt): they are never chosen, residual items are covered from
        surviving replicas, and items with no surviving replica are left
        out of the plan entirely — the caller reports them as a partial
        (degraded) result.
        """
        items: Sequence[ItemId] = request.items
        n = len(items)
        if n == 0:
            self._record_plan(0)
            return FetchPlan(request=request, transactions=())

        replica_sets = [self.placer.servers_for(item) for item in items]

        # Build per-server bitmasks over request-local item indices.
        subsets: dict[int, int] = {}
        for idx, servers in enumerate(replica_sets):
            bit = 1 << idx
            for s in servers:
                subsets[s] = subsets.get(s, 0) | bit

        cover = greedy_partial_cover(
            subsets,
            n,
            request.required_items,
            tie_break=self.tie_break,
            rng=self.rng,
            exclude=exclude,
            allow_partial=bool(exclude),
        )

        # server -> list of request-local indices assigned to it
        assigned: dict[int, list[int]] = {
            server: list(iter_bits(mask)) for server, mask in cover.assignment.items()
        }
        return self._finish(request, items, replica_sets, assigned, exclude)

    def plan_distinguished(
        self, request: Request, items: Sequence[ItemId] | None = None
    ) -> FetchPlan:
        """Plan ``request`` (or a subset of its items) on distinguished
        copies only — no cover, no replica freedom.

        The bottom rung of the overload degradation ladder
        (:mod:`repro.overload.hedging`): every item routes straight to
        its pinned home copy, grouping items that share one.  Gives up
        bundling quality, never coverage — a distinguished copy always
        exists and never misses — so it is the cheapest plan that still
        touches only pinned copies.  Hitchhiking is deliberately skipped:
        a client degrading under overload must not inflate payloads.
        """
        wanted: Sequence[ItemId] = request.items if items is None else items
        by_home: dict[int, list[ItemId]] = defaultdict(list)
        for item in wanted:
            by_home[self.placer.distinguished_for(item)].append(item)
        transactions = tuple(
            Transaction(server=server, primary=tuple(by_home[server]))
            for server in sorted(by_home)
        )
        self._record_plan(len(transactions))
        return FetchPlan(request=request, transactions=transactions)

    def plan_batch(
        self, requests: Iterable[Request], *, exclude: AbstractSet[int] | None = None
    ) -> list[FetchPlan]:
        """Plan a chunk of requests at once; same plans as :meth:`plan`.

        When the placer is a compiled :class:`repro.perf.PlacementTable`
        and the chunk is on the default path (no exclusions, ``lowest``
        tie-break), placement lookups run as one batch array index and the
        greedy covers run lock-step in NumPy (single-lane kernel for
        requests of at most 63 items, multi-lane for wider ones).
        Requests the vectorised cover cannot express — empty, LIMIT, or
        with items outside the compiled universe — fall back to
        :meth:`plan` individually, so ``plan_batch(reqs)[i]`` equals
        ``plan(reqs[i])`` for *every* request (property-tested).
        """
        requests = list(requests)
        lookup = getattr(self.placer, "lookup", None)
        if (
            lookup is None
            or exclude is not None
            or self.tie_break != "lowest"
            or not HAS_BITWISE_COUNT
        ):
            return [self.plan(r, exclude=exclude) for r in requests]

        eligible = [
            i
            for i, r in enumerate(requests)
            if 0 < len(r.items) and r.required_items == len(r.items)
        ]
        plans: list[FetchPlan | None] = [None] * len(requests)
        if eligible:
            flat = [item for i in eligible for item in requests[i].items]
            try:
                items_arr = np.array(flat, dtype=np.int64)
            except (TypeError, ValueError, OverflowError):
                items_arr = None  # non-integer item ids: scalar path
            if items_arr is not None and (
                items_arr.min() < 0 or items_arr.max() >= self.placer.n_items
            ):
                items_arr = None  # outside the compiled universe
            if items_arr is None:
                eligible = []
        if eligible:
            counts = np.array([len(requests[i].items) for i in eligible])
            offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
            servers = lookup(items_arr)
            try:
                picks = self._batch_covers(counts, offsets, servers)
            except CoverError:
                # Re-plan individually so the failing request raises the
                # scalar solver's precise error.
                eligible = []
            else:
                server_rows = servers.tolist()
                bounds = offsets.tolist()
                sizes = counts.tolist()
                fast_finish = not self.hitchhiking
                for row, i in enumerate(eligible):
                    request = requests[i]
                    lo = bounds[row]
                    replica_sets = server_rows[lo : lo + sizes[row]]
                    if fast_finish:
                        plans[i] = self._finish_masks(
                            request, request.items, replica_sets, picks[row]
                        )
                    else:
                        assigned = {
                            server: list(iter_bits(mask)) for server, mask in picks[row]
                        }
                        plans[i] = self._finish(
                            request, request.items, replica_sets, assigned, None
                        )
        for i, plan in enumerate(plans):
            if plan is None:
                plans[i] = self.plan(requests[i])
        return plans

    def plan_footprints(
        self, requests: Iterable[Request]
    ) -> list[tuple[tuple[int, int], ...]]:
        """Per request, the ``(server, n_primary)`` pairs of its plan.

        Exactly ``tuple((t.server, len(t.primary)) for t in
        plan(r).transactions)`` for every request, but computed without
        materialising :class:`FetchPlan` / :class:`Transaction` objects:
        in the no-miss regime (see ``RnBClient.tally_footprint``) the
        executor only ever reads transaction servers and sizes, so
        decoding assignment masks back into item tuples is pure overhead.
        Falls back to :meth:`plan` per request off the vectorised
        envelope.  Hitchhiking bundlers always fall back (hitchhikers
        change transaction payloads, which a footprint does not carry).
        """
        requests = list(requests)
        lookup = getattr(self.placer, "lookup", None)
        footprints: list[tuple[tuple[int, int], ...] | None] = [None] * len(requests)
        eligible: list[int] = []
        if (
            lookup is not None
            and not self.hitchhiking
            and self.tie_break == "lowest"
            and HAS_BITWISE_COUNT
        ):
            eligible = [
                i
                for i, r in enumerate(requests)
                if 0 < len(r.items) and r.required_items == len(r.items)
            ]
        if eligible:
            flat = [item for i in eligible for item in requests[i].items]
            try:
                items_arr = np.array(flat, dtype=np.int64)
            except (TypeError, ValueError, OverflowError):
                items_arr = None
            if items_arr is not None and (
                items_arr.min() < 0 or items_arr.max() >= self.placer.n_items
            ):
                items_arr = None
            if items_arr is None:
                eligible = []
        if eligible:
            counts = np.array([len(requests[i].items) for i in eligible])
            offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
            servers = lookup(items_arr)
            try:
                picks = self._batch_covers(counts, offsets, servers)
            except CoverError:
                eligible = []
            else:
                home_col = servers[:, 0].tolist()
                bounds = offsets.tolist()
                single_rule = self.single_item_rule
                sizes: list[int] = []
                for row, i in enumerate(eligible):
                    merged: dict[int, int] = {}
                    if single_rule:
                        lo = bounds[row]
                        singles: list[int] = []
                        for server, mask in picks[row]:
                            if mask & (mask - 1):
                                merged[server] = mask
                            else:
                                singles.append(mask)
                        for mask in singles:
                            home = home_col[lo + mask.bit_length() - 1]
                            merged[home] = merged.get(home, 0) | mask
                    else:
                        merged.update(picks[row])
                    footprints[i] = tuple(
                        (server, merged[server].bit_count())
                        for server in sorted(merged)
                    )
                    sizes.append(len(footprints[i]))
                self._record_plan_sizes(sizes)
        for i, footprint in enumerate(footprints):
            if footprint is None:
                footprints[i] = tuple(
                    (t.server, len(t.primary))
                    for t in self.plan(requests[i]).transactions
                )
        return footprints

    def _batch_covers(
        self, counts: np.ndarray, offsets: np.ndarray, servers: np.ndarray
    ) -> list[list[tuple[int, int]]]:
        """Greedy covers for a flattened chunk: per request, ``[(server,
        assignment_mask), ...]`` in selection order.

        Requests up to 63 items go through the single-lane kernel in one
        call; the heavy tail goes through the multi-lane kernel.
        """
        n_requests = counts.shape[0]
        n_servers = self.placer.n_servers
        req_of_item = np.repeat(np.arange(n_requests), counts)
        local = np.arange(servers.shape[0]) - offsets[req_of_item]
        picks: list[list[tuple[int, int]]] = [[] for _ in range(n_requests)]

        # 0-item requests (LIMIT-stripped) have an empty cover by
        # definition: keep them out of both kernels so lane/mask
        # allocation never sees a zero-width request.
        narrow = (counts > 0) & (counts <= MAX_BATCH_ELEMENTS)
        narrow_rows = np.flatnonzero(narrow)
        if narrow_rows.size:
            workspace = self._workspace
            if workspace is None or workspace.n_servers != n_servers:
                workspace = self._workspace = CoverWorkspace(n_servers)
            sel = narrow[req_of_item]
            row_of = np.cumsum(narrow) - 1  # chunk row -> narrow row
            masks = batch_masks(
                row_of[req_of_item[sel]],
                np.uint64(1) << local[sel].astype(np.uint64),
                servers[sel],
                narrow_rows.size,
                n_servers,
                workspace=workspace,
            )
            full = (np.uint64(1) << counts[narrow_rows].astype(np.uint64)) - np.uint64(
                1
            )
            for row, row_picks in zip(
                narrow_rows.tolist(),
                batch_greedy_cover(masks, full, workspace=workspace),
            ):
                picks[row] = row_picks

        wide = counts > MAX_BATCH_ELEMENTS
        wide_rows = np.flatnonzero(wide)
        if wide_rows.size:
            sel = wide[req_of_item]
            row_of = np.cumsum(wide) - 1
            n_lanes = int(counts[wide_rows].max() + MAX_BATCH_ELEMENTS - 1) // (
                MAX_BATCH_ELEMENTS
            )
            lane = local[sel] // MAX_BATCH_ELEMENTS
            bit = np.uint64(1) << (local[sel] % MAX_BATCH_ELEMENTS).astype(np.uint64)
            replication = servers.shape[1]
            masks = np.zeros((wide_rows.size, n_servers, n_lanes), dtype=np.uint64)
            np.bitwise_or.at(
                masks,
                (
                    np.repeat(row_of[req_of_item[sel]], replication),
                    servers[sel].ravel(),
                    np.repeat(lane, replication),
                ),
                np.repeat(bit, replication),
            )
            lane_bits = counts[wide_rows, None] - MAX_BATCH_ELEMENTS * np.arange(
                n_lanes
            )
            lane_bits = np.clip(lane_bits, 0, MAX_BATCH_ELEMENTS)
            full = (np.uint64(1) << lane_bits.astype(np.uint64)) - np.uint64(1)
            for row, row_picks in zip(
                wide_rows.tolist(), batch_greedy_cover_wide(masks, full)
            ):
                picks[row] = row_picks
        return picks

    def _finish_masks(
        self,
        request: Request,
        items: Sequence[ItemId],
        replica_sets: Sequence[Sequence[int]],
        picks: list[tuple[int, int]],
    ) -> FetchPlan:
        """Mask-native :meth:`_finish` for the no-hitchhiking batch path.

        Operates on the cover's ``(server, assignment_mask)`` picks
        directly — the single-item rule is one bit trick per pick
        (``mask & (mask - 1)`` is zero exactly for singletons) and
        transaction item lists decode straight from the merged masks.
        Produces the identical :class:`FetchPlan` as ``_finish`` over the
        decoded index lists (property-tested).
        """
        merged: dict[int, int] = {}
        if self.single_item_rule:
            singles: list[int] = []
            for server, mask in picks:
                if mask & (mask - 1):
                    merged[server] = mask
                else:
                    singles.append(mask)
            for mask in singles:
                home = replica_sets[mask.bit_length() - 1][0]
                merged[home] = merged.get(home, 0) | mask
        else:
            merged.update(picks)

        transactions = []
        for server in sorted(merged):
            mask = merged[server]
            primary = []
            while mask:
                low = mask & -mask
                primary.append(items[low.bit_length() - 1])
                mask ^= low
            transactions.append(Transaction(server=server, primary=tuple(primary)))
        self._record_plan(len(transactions))
        return FetchPlan(request=request, transactions=tuple(transactions))

    def _finish(
        self,
        request: Request,
        items: Sequence[ItemId],
        replica_sets: Sequence[Sequence[int]],
        assigned: dict[int, list[int]],
        exclude: AbstractSet[int] | None,
    ) -> FetchPlan:
        """Shared tail of planning: enhancements + transaction assembly."""
        if self.single_item_rule:
            assigned = self._apply_single_item_rule(
                assigned, replica_sets, exclude=exclude
            )

        transactions = []
        for server in sorted(assigned):
            idxs = assigned[server]
            if not idxs:
                continue
            primary = tuple(items[i] for i in idxs)
            hitchhikers: tuple[ItemId, ...] = ()
            if self.hitchhiking:
                hitchhikers = self._hitchhikers_for(server, idxs, items, replica_sets)
            transactions.append(
                Transaction(server=server, primary=primary, hitchhikers=hitchhikers)
            )
        self._record_plan(len(transactions))
        return FetchPlan(request=request, transactions=tuple(transactions))

    # -- enhancements --------------------------------------------------------

    def _apply_single_item_rule(
        self,
        assigned: dict[int, list[int]],
        replica_sets: Sequence[Sequence[int]],
        *,
        exclude: AbstractSet[int] | None = None,
    ) -> dict[int, list[int]]:
        """Redirect un-bundled (single-item) transactions to distinguished copies.

        Done as a single pass: first collect all singletons, then place
        each on its item's distinguished server.  Collecting first means
        two singletons that share a distinguished server merge into one
        two-item transaction rather than being processed order-dependently.
        A redirected item never *misses* (distinguished copies are pinned),
        so the redirection can only reduce LRU pollution.

        Under failures the redirection target is the item's first *live*
        replica: a singleton is never sent to an excluded server (its
        current assignment is live by construction, so staying put is
        always a valid fallback).
        """
        singles: list[int] = []
        kept: dict[int, list[int]] = {}
        for server, idxs in assigned.items():
            if len(idxs) == 1:
                singles.append(idxs[0])
            else:
                kept[server] = list(idxs)
        if not singles:
            return assigned
        moved = defaultdict(list, kept)
        for idx in singles:
            if exclude:
                home = next(s for s in replica_sets[idx] if s not in exclude)
            else:
                home = replica_sets[idx][0]
            moved[home].append(idx)
        # keep item order stable within each transaction
        return {s: sorted(v) for s, v in moved.items()}

    def _hitchhikers_for(
        self,
        server: int,
        primary_idxs: Sequence[int],
        items: Sequence[ItemId],
        replica_sets: Sequence[Sequence[int]],
    ) -> tuple[ItemId, ...]:
        """Requested items with a logical replica on ``server`` not already
        assigned to it."""
        primary_set = set(primary_idxs)
        out: list[ItemId] = []
        for idx, servers in enumerate(replica_sets):
            if idx in primary_set:
                continue
            if server in servers:
                out.append(items[idx])
        return tuple(out)

"""The Bundler: request + placement → fetch plan.

Bundling is the "B" of RnB (paper section III-A): compute the replica
locations of every requested item, pick a small group of servers that
jointly possess (enough of) the request set via greedy set cover, and
bundle all items assigned to a server into one transaction.

Two refinements from the paper are applied after the cover:

* **Single-item rule** (section III-C1): "whenever an item is not
  bundled, we access its distinguished copy in order not to pollute other
  server caches with its copies."  Any transaction left with exactly one
  item is redirected to that item's distinguished server; redirected
  items headed for the same distinguished server are re-bundled together,
  and items whose plan already includes a transaction to their
  distinguished server simply join it.
* **Hitchhiking** (section III-C2): every transaction additionally
  carries, as redundant *hitchhikers*, all other requested items that
  have a logical replica on that server.  Hitchhikers cost traffic but no
  transactions, and rescue first-round misses under overbooking.
"""

from __future__ import annotations

from collections import defaultdict
from typing import AbstractSet, Sequence

import numpy as np

from repro.cluster.placement import ReplicaPlacer
from repro.core.setcover import greedy_partial_cover
from repro.types import FetchPlan, ItemId, Request, Transaction
from repro.utils.bitset import iter_bits


class Bundler:
    """Builds :class:`FetchPlan` objects for requests.

    Parameters
    ----------
    placer:
        The replica placement in force.
    hitchhiking:
        Enable the hitchhiker enhancement.
    single_item_rule:
        Apply the single-item → distinguished-copy redirection.
    tie_break:
        Greedy tie-breaking policy (see :mod:`repro.core.setcover`).
    rng:
        Required when ``tie_break="random"``.
    """

    def __init__(
        self,
        placer: ReplicaPlacer,
        *,
        hitchhiking: bool = False,
        single_item_rule: bool = True,
        tie_break="lowest",
        rng: np.random.Generator | None = None,
    ) -> None:
        self.placer = placer
        self.hitchhiking = hitchhiking
        self.single_item_rule = single_item_rule
        self.tie_break = tie_break
        self.rng = rng

    # -- plan construction -------------------------------------------------

    def plan(
        self, request: Request, *, exclude: AbstractSet[int] | None = None
    ) -> FetchPlan:
        """Compute the first-round transactions for ``request``.

        ``exclude`` names servers currently believed unavailable (from a
        :class:`repro.faults.health.HealthTracker` or a failed first
        attempt): they are never chosen, residual items are covered from
        surviving replicas, and items with no surviving replica are left
        out of the plan entirely — the caller reports them as a partial
        (degraded) result.
        """
        items: Sequence[ItemId] = request.items
        n = len(items)
        if n == 0:
            return FetchPlan(request=request, transactions=())

        replica_sets = [self.placer.servers_for(item) for item in items]

        # Build per-server bitmasks over request-local item indices.
        subsets: dict[int, int] = {}
        for idx, servers in enumerate(replica_sets):
            bit = 1 << idx
            for s in servers:
                subsets[s] = subsets.get(s, 0) | bit

        cover = greedy_partial_cover(
            subsets,
            n,
            request.required_items,
            tie_break=self.tie_break,
            rng=self.rng,
            exclude=exclude,
            allow_partial=bool(exclude),
        )

        # server -> list of request-local indices assigned to it
        assigned: dict[int, list[int]] = {
            server: list(iter_bits(mask)) for server, mask in cover.assignment.items()
        }

        if self.single_item_rule:
            assigned = self._apply_single_item_rule(
                assigned, replica_sets, exclude=exclude
            )

        transactions = []
        for server in sorted(assigned):
            idxs = assigned[server]
            if not idxs:
                continue
            primary = tuple(items[i] for i in idxs)
            hitchhikers: tuple[ItemId, ...] = ()
            if self.hitchhiking:
                hitchhikers = self._hitchhikers_for(server, idxs, items, replica_sets)
            transactions.append(
                Transaction(server=server, primary=primary, hitchhikers=hitchhikers)
            )
        return FetchPlan(request=request, transactions=tuple(transactions))

    # -- enhancements --------------------------------------------------------

    def _apply_single_item_rule(
        self,
        assigned: dict[int, list[int]],
        replica_sets: Sequence[Sequence[int]],
        *,
        exclude: AbstractSet[int] | None = None,
    ) -> dict[int, list[int]]:
        """Redirect un-bundled (single-item) transactions to distinguished copies.

        Done as a single pass: first collect all singletons, then place
        each on its item's distinguished server.  Collecting first means
        two singletons that share a distinguished server merge into one
        two-item transaction rather than being processed order-dependently.
        A redirected item never *misses* (distinguished copies are pinned),
        so the redirection can only reduce LRU pollution.

        Under failures the redirection target is the item's first *live*
        replica: a singleton is never sent to an excluded server (its
        current assignment is live by construction, so staying put is
        always a valid fallback).
        """
        singles: list[int] = []
        kept: dict[int, list[int]] = {}
        for server, idxs in assigned.items():
            if len(idxs) == 1:
                singles.append(idxs[0])
            else:
                kept[server] = list(idxs)
        if not singles:
            return assigned
        moved = defaultdict(list, kept)
        for idx in singles:
            if exclude:
                home = next(s for s in replica_sets[idx] if s not in exclude)
            else:
                home = replica_sets[idx][0]
            moved[home].append(idx)
        # keep item order stable within each transaction
        return {s: sorted(v) for s, v in moved.items()}

    def _hitchhikers_for(
        self,
        server: int,
        primary_idxs: Sequence[int],
        items: Sequence[ItemId],
        replica_sets: Sequence[Sequence[int]],
    ) -> tuple[ItemId, ...]:
        """Requested items with a logical replica on ``server`` not already
        assigned to it."""
        primary_set = set(primary_idxs)
        out: list[ItemId] = []
        for idx, servers in enumerate(replica_sets):
            if idx in primary_set:
                continue
            if server in servers:
                out.append(items[idx])
        return tuple(out)

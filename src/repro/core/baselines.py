"""Baseline clients from paper section II-C.

* :class:`NoReplicationClient` — industry solution 1: plain consistent
  hashing, one copy per item, transactions = number of distinct home
  servers touched by the request.  Supports the LIMIT clause by greedily
  skipping the servers that contribute fewest items (Fig 11's
  "no replication" curves).
* :class:`FullReplicationClient` — industry solution 3, the paper's
  comparison baseline: ``banks`` complete copies of the whole system; the
  client picks one bank uniformly at random per request and fetches
  everything from it.  k banks give exactly k-fold throughput and no
  more ("one gets exactly what one pays for").
"""

from __future__ import annotations

from collections import defaultdict

from repro.cluster.cluster import Cluster
from repro.cluster.placement import FullReplicationPlacer
from repro.errors import ConfigurationError
from repro.types import FetchResult, ItemId, Request
from repro.utils.rng import ensure_rng


class NoReplicationClient:
    """Single-copy consistent-hashing client (multi-get hole baseline).

    Works against a cluster whose placer has ``replication == 1``; all
    copies are distinguished, so there are never misses or second rounds.
    """

    def __init__(self, cluster: Cluster) -> None:
        if cluster.placer.replication != 1:
            raise ConfigurationError(
                "NoReplicationClient requires a replication-1 placer"
            )
        self.cluster = cluster

    def execute(self, request: Request) -> FetchResult:
        groups: dict[int, list[ItemId]] = defaultdict(list)
        for item in request.items:
            groups[self.cluster.placer.distinguished_for(item)].append(item)

        required = request.required_items
        # LIMIT: serve the largest groups first and stop when satisfied —
        # the greedy partial cover specialises to exactly this when every
        # item has a single replica.
        ordered = sorted(groups.items(), key=lambda kv: (-len(kv[1]), kv[0]))
        obtained = 0
        servers_contacted: list[int] = []
        txn_sizes: list[int] = []
        for server_id, group in ordered:
            if obtained >= required:
                break
            fetch = group[: required - obtained] if request.limit_fraction else group
            server = self.cluster.server(server_id)
            hits, misses, _ = server.multi_get(fetch)
            if misses:  # pragma: no cover - invariant guard
                raise ConfigurationError(
                    f"single-copy items missing on server {server_id}: {misses}"
                )
            obtained += len(hits)
            servers_contacted.append(server_id)
            txn_sizes.append(len(fetch))

        return FetchResult(
            request=request,
            transactions=len(servers_contacted),
            items_fetched=obtained,
            items_transferred=obtained,
            misses=0,
            second_round_transactions=0,
            servers_contacted=tuple(servers_contacted),
            txn_sizes=tuple(txn_sizes),
        )


class FullReplicationClient:
    """Whole-system replication client (the paper's baseline 3).

    The cluster must use a :class:`FullReplicationPlacer` with unlimited
    memory (every bank holds a full copy).  Each request goes to one
    uniformly chosen bank; within the bank, items group by their home
    server as in plain consistent hashing.
    """

    def __init__(self, cluster: Cluster, *, rng=None) -> None:
        if not isinstance(cluster.placer, FullReplicationPlacer):
            raise ConfigurationError(
                "FullReplicationClient requires a FullReplicationPlacer"
            )
        if cluster.memory_factor is not None:
            raise ConfigurationError(
                "full-system replication assumes every bank holds a complete copy; "
                "use memory_factor=None"
            )
        self.cluster = cluster
        self.rng = ensure_rng(rng)

    def execute(self, request: Request) -> FetchResult:
        placer: FullReplicationPlacer = self.cluster.placer
        bank = int(self.rng.integers(placer.banks))

        groups: dict[int, list[ItemId]] = defaultdict(list)
        for item in request.items:
            groups[placer.servers_for(item)[bank]].append(item)

        required = request.required_items
        ordered = sorted(groups.items(), key=lambda kv: (-len(kv[1]), kv[0]))
        obtained = 0
        servers_contacted: list[int] = []
        txn_sizes: list[int] = []
        for server_id, group in ordered:
            if obtained >= required:
                break
            fetch = group[: required - obtained] if request.limit_fraction else group
            server = self.cluster.server(server_id)
            hits, misses, _ = server.multi_get(fetch)
            if misses:  # pragma: no cover - invariant guard
                raise ConfigurationError(
                    f"bank {bank} is missing items on server {server_id}: {misses}"
                )
            obtained += len(hits)
            servers_contacted.append(server_id)
            txn_sizes.append(len(fetch))

        return FetchResult(
            request=request,
            transactions=len(servers_contacted),
            items_fetched=obtained,
            items_transferred=obtained,
            misses=0,
            second_round_transactions=0,
            servers_contacted=tuple(servers_contacted),
            txn_sizes=tuple(txn_sizes),
        )

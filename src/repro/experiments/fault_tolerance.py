"""Fault tolerance — reads under failure injection (robustness measured).

The paper notes RnB's replicas "already exist for reliability" (section
I-C) but never exercises them; this experiment does.  For each (crash
rate, replication level) point, a deterministic :class:`FaultPlan`
crash-stops a fraction of the fleet at scheduled ticks and injects
transient timeouts, while the :class:`FaultTolerantRnBClient` reads an
ego-network workload through health-tracked, failover-aware covers with
bounded retries.

Reported per point:

* **TPR** — transactions per request, including failover re-dispatch
  (the price of routing around failures);
* **unavailable fraction** — items whose *entire* replica set was dead,
  returned as partial results (degraded reads);
* **retries per request** — backoff-bounded retry volume;
* ``meta["live_covered_min"]`` — the fraction of items with at least one
  live replica that were successfully read, minimised over sweep points.
  The fault-tolerance guarantee is that this is exactly 1.0 whenever
  R >= 2.

Expected shape: at R=1 the unavailable fraction tracks the crash rate
(no replicas to fail over to); at R>=2 it collapses toward crash_rate^R
while TPR rises only mildly — availability is bought with the replicas
already paid for.
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.core.bundling import Bundler
from repro.experiments.base import ExperimentResult
from repro.faults.ftclient import FaultTolerantRnBClient
from repro.faults.health import HealthTracker
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultConfig, FaultPlan
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.utils.rng import derive_rng
from repro.workloads.graphs import SocialGraph
from repro.workloads.requests import EgoRequestGenerator
from repro.workloads.synthetic import make_slashdot_like

DEFAULT_FAILURE_RATES = (0.0, 0.05, 0.1, 0.2)
DEFAULT_REPLICATIONS = (1, 2, 3)


def run_point(
    graph: SocialGraph,
    *,
    n_servers: int,
    replication: int,
    crash_rate: float,
    timeout_rate: float,
    n_requests: int,
    seed: int,
    max_retries: int = 2,
) -> dict[str, float]:
    """One sweep point: returns the aggregate fault metrics."""
    placer = RangedConsistentHashPlacer(n_servers, replication, vnodes=64, seed=0)
    cluster = Cluster(placer, range(graph.n_nodes), memory_factor=None)
    plan = FaultPlan(
        n_servers,
        FaultConfig(
            crash_rate=crash_rate,
            timeout_rate=timeout_rate,
            horizon=max(n_requests, 1),
            seed=seed,
        ),
    )
    injector = FaultInjector(plan)
    cluster.attach_injector(injector)
    client = FaultTolerantRnBClient(
        cluster,
        Bundler(placer),
        health=HealthTracker(n_servers),
        max_retries=max_retries,
    )
    gen = EgoRequestGenerator(graph, rng=derive_rng(seed, 11, replication))

    requests = transactions = retries = 0
    items_requested = items_read = unavailable = 0
    live_items = live_read = 0  # the guarantee's numerator/denominator
    for request in gen.stream(n_requests):
        result = client.execute(request)
        requests += 1
        transactions += result.transactions
        retries += result.retries
        items_requested += request.size
        items_read += result.items_fetched
        unavailable += len(result.unavailable)
        dead_now = plan.crashed_at(injector.tick)
        missing = set(result.unavailable)
        for item in request.items:
            if any(s not in dead_now for s in placer.servers_for(item)):
                live_items += 1
                if item not in missing:
                    live_read += 1
    return {
        "tpr": transactions / requests if requests else 0.0,
        "unavailable_fraction": (
            unavailable / items_requested if items_requested else 0.0
        ),
        "retries_per_request": retries / requests if requests else 0.0,
        "live_covered_fraction": live_read / live_items if live_items else 1.0,
        "items_read": float(items_read),
        "servers_crashed": float(len(plan.ever_crashed())),
    }


def run(
    graph: SocialGraph | None = None,
    *,
    n_servers: int = 16,
    replications=DEFAULT_REPLICATIONS,
    failure_rates=DEFAULT_FAILURE_RATES,
    timeout_fraction: float = 0.5,
    scale: float = 0.05,
    n_requests: int = 300,
    seed: int = 2013,
    max_retries: int = 2,
) -> list[ExperimentResult]:
    """Sweep crash-stop failure rate x replication level.

    ``timeout_fraction`` scales the transient-timeout rate relative to
    the crash rate (both failure kinds grow together along the x axis).
    """
    graph = graph or make_slashdot_like(seed=seed, scale=scale)
    series_tpr: dict[str, list[float]] = {f"R={r}": [] for r in replications}
    series_unavail: dict[str, list[float]] = {f"R={r}": [] for r in replications}
    series_retries: dict[str, list[float]] = {f"R={r}": [] for r in replications}
    live_covered_min = 1.0
    for replication in replications:
        for rate in failure_rates:
            point = run_point(
                graph,
                n_servers=n_servers,
                replication=replication,
                crash_rate=rate,
                timeout_rate=rate * timeout_fraction,
                n_requests=n_requests,
                seed=seed,
                max_retries=max_retries,
            )
            series_tpr[f"R={replication}"].append(point["tpr"])
            series_unavail[f"R={replication}"].append(point["unavailable_fraction"])
            series_retries[f"R={replication}"].append(point["retries_per_request"])
            if replication >= 2:
                live_covered_min = min(
                    live_covered_min, point["live_covered_fraction"]
                )
    x = list(failure_rates)
    meta = {
        "graph": graph.name,
        "n_servers": n_servers,
        "live_covered_min": live_covered_min,
        "timeout_fraction": timeout_fraction,
        "seed": seed,
    }
    return [
        ExperimentResult(
            name="fault_tolerance_tpr",
            title=(
                f"Fault tolerance: TPR vs crash-stop failure rate "
                f"({n_servers} servers, failover-aware covers)"
            ),
            x_label="failure rate",
            x_values=x,
            series=series_tpr,
            expectation=(
                "TPR rises only mildly with the failure rate: failover "
                "re-dispatch costs a few extra transactions, not a collapse"
            ),
            meta=dict(meta),
        ),
        ExperimentResult(
            name="fault_tolerance_unavailable",
            title="Fault tolerance: unavailable-item fraction (degraded reads)",
            x_label="failure rate",
            x_values=x,
            series=series_unavail,
            expectation=(
                "R=1 tracks the crash rate (nowhere to fail over); R>=2 "
                "collapses toward crash_rate^R — every item with a live "
                "replica is read (live_covered_min == 1.0)"
            ),
            meta=dict(meta),
        ),
        ExperimentResult(
            name="fault_tolerance_retries",
            title="Fault tolerance: bounded retries per request",
            x_label="failure rate",
            x_values=x,
            series=series_retries,
            expectation=(
                "grows with the transient-timeout rate and is bounded by "
                "max_retries per transaction"
            ),
            meta=dict(meta),
        ),
    ]

"""Fig 10 — absolute TPR vs memory: merged-2 vs single-request handling.

The companion view to Figs 8–9: the *absolute* TPR per original end-user
request, for logical replication levels 1–4, both when handling one
request at a time and when merging two.  Merging lowers the whole family
of curves ("the TPRPS for the no-replication baseline is also much lower
... resulting in a lower TPRPS for all of the replication levels").
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.fig08 import (
    DEFAULT_MEMORY_FACTORS,
    DEFAULT_REPLICATIONS,
    sweep_tpr,
)
from repro.workloads.graphs import SocialGraph
from repro.workloads.synthetic import make_slashdot_like


def run(
    graph: SocialGraph | None = None,
    *,
    n_servers: int = 16,
    replications=DEFAULT_REPLICATIONS,
    memory_factors=DEFAULT_MEMORY_FACTORS,
    scale: float = 0.1,
    n_requests: int = 1200,
    warmup_requests: int = 2500,
    seed: int = 2013,
    max_workers: int = 1,
) -> list[ExperimentResult]:
    graph = graph or make_slashdot_like(seed=seed, scale=scale)
    results = []
    for window, label in ((2, "merging 2 requests"), (1, "single requests")):
        tpr_series, baseline = sweep_tpr(
            graph,
            n_servers=n_servers,
            replications=replications,
            memory_factors=memory_factors,
            merge_window=window,
            n_requests=n_requests,
            warmup_requests=warmup_requests,
            seed=seed,
            max_workers=max_workers,
        )
        series = dict(tpr_series)
        series["no-repl baseline"] = baseline
        results.append(
            ExperimentResult(
                name=f"fig10_merge{window}",
                title=f"Fig 10 ({label}): TPR per original request vs memory factor",
                x_label="memory",
                x_values=list(memory_factors),
                series=series,
                expectation=(
                    "merged curves sit below the single-request curves at every "
                    "replication level; within each panel TPR decreases with "
                    "memory and replication"
                ),
                meta={"graph": graph.name, "merge_window": window},
            )
        )
    return results

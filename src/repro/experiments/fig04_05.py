"""Figs 4 & 5 — node degree histograms (Slashdot, Epinions).

The paper characterises its two workload graphs by their degree
histograms.  We print the log-binned out-degree histogram of the
synthetic stand-ins next to the paper's headline statistics (node count,
edge count, mean degree), which the generators match by construction.
"""

from __future__ import annotations

from repro.analysis.histograms import degree_histogram_rows, tail_exponent_estimate
from repro.experiments.base import ExperimentResult
from repro.workloads.graphs import SocialGraph
from repro.workloads.synthetic import DATASETS, synthesize_graph

PAPER_STATS = {
    "slashdot": {"n_nodes": 82_168, "n_edges": 948_464, "mean_degree": 11.54},
    "epinions": {"n_nodes": 75_879, "n_edges": 508_837, "mean_degree": 6.7},
}


def _histogram_result(graph: SocialGraph, dataset: str, fig: str) -> ExperimentResult:
    hist = graph.degree_histogram()
    rows = degree_histogram_rows(hist, bins_per_decade=2)
    labels = [r[0] for r in rows]
    counts = [float(r[1]) for r in rows]
    fractions = [r[2] for r in rows]
    try:
        alpha = tail_exponent_estimate(hist, xmin=10)
    except ValueError:
        alpha = float("nan")
    paper = PAPER_STATS[dataset]
    return ExperimentResult(
        name=fig,
        title=f"{fig}: out-degree histogram of {graph.name}",
        x_label="degree bin",
        x_values=labels,
        series={"nodes": counts, "fraction": fractions},
        expectation=(
            f"heavy-tailed, spanning ~4 decades; paper dataset: "
            f"{paper['n_nodes']} nodes, {paper['n_edges']} edges, "
            f"mean degree {paper['mean_degree']}"
        ),
        notes=(
            f"generated: {graph.n_nodes} nodes, {graph.n_edges} edges, mean "
            f"degree {graph.mean_degree:.2f}, ML tail exponent {alpha:.2f}"
        ),
        meta={
            "n_nodes": graph.n_nodes,
            "n_edges": graph.n_edges,
            "mean_degree": graph.mean_degree,
            "tail_exponent": alpha,
        },
    )


def run(*, scale: float = 1.0, seed: int = 2013) -> list[ExperimentResult]:
    out = []
    for fig, dataset in (("fig04", "slashdot"), ("fig05", "epinions")):
        graph = synthesize_graph(DATASETS[dataset], seed=seed, scale=scale)
        out.append(_histogram_result(graph, dataset, fig))
    return out

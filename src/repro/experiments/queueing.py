"""Latency vs offered load with queueing: where the fleet saturates.

The end-to-end throughput story (paper §V-B future work): sweep the
offered request rate on a fixed 16-server fleet and measure p95 latency
for the classic client and RnB (R=4, memory-rich), under Poisson
arrivals and FIFO server queues (:mod:`repro.sim.des`).

Expected outcome: identical latency at low load (both are RTT-bound);
the classic deployment's latency explodes at the load where its
per-request transaction work saturates the servers, while RnB — doing
roughly half the transactions — keeps serving far beyond it.  The knee
ratio approximates the TPR-derived throughput ratio of Fig 3's
methodology, now with queue dynamics instead of a work-conservation
argument.
"""

from __future__ import annotations

import itertools

from repro.analysis.calibration import DEFAULT_MEMCACHED_MODEL, CostModel
from repro.core.bundling import Bundler
from repro.experiments.base import ExperimentResult
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.cluster.placement import SingleHashPlacer
from repro.sim.des import make_bundled_planner, make_classic_planner, simulate_queueing
from repro.utils.rng import derive_rng
from repro.workloads.graphs import SocialGraph
from repro.workloads.requests import EgoRequestGenerator
from repro.workloads.synthetic import make_slashdot_like

DEFAULT_LOAD_FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.6)


def _nominal_capacity(
    graph: SocialGraph, planner, n_servers: int, cost_model: CostModel, seed: int
) -> float:
    """Work-conservation capacity estimate used to scale the load axis."""
    gen = EgoRequestGenerator(graph, rng=derive_rng(seed, 10))
    total = 0.0
    n = 400
    for request in gen.stream(n):
        for _, n_items in planner(request):
            total += cost_model.txn_time(n_items)
    return n_servers / (total / n)


def run(
    graph: SocialGraph | None = None,
    *,
    n_servers: int = 16,
    replication: int = 4,
    load_fractions=DEFAULT_LOAD_FRACTIONS,
    n_requests: int = 6000,
    scale: float = 0.1,
    seed: int = 2013,
    cost_model: CostModel = DEFAULT_MEMCACHED_MODEL,
) -> list[ExperimentResult]:
    graph = graph or make_slashdot_like(seed=seed, scale=scale)

    single = SingleHashPlacer(n_servers, vnodes=64)
    rch = RangedConsistentHashPlacer(n_servers, replication, vnodes=64)
    planners = {
        "classic": make_classic_planner(single),
        f"RnB R={replication}": make_bundled_planner(Bundler(rch)),
    }

    # scale the load axis by the CLASSIC deployment's nominal capacity so
    # fraction 1.0 is exactly its work-conservation limit
    base_capacity = _nominal_capacity(graph, planners["classic"], n_servers, cost_model, seed)

    series: dict[str, list[float]] = {}
    for label, planner in planners.items():
        p95s, utils = [], []
        for frac in load_fractions:
            gen = EgoRequestGenerator(graph, rng=derive_rng(seed, 11, int(frac * 100)))
            result = simulate_queueing(
                itertools.islice(gen.stream(), n_requests),
                planner,
                n_servers=n_servers,
                cost_model=cost_model,
                arrival_rate=frac * base_capacity,
                rng=derive_rng(seed, 12, int(frac * 100)),
            )
            p95s.append(result.p95_latency * 1e6)
            utils.append(result.max_utilization)
        series[f"{label} p95 us"] = p95s
        series[f"{label} max util"] = utils

    return [
        ExperimentResult(
            name="queueing",
            title=(
                f"Queueing: p95 latency vs offered load "
                f"(load 1.0 = classic capacity, {n_servers} servers)"
            ),
            x_label="load",
            x_values=list(load_fractions),
            series=series,
            expectation=(
                "equal latency at low load; classic p95 explodes approaching "
                "load 1.0 while RnB stays flat well past it (its knee sits "
                "near the TPR ratio x classic capacity)"
            ),
            meta={"graph": graph.name, "base_capacity_rps": base_capacity},
        )
    ]

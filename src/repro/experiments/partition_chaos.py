"""Partition chaos: split-brain safety and convergence under a network cut.

The partition layer (:mod:`repro.faults.partition`, docs/PARTITIONS.md)
claims two things the node-fault experiments cannot test:

* **safety** — a membership epoch can never commit on both sides of a
  majority/minority split.  The quorum gate
  (:meth:`~repro.membership.service.MembershipService.has_quorum`)
  counts reachable *members* (dead or not) against the full view, so
  only one side of a split can clear the bar.  Minority clients degrade:
  quorum writes come back :data:`~repro.consistency.quorum.REJECTED`
  (retryable, no stamp consumed) and versioned reads fall back to
  distinguished-only mode.
* **convergence** — after the partition heals and the anti-entropy
  scrubber runs, the fleet holds exactly what the acknowledged writes
  say it should.  The proof is a recorded operation history checked by
  :func:`repro.consistency.history.check_history` — read-your-writes,
  monotonic reads, and global newest-wins convergence, with any
  violation rendered as a minimal counter-example.

The run: provision a versioned keyspace, cut a seeded 7/3 split (one
client endpoint per side), run concurrent seeded write/read bursts on
both sides while a majority server crashes mid-split (memory wiped) and
both sides try to commit membership changes, heal, re-admit the crashed
server, drain repair, scrub, then audit every key with ``phase="final"``
reads.  Gates (meta): ``violations == 0``, ``divergent_after_scrub ==
0``, ``minority_epoch_commits == 0`` and ``quorum_rejections > 0`` —
the minority *tried* and was refused.  The whole run is a pure function
of ``seed`` (``determinism_token``; the partition-smoke CI job diffs two
same-seed runs byte for byte).
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.consistency import (
    AntiEntropyScrubber,
    ClusterStore,
    HistoryRecorder,
    QuorumWriter,
    VersionClock,
    VersionedReader,
    check_history,
    make_repair_executor,
    resolve_w,
)
from repro.errors import NoQuorumError
from repro.experiments.base import ExperimentResult
from repro.faults.health import HealthTracker
from repro.faults.injector import DynamicFaultInjector
from repro.faults.partition import PartitionPlan, PartitionedInjector
from repro.hashing.hashfns import stable_hash64
from repro.membership import EpochedPlacer, MembershipService, make_cluster_service
from repro.obs import MetricsRegistry
from repro.utils.rng import derive_rng

#: client-process endpoints, one per side of the split (negative ids
#: never collide with server ids — see repro.faults.partition.CLIENT)
MAJORITY_CLIENT = -1
MINORITY_CLIENT = -2


def make_split(seed: int, n_servers: int, minority_size: int) -> tuple[tuple, tuple]:
    """Seeded disjoint ``(majority, minority)`` server groups."""
    rng = derive_rng(seed, stable_hash64("partition-split") & 0x7FFFFFFF)
    minority = sorted(
        int(s) for s in rng.choice(n_servers, size=minority_size, replace=False)
    )
    majority = tuple(s for s in range(n_servers) if s not in set(minority))
    return majority, tuple(minority)


def run(
    *,
    n_servers: int = 10,
    replication: int = 3,
    minority_size: int = 3,
    n_items: int = 600,
    n_steps: int = 300,
    w: str | int = "majority",
    repair_rate: int = 200,
    scrub_buckets: int = 64,
    window: int = 25,
    seed: int = 2016,
    scale: float = 1.0,
) -> list[ExperimentResult]:
    """Split the fleet, write on both sides, heal, and audit the history.

    ``scale`` shrinks the run for smoke tests (items and burst steps
    scale together); at any fixed parameter set the whole run is a pure
    function of ``seed``.
    """
    n_items = max(int(n_items * scale), 40)
    n_steps = max(int(n_steps * scale), 60)
    window = max(min(window, n_steps // 4), 1)

    majority, minority = make_split(seed, n_servers, minority_size)
    registry = MetricsRegistry()

    placer_maj = EpochedPlacer("rch", n_servers, replication, seed=0, vnodes=64)
    cluster = Cluster(placer_maj, range(n_items), memory_factor=None)
    inner = DynamicFaultInjector()
    plan = PartitionPlan()
    injector = PartitionedInjector(
        plan, inner, vantage=MAJORITY_CLIENT, metrics=registry
    )
    cluster.attach_injector(injector)

    # Each side runs its own full client stack against the one cluster:
    # its own placer (views diverge only if epochs commit), health,
    # membership service, quorum writer and versioned reader.  The
    # prober anchors each service at its side's client endpoint.
    service_maj = make_cluster_service(
        cluster,
        placer_maj,
        confirm_after=1,
        repair_rate=repair_rate,
        quorum_prober=lambda m: injector.can_reach(MAJORITY_CLIENT, m),
    )
    placer_min = EpochedPlacer("rch", n_servers, replication, seed=0, vnodes=64)
    service_min = MembershipService(
        placer_min,
        cluster.items,
        executor=None,
        confirm_after=1,
        quorum_prober=lambda m: injector.can_reach(MINORITY_CLIENT, m),
    )

    health_maj = HealthTracker(n_servers, dead_after=2)
    health_min = HealthTracker(n_servers, dead_after=2)
    store_maj = ClusterStore(cluster, placer_maj)
    store_min = ClusterStore(cluster, placer_min)
    clock_maj = VersionClock(writer=1, epoch_fn=lambda: placer_maj.epoch)
    clock_min = VersionClock(writer=2, epoch_fn=lambda: placer_min.epoch)

    writer_maj = QuorumWriter(
        store_maj, placer_maj, clock=clock_maj, w=w, health=health_maj,
        gate=service_maj.has_quorum,
    )
    writer_maj.bind_metrics(registry, side="majority")
    writer_min = QuorumWriter(
        store_min, placer_min, clock=clock_min, w=w, health=health_min,
        gate=service_min.has_quorum,
    )
    writer_min.bind_metrics(registry, side="minority")

    executor = make_repair_executor(store_maj, metrics=registry)
    reader_maj = VersionedReader(
        store_maj, placer_maj, clock=clock_maj, health=health_maj,
        executor=executor, gate=service_maj.has_quorum,
    )
    reader_maj.bind_metrics(registry, side="majority")
    reader_min = VersionedReader(
        store_min, placer_min, clock=clock_min, health=health_min,
        gate=service_min.has_quorum,
    )
    reader_min.bind_metrics(registry, side="minority")

    recorder = HistoryRecorder(metrics=registry)

    def record_write(session, key, outcome) -> None:
        recorder.record_write(
            session, key, ok=outcome.committed, stamp=outcome.stamp
        )

    def record_read(session, key, outcome, *, phase: str = "") -> None:
        recorder.record_read(
            session, key, ok=outcome.found, stamp=outcome.stamp, phase=phase
        )

    # ---- phase 1: provision — version the whole keyspace, no cuts ----
    injector.vantage = MAJORITY_CLIENT
    for item in range(n_items):
        record_write("maj", item, writer_maj.write(item))
        injector.advance(1)

    # ---- phase 2: split, then concurrent bursts on both sides ----
    split_tick = injector.tick
    plan.symmetric_split(
        (MAJORITY_CLIENT, *majority), (MINORITY_CLIENT, *minority),
        start=split_tick,
    )

    kill_rng = derive_rng(seed, stable_hash64("partition-victim") & 0x7FFFFFFF)
    victim = int(majority[int(kill_rng.integers(0, len(majority)))])
    kill_at = n_steps // 3
    propose_at = n_steps // 2

    key_rng = derive_rng(seed, stable_hash64("partition-keys") & 0x7FFFFFFF)
    keys = key_rng.integers(0, n_items, size=(n_steps, 4))

    counts = {"committed": 0, "partial": 0, "failed": 0, "rejected": 0}
    win = dict.fromkeys(counts, 0)
    win_degraded = 0
    series: dict[str, list[float]] = {
        "majority committed / window": [],
        "majority partial / window": [],
        "minority rejected / window": [],
        "minority degraded reads / window": [],
        "blocked requests (cumulative)": [],
    }
    x_values: list[int] = []
    minority_removal_commits = 0
    noquorum_raised = 0
    removal_committed = False

    for step in range(n_steps):
        if step == kill_at:
            inner.kill(victim)
            cluster.wipe_server(victim)  # crash loses its memory
        if step == propose_at:
            # the majority side saw the crash and amputates the victim;
            # the minority side cannot see the majority at all and tries
            # to amputate *them* — the quorum gate must refuse it
            injector.vantage = MAJORITY_CLIENT
            removal_committed = service_maj.propose_removal(
                victim, source="maj-client"
            )
            injector.vantage = MINORITY_CLIENT
            for target in majority[:2]:
                if service_min.propose_removal(target, source="min-client"):
                    minority_removal_commits += 1
            try:
                service_min.announce_recovery(int(minority[0]))
            except NoQuorumError:
                noquorum_raised += 1

        maj_wkey, maj_rkey, min_wkey, min_rkey = (int(k) for k in keys[step])

        injector.vantage = MAJORITY_CLIENT
        out = writer_maj.write(maj_wkey)
        counts[out.outcome] = counts.get(out.outcome, 0) + 1
        win[out.outcome] = win.get(out.outcome, 0) + 1
        record_write("maj", maj_wkey, out)
        record_read("maj", maj_rkey, reader_maj.read(maj_rkey))

        injector.vantage = MINORITY_CLIENT
        out = writer_min.write(min_wkey)
        counts[out.outcome] = counts.get(out.outcome, 0) + 1
        win[out.outcome] = win.get(out.outcome, 0) + 1
        record_write("min", min_wkey, out)
        routcome = reader_min.read(min_rkey)
        win_degraded += int(routcome.degraded)
        record_read("min", min_rkey, routcome)

        injector.advance(1)
        if (step + 1) % window == 0:
            x_values.append(step + 1)
            series["majority committed / window"].append(float(win["committed"]))
            series["majority partial / window"].append(float(win["partial"]))
            series["minority rejected / window"].append(float(win["rejected"]))
            series["minority degraded reads / window"].append(float(win_degraded))
            series["blocked requests (cumulative)"].append(
                float(injector.blocked_requests)
            )
            win = dict.fromkeys(counts, 0)
            win_degraded = 0

    epoch_min_at_heal = placer_min.epoch
    minority_epoch_commits = len(service_min.events)

    # ---- phase 3: heal, re-admit the crashed server, drain repair ----
    heal_tick = injector.tick
    plan.heal(heal_tick)
    injector.vantage = MAJORITY_CLIENT
    inner.restore(victim)
    health_maj.record_recovery(victim)
    if not service_maj.view.is_alive(victim):
        service_maj.announce_recovery(victim)
    drain_ticks = 0
    while service_maj.pending_repair():
        service_maj.tick(clock=heal_tick + drain_ticks)
        drain_ticks += 1
    while executor.pending():
        executor.step(repair_rate, clock=heal_tick + drain_ticks)
        drain_ticks += 1
    # the minority refreshes from the winning side: monotone epochs mean
    # it can always fast-forward to the majority's view, never the reverse
    placer_min.install_view(placer_maj.view)

    # ---- phase 4: anti-entropy scrub to convergence ----
    scrubber = AntiEntropyScrubber(
        store_maj, placer_maj, n_buckets=scrub_buckets, seed=seed,
        metrics=registry,
    )
    divergent_before = len(scrubber.divergent_keys())
    reports = scrubber.scrub(max_cycles=8)
    divergent_after = len(scrubber.divergent_keys())

    # ---- phase 5: final audit reads + the history verdict ----
    for item in range(n_items):
        record_read("auditor", item, reader_maj.read(item), phase="final")
    sample = derive_rng(
        seed, stable_hash64("partition-final-min") & 0x7FFFFFFF
    ).integers(0, n_items, size=min(50, n_items))
    for item in sample:
        record_read("min", int(item), reader_min.read(int(item)), phase="final")
    report = check_history(recorder.ops, metrics=registry)

    token = stable_hash64(
        repr(
            [
                ("series", tuple((k, tuple(v)) for k, v in sorted(series.items()))),
                ("counts", tuple(sorted(counts.items()))),
                ("split", (majority, minority, victim)),
                ("epochs", (placer_maj.epoch, epoch_min_at_heal)),
                ("divergent", (divergent_before, divergent_after)),
                ("violations", tuple(v.kind for v in report.violations)),
            ]
        ),
        seed=seed,
    )
    meta = {
        "seed": seed,
        "n_servers": n_servers,
        "replication": replication,
        "w": w,
        "w_resolved": resolve_w(w, replication),
        "n_items": n_items,
        "n_steps": n_steps,
        "majority": list(majority),
        "minority": list(minority),
        "victim": victim,
        "removal_committed": removal_committed,
        "writes_committed": counts["committed"],
        "writes_partial": counts["partial"],
        "writes_failed": counts["failed"],
        "writes_rejected": counts["rejected"],
        "blocked_requests": injector.blocked_requests,
        "blocked_replies": injector.blocked_replies,
        "quorum_rejections": (
            service_min.quorum_rejections + service_maj.quorum_rejections
        ),
        "noquorum_raised": noquorum_raised,
        "minority_epoch_commits": minority_epoch_commits + minority_removal_commits,
        "epoch_min_at_heal": epoch_min_at_heal,
        "final_epoch": int(placer_maj.epoch),
        "repair_drain_ticks": drain_ticks,
        "divergent_before_scrub": divergent_before,
        "scrub_cycles": len(reports),
        "scrub_repairs": scrubber.total_repairs,
        "divergent_after_scrub": divergent_after,
        "history_ops": report.n_ops,
        "history_writes_acked": report.n_writes_acked,
        "history_final_reads": report.n_final_reads,
        "violations": len(report.violations),
        "violations_rendered": report.render() if report.violations else "",
        "consistent": report.consistent,
        "metrics_token": registry.token(seed),
        "determinism_token": token,
    }
    return [
        ExperimentResult(
            name="partition_chaos",
            title=(
                f"Partition chaos: {len(majority)}/{len(minority)} split with a "
                f"mid-split crash over {n_steps} steps "
                f"({n_servers} servers, R={replication}, W={w})"
            ),
            x_label="burst step",
            x_values=x_values,
            series=series,
            expectation=(
                "the minority side is refused every epoch commit "
                "(quorum_rejections > 0, minority_epoch_commits == 0) and "
                "degrades to distinguished-only reads; the majority keeps "
                "committing quorum writes and amputates the crashed server; "
                "after heal + scrub the fleet converges (divergent_after_"
                "scrub == 0) and the recorded history shows zero violations "
                "of read-your-writes, monotonic reads and convergence"
            ),
            meta=meta,
        )
    ]

"""Fig 3 — quantifying the multi-get hole.

Simulated relative throughput of a plain (no replication) memcached fleet
versus fleet size, on the social-graph workload, against the theoretical
ideal (linear) scaling.  Methodology per paper section III-B: simulate
the transaction-size histogram, convert to throughput via the calibrated
cost model, normalise to the single-server system.
"""

from __future__ import annotations

from repro.analysis.calibration import DEFAULT_MEMCACHED_MODEL, CostModel
from repro.analysis.throughput import relative_throughput_curve
from repro.experiments.base import ExperimentResult
from repro.sim.config import ClientConfig, ClusterConfig, SimConfig
from repro.sim.engine import run_simulation
from repro.workloads.graphs import SocialGraph
from repro.workloads.synthetic import make_slashdot_like

DEFAULT_SERVER_COUNTS = (1, 2, 4, 8, 16, 32)


def run(
    graph: SocialGraph | None = None,
    *,
    server_counts=DEFAULT_SERVER_COUNTS,
    scale: float = 0.1,
    n_requests: int = 1500,
    seed: int = 2013,
    cost_model: CostModel = DEFAULT_MEMCACHED_MODEL,
) -> list[ExperimentResult]:
    graph = graph or make_slashdot_like(seed=seed, scale=scale)
    throughputs = []
    tprs = []
    for n in server_counts:
        cfg = SimConfig(
            cluster=ClusterConfig(n_servers=n, replication=1, memory_factor=1.0),
            client=ClientConfig(mode="noreplication"),
            n_requests=n_requests,
            warmup_requests=0,  # no replica LRUs to warm without replication
            seed=seed,
        )
        res = run_simulation(graph, cfg)
        throughputs.append(res.throughput(cost_model))
        tprs.append(res.tpr)
    relative = relative_throughput_curve(throughputs)
    ideal = [n / server_counts[0] for n in server_counts]
    return [
        ExperimentResult(
            name="fig03",
            title="Fig 3: relative throughput vs number of servers (multi-get hole)",
            x_label="servers",
            x_values=list(server_counts),
            series={
                "relative throughput": relative,
                "ideal scaling": ideal,
                "TPR": tprs,
            },
            expectation=(
                "measured curve falls increasingly below the ideal line as N "
                "approaches the mean request size; TPR grows toward min(N, M)"
            ),
            meta={"graph": graph.name, "cost_model": cost_model},
        )
    ]

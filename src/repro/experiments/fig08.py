"""Fig 8 — TPR reduction vs available memory under overbooking.

For a 16-server fleet with all enhancements on (overbooking with a
distinguished copy, hitchhiking, miss write-back), sweep the total memory
from 1.0x to 4.0x one copy of the data and the declared ("logical")
replication level over 1–4.  The y value is TPR relative to the
no-replication baseline on the same request pattern.

Paper headlines to check (section III-D):
* ~50% TPR reduction at ~2.5x memory (vs needing 4x with naive allocation);
* ~25% reduction "for free" at 2.0x (a disaster-recovery copy repurposed);
* replication level 1 stays flat at 1.0;
* excessive overbooking with little memory can *increase* TPR.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.sim.config import ClientConfig, ClusterConfig, SimConfig
from repro.sim.engine import run_simulation
from repro.workloads.graphs import SocialGraph
from repro.workloads.synthetic import make_slashdot_like

DEFAULT_MEMORY_FACTORS = (1.0, 1.25, 1.5, 2.0, 2.5, 3.0, 4.0)
DEFAULT_REPLICATIONS = (1, 2, 3, 4)


def _rnb_point(
    replication: int,
    memory_factor: float,
    *,
    graph: SocialGraph,
    n_servers: int,
    merge_window: int,
    n_requests: int,
    warmup_requests: int,
    seed: int,
) -> float:
    """One overbooked-RnB sweep point (module level so it pickles for
    process-parallel sweeps)."""
    cfg = SimConfig(
        cluster=ClusterConfig(
            n_servers=n_servers, replication=replication, memory_factor=memory_factor
        ),
        client=ClientConfig(mode="rnb", hitchhiking=True, merge_window=merge_window),
        n_requests=n_requests,
        warmup_requests=warmup_requests,
        seed=seed,
    )
    return run_simulation(graph, cfg).tpr


def sweep_tpr(
    graph: SocialGraph,
    *,
    n_servers: int,
    replications,
    memory_factors,
    merge_window: int,
    n_requests: int,
    warmup_requests: int,
    seed: int,
    max_workers: int = 1,
) -> tuple[dict[str, list[float]], list[float]]:
    """Shared Fig 8/9/10 sweep.

    Returns (series of absolute TPR per replication level, baseline TPR
    list aligned with memory_factors).  The baseline is the
    no-replication client on the identical (possibly merged) request
    pattern; it does not depend on the memory factor, but is returned per
    point for convenient ratio computation.  ``max_workers > 1`` fans the
    grid out over processes (each point is an independent simulation).
    """
    from repro.sim.sweep import sweep_grid

    base_cfg = SimConfig(
        cluster=ClusterConfig(n_servers=n_servers, replication=1, memory_factor=1.0),
        client=ClientConfig(mode="noreplication", merge_window=merge_window),
        n_requests=n_requests,
        warmup_requests=warmup_requests,
        seed=seed,
    )
    baseline_tpr = run_simulation(graph, base_cfg).tpr

    points = sweep_grid(
        _rnb_point,
        {"replication": list(replications), "memory_factor": list(memory_factors)},
        common={
            "graph": graph,
            "n_servers": n_servers,
            "merge_window": merge_window,
            "n_requests": n_requests,
            "warmup_requests": warmup_requests,
            "seed": seed,
        },
        max_workers=max_workers,
    )
    series: dict[str, list[float]] = {f"R={r}": [] for r in replications}
    for point, tpr in points:
        series[f"R={point['replication']}"].append(tpr)
    return series, [baseline_tpr] * len(memory_factors)


def run(
    graph: SocialGraph | None = None,
    *,
    n_servers: int = 16,
    replications=DEFAULT_REPLICATIONS,
    memory_factors=DEFAULT_MEMORY_FACTORS,
    scale: float = 0.1,
    n_requests: int = 1200,
    warmup_requests: int = 2500,
    seed: int = 2013,
    max_workers: int = 1,
) -> list[ExperimentResult]:
    graph = graph or make_slashdot_like(seed=seed, scale=scale)
    tpr_series, baseline = sweep_tpr(
        graph,
        n_servers=n_servers,
        replications=replications,
        memory_factors=memory_factors,
        merge_window=1,
        n_requests=n_requests,
        warmup_requests=warmup_requests,
        seed=seed,
        max_workers=max_workers,
    )
    ratio_series = {
        label: [t / b for t, b in zip(tprs, baseline)]
        for label, tprs in tpr_series.items()
    }
    return [
        ExperimentResult(
            name="fig08",
            title=(
                f"Fig 8: TPR relative to no replication vs memory factor "
                f"({n_servers} servers, overbooking + hitchhiking)"
            ),
            x_label="memory",
            x_values=list(memory_factors),
            series=ratio_series,
            expectation=(
                "R=1 flat at 1.0; higher logical replication + more memory => "
                "lower ratio; ~0.75 at 2.0x and ~0.5 near 2.5x for R=4; "
                "aggressive overbooking at 1.0x memory can exceed 1.0"
            ),
            meta={"graph": graph.name, "baseline_tpr": baseline[0]},
        )
    ]

"""Sensitivity of the overbooking gain to workload affinity strength.

EXPERIMENTS.md attributes the one quantitative gap of this reproduction
(Fig 8's 50%-at-2.5x headline landing at ~29%) to the synthetic graphs
having weaker affinity structure than the real Slashdot graph.  This
experiment makes that explanation testable: it sweeps the synthetic
generator's Zipf popularity exponent — the knob that controls how much
ego networks overlap — and measures the overbooked-RnB TPR ratio at a
fixed memory budget.

Higher exponent ⇒ more shared friends between requests ⇒ the sticky
greedy cover concentrates traffic on fewer replicas ⇒ the LRUs keep the
hot replicas resident ⇒ lower miss rate and a bigger TPR cut at the same
memory.  If the ratio improves monotonically with the exponent, the
Fig 8 gap is a workload-structure artifact, not a mechanism bug.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.base import ExperimentResult
from repro.sim.config import ClientConfig, ClusterConfig, SimConfig
from repro.sim.engine import run_simulation
from repro.workloads.synthetic import DATASETS, synthesize_graph

DEFAULT_EXPONENTS = (0.4, 0.8, 1.0, 1.2)


def run(
    *,
    exponents=DEFAULT_EXPONENTS,
    n_servers: int = 16,
    replication: int = 4,
    memory_factor: float = 2.5,
    scale: float = 0.1,
    n_requests: int = 800,
    warmup_requests: int = 2000,
    seed: int = 2013,
) -> list[ExperimentResult]:
    ratios = []
    miss_rates = []
    for exponent in exponents:
        spec = replace(DATASETS["slashdot"], popularity_exponent=exponent)
        graph = synthesize_graph(spec, seed=seed, scale=scale)
        base = run_simulation(
            graph,
            SimConfig(
                cluster=ClusterConfig(
                    n_servers=n_servers, replication=1, memory_factor=1.0
                ),
                client=ClientConfig(mode="noreplication"),
                n_requests=n_requests,
                warmup_requests=0,
                seed=seed,
            ),
        )
        rnb = run_simulation(
            graph,
            SimConfig(
                cluster=ClusterConfig(
                    n_servers=n_servers,
                    replication=replication,
                    memory_factor=memory_factor,
                ),
                client=ClientConfig(mode="rnb", hitchhiking=True),
                n_requests=n_requests,
                warmup_requests=warmup_requests,
                seed=seed,
            ),
        )
        ratios.append(rnb.tpr / base.tpr)
        miss_rates.append(rnb.miss_rate)

    return [
        ExperimentResult(
            name="sensitivity_affinity",
            title=(
                f"Overbooking gain vs workload affinity "
                f"(R={replication}, memory {memory_factor}x, {n_servers} servers)"
            ),
            x_label="popularity exponent",
            x_values=list(exponents),
            series={"TPR ratio": ratios, "miss rate": miss_rates},
            expectation=(
                "stronger affinity (larger exponent) => lower miss rate and "
                "lower TPR ratio at fixed memory — the Fig 8 headline gap "
                "closes as the workload approaches real-graph overlap"
            ),
            meta={"memory_factor": memory_factor, "replication": replication},
        )
    ]

"""Fig 2 — TPRPS scaling factor when doubling the server count.

Pure closed-form reproduction of paper section II-A: for request sizes
M in {1, 10, 50, 100}, plot ``W(N,M)/W(2N,M)`` against the initial number
of servers N.  Ideal scaling is 2.0 (attained for M=1); the multi-get
hole is the collapse toward 1.0 while N <~ M, with ~1.5 at N = M.
"""

from __future__ import annotations

from repro.analysis.urn import tprps_scaling_factor
from repro.experiments.base import ExperimentResult

DEFAULT_REQUEST_SIZES = (1, 10, 50, 100)
DEFAULT_SERVER_COUNTS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def run(
    request_sizes=DEFAULT_REQUEST_SIZES,
    server_counts=DEFAULT_SERVER_COUNTS,
) -> list[ExperimentResult]:
    series = {
        f"M={m}": [tprps_scaling_factor(n, m) for n in server_counts]
        for m in request_sizes
    }
    return [
        ExperimentResult(
            name="fig02",
            title="Fig 2: TPRPS scaling factor when doubling servers (larger is better)",
            x_label="initial N",
            x_values=list(server_counts),
            series=series,
            expectation=(
                "factor==2 for M=1 at any N; ~1.5 at N==M; approaches 1 when "
                "N << M and 2 when N >> M"
            ),
        )
    ]

"""Flexible fleet growth (paper sections II-C and V).

Two of the paper's deployment claims about RnB vs full-system
replication have no figure but are load-bearing:

* "the third solution [full-system replication] only permits system
  enlargement in relatively large strides" — to grow at all you must add
  a whole bank (another complete copy of the fleet);
* RnB "supports smooth scalability and is relatively easy to incorporate
  in existing systems" — consistent hashing moves only ~R/(N+1) of the
  replica assignments when one server joins.

This experiment grows a fleet one server at a time and measures, for RCH
and multi-hash placement:

* **churn** — the fraction of (item, replica) assignments that move when
  server N+1 joins (data that must be re-copied);
* **shrink churn** — the same fraction when one server *leaves* (the
  repair traffic a failure costs, via the membership epoch delta);
* **TPR continuity** — mean TPR before and after the join.

For contrast it also reports the *minimum growth stride* of full-system
replication: a k-bank fleet of N servers can only grow by N/k servers at
a time, a constant fraction of the installed base.

Both churn directions are measured with
:func:`repro.membership.repair.compute_epoch_delta` — the exact planner
the online repair path executes, so the numbers here are the repair
traffic a real reconfiguration would ship.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.placement import make_placer
from repro.core.setcover import cover_from_replica_lists
from repro.experiments.base import ExperimentResult
from repro.membership import EpochedPlacer, compute_epoch_delta
from repro.utils.rng import derive_rng

DEFAULT_FLEET_SIZES = (8, 16, 32, 64)


def _churn(kind: str, n_servers: int, replication: int, n_items: int) -> float:
    """Fraction of replica assignments that move when one server joins."""
    before = make_placer(kind, n_servers, replication, seed=0)
    after = make_placer(kind, n_servers + 1, replication, seed=0)
    delta = compute_epoch_delta(
        before.servers_for, after.servers_for, range(n_items)
    )
    return delta.churn_fraction


def _shrink_churn(kind: str, n_servers: int, replication: int, n_items: int) -> float:
    """Fraction of assignments that must be re-copied when one server dies."""
    placer = EpochedPlacer(kind, n_servers, replication, seed=0)
    before = {item: placer.servers_for(item) for item in range(n_items)}
    placer.install_view(placer.view.without(n_servers - 1))
    delta = compute_epoch_delta(
        before.__getitem__,
        placer.servers_for,
        range(n_items),
        alive=placer.view.alive_servers,
    )
    return delta.churn_fraction


def _tpr(
    kind: str, n_servers: int, replication: int, n_items: int, rng, m: int, trials: int
) -> float:
    placer = make_placer(kind, n_servers, replication, seed=0)
    tprs = []
    for _ in range(trials):
        items = rng.choice(n_items, size=m, replace=False)
        cover = cover_from_replica_lists(
            [placer.servers_for(int(i)) for i in items]
        )
        tprs.append(cover.n_selected)
    return float(np.mean(tprs))


def run(
    *,
    fleet_sizes=DEFAULT_FLEET_SIZES,
    replication: int = 3,
    n_items: int = 4000,
    request_size: int = 30,
    n_trials: int = 150,
    seed: int = 2013,
) -> list[ExperimentResult]:
    churn_series: dict[str, list[float]] = {}
    for kind in ("rch", "multihash"):
        churn_series[f"{kind} churn"] = [
            _churn(kind, n, replication, n_items) for n in fleet_sizes
        ]
    churn_series["ideal churn R/(N+1)"] = [
        replication / (n + 1) / replication for n in fleet_sizes
    ]
    for kind in ("rch", "multihash"):
        churn_series[f"{kind} shrink churn"] = [
            _shrink_churn(kind, n, replication, n_items) for n in fleet_sizes
        ]
    churn_series["ideal shrink churn 1/N"] = [1 / n for n in fleet_sizes]
    # full replication cannot grow by one server at all; its minimum
    # stride is one whole bank = N/k servers (k = replication banks)
    churn_series["full-repl min stride (servers)"] = [
        n / replication for n in fleet_sizes
    ]

    tpr_before: list[float] = []
    tpr_after: list[float] = []
    for n in fleet_sizes:
        rng = derive_rng(seed, n)
        tpr_before.append(_tpr("rch", n, replication, n_items, rng, request_size, n_trials))
        tpr_after.append(_tpr("rch", n + 1, replication, n_items, rng, request_size, n_trials))

    return [
        ExperimentResult(
            name="growth_churn",
            title=(
                f"Fleet growth N -> N+1: replica churn (R={replication}, "
                f"{n_items} items)"
            ),
            x_label="N",
            x_values=list(fleet_sizes),
            series=churn_series,
            expectation=(
                "RCH churn tracks the consistent-hashing ideal ~1/(N+1); "
                "multi-hash remaps a larger share; full replication cannot "
                "grow by one server at all (stride = N/banks); shrink churn "
                "(one failure) stays near 1/N for both under the epoch overlay"
            ),
        ),
        ExperimentResult(
            name="growth_tpr",
            title="Fleet growth N -> N+1: TPR continuity under RCH",
            x_label="N",
            x_values=list(fleet_sizes),
            series={"TPR at N": tpr_before, "TPR at N+1": tpr_after},
            expectation=(
                "TPR changes only marginally across a single-server join — "
                "growth is smooth, no cliff"
            ),
            meta={"request_size": request_size},
        ),
    ]

"""Per-figure reproduction drivers.

Every figure in the paper's evaluation has a module here exposing
``run(...) -> list[ExperimentResult]``; the benchmark harness and the CLI
print the resulting tables.  Default parameters are sized for a laptop
run of a few seconds to a couple of minutes per figure; pass
``scale=1.0`` (and larger request counts) for full paper-scale graphs.

See DESIGN.md section 4 for the experiment index and the expected shapes.
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = ["EXPERIMENTS", "ExperimentResult", "get_experiment", "run_experiment"]

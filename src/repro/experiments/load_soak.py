"""Load soak: identical demand under steady, diurnal and flash-crowd arrivals.

The hotspot soak stresses *where* load lands (a straggler under skew);
this one stresses *when* it lands.  One seeded Zipf request stream is
replayed three times through the event-heap overload simulator
(:func:`repro.overload.desim.simulate_overload`) with the full defence
ladder on — same requests, same total count, same schedule span — but
with arrival times drawn from the open-loop rate curves of
:mod:`repro.loadgen.schedule`:

* **steady** — homogeneous Poisson arrivals at mean utilisation ``rho``
  on the bottleneck server: the comfortable regime;
* **diurnal** — a day/night sinusoid: the peak runs hotter than ``rho``
  but slowly enough for breakers and admission to track it;
* **flash** — a ``flash_factor``× square spike: transient saturation
  that no capacity plan sized for the mean survives un-degraded.

Goodput uses the DES's drain horizon (``items delivered / horizon``), so
the three arms are directly comparable — they deliver (nearly) the same
items over the same span; what differs is the tail and how much the
ladder had to shed to protect it.

Acceptance (meta): ``requests_failed`` == 0 in every arm (the ladder
degrades, it never drops), the flash arm's p99 and shed+cut rates are at
least the steady arm's, and the whole run is a pure function of ``seed``
(``determinism_token``; the load-smoke CI job diffs two runs).
"""

from __future__ import annotations

from repro.analysis.calibration import DEFAULT_MEMCACHED_MODEL
from repro.core.bundling import Bundler
from repro.experiments.base import ExperimentResult
from repro.experiments.hotspot import make_requests
from repro.faults.partition import link_blackout_windows
from repro.hashing.hashfns import stable_hash64
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.loadgen.schedule import arrival_times
from repro.overload.desim import OverloadConfig, simulate_overload
from repro.utils.rng import derive_rng

ARMS = ("steady", "diurnal", "flash")
_CURVES = {"steady": "constant", "diurnal": "diurnal", "flash": "flash"}

#: notional tick axis the nemesis blackout schedule is drawn on before
#: being scaled onto the DES's schedule span
_NEMESIS_TICKS = 1000


def _nemesis_oracle(nemesis_seed: int, n_servers: int, duration: float):
    """A seeded ``unreachable(sid, now)`` oracle plus its span list.

    Two link-blackout windows from :func:`repro.faults.partition.
    link_blackout_windows`, each cutting one seeded victim server for
    the window's span — the DES-side twin of the loopback fleet's
    connection-refusing gate (docs/PARTITIONS.md).  Pure function of
    the arguments.
    """
    windows = link_blackout_windows(
        nemesis_seed, _NEMESIS_TICKS, n_windows=2, min_len=60, max_len=200
    )
    rng = derive_rng(
        nemesis_seed, stable_hash64("load-soak-nemesis-targets") & 0x7FFFFFFF
    )
    scale = duration / _NEMESIS_TICKS
    spans = [
        (start * scale, end * scale, int(rng.integers(0, n_servers)))
        for start, end in windows
    ]

    def unreachable(sid: int, now: float) -> bool:
        return any(s <= now < e for s, e, victim in spans if victim == sid)

    return unreachable, spans


def run(
    *,
    n_servers: int = 10,
    replication: int = 2,
    n_items: int = 4000,
    request_size: int = 10,
    n_requests: int = 2400,
    zipf_exponent: float = 1.0,
    rho: float = 0.75,
    flash_factor: float = 6.0,
    seed: int = 2013,
    scale: float = 1.0,
    nemesis_seed: int | None = None,
) -> list[ExperimentResult]:
    """Soak the defence ladder under three arrival-time regimes.

    ``rho`` sets the *mean* utilisation of the bottleneck server; the
    diurnal peak and the flash spike both run transiently past it.
    ``scale`` shrinks the run for smoke tests; at any fixed parameter
    set the run is a pure function of ``seed``.

    ``nemesis_seed`` (None by default — the CI load-smoke gates assume
    the default) additionally runs the **flash** arm under a seeded
    link-blackout schedule: two windows each cutting one server's link
    at the DES dispatcher, so the worst arrival regime is also fighting
    a partial partition.  Steady and diurnal arms are untouched, which
    keeps the cross-arm comparison meaningful.
    """
    n_requests = max(int(n_requests * scale), 200)
    n_items = max(int(n_items * scale), 200)

    cost_model = DEFAULT_MEMCACHED_MODEL
    placer = RangedConsistentHashPlacer(n_servers, replication, seed=0, vnodes=64)
    bundler = Bundler(placer)
    requests = make_requests(seed, n_items, request_size, n_requests, zipf_exponent)

    # Size the schedule span from the planned per-server demand: the
    # bottleneck server's busy work at utilisation rho fixes the mean
    # arrival rate, hence the span the three curves share.
    demand = [0.0] * n_servers
    for footprint in bundler.plan_footprints(requests):
        for server, n_primary in footprint:
            demand[server] += cost_model.txn_time(n_primary)
    duration = max(demand) / rho

    healthy_txn = cost_model.txn_time(request_size)
    config = OverloadConfig(
        queue_limit=32,
        breaker=True,
        trip_after=4,
        window=12,
        open_ticks=60,
        deadline=healthy_txn * 400,
        partial_fraction=0.5,
        load_aware=True,
        seed=seed,
    )

    unreachable = None
    nemesis_spans: list[tuple[float, float, int]] = []
    if nemesis_seed is not None:
        unreachable, nemesis_spans = _nemesis_oracle(
            nemesis_seed, n_servers, duration
        )

    results = {}
    for arm in ARMS:
        times = arrival_times(
            n_requests,
            duration,
            curve=_CURVES[arm],
            scheduler="poisson",
            seed=seed,
            **({"factor": flash_factor} if arm == "flash" else {}),
        )
        results[arm] = simulate_overload(
            requests,
            bundler,
            n_servers=n_servers,
            cost_model=cost_model,
            arrival_times=times,
            config=config,
            unreachable=unreachable if arm == "flash" else None,
        )

    def col(fn):
        return [fn(results[arm]) for arm in ARMS]

    def goodput(r) -> float:
        span = r.horizon if r.horizon > 0 else 1.0
        return r.served_fraction * r.items_measured / span

    series = {
        "p50 latency (ms)": col(lambda r: r.p50_latency * 1e3),
        "p99 latency (ms)": col(lambda r: r.p99_latency * 1e3),
        "p999 latency (ms)": col(lambda r: r.p999_latency * 1e3),
        "served fraction": col(lambda r: r.served_fraction),
        "shed rate": col(lambda r: r.shed_rate),
        "deadline cut rate": col(lambda r: r.deadline_cut_rate),
        "goodput (items/s)": col(goodput),
        "requests degraded": col(lambda r: float(r.requests_degraded)),
        "requests failed": col(lambda r: float(r.requests_failed)),
    }
    token = stable_hash64(
        repr([(k, tuple(v)) for k, v in sorted(series.items())]), seed=seed
    )
    steady, flash = results["steady"], results["flash"]
    meta = {
        "seed": seed,
        "n_servers": n_servers,
        "replication": replication,
        "rho": rho,
        "flash_factor": flash_factor,
        "duration": duration,
        "steady_p99_ms": steady.p99_latency * 1e3,
        "flash_p99_ms": flash.p99_latency * 1e3,
        "flash_pain": (
            (flash.shed_rate + flash.deadline_cut_rate)
            - (steady.shed_rate + steady.deadline_cut_rate)
        ),
        "busy_verdicts": {arm: results[arm].busy_verdicts for arm in ARMS},
        "requests_failed": sum(results[arm].requests_failed for arm in ARMS),
        "nemesis_seed": nemesis_seed,
        "nemesis_blackouts": [
            [round(s, 6), round(e, 6), victim] for s, e, victim in nemesis_spans
        ],
        "partition_blocked": {arm: results[arm].partition_blocked for arm in ARMS},
        "determinism_token": token,
        # per-arm repro.obs telemetry (docs/OBSERVABILITY.md): the same
        # metric families the live loadtest emits; tokens make the
        # load-smoke diff cover telemetry, not just headline outcomes
        # (full snapshots stay on each arm's OverloadResult.metrics)
        "metrics_token": {arm: results[arm].metrics_token for arm in ARMS},
        "metric_families": sorted(results["steady"].metrics),
    }
    return [
        ExperimentResult(
            name="load_soak",
            title=(
                f"Load soak: Zipf({zipf_exponent}) demand at rho={rho:g} under "
                f"steady / diurnal / flash({flash_factor:g}x) arrivals "
                f"({n_servers} servers, R={replication})"
            ),
            x_label="arm",
            x_values=list(ARMS),
            series=series,
            expectation=(
                "arrival timing alone moves the tail: the flash arm's p99 and "
                "shed+cut rates are the worst of the three at identical total "
                "demand, the diurnal arm sits between, and zero requests fail "
                "anywhere — the ladder answers degraded, never drops"
            ),
            meta=meta,
        )
    ]

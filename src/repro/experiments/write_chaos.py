"""Write chaos: quorum writes under mid-burst kills, then convergence.

The consistency subsystem (``repro.consistency``, docs/CONSISTENCY.md)
claims that versioned quorum writes plus read-repair plus anti-entropy
turn the best-effort write path into one that *converges*: servers may
die mid-write (taking their memory with them) and every replica still
ends up at the newest committed version.  This experiment proves it on
the simulated cluster, deterministically:

1. **Provision** — every item gets one quorum write, so the whole
   keyspace is versioned.
2. **Burst** — a seeded stream of quorum writes over random keys; a
   seeded schedule kills (crash = memory wiped) and later restores
   servers *mid-burst*, so writes commit at W < R acks and restored
   servers come back empty — both flavours of divergence are seeded.
3. **Read-repair** — a seeded sample of versioned reads detects
   divergence and queues newest-wins repairs through a budgeted
   :class:`~repro.membership.repair.RepairExecutor` (the PR-2 throttle),
   drained at ``repair_rate`` copies per tick.
4. **Scrub** — the :class:`~repro.consistency.scrub.AntiEntropyScrubber`
   reconciles everything reads missed; the acceptance gate is
   ``divergent_after_scrub == 0``.

The quorum-write **p99 overhead** versus best-effort write-back is
reported from a seeded per-replica latency model: each write draws R
independent service times; best-effort completes at the distinguished
replica's draw, a W-quorum completes at the W-th smallest draw (replicas
are written concurrently).  The ratio of the p99s is the price of
durability, and it is part of the experiment output as the tentpole
acceptance criteria require.

The run is a pure function of ``seed`` (``determinism_token``), which is
what the CI ``consistency-smoke`` job diffs byte-for-byte.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.cluster.placement import make_placer
from repro.consistency import (
    COMMITTED,
    FAILED,
    PARTIAL,
    AntiEntropyScrubber,
    ClusterStore,
    QuorumWriter,
    VersionClock,
    VersionedReader,
    make_repair_executor,
    resolve_w,
)
from repro.experiments.base import ExperimentResult
from repro.faults.health import HealthTracker
from repro.faults.injector import DynamicFaultInjector
from repro.hashing.hashfns import stable_hash64
from repro.obs import MetricsRegistry
from repro.utils.rng import derive_rng


def make_kill_schedule(
    seed: int,
    n_servers: int,
    n_writes: int,
    *,
    n_kills: int,
    down_fraction: float = 0.25,
) -> list[tuple[int, str, int]]:
    """A seeded ``(write_index, kind, server)`` kill/restore schedule.

    Kills are spread evenly through the burst; each victim stays down
    for ``down_fraction`` of the burst (so writes issued meanwhile
    commit partially) and is restored *empty* before the burst ends.
    Victims are distinct servers.  Pure function of the arguments.
    """
    rng = derive_rng(seed, stable_hash64("write-chaos-kills") & 0x7FFFFFFF)
    victims = rng.choice(n_servers, size=min(n_kills, n_servers), replace=False)
    down_for = max(int(n_writes * down_fraction), 1)
    events: list[tuple[int, str, int]] = []
    for i, victim in enumerate(victims):
        at = int(n_writes * (i + 1) / (len(victims) + 1))
        back = min(at + down_for, n_writes - 1)
        events.append((at, "kill", int(victim)))
        events.append((back, "restore", int(victim)))
    return sorted(events, key=lambda e: (e[0], e[1], e[2]))


def _latency_percentiles(
    seed: int, n_samples: int, r: int, w: int
) -> tuple[float, float, float]:
    """Seeded per-replica latency model: p99s of the three write modes.

    Each write draws ``r`` independent lognormal service times (one per
    replica, written concurrently).  Best-effort write-back completes at
    the distinguished replica's draw; a W-quorum completes at the W-th
    smallest; W=R waits for the slowest.  Returns
    ``(best_effort_p99, quorum_p99, all_replicas_p99)``.  Note a
    majority quorum's tail can *beat* a single write's — the W-th order
    statistic of R concurrent attempts hedges stragglers (the Harmonia
    near-linear-writes observation) — while W=R always pays the max.
    """
    rng = derive_rng(seed, stable_hash64("write-chaos-latency") & 0x7FFFFFFF)
    draws = rng.lognormal(mean=0.0, sigma=0.6, size=(n_samples, r))
    ordered = np.sort(draws, axis=1)
    return (
        float(np.percentile(draws[:, 0], 99)),
        float(np.percentile(ordered[:, w - 1], 99)),
        float(np.percentile(ordered[:, r - 1], 99)),
    )


def run(
    *,
    n_servers: int = 10,
    replication: int = 3,
    n_items: int = 1500,
    n_writes: int = 4000,
    n_kills: int = 2,
    w: str | int = "majority",
    repair_rate: int = 100,
    read_sample: int = 300,
    scrub_buckets: int = 64,
    window: int = 100,
    seed: int = 2014,
    scale: float = 1.0,
) -> list[ExperimentResult]:
    """Kill servers mid-write-burst; prove convergence to zero divergence.

    ``scale`` shrinks the run for smoke tests (items, writes and the
    read sample scale together); at any fixed parameter set the whole
    run is a function of ``seed`` alone.
    """
    n_items = max(int(n_items * scale), 50)
    n_writes = max(int(n_writes * scale), 100)
    read_sample = max(int(read_sample * scale), 30)
    n_kills = max(min(int(round(n_kills * scale)) or 1, n_servers - replication), 1)
    window = max(min(window, n_writes // 4), 1)

    placer = make_placer("rch", n_servers, replication, seed=0, vnodes=64)
    items = range(n_items)
    cluster = Cluster(placer, items, memory_factor=None)
    injector = DynamicFaultInjector()
    cluster.attach_injector(injector)

    registry = MetricsRegistry()
    health = HealthTracker(n_servers, dead_after=2)
    store = ClusterStore(cluster, placer)
    clock = VersionClock(writer=1, epoch_fn=lambda: getattr(placer, "epoch", 0))
    writer = QuorumWriter(
        store, placer, clock=clock, w=w, health=health, metrics=registry
    )

    # ---- phase 1: provision — version the whole keyspace ----
    for item in range(n_items):
        writer.write(item)

    # ---- phase 2: the burst, with mid-burst kills ----
    schedule = make_kill_schedule(seed, n_servers, n_writes, n_kills=n_kills)
    by_index: dict[int, list[tuple[str, int]]] = {}
    for at, kind, server in schedule:
        by_index.setdefault(at, []).append((kind, server))

    key_rng = derive_rng(seed, stable_hash64("write-chaos-keys") & 0x7FFFFFFF)
    keys = key_rng.integers(0, n_items, size=n_writes)

    outcomes = {COMMITTED: 0, PARTIAL: 0, FAILED: 0}
    win_counts = {COMMITTED: 0, PARTIAL: 0, FAILED: 0}
    series: dict[str, list[float]] = {
        "committed / window": [],
        "partial (divergence seeded) / window": [],
        "failed / window": [],
        "servers down": [],
    }
    x_values: list[int] = []
    for i in range(n_writes):
        for kind, server in by_index.get(i, ()):
            if kind == "kill":
                injector.kill(server)
                cluster.wipe_server(server)  # crash loses its memory
            else:
                injector.restore(server)
                health.record_recovery(server)
        outcome = writer.write(int(keys[i]))
        outcomes[outcome.outcome] += 1
        win_counts[outcome.outcome] += 1
        if (i + 1) % window == 0:
            x_values.append(i + 1)
            series["committed / window"].append(float(win_counts[COMMITTED]))
            series["partial (divergence seeded) / window"].append(
                float(win_counts[PARTIAL])
            )
            series["failed / window"].append(float(win_counts[FAILED]))
            series["servers down"].append(float(len(injector.down)))
            win_counts = {COMMITTED: 0, PARTIAL: 0, FAILED: 0}

    # every victim is restored by the schedule; assert the fleet is whole
    # before convergence is measured
    assert not injector.down, "kill schedule must restore every victim"

    scrubber = AntiEntropyScrubber(
        store, placer, n_buckets=scrub_buckets, seed=seed, metrics=registry
    )
    divergent_before = len(scrubber.divergent_keys())

    # ---- phase 3: versioned reads + budget-throttled read-repair ----
    executor = make_repair_executor(store, metrics=registry)
    reader = VersionedReader(
        store, placer, clock=clock, health=health, metrics=registry,
        executor=executor,
    )
    read_rng = derive_rng(seed, stable_hash64("write-chaos-reads") & 0x7FFFFFFF)
    sample = read_rng.integers(0, n_items, size=read_sample)
    reads_divergent = 0
    repairs_queued = 0
    for key in sample:
        outcome = reader.read(int(key))
        reads_divergent += int(outcome.divergent)
        repairs_queued += outcome.queued
    drain_ticks = 0
    while executor.pending():
        executor.step(repair_rate, clock=drain_ticks)
        drain_ticks += 1
    divergent_after_reads = len(scrubber.divergent_keys())

    # ---- phase 4: anti-entropy scrub to convergence ----
    reports = scrubber.scrub(max_cycles=8)
    divergent_after = len(scrubber.divergent_keys())

    # ---- quorum p99 overhead vs best-effort write-back ----
    w_resolved = resolve_w(w, replication)
    best_p99, quorum_p99, all_p99 = _latency_percentiles(
        seed, n_samples=max(n_writes, 1000), r=replication, w=w_resolved
    )

    token = stable_hash64(
        repr(
            [
                ("series", tuple((k, tuple(v)) for k, v in sorted(series.items()))),
                ("outcomes", tuple(sorted(outcomes.items()))),
                ("divergent", (divergent_before, divergent_after_reads, divergent_after)),
                ("scrub", tuple((r.divergent, r.repairs_applied) for r in reports)),
            ]
        ),
        seed=seed,
    )
    last = reports[-1]
    meta = {
        "seed": seed,
        "n_servers": n_servers,
        "replication": replication,
        "w": w,
        "w_resolved": w_resolved,
        "n_items": n_items,
        "n_writes": n_writes,
        "schedule": [list(e) for e in schedule],
        "writes_committed": outcomes[COMMITTED],
        "writes_partial": outcomes[PARTIAL],
        "writes_failed": outcomes[FAILED],
        "divergent_before_repair": divergent_before,
        "reads_sampled": int(read_sample),
        "reads_divergent": reads_divergent,
        "repairs_queued": repairs_queued,
        "repair_drain_ticks": drain_ticks,
        "divergent_after_reads": divergent_after_reads,
        "scrub_cycles": len(reports),
        "scrub_repairs": scrubber.total_repairs,
        "scrub_keys_walked": sum(r.keys_walked for r in reports),
        "scrub_prune_ratio": (
            last.buckets_pruned / last.buckets_compared
            if last.buckets_compared
            else 0.0
        ),
        "divergent_after_scrub": divergent_after,
        "converged": divergent_after == 0,
        "best_effort_p99": best_p99,
        "quorum_p99": quorum_p99,
        "all_replicas_p99": all_p99,
        "quorum_p99_overhead": quorum_p99 / best_p99 if best_p99 else float("nan"),
        "metrics_token": registry.token(seed),
        "determinism_token": token,
    }
    return [
        ExperimentResult(
            name="write_chaos",
            title=(
                f"Write chaos: {n_kills} mid-burst kills over {n_writes} "
                f"W={w} quorum writes ({n_servers} servers, R={replication})"
            ),
            x_label="writes issued",
            x_values=x_values,
            series=series,
            expectation=(
                "kills turn committed windows into partial ones (divergence "
                "seeded) without failing writes at W=majority; read-repair "
                "plus one anti-entropy scrub cycle pair converge the fleet "
                "back to zero divergent keys; quorum p99 overhead vs "
                "best-effort write-back stays modest (W-th order statistic "
                "of R concurrent writes)"
            ),
            meta=meta,
        )
    ]

"""Fig 12 — LIMIT requests with replication (Monte-Carlo).

TPR vs number of servers for replication levels 2–5 (no overbooking),
with reference curves for one replica with and without the LIMIT clause.
One panel per (request size, fetched fraction), as in the paper.

Paper headlines: with five replicas at 90%, TPR falls to ~30% of the
single-replica full-fetch TPR; two replicas alone reach ~65%.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.sim.montecarlo import mc_tpr
from repro.utils.rng import derive_rng

DEFAULT_SERVER_COUNTS = (8, 16, 32, 64)
DEFAULT_REQUEST_SIZES = (20, 100)
DEFAULT_FRACTIONS = (0.5, 0.9, 0.95)
DEFAULT_REPLICATIONS = (2, 3, 4, 5)


def run(
    *,
    server_counts=DEFAULT_SERVER_COUNTS,
    request_sizes=DEFAULT_REQUEST_SIZES,
    fractions=DEFAULT_FRACTIONS,
    replications=DEFAULT_REPLICATIONS,
    n_trials: int = 300,
    seed: int = 2013,
) -> list[ExperimentResult]:
    results = []
    for m in request_sizes:
        for frac in fractions:
            series: dict[str, list[float]] = {}
            rng = derive_rng(seed, m, int(frac * 100), 0)
            series["R=1 no LIMIT"] = [
                mc_tpr(n, m, 1, n_trials=n_trials, rng=rng).mean_tpr
                for n in server_counts
            ]
            series["R=1 LIMIT"] = [
                mc_tpr(n, m, 1, limit_fraction=frac, n_trials=n_trials, rng=rng).mean_tpr
                for n in server_counts
            ]
            for r in replications:
                series[f"R={r}"] = [
                    mc_tpr(
                        n, m, r, limit_fraction=frac, n_trials=n_trials, rng=rng
                    ).mean_tpr
                    for n in server_counts
                ]
            results.append(
                ExperimentResult(
                    name=f"fig12_M{m}_f{int(frac * 100)}",
                    title=(
                        f"Fig 12 (request size {m}, fetch {frac:.0%}): TPR vs "
                        "servers with replication, no overbooking"
                    ),
                    x_label="servers",
                    x_values=list(server_counts),
                    series=series,
                    expectation=(
                        "TPR decreases with replication at every N; at 90% "
                        "R=5 reaches ~30% of the R=1 no-LIMIT TPR and R=2 "
                        "~65%"
                    ),
                    meta={
                        "request_size": m,
                        "fraction": frac,
                        "n_trials": n_trials,
                    },
                )
            )
    return results

"""Common result container for experiment drivers."""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.utils.tables import format_series


@dataclass(slots=True)
class ExperimentResult:
    """One figure-shaped result: named series over a shared x axis.

    ``expectation`` states the paper's qualitative claim the series should
    exhibit; EXPERIMENTS.md pairs it with the measured outcome.
    """

    name: str
    title: str
    x_label: str
    x_values: Sequence[object]
    series: Mapping[str, Sequence[float]]
    expectation: str = ""
    notes: str = ""
    meta: dict = field(default_factory=dict)

    def table(self) -> str:
        """Render the figure as an aligned text table."""
        out = format_series(self.x_label, self.x_values, self.series, title=self.title)
        if self.expectation:
            out += f"\n  paper shape: {self.expectation}"
        if self.notes:
            out += f"\n  notes: {self.notes}"
        return out

    def series_as_floats(self, name: str) -> list[float]:
        return [float(v) for v in self.series[name]]

    def to_dict(self) -> dict:
        """JSON-serialisable representation (meta reduced to strings)."""
        return {
            "name": self.name,
            "title": self.title,
            "x_label": self.x_label,
            "x_values": list(self.x_values),
            "series": {k: list(v) for k, v in self.series.items()},
            "expectation": self.expectation,
            "notes": self.notes,
            "meta": {k: repr(v) for k, v in self.meta.items()},
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def to_csv(self) -> str:
        """The figure as CSV: x column followed by one column per series."""
        buf = io.StringIO()
        writer = csv.writer(buf)
        names = list(self.series)
        writer.writerow([self.x_label, *names])
        for i, x in enumerate(self.x_values):
            writer.writerow([x, *(self.series[n][i] for n in names)])
        return buf.getvalue()

"""Name -> experiment driver registry (used by the CLI and benches)."""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.experiments import (
    ablations,
    chaos,
    cover_quality,
    fault_tolerance,
    fig02,
    fig03,
    fig04_05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13_14,
    growth,
    hotspot,
    latency,
    limit_memory,
    load_soak,
    partition_chaos,
    queueing,
    scalability,
    sensitivity,
    single_item,
    write_chaos,
)
from repro.experiments.base import ExperimentResult

EXPERIMENTS: dict[str, Callable[..., list[ExperimentResult]]] = {
    "fig02": fig02.run,
    "fig03": fig03.run,
    "fig04_05": fig04_05.run,
    "fig06": fig06.run,
    "fig07": fig07.run,
    "fig08": fig08.run,
    "fig09": fig09.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig12": fig12.run,
    "fig13_14": fig13_14.run,
    "ablations": ablations.run,
    "chaos": chaos.run,
    "cover_quality": cover_quality.run,
    "fault_tolerance": fault_tolerance.run,
    "scalability": scalability.run,
    "latency": latency.run,
    "limit_memory": limit_memory.run,
    "load_soak": load_soak.run,
    "partition_chaos": partition_chaos.run,
    "single_item": single_item.run,
    "growth": growth.run,
    "hotspot": hotspot.run,
    "queueing": queueing.run,
    "sensitivity": sensitivity.run,
    "write_chaos": write_chaos.run,
}


def get_experiment(name: str) -> Callable[..., list[ExperimentResult]]:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; available: {', '.join(sorted(EXPERIMENTS))}"
        ) from None


def run_experiment(name: str, **kwargs) -> list[ExperimentResult]:
    """Run one experiment by name and return its result tables."""
    return get_experiment(name)(**kwargs)

"""Fig 6 — average TPR vs number of replicas (16 servers, naive memory).

Basic RnB (no overbooking: physical memory = replication level x data
size), greedy set-cover bundling, on both social-graph workloads.  The
paper reports "a significant reduction in TPR ... in some cases by more
than 50% utilizing a total of 4 copies of each item".
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.sim.config import ClientConfig, ClusterConfig, SimConfig
from repro.sim.engine import run_simulation
from repro.workloads.synthetic import make_epinions_like, make_slashdot_like

DEFAULT_REPLICATIONS = (1, 2, 3, 4, 5)


def run(
    *,
    n_servers: int = 16,
    replications=DEFAULT_REPLICATIONS,
    scale: float = 0.1,
    n_requests: int = 1500,
    seed: int = 2013,
    workers: int = 1,
) -> list[ExperimentResult]:
    """``workers > 1`` shards each run across processes — the fig-6
    configuration is squarely inside :func:`repro.perf.shard.shardable`'s
    tally envelope (naive allocation, pinned LRUs, sticky ties), so the
    sharded TPRs are bit-identical to the sequential ones."""
    graphs = {
        "slashdot": make_slashdot_like(seed=seed, scale=scale),
        "epinions": make_epinions_like(seed=seed, scale=scale),
    }
    series: dict[str, list[float]] = {}
    for label, graph in graphs.items():
        tprs = []
        for r in replications:
            cfg = SimConfig(
                cluster=ClusterConfig(
                    n_servers=n_servers, replication=r, memory_factor=None
                ),
                client=ClientConfig(mode="rnb"),
                n_requests=n_requests,
                warmup_requests=0,  # naive allocation: replicas preloaded
                seed=seed,
            )
            tprs.append(run_simulation(graph, cfg, workers=workers).tpr)
        series[f"TPR {label}"] = tprs
        series[f"rel {label}"] = [t / tprs[0] for t in tprs]
    return [
        ExperimentResult(
            name="fig06",
            title=f"Fig 6: mean TPR vs replicas ({n_servers} servers, naive allocation)",
            x_label="replicas",
            x_values=list(replications),
            series=series,
            expectation=(
                "TPR monotonically decreasing in the replica count; more than "
                "50% reduction by 4 replicas"
            ),
            meta={g.name: g.n_nodes for g in graphs.values()},
        )
    ]

"""Fig 11 — LIMIT requests without replication (Monte-Carlo).

"Fetch me at least X items out of the following list": even with a single
copy per item, the client can skip the servers contributing fewest items
and stop once the fraction is covered.  Monte-Carlo over random
independent requests (the paper's simplified simulator), TPR vs the
number of servers for fetched fractions 50%, 90%, 95% and 100%, for two
request-set sizes.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.sim.montecarlo import mc_tpr
from repro.utils.rng import derive_rng

DEFAULT_SERVER_COUNTS = (2, 4, 8, 16, 32, 64)
DEFAULT_REQUEST_SIZES = (20, 100)
DEFAULT_FRACTIONS = (0.95, 0.9, 0.5, 1.0)


def run(
    *,
    server_counts=DEFAULT_SERVER_COUNTS,
    request_sizes=DEFAULT_REQUEST_SIZES,
    fractions=DEFAULT_FRACTIONS,
    n_trials: int = 400,
    seed: int = 2013,
) -> list[ExperimentResult]:
    results = []
    for m in request_sizes:
        series: dict[str, list[float]] = {}
        for frac in fractions:
            rng = derive_rng(seed, m, int(frac * 100))
            series[f"fetch {frac:.0%}"] = [
                mc_tpr(
                    n, m, 1, limit_fraction=frac, n_trials=n_trials, rng=rng
                ).mean_tpr
                for n in server_counts
            ]
        results.append(
            ExperimentResult(
                name=f"fig11_M{m}",
                title=(
                    f"Fig 11 (request size {m}): TPR for LIMIT requests, "
                    "no replication"
                ),
                x_label="servers",
                x_values=list(server_counts),
                series=series,
                expectation=(
                    "lower fetch fraction => fewer transactions at every N; "
                    "50% needs roughly half the transactions of the full set "
                    "once N is large"
                ),
                meta={"request_size": m, "n_trials": n_trials},
            )
        )
    return results

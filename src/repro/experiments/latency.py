"""Latency impact of RnB (paper section V-B future work).

Replays the social workload through three deployments and profiles the
structural request latency under the round model of
:mod:`repro.analysis.latency`:

* classic no-replication (always one round),
* RnB with generous memory (one round, same latency — bundling does not
  slow reads down),
* RnB overbooked into 2x memory (a fraction of requests pays a second
  round for miss repair).

Expected outcome: RnB trades a bounded latency tail (the two-round
fraction) for a large cut in server work; with hitchhiking the tail
shrinks because rescued misses skip the second round.
"""

from __future__ import annotations

from repro.analysis.calibration import DEFAULT_MEMCACHED_MODEL
from repro.analysis.latency import LatencyModel, latency_profile
from repro.experiments.base import ExperimentResult
from repro.sim.config import ClientConfig, ClusterConfig, SimConfig
from repro.sim.engine import build_client, build_cluster, _request_stream
from repro.workloads.graphs import SocialGraph
from repro.workloads.synthetic import make_slashdot_like


def _profile(graph: SocialGraph, config: SimConfig, model: LatencyModel):
    cluster = build_cluster(config, graph.n_nodes)
    client = build_client(config, cluster)
    stream = iter(_request_stream(graph, config, 0))
    for _ in range(config.warmup_requests):
        client.execute(next(stream))
    results = [client.execute(next(stream)) for _ in range(config.n_requests)]
    prof = latency_profile(results, model)
    prof["tpr"] = sum(r.transactions for r in results) / len(results)
    return prof


def run(
    graph: SocialGraph | None = None,
    *,
    n_servers: int = 16,
    scale: float = 0.1,
    n_requests: int = 1000,
    warmup_requests: int = 2000,
    seed: int = 2013,
    rtt: float = 200e-6,
) -> list[ExperimentResult]:
    graph = graph or make_slashdot_like(seed=seed, scale=scale)
    model = LatencyModel(DEFAULT_MEMCACHED_MODEL, rtt=rtt)

    deployments = {
        "classic": SimConfig(
            cluster=ClusterConfig(n_servers=n_servers, replication=1, memory_factor=1.0),
            client=ClientConfig(mode="noreplication"),
            n_requests=n_requests,
            warmup_requests=0,
            seed=seed,
        ),
        "RnB R=4 roomy": SimConfig(
            cluster=ClusterConfig(n_servers=n_servers, replication=4),
            client=ClientConfig(mode="rnb"),
            n_requests=n_requests,
            warmup_requests=0,
            seed=seed,
        ),
        "RnB R=4 @2x": SimConfig(
            cluster=ClusterConfig(n_servers=n_servers, replication=4, memory_factor=2.0),
            client=ClientConfig(mode="rnb", hitchhiking=False),
            n_requests=n_requests,
            warmup_requests=warmup_requests,
            seed=seed,
        ),
        "RnB R=4 @2x +hh": SimConfig(
            cluster=ClusterConfig(n_servers=n_servers, replication=4, memory_factor=2.0),
            client=ClientConfig(mode="rnb", hitchhiking=True),
            n_requests=n_requests,
            warmup_requests=warmup_requests,
            seed=seed,
        ),
    }

    labels = list(deployments)
    profiles = [_profile(graph, cfg, model) for cfg in deployments.values()]
    series = {
        "mean us": [p["mean"] * 1e6 for p in profiles],
        "p95 us": [p["p95"] * 1e6 for p in profiles],
        "p99 us": [p["p99"] * 1e6 for p in profiles],
        "2-round %": [100 * p["two_round_fraction"] for p in profiles],
        "TPR": [p["tpr"] for p in profiles],
    }
    return [
        ExperimentResult(
            name="latency",
            title="Latency impact of RnB (structural round model, no queueing)",
            x_label="deployment",
            x_values=labels,
            series=series,
            expectation=(
                "roomy RnB matches classic latency while cutting TPR; "
                "overbooking adds a bounded two-round tail; hitchhiking "
                "shrinks that tail"
            ),
            meta={"rtt_us": rtt * 1e6, "graph": graph.name},
        )
    ]

"""Bundling-algorithm quality and overhead (paper sections I-C, V-B).

The paper asserts that "considerable benefits are obtained even with
sub-optimal server selection" and that greedy's mean-case quality is what
matters.  This experiment quantifies both claims on RnB-shaped instances
(M random items, R uniformly random distinct replicas each, N servers):

* **quality** — mean transactions used by exact optimum, greedy,
  first-fit and random selection;
* **overhead** — wall-clock microseconds per request for each solver
  (exact excluded from the largest instances).
"""

from __future__ import annotations

import time

from repro.core.covers import exact_min_cover, first_fit_cover, random_cover
from repro.core.setcover import greedy_set_cover
from repro.experiments.base import ExperimentResult
from repro.utils.rng import derive_rng

DEFAULT_CASES = ((16, 20, 3), (16, 40, 3), (32, 40, 3), (32, 80, 4), (64, 100, 4))


def _instance(n_servers: int, request_size: int, replication: int, rng):
    """One RnB instance: per-item replica lists and per-server bitmasks."""
    replica_lists = []
    subsets: dict[int, int] = {}
    for i in range(request_size):
        servers = rng.choice(n_servers, size=replication, replace=False)
        replica_lists.append(tuple(int(s) for s in servers))
        for s in replica_lists[-1]:
            subsets[s] = subsets.get(s, 0) | (1 << i)
    return replica_lists, subsets


def run(
    *,
    cases=DEFAULT_CASES,
    n_trials: int = 60,
    exact_limit: int = 48,
    seed: int = 2013,
) -> list[ExperimentResult]:
    labels = []
    quality: dict[str, list[float]] = {
        "optimal": [],
        "greedy": [],
        "first-fit": [],
        "random": [],
    }
    overhead: dict[str, list[float]] = {
        "greedy us": [],
        "first-fit us": [],
        "random us": [],
    }
    for n_servers, request_size, replication in cases:
        rng = derive_rng(seed, n_servers, request_size, replication)
        labels.append(f"N={n_servers} M={request_size} R={replication}")
        sums = {k: 0.0 for k in quality}
        times = {k: 0.0 for k in overhead}
        exact_ok = request_size <= exact_limit
        for _ in range(n_trials):
            replica_lists, subsets = _instance(
                n_servers, request_size, replication, rng
            )
            t0 = time.perf_counter()
            g = greedy_set_cover(subsets, request_size)
            times["greedy us"] += time.perf_counter() - t0
            sums["greedy"] += g.n_selected

            t0 = time.perf_counter()
            ff = first_fit_cover(replica_lists)
            times["first-fit us"] += time.perf_counter() - t0
            sums["first-fit"] += ff.n_selected

            t0 = time.perf_counter()
            rnd = random_cover(subsets, request_size, rng=rng)
            times["random us"] += time.perf_counter() - t0
            sums["random"] += rnd.n_selected

            if exact_ok:
                sums["optimal"] += exact_min_cover(subsets, request_size).n_selected
        for key in quality:
            if key == "optimal" and not exact_ok:
                quality[key].append(float("nan"))
            else:
                quality[key].append(sums[key] / n_trials)
        for key in overhead:
            overhead[key].append(times[key] / n_trials * 1e6)

    return [
        ExperimentResult(
            name="cover_quality",
            title="Bundling quality: mean transactions per request by solver",
            x_label="instance",
            x_values=labels,
            series=quality,
            expectation=(
                "greedy within a few percent of optimal in the mean; first-fit "
                "clearly worse; random worst"
            ),
            meta={"n_trials": n_trials},
        ),
        ExperimentResult(
            name="cover_overhead",
            title="Bundling overhead: mean microseconds per request by solver",
            x_label="instance",
            x_values=labels,
            series=overhead,
            expectation=(
                "greedy stays in the tens-of-microseconds range even at "
                "N=64, M=100 — negligible next to a network round trip"
            ),
            meta={"n_trials": n_trials},
        ),
    ]

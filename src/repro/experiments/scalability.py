"""RnB at large fleet sizes (paper section V-B future work).

"Our simulation study was carried out for a relatively small number of
servers ... one topic for further study is the scalability of RnB, both
in terms of the quality and overhead of the bundling algorithms and in
terms of the degree of improvement.  Studies simulating ... RnB on tens
of thousands of servers are called for."

This experiment runs the Monte-Carlo simulator up the fleet-size axis
(16 -> 4096 servers) at fixed request size, reporting:

* TPR for no replication vs RnB at R in {2, 4};
* RnB's relative TPR saving, showing where the mechanism matters: the
  saving is largest while N is comparable to M (the multi-get-hole
  regime) and tapers once N >> M, where requests rarely collide on a
  server at all and TPR -> M for everyone.
"""

from __future__ import annotations

from repro.analysis.urn import expected_tpr
from repro.experiments.base import ExperimentResult
from repro.sim.montecarlo import mc_tpr
from repro.utils.rng import derive_rng

DEFAULT_SERVER_COUNTS = (16, 32, 64, 128, 256, 512, 1024, 4096)


def run(
    *,
    server_counts=DEFAULT_SERVER_COUNTS,
    request_size: int = 100,
    replications=(2, 4),
    n_trials: int = 200,
    seed: int = 2013,
) -> list[ExperimentResult]:
    series: dict[str, list[float]] = {}
    series["R=1 (analytic)"] = [expected_tpr(n, request_size) for n in server_counts]
    for r in replications:
        rng = derive_rng(seed, r)
        series[f"R={r}"] = [
            mc_tpr(n, request_size, r, n_trials=n_trials, rng=rng).mean_tpr
            for n in server_counts
        ]
    best = f"R={max(replications)}"
    series["saving (best R)"] = [
        1.0 - series[best][i] / series["R=1 (analytic)"][i]
        for i in range(len(server_counts))
    ]
    return [
        ExperimentResult(
            name="scalability",
            title=(
                f"Scalability: TPR vs fleet size for {request_size}-item "
                "requests (Monte-Carlo)"
            ),
            x_label="servers",
            x_values=list(server_counts),
            series=series,
            expectation=(
                "RnB's saving peaks in the multi-get-hole regime (N ~ M) and "
                "tapers as N >> M, where every client scatters anyway"
            ),
            meta={"request_size": request_size, "n_trials": n_trials},
        )
    ]

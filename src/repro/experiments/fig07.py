"""Fig 7 — request locality makes replicas cold (deterministic demo).

The paper's figure: items 1,2,3,4 on servers A,B,C with replica sets
such that requests I = {1,2,3} and II = {1,2,4} *both* fetch items 1 and
2 from server A — the copies of item 1 on C and item 2 on B are never
touched and will age out of their LRUs, which is why overbooking works.

This driver reproduces the example with a hand-wired placement and
verifies the property programmatically: across both requests the greedy
cover picks the same replica (server A) for the shared items, leaving
the alternate replicas cold.
"""

from __future__ import annotations

from repro.core.bundling import Bundler
from repro.experiments.base import ExperimentResult
from repro.types import ReplicaSet, Request

SERVER_NAMES = {0: "A", 1: "B", 2: "C"}

# item -> ordered replica servers (0=A, 1=B, 2=C), wired as in Fig 7:
# items 1 and 2 both have a copy on A; item 1's alternate ("virtual")
# copy is on C, item 2's on B; item 3 lives on B, item 4 on C.
FIG7_PLACEMENT = {
    1: (0, 2),  # A (used), C (cold)
    2: (0, 1),  # A (used), B (cold)
    3: (1,),  # B
    4: (2,),  # C
}


class FixedPlacer:
    """A placer with an explicit item -> servers table (for demos/tests)."""

    def __init__(self, table: dict, n_servers: int):
        self.table = dict(table)
        self.n_servers = n_servers
        self.replication = max(len(v) for v in self.table.values())

    def servers_for(self, item):
        return self.table[item]

    def replicas_for(self, item):
        return ReplicaSet(item=item, servers=self.table[item])

    def distinguished_for(self, item):
        return self.table[item][0]


def run() -> list[ExperimentResult]:
    placer = FixedPlacer(FIG7_PLACEMENT, n_servers=3)
    bundler = Bundler(placer, single_item_rule=False)

    requests = {
        "I {1,2,3}": Request(items=(1, 2, 3)),
        "II {1,2,4}": Request(items=(1, 2, 4)),
    }
    used: dict[tuple[int, int], bool] = {}  # (item, server) -> fetched?
    rows: dict[str, list[str]] = {"server for item 1": [], "server for item 2": []}
    labels = []
    for label, request in requests.items():
        plan = bundler.plan(request)
        labels.append(label)
        for txn in plan.transactions:
            for item in txn.primary:
                used[(item, txn.server)] = True
        for item in (1, 2):
            server = next(
                t.server for t in plan.transactions if item in t.primary
            )
            rows[f"server for item {item}"].append(SERVER_NAMES[server])

    cold = [
        f"item {item} copy on {SERVER_NAMES[s]}"
        for item, servers in FIG7_PLACEMENT.items()
        for s in servers
        if (item, s) not in used
    ]
    return [
        ExperimentResult(
            name="fig07",
            title="Fig 7: request locality — shared items fetched from the same replica",
            x_label="request",
            x_values=labels,
            series=rows,
            expectation=(
                "both requests fetch items 1 and 2 from server A; the copies "
                "of item 1 on C and item 2 on B stay cold and would be evicted"
            ),
            notes="cold replicas never accessed: " + "; ".join(sorted(cold)),
        )
    ]

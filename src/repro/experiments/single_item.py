"""Single-item workloads and cross-request bundling (paper §III-G).

"Data items are read individually (single-item requests), without any
grouping of the requested items: in such cases, basic RnB would do
nothing, but cross-request bundling can still help."

This experiment generates single-item requests (Zipf-popular, modelling
point lookups) and sweeps the merge window: window 1 means every lookup
is its own transaction (TPR = 1, the floor — basic RnB genuinely does
nothing); larger windows turn batches of lookups into multi-item
requests whose items can then be bundled, and replication multiplies the
bundling opportunities.

The y value is transactions per ORIGINAL lookup; the win condition is
dropping well below 1.0.
"""

from __future__ import annotations

from repro.core.merge import merge_stream
from repro.experiments.base import ExperimentResult
from repro.sim.config import ClientConfig, ClusterConfig, SimConfig
from repro.sim.engine import build_client, build_cluster
from repro.types import ClusterStats
from repro.utils.rng import derive_rng
from repro.workloads.requests import ZipfRequestGenerator

DEFAULT_WINDOWS = (1, 2, 4, 8, 16)


def _run_point(
    *,
    n_servers: int,
    replication: int,
    n_items: int,
    window: int,
    n_requests: int,
    seed: int,
) -> float:
    mode = "noreplication" if replication == 1 else "rnb"
    config = SimConfig(
        cluster=ClusterConfig(
            n_servers=n_servers,
            replication=replication,
            memory_factor=1.0 if replication == 1 else None,
        ),
        client=ClientConfig(mode=mode),
        n_requests=n_requests,
        warmup_requests=0,
        seed=seed,
    )
    cluster = build_cluster(config, n_items)
    client = build_client(config, cluster)
    gen = ZipfRequestGenerator(
        n_items, 1, exponent=0.9, rng=derive_rng(seed, window, replication)
    )
    stream = merge_stream(gen.stream(), window)
    stats = ClusterStats()
    merged_count = n_requests // window
    for _ in range(merged_count):
        stats.record(client.execute(next(stream)))
    return stats.transactions / (merged_count * window)


def run(
    *,
    n_servers: int = 16,
    n_items: int = 20_000,
    replications=(1, 4),
    windows=DEFAULT_WINDOWS,
    n_requests: int = 3200,
    seed: int = 2013,
) -> list[ExperimentResult]:
    series: dict[str, list[float]] = {}
    for r in replications:
        label = "no replication" if r == 1 else f"RnB R={r}"
        series[label] = [
            _run_point(
                n_servers=n_servers,
                replication=r,
                n_items=n_items,
                window=w,
                n_requests=n_requests,
                seed=seed,
            )
            for w in windows
        ]
    return [
        ExperimentResult(
            name="single_item",
            title=(
                "Single-item lookups: transactions per lookup vs merge window "
                f"({n_servers} servers)"
            ),
            x_label="merge window",
            x_values=list(windows),
            series=series,
            expectation=(
                "window 1 pins everyone at 1.0 (basic RnB does nothing for "
                "point lookups); merging drops transactions per lookup below "
                "1, and replication amplifies the drop at larger windows"
            ),
            meta={"n_items": n_items},
        )
    ]

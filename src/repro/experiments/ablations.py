"""Ablations of RnB design decisions (DESIGN.md section 6).

Each ablation isolates one mechanism the paper argues for:

* ``tie_break`` — sticky (lowest-id) greedy ties vs random ties.  Sticky
  ties are what make replica choice consistent across similar requests
  (Fig 7's self-organisation); under overbooking, random ties spread
  accesses over more replicas and should raise the miss rate and TPR.
* ``hitchhiking`` — on vs off at fixed memory: fewer second-round
  transactions (lower TPR) at the price of more items transferred.
* ``single_item_rule`` — fetching unbundled items from the distinguished
  copy vs from the greedily-picked replica: less LRU pollution.
* ``placement`` — RCH vs multi-hash vs idealised random: TPR should be
  statistically indistinguishable, while load balance (per-server
  transaction share) stays tight for all.
* ``overbooking_level`` — logical replicas 1..8 at fixed 2.0x memory:
  gains rise then reverse ("excessive overbooking can increase TPR!").
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.sim.config import ClientConfig, ClusterConfig, SimConfig
from repro.sim.engine import run_simulation
from repro.workloads.graphs import SocialGraph
from repro.workloads.synthetic import make_slashdot_like


def _sim(
    graph: SocialGraph,
    *,
    n_servers=16,
    replication=3,
    memory_factor=2.0,
    n_requests=1000,
    warmup=2000,
    seed=2013,
    **client_kwargs,
):
    cfg = SimConfig(
        cluster=ClusterConfig(
            n_servers=n_servers,
            replication=replication,
            memory_factor=memory_factor,
            placement=client_kwargs.pop("placement", "rch"),
            lru_policy=client_kwargs.pop("lru_policy", "pinned"),
        ),
        client=ClientConfig(mode="rnb", **client_kwargs),
        n_requests=n_requests,
        warmup_requests=warmup,
        seed=seed,
    )
    return run_simulation(graph, cfg)


def run(
    graph: SocialGraph | None = None,
    *,
    scale: float = 0.1,
    n_requests: int = 1000,
    warmup: int = 2000,
    seed: int = 2013,
) -> list[ExperimentResult]:
    graph = graph or make_slashdot_like(seed=seed, scale=scale)
    kw = dict(n_requests=n_requests, warmup=warmup, seed=seed)
    results = []

    # 1. tie-breaking
    sticky = _sim(graph, hitchhiking=True, tie_break="lowest", **kw)
    random_tb = _sim(graph, hitchhiking=True, tie_break="random", **kw)
    results.append(
        ExperimentResult(
            name="ablation_tie_break",
            title="Ablation: greedy tie-breaking (R=3, memory 2.0x)",
            x_label="policy",
            x_values=["lowest-id (sticky)", "random"],
            series={
                "TPR": [sticky.tpr, random_tb.tpr],
                "miss rate": [sticky.miss_rate, random_tb.miss_rate],
            },
            expectation="sticky ties give lower miss rate and TPR under overbooking",
        )
    )

    # 2. hitchhiking
    hh_on = _sim(graph, hitchhiking=True, **kw)
    hh_off = _sim(graph, hitchhiking=False, **kw)
    results.append(
        ExperimentResult(
            name="ablation_hitchhiking",
            title="Ablation: hitchhiking (R=3, memory 2.0x)",
            x_label="hitchhiking",
            x_values=["on", "off"],
            series={
                "TPR": [hh_on.tpr, hh_off.tpr],
                "items transferred/request": [
                    hh_on.stats.items_transferred / hh_on.n_original_requests,
                    hh_off.stats.items_transferred / hh_off.n_original_requests,
                ],
                "2nd-round txns/request": [
                    hh_on.stats.second_round_transactions / hh_on.n_original_requests,
                    hh_off.stats.second_round_transactions / hh_off.n_original_requests,
                ],
            },
            expectation=(
                "hitchhiking lowers TPR / second rounds but raises items "
                "transferred (traffic)"
            ),
        )
    )

    # 3. single-item rule
    rule_on = _sim(graph, hitchhiking=True, single_item_rule=True, **kw)
    rule_off = _sim(graph, hitchhiking=True, single_item_rule=False, **kw)
    results.append(
        ExperimentResult(
            name="ablation_single_item_rule",
            title="Ablation: single-item -> distinguished copy rule (R=3, 2.0x)",
            x_label="rule",
            x_values=["on", "off"],
            series={
                "TPR": [rule_on.tpr, rule_off.tpr],
                "miss rate": [rule_on.miss_rate, rule_off.miss_rate],
            },
            expectation=(
                "rule on avoids polluting replica LRUs with unbundled items "
                "=> equal or lower miss rate and TPR"
            ),
        )
    )

    # 4. placement scheme
    placements = ["rch", "multihash", "random"]
    tprs, balance = [], []
    for p in placements:
        res = _sim(graph, hitchhiking=True, placement=p, **kw)
        tprs.append(res.tpr)
        per_server = np.array(
            [res.stats.per_server_transactions.get(s, 0) for s in range(16)],
            dtype=float,
        )
        balance.append(float(per_server.std() / per_server.mean()))
    results.append(
        ExperimentResult(
            name="ablation_placement",
            title="Ablation: replica placement scheme (R=3, memory 2.0x)",
            x_label="placement",
            x_values=placements,
            series={"TPR": tprs, "txn load CV": balance},
            expectation=(
                "TPR statistically indistinguishable across schemes; load "
                "coefficient of variation small (<~0.2) for all"
            ),
        )
    )

    # 5. LRU service-class policy: fixed reserve vs shared priority budget
    pinned = _sim(graph, hitchhiking=True, lru_policy="pinned", **kw)
    priority = _sim(graph, hitchhiking=True, lru_policy="priority", **kw)
    results.append(
        ExperimentResult(
            name="ablation_lru_policy",
            title="Ablation: two-service-class LRU policy (R=3, memory 2.0x)",
            x_label="policy",
            x_values=["pinned reserve", "priority shared budget"],
            series={
                "TPR": [pinned.tpr, priority.tpr],
                "miss rate": [pinned.miss_rate, priority.miss_rate],
            },
            expectation=(
                "both keep distinguished copies resident; the shared budget "
                "lets lightly-pinned servers host more replicas, so TPR/miss "
                "rate are equal or slightly better"
            ),
        )
    )

    # 6. overbooking level at fixed memory
    levels = [1, 2, 3, 4, 6, 8]
    ob_tpr, ob_miss = [], []
    for r in levels:
        res = _sim(graph, hitchhiking=True, replication=r, **kw)
        ob_tpr.append(res.tpr)
        ob_miss.append(res.miss_rate)
    results.append(
        ExperimentResult(
            name="ablation_overbooking",
            title="Ablation: logical replication level at fixed 2.0x memory",
            x_label="logical replicas",
            x_values=levels,
            series={"TPR": ob_tpr, "miss rate": ob_miss},
            expectation=(
                "TPR first falls as declared replicas add bundling choice, "
                "then rises again when overbooking outruns the memory "
                "(paper: 'excessive overbooking can increase TPR!')"
            ),
        )
    )
    return results

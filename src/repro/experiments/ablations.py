"""Ablations of RnB design decisions (DESIGN.md section 6).

Each ablation isolates one mechanism the paper argues for:

* ``tie_break`` — sticky (lowest-id) greedy ties vs random ties.  Sticky
  ties are what make replica choice consistent across similar requests
  (Fig 7's self-organisation); under overbooking, random ties spread
  accesses over more replicas and should raise the miss rate and TPR.
* ``hitchhiking`` — on vs off at fixed memory: fewer second-round
  transactions (lower TPR) at the price of more items transferred.
* ``single_item_rule`` — fetching unbundled items from the distinguished
  copy vs from the greedily-picked replica: less LRU pollution.
* ``placement`` — RCH vs multi-hash vs idealised random: TPR should be
  statistically indistinguishable, while load balance (per-server
  transaction share) stays tight for all.
* ``overbooking_level`` — logical replicas 1..8 at fixed 2.0x memory:
  gains rise then reverse ("excessive overbooking can increase TPR!").
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.sim.config import ClientConfig, ClusterConfig, SimConfig
from repro.sim.engine import run_simulation
from repro.workloads.graphs import SocialGraph
from repro.workloads.synthetic import make_slashdot_like


def _sim(
    graph: SocialGraph,
    *,
    n_servers=16,
    replication=3,
    memory_factor=2.0,
    n_requests=1000,
    warmup=2000,
    seed=2013,
    **client_kwargs,
):
    cfg = SimConfig(
        cluster=ClusterConfig(
            n_servers=n_servers,
            replication=replication,
            memory_factor=memory_factor,
            placement=client_kwargs.pop("placement", "rch"),
            lru_policy=client_kwargs.pop("lru_policy", "pinned"),
        ),
        client=ClientConfig(mode="rnb", **client_kwargs),
        n_requests=n_requests,
        warmup_requests=warmup,
        seed=seed,
    )
    return run_simulation(graph, cfg)


def _run_jobs(
    graph: SocialGraph, jobs: dict[str, dict], workers: int
) -> dict[str, object]:
    """Run the ablation grid, optionally fanned across processes.

    Most ablation points are *outside* the sharded engine's tally
    envelope (overbooked memory makes LRU state order-dependent), so
    intra-run sharding can't help here — but every point is a fully
    independent simulation, so the grid itself parallelises trivially.
    Results are assembled by job key, never by completion order, so the
    output is identical for any ``workers``.
    """
    if workers <= 1 or len(jobs) <= 1:
        return {key: _sim(graph, **kwargs) for key, kwargs in jobs.items()}
    from concurrent.futures import ProcessPoolExecutor

    with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
        futures = {
            key: pool.submit(_sim, graph, **kwargs) for key, kwargs in jobs.items()
        }
        return {key: future.result() for key, future in futures.items()}


def run(
    graph: SocialGraph | None = None,
    *,
    scale: float = 0.1,
    n_requests: int = 1000,
    warmup: int = 2000,
    seed: int = 2013,
    workers: int = 1,
) -> list[ExperimentResult]:
    graph = graph or make_slashdot_like(seed=seed, scale=scale)
    kw = dict(n_requests=n_requests, warmup=warmup, seed=seed)

    placements = ["rch", "multihash", "random"]
    levels = [1, 2, 3, 4, 6, 8]
    jobs: dict[str, dict] = {
        "sticky": dict(hitchhiking=True, tie_break="lowest", **kw),
        "random_tb": dict(hitchhiking=True, tie_break="random", **kw),
        "hh_on": dict(hitchhiking=True, **kw),
        "hh_off": dict(hitchhiking=False, **kw),
        "rule_on": dict(hitchhiking=True, single_item_rule=True, **kw),
        "rule_off": dict(hitchhiking=True, single_item_rule=False, **kw),
        "pinned": dict(hitchhiking=True, lru_policy="pinned", **kw),
        "priority": dict(hitchhiking=True, lru_policy="priority", **kw),
    }
    for p in placements:
        jobs[f"placement_{p}"] = dict(hitchhiking=True, placement=p, **kw)
    for r in levels:
        jobs[f"overbook_{r}"] = dict(hitchhiking=True, replication=r, **kw)
    sims = _run_jobs(graph, jobs, workers)
    results = []

    # 1. tie-breaking
    sticky = sims["sticky"]
    random_tb = sims["random_tb"]
    results.append(
        ExperimentResult(
            name="ablation_tie_break",
            title="Ablation: greedy tie-breaking (R=3, memory 2.0x)",
            x_label="policy",
            x_values=["lowest-id (sticky)", "random"],
            series={
                "TPR": [sticky.tpr, random_tb.tpr],
                "miss rate": [sticky.miss_rate, random_tb.miss_rate],
            },
            expectation="sticky ties give lower miss rate and TPR under overbooking",
        )
    )

    # 2. hitchhiking
    hh_on = sims["hh_on"]
    hh_off = sims["hh_off"]
    results.append(
        ExperimentResult(
            name="ablation_hitchhiking",
            title="Ablation: hitchhiking (R=3, memory 2.0x)",
            x_label="hitchhiking",
            x_values=["on", "off"],
            series={
                "TPR": [hh_on.tpr, hh_off.tpr],
                "items transferred/request": [
                    hh_on.stats.items_transferred / hh_on.n_original_requests,
                    hh_off.stats.items_transferred / hh_off.n_original_requests,
                ],
                "2nd-round txns/request": [
                    hh_on.stats.second_round_transactions / hh_on.n_original_requests,
                    hh_off.stats.second_round_transactions / hh_off.n_original_requests,
                ],
            },
            expectation=(
                "hitchhiking lowers TPR / second rounds but raises items "
                "transferred (traffic)"
            ),
        )
    )

    # 3. single-item rule
    rule_on = sims["rule_on"]
    rule_off = sims["rule_off"]
    results.append(
        ExperimentResult(
            name="ablation_single_item_rule",
            title="Ablation: single-item -> distinguished copy rule (R=3, 2.0x)",
            x_label="rule",
            x_values=["on", "off"],
            series={
                "TPR": [rule_on.tpr, rule_off.tpr],
                "miss rate": [rule_on.miss_rate, rule_off.miss_rate],
            },
            expectation=(
                "rule on avoids polluting replica LRUs with unbundled items "
                "=> equal or lower miss rate and TPR"
            ),
        )
    )

    # 4. placement scheme
    tprs, balance = [], []
    for p in placements:
        res = sims[f"placement_{p}"]
        tprs.append(res.tpr)
        per_server = np.array(
            [res.stats.per_server_transactions.get(s, 0) for s in range(16)],
            dtype=float,
        )
        balance.append(float(per_server.std() / per_server.mean()))
    results.append(
        ExperimentResult(
            name="ablation_placement",
            title="Ablation: replica placement scheme (R=3, memory 2.0x)",
            x_label="placement",
            x_values=placements,
            series={"TPR": tprs, "txn load CV": balance},
            expectation=(
                "TPR statistically indistinguishable across schemes; load "
                "coefficient of variation small (<~0.2) for all"
            ),
        )
    )

    # 5. LRU service-class policy: fixed reserve vs shared priority budget
    pinned = sims["pinned"]
    priority = sims["priority"]
    results.append(
        ExperimentResult(
            name="ablation_lru_policy",
            title="Ablation: two-service-class LRU policy (R=3, memory 2.0x)",
            x_label="policy",
            x_values=["pinned reserve", "priority shared budget"],
            series={
                "TPR": [pinned.tpr, priority.tpr],
                "miss rate": [pinned.miss_rate, priority.miss_rate],
            },
            expectation=(
                "both keep distinguished copies resident; the shared budget "
                "lets lightly-pinned servers host more replicas, so TPR/miss "
                "rate are equal or slightly better"
            ),
        )
    )

    # 6. overbooking level at fixed memory
    ob_tpr, ob_miss = [], []
    for r in levels:
        res = sims[f"overbook_{r}"]
        ob_tpr.append(res.tpr)
        ob_miss.append(res.miss_rate)
    results.append(
        ExperimentResult(
            name="ablation_overbooking",
            title="Ablation: logical replication level at fixed 2.0x memory",
            x_label="logical replicas",
            x_values=levels,
            series={"TPR": ob_tpr, "miss rate": ob_miss},
            expectation=(
                "TPR first falls as declared replicas add bundling choice, "
                "then rises again when overbooking outruns the memory "
                "(paper: 'excessive overbooking can increase TPR!')"
            ),
        )
    )
    return results

"""Fig 9 — Fig 8's sweep with every two consecutive requests merged.

Merging two requests (paper section III-E) lowers the no-replication
baseline itself (shared servers across the pair are paid once), so the
*relative* gain from replication is smaller than in Fig 8 — but still
positive.  The ratio here is RnB-with-merging TPR over
no-replication-with-merging TPR, both per original end-user request,
making the figure directly comparable to Fig 8 as the paper notes.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.fig08 import (
    DEFAULT_MEMORY_FACTORS,
    DEFAULT_REPLICATIONS,
    sweep_tpr,
)
from repro.workloads.graphs import SocialGraph
from repro.workloads.synthetic import make_slashdot_like


def run(
    graph: SocialGraph | None = None,
    *,
    n_servers: int = 16,
    merge_window: int = 2,
    replications=DEFAULT_REPLICATIONS,
    memory_factors=DEFAULT_MEMORY_FACTORS,
    scale: float = 0.1,
    n_requests: int = 1200,
    warmup_requests: int = 2500,
    seed: int = 2013,
    max_workers: int = 1,
) -> list[ExperimentResult]:
    graph = graph or make_slashdot_like(seed=seed, scale=scale)
    tpr_series, baseline = sweep_tpr(
        graph,
        n_servers=n_servers,
        replications=replications,
        memory_factors=memory_factors,
        merge_window=merge_window,
        n_requests=n_requests,
        warmup_requests=warmup_requests,
        seed=seed,
        max_workers=max_workers,
    )
    ratio_series = {
        label: [t / b for t, b in zip(tprs, baseline)]
        for label, tprs in tpr_series.items()
    }
    return [
        ExperimentResult(
            name="fig09",
            title=(
                f"Fig 9: TPR relative to no replication vs memory factor, "
                f"merging {merge_window} requests ({n_servers} servers)"
            ),
            x_label="memory",
            x_values=list(memory_factors),
            series=ratio_series,
            expectation=(
                "same downward trend as Fig 8 but the gain from replication "
                "at any memory level is smaller, since merging already "
                "lowered the baseline"
            ),
            meta={
                "graph": graph.name,
                "merge_window": merge_window,
                "baseline_tpr_per_original_request": baseline[0],
            },
        )
    ]

"""Figs 13 & 14 — memcached micro-benchmarks and calibration.

Fig 13: items fetched per second vs items per transaction, one client.
Fig 14: the same with two concurrent clients (which the paper found
*slower* — contention — while still showing that bigger transactions
deliver more items).

The paper ran memaslap against real memcached over 1GbE; we run the
in-process protocol server (DESIGN.md, Substitutions).  Each panel
reports the measured rates, the affine cost model fitted from them
(the paper's calibration step), and the paper-shaped default model's
prediction for reference.
"""

from __future__ import annotations

from repro.analysis.calibration import DEFAULT_MEMCACHED_MODEL, fit_cost_model
from repro.experiments.base import ExperimentResult
from repro.protocol.microbench import (
    measure_items_per_second,
    two_client_items_per_second,
)

DEFAULT_TXN_SIZES = (1, 2, 5, 10, 20, 50, 100)


def run(
    *,
    txn_sizes=DEFAULT_TXN_SIZES,
    n_keys: int = 2000,
    target_transactions: int = 1500,
) -> list[ExperimentResult]:
    sizes = list(txn_sizes)

    single = measure_items_per_second(
        sizes, n_keys=n_keys, target_transactions=target_transactions
    )
    fitted = fit_cost_model(sizes, [p.items_per_s for p in single])
    fig13 = ExperimentResult(
        name="fig13",
        title="Fig 13: items fetched/s vs items per transaction (one client)",
        x_label="items/txn",
        x_values=sizes,
        series={
            "measured items/s": [p.items_per_s for p in single],
            "measured txns/s": [p.transactions_per_s for p in single],
            "fitted model items/s": [fitted.items_per_second(m) for m in sizes],
            "paper-shaped model items/s": [
                DEFAULT_MEMCACHED_MODEL.items_per_second(m) for m in sizes
            ],
        },
        expectation=(
            "items/s grows ~linearly with transaction size (per-transaction "
            "cost dominates) until a bandwidth/itemwork bound flattens it"
        ),
        notes=(
            f"fitted cost model: t_txn={fitted.t_txn:.3g}s, "
            f"t_item={fitted.t_item:.3g}s, cap={fitted.bandwidth_items_per_s}"
        ),
        meta={"fitted_model": fitted},
    )

    double = two_client_items_per_second(
        sizes, n_keys=n_keys, target_transactions=target_transactions
    )
    fig14 = ExperimentResult(
        name="fig14",
        title="Fig 14: items fetched/s vs items per transaction (two clients)",
        x_label="items/txn",
        x_values=sizes,
        series={
            "two clients items/s": [p.items_per_s for p in double],
            "one client items/s": [p.items_per_s for p in single],
        },
        expectation=(
            "two clients do NOT double throughput (the paper measured them "
            "lower than one client at small sizes); larger transactions still "
            "deliver far more items/s than small ones"
        ),
        meta={},
    )
    return [fig13, fig14]

"""Chaos soak: the self-healing loop under a seeded kill/restart/join storm.

The membership subsystem (``repro.membership``) claims a closed loop:
clients detect failures, dead verdicts commit new topology epochs,
placement heals with distinguished-copy promotion, and throttled repair
restores full replication.  This experiment *soaks* that loop: a
deterministic schedule kills servers (crash = memory wiped), restarts
them (empty), and joins brand-new ids, while a
:class:`~repro.faults.ftclient.FaultTolerantRnBClient` keeps reading an
ego-network-style workload through it all.

Per tick (one request per tick) the experiment records:

* **availability** — fraction of requested items served (degraded reads
  count what they actually returned);
* **TPR** — transactions per request, including failover re-dispatch;
* **pending repair** — item copies still queued behind the repair-rate
  throttle;
* **epoch / n_alive** — the topology the fleet converged to.

The meta block carries the acceptance criteria: with R >= 2 and one
failure at a time, ``availability_min`` must be exactly 1.0 (replicas
already exist for reliability — paper section I-C); every committed
change reports its **time-to-full-R** (ticks from commit until its
repair batch drained); and the whole run is a pure function of ``seed``
(``determinism_token`` is a stable hash over every series — equal seeds
give bit-identical runs, different seeds give different schedules).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.cluster import Cluster
from repro.core.bundling import Bundler
from repro.experiments.base import ExperimentResult
from repro.faults.ftclient import FaultTolerantRnBClient
from repro.faults.health import HealthTracker
from repro.faults.injector import DynamicFaultInjector
from repro.hashing.hashfns import stable_hash64
from repro.membership import EpochedPlacer, make_cluster_service
from repro.types import Request
from repro.utils.rng import derive_rng


def make_schedule(
    seed: int,
    n_servers: int,
    *,
    n_kills: int = 3,
    n_joins: int = 1,
    warmup: int = 8,
    min_down: int = 4,
    max_down: int = 10,
    min_gap: int = 6,
    max_gap: int = 12,
) -> list[tuple[int, str, int]]:
    """A seeded ``(tick, kind, server)`` chaos schedule.

    Kills are sequential (a victim is always restarted before the next
    kill) so at most one server is down at a time — the regime where the
    R >= 2 availability guarantee is unconditional.  Joins are
    interleaved after restarts with fresh ids ``n_servers, n_servers+1,
    ...``.  Pure function of ``seed``.
    """
    rng = derive_rng(seed, stable_hash64("chaos-schedule") & 0x7FFFFFFF)
    events: list[tuple[int, str, int]] = []
    tick = warmup
    next_join_id = n_servers
    joins_left = n_joins
    for kill in range(n_kills):
        victim = int(rng.integers(0, n_servers))
        events.append((tick, "kill", victim))
        tick += int(rng.integers(min_down, max_down + 1))
        events.append((tick, "restart", victim))
        tick += int(rng.integers(min_gap, max_gap + 1))
        if joins_left > 0 and kill == n_kills // 2:
            events.append((tick, "join", next_join_id))
            next_join_id += 1
            joins_left -= 1
            tick += int(rng.integers(min_gap, max_gap + 1))
    return events


def run(
    *,
    n_servers: int = 12,
    replication: int = 3,
    n_items: int = 2000,
    request_size: int = 20,
    n_kills: int = 3,
    n_joins: int = 1,
    repair_rate: int = 150,
    cooldown: int = 20,
    dead_after: int = 2,
    seed: int = 2013,
    scale: float = 1.0,
) -> list[ExperimentResult]:
    """Soak the self-healing loop under a seeded chaos schedule.

    ``scale`` shrinks the run for smoke tests (items, kills and cooldown
    scale together; the schedule still comes from ``seed`` alone at any
    fixed parameter set).
    """
    n_items = max(int(n_items * scale), 50)
    n_kills = max(int(round(n_kills * scale)), 1)
    cooldown = max(int(cooldown * scale), 5)

    placer = EpochedPlacer("rch", n_servers, replication, seed=0, vnodes=64)
    items = range(n_items)
    cluster = Cluster(placer, items, memory_factor=None)
    injector = DynamicFaultInjector()
    cluster.attach_injector(injector)
    service = make_cluster_service(
        cluster, placer, confirm_after=1, repair_rate=repair_rate
    )
    health = HealthTracker(n_servers, dead_after=dead_after)
    client = FaultTolerantRnBClient(
        cluster,
        Bundler(placer),
        health=health,
        membership=service,
    )

    schedule = make_schedule(seed, n_servers, n_kills=n_kills, n_joins=n_joins)
    last_event_tick = schedule[-1][0]
    horizon = last_event_tick + cooldown
    by_tick: dict[int, list[tuple[str, int]]] = {}
    for tick, kind, server in schedule:
        by_tick.setdefault(tick, []).append((kind, server))

    req_rng = derive_rng(seed, stable_hash64("chaos-requests") & 0x7FFFFFFF)

    availability: list[float] = []
    tpr: list[float] = []
    pending: list[float] = []
    epochs: list[float] = []
    n_alive: list[float] = []
    down_at: list[bool] = []
    commits = 0

    for tick in range(horizon):
        for kind, server in by_tick.get(tick, ()):
            if kind == "kill":
                injector.kill(server)
                cluster.wipe_server(server)  # crash loses its memory
            elif kind == "restart":
                injector.restore(server)
                health.record_recovery(server)
                if not service.view.is_alive(server):
                    # re-admit and re-replicate onto the empty server
                    service.announce_recovery(server)
            else:  # join
                cluster.add_server(server)
                health.ensure_capacity(server + 1)
                service.announce_join(server)

        chosen = req_rng.choice(n_items, size=min(request_size, n_items), replace=False)
        request = Request(items=tuple(int(i) for i in chosen))
        result = client.execute(request)
        commits += result.membership_commits
        service.tick(clock=tick)

        availability.append(result.items_fetched / request.size)
        tpr.append(float(result.transactions))
        pending.append(float(service.pending_repair()))
        epochs.append(float(placer.epoch))
        n_alive.append(float(placer.view.n_alive))
        down_at.append(bool(injector.down))

    # -- phase aggregation and acceptance metrics ---------------------------
    first_event = schedule[0][0]
    disturbed = [
        t
        for t in range(horizon)
        if down_at[t] or pending[t] > 0 or t in by_tick
    ]
    during = [t for t in disturbed if t >= first_event]
    before = list(range(first_event))
    after = [t for t in range(first_event, horizon) if t not in set(during)]

    def _mean(idx: list[int], xs: list[float]) -> float:
        return float(np.mean([xs[t] for t in idx])) if idx else float("nan")

    events_meta = []
    for event in service.events:
        completed = event.repair_completed_at
        if completed == "immediate":
            ttf = 0
        elif completed is None:
            ttf = None  # repair did not drain within the horizon
        else:
            ttf = int(completed) - (event.tick if event.tick is not None else 0)
        events_meta.append(
            {
                "epoch": event.epoch,
                "kind": event.kind,
                "server": event.server,
                "commit_tick": event.tick,
                "repair_items": event.repair_items,
                "time_to_full_r": ttf,
            }
        )

    series = {
        "availability": availability,
        "TPR": tpr,
        "pending repair (items)": pending,
        "epoch": epochs,
        "alive servers": n_alive,
    }
    token = stable_hash64(
        repr([(k, tuple(v)) for k, v in sorted(series.items())]), seed=seed
    )
    meta = {
        "seed": seed,
        "n_servers": n_servers,
        "replication": replication,
        "repair_rate": repair_rate,
        "schedule": [list(e) for e in schedule],
        "events": events_meta,
        "membership_commits": commits,
        "availability_min": float(min(availability)),
        "availability_mean": float(np.mean(availability)),
        "tpr_before": _mean(before, tpr),
        "tpr_during": _mean(during, tpr),
        "tpr_after": _mean(after, tpr),
        "repair_items_total": sum(e["repair_items"] for e in events_meta),
        "final_epoch": int(placer.epoch),
        "final_pending_repair": int(service.pending_repair()),
        "determinism_token": token,
    }
    return [
        ExperimentResult(
            name="chaos_soak",
            title=(
                f"Chaos soak: {n_kills} kills + {n_joins} joins over "
                f"{horizon} ticks ({n_servers} servers, R={replication}, "
                f"repair_rate={repair_rate}/tick)"
            ),
            x_label="tick",
            x_values=list(range(horizon)),
            series=series,
            expectation=(
                "availability stays 1.0 throughout single failures at R>=2 "
                "(surviving replicas cover every read); TPR bumps during "
                "failover then settles; pending repair drains at the "
                "throttle rate and full replication is restored (time-to-"
                "full-R reported per membership event)"
            ),
            meta=meta,
        )
    ]

"""Hotspot soak: Zipf-skewed load plus a straggler, with and without overload defences.

The queueing experiment shows *where* the fleet saturates; this one shows
what the client can do about it.  A Zipf-skewed multi-get workload runs
through the event-heap overload simulator
(:func:`repro.overload.desim.simulate_overload`) against a fleet with one
seeded *straggler* (its service times inflated ``straggler_factor``x —
the classic degraded-but-alive server that health trackers never
declare dead), in two arms over identical arrivals:

* **baseline** — no client policy at all: unbounded FIFO queues, static
  lowest-id tie-breaks, no hedging.  Requests that cover onto the
  straggler wait behind its backlog; p99 tracks the straggler.
* **overload** — the full ladder from docs/OVERLOAD.md: bounded queues
  shedding BUSY, circuit breakers excluding the straggler from covers,
  load-aware tie-breaks, quantile hedging, and a deadline budget that
  degrades instead of failing.

The arrival rate is auto-calibrated from the planned per-server demand
so the straggler runs past saturation (``straggler_rho`` > 1) while the
rest of the fleet keeps ample headroom — the regime where replica
freedom (R >= 2) means the pain is entirely optional.

Acceptance (meta): ``p99_speedup`` > 1 (the overload arm beats baseline
p99), ``requests_failed`` == 0 in both arms (degraded responses are
counted, never dropped), and the whole run is a pure function of
``seed`` (``determinism_token``; the CI ``overload-smoke`` job diffs two
runs byte for byte).
"""

from __future__ import annotations

from repro.analysis.calibration import DEFAULT_MEMCACHED_MODEL
from repro.core.bundling import Bundler
from repro.experiments.base import ExperimentResult
from repro.hashing.hashfns import stable_hash64
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.overload.desim import OverloadConfig, simulate_overload
from repro.types import Request
from repro.utils.rng import derive_rng
from repro.workloads.zipf import zipf_weights

ARMS = ("baseline", "overload")


def make_requests(
    seed: int, n_items: int, request_size: int, n_requests: int, zipf_exponent: float
) -> list[Request]:
    """The seeded Zipf-skewed request stream both arms replay."""
    rng = derive_rng(seed, stable_hash64("hotspot-requests") & 0x7FFFFFFF)
    weights = zipf_weights(n_items, zipf_exponent)
    size = min(request_size, n_items)
    return [
        Request(
            items=tuple(
                sorted(
                    int(i)
                    for i in rng.choice(n_items, size=size, replace=False, p=weights)
                )
            )
        )
        for _ in range(n_requests)
    ]


def run(
    *,
    n_servers: int = 12,
    replication: int = 2,
    n_items: int = 4000,
    request_size: int = 10,
    n_requests: int = 2500,
    zipf_exponent: float = 1.0,
    straggler_factor: float = 10.0,
    straggler_rho: float = 1.3,
    seed: int = 2013,
    scale: float = 1.0,
) -> list[ExperimentResult]:
    """Soak the overload defences against one straggler under skewed load.

    ``scale`` shrinks the run for smoke tests (requests and items scale
    together; at any fixed parameter set the run is a pure function of
    ``seed``).
    """
    n_requests = max(int(n_requests * scale), 200)
    n_items = max(int(n_items * scale), 200)

    cost_model = DEFAULT_MEMCACHED_MODEL
    placer = RangedConsistentHashPlacer(n_servers, replication, seed=0, vnodes=64)
    bundler = Bundler(placer)
    requests = make_requests(seed, n_items, request_size, n_requests, zipf_exponent)

    # One seeded straggler: alive, answering, just straggler_factor slower.
    straggler = int(
        derive_rng(seed, stable_hash64("hotspot-straggler") & 0x7FFFFFFF).integers(
            0, n_servers
        )
    )
    multipliers = [1.0] * n_servers
    multipliers[straggler] = straggler_factor

    # Calibrate the arrival rate from the baseline plans' per-server
    # demand: drive the straggler past saturation (rho > 1) while the
    # healthy fleet keeps headroom — overload that replica freedom can
    # route around.
    demand = [0.0] * n_servers
    for footprint in bundler.plan_footprints(requests):
        for server, n_primary in footprint:
            demand[server] += cost_model.txn_time(n_primary)
    straggler_work = demand[straggler] * straggler_factor
    arrival_rate = straggler_rho * n_requests / straggler_work

    healthy_txn = cost_model.txn_time(request_size)
    config = OverloadConfig(
        queue_limit=32,
        breaker=True,
        trip_after=4,
        window=12,
        open_ticks=60,
        trip_latency=healthy_txn * straggler_factor * 3,
        hedge_quantile=0.95,
        max_hedges=1,
        deadline=healthy_txn * 400,
        partial_fraction=0.5,
        load_aware=True,
        seed=seed,
    )

    results = {}
    for arm, cfg in (("baseline", None), ("overload", config)):
        results[arm] = simulate_overload(
            requests,
            bundler,
            n_servers=n_servers,
            cost_model=cost_model,
            arrival_rate=arrival_rate,
            latency_multipliers=multipliers,
            config=cfg,
            rng=derive_rng(seed, stable_hash64("hotspot-arrivals") & 0x7FFFFFFF),
        )

    def col(fn):
        return [fn(results[arm]) for arm in ARMS]

    series = {
        "p50 latency (ms)": col(lambda r: r.p50_latency * 1e3),
        "p99 latency (ms)": col(lambda r: r.p99_latency * 1e3),
        "p999 latency (ms)": col(lambda r: r.p999_latency * 1e3),
        "served fraction": col(lambda r: r.served_fraction),
        "shed rate": col(lambda r: r.shed_rate),
        "hedge win rate": col(lambda r: r.hedge_win_rate),
        "breaker transitions": col(lambda r: float(r.breaker_transitions)),
        "requests failed": col(lambda r: float(r.requests_failed)),
    }
    token = stable_hash64(
        repr([(k, tuple(v)) for k, v in sorted(series.items())]), seed=seed
    )
    base, over = results["baseline"], results["overload"]
    meta = {
        "seed": seed,
        "n_servers": n_servers,
        "replication": replication,
        "straggler": straggler,
        "straggler_factor": straggler_factor,
        "straggler_rho": straggler_rho,
        "arrival_rate": arrival_rate,
        "p99_speedup": base.p99_latency / over.p99_latency,
        "p999_speedup": base.p999_latency / over.p999_latency,
        "baseline_p99_ms": base.p99_latency * 1e3,
        "overload_p99_ms": over.p99_latency * 1e3,
        "hedges_issued": over.hedges_issued,
        "hedge_wins": over.hedge_wins,
        "busy_verdicts": over.busy_verdicts,
        "breaker_transitions": over.breaker_transitions,
        "ladder_counts": over.ladder_counts,
        "served_fraction_overload": over.served_fraction,
        "requests_degraded": over.requests_degraded,
        "requests_failed": base.requests_failed + over.requests_failed,
        "determinism_token": token,
    }
    return [
        ExperimentResult(
            name="hotspot_soak",
            title=(
                f"Hotspot soak: Zipf({zipf_exponent}) load, server {straggler} "
                f"straggling {straggler_factor:g}x at rho={straggler_rho:g} "
                f"({n_servers} servers, R={replication})"
            ),
            x_label="arm",
            x_values=list(ARMS),
            series=series,
            expectation=(
                "the overload arm's p99/p999 beat baseline (breakers route "
                "covers off the straggler, hedges rescue requests already "
                "stuck behind it); zero requests fail in either arm — "
                "backpressure degrades responses, it never drops them"
            ),
            meta=meta,
        )
    ]

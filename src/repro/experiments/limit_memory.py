"""Memory required for replication under LIMIT requests (paper §III-F).

"We leave the exact estimation of the memory required for replication
when handling these kinds of requests to future work."

This experiment runs the *stateful* simulator (overbooking + LRUs) on
LIMIT workloads and measures, per (fetch fraction, memory factor):

* TPR relative to the no-replication baseline at the same fraction, and
* the replica **working set** — the number of distinct (item, server)
  replica pairs the measurement phase actually touched, in units of one
  full data copy.

Expected outcome: LIMIT requests let the bundler concentrate on fewer,
bigger server groups, so the working set shrinks with the fraction and
the TPR curves saturate at *lower* memory than the full-fetch curves —
i.e. LIMIT workloads need less replication memory for the same relative
gain.
"""

from __future__ import annotations

from repro.core.bundling import Bundler
from repro.core.client import RnBClient
from repro.experiments.base import ExperimentResult
from repro.sim.config import ClientConfig, ClusterConfig, SimConfig
from repro.sim.engine import _request_stream, build_cluster
from repro.types import ClusterStats
from repro.utils.rng import derive_rng
from repro.workloads.graphs import SocialGraph
from repro.workloads.synthetic import make_slashdot_like

DEFAULT_MEMORY_FACTORS = (1.25, 1.5, 2.0, 3.0)
DEFAULT_FRACTIONS = (1.0, 0.9, 0.5)


class _RecordingBundler(Bundler):
    """A Bundler that records which (item, server) replica pairs plans use."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.pairs: set[tuple[int, int]] = set()

    def plan(self, request):
        plan = super().plan(request)
        for txn in plan.transactions:
            for item in txn.primary:
                self.pairs.add((item, txn.server))
        return plan


def _run_point(
    graph: SocialGraph,
    *,
    n_servers: int,
    replication: int,
    memory_factor: float,
    fraction: float,
    n_requests: int,
    warmup_requests: int,
    seed: int,
) -> tuple[float, float]:
    """Returns (tpr, working-set in copies) for one sweep point."""
    limit = None if fraction >= 1.0 else fraction
    config = SimConfig(
        cluster=ClusterConfig(
            n_servers=n_servers, replication=replication, memory_factor=memory_factor
        ),
        client=ClientConfig(mode="rnb", hitchhiking=True, limit_fraction=limit),
        n_requests=n_requests,
        warmup_requests=warmup_requests,
        seed=seed,
    )
    cluster = build_cluster(config, graph.n_nodes)
    bundler = _RecordingBundler(
        cluster.placer, hitchhiking=True, rng=derive_rng(seed, 3)
    )
    client = RnBClient(cluster, bundler)
    stream = iter(_request_stream(graph, config, 0))
    for _ in range(config.warmup_requests):
        client.execute(next(stream))
    cluster.reset_counters()
    bundler.pairs.clear()
    stats = ClusterStats()
    for _ in range(config.n_requests):
        stats.record(client.execute(next(stream)))
    working_set = len(bundler.pairs) / graph.n_nodes
    return stats.tpr, working_set


def run(
    graph: SocialGraph | None = None,
    *,
    n_servers: int = 16,
    replication: int = 4,
    memory_factors=DEFAULT_MEMORY_FACTORS,
    fractions=DEFAULT_FRACTIONS,
    scale: float = 0.1,
    n_requests: int = 800,
    warmup_requests: int = 1600,
    seed: int = 2013,
) -> list[ExperimentResult]:
    graph = graph or make_slashdot_like(seed=seed, scale=scale)

    tpr_ratio: dict[str, list[float]] = {}
    working_sets: list[float] = []
    for fraction in fractions:
        # the baseline is the no-replication client at the SAME fraction,
        # so the ratio isolates the replication gain
        limit = None if fraction >= 1.0 else fraction
        base_cfg = SimConfig(
            cluster=ClusterConfig(n_servers=n_servers, replication=1, memory_factor=1.0),
            client=ClientConfig(mode="noreplication", limit_fraction=limit),
            n_requests=n_requests,
            warmup_requests=0,
            seed=seed,
        )
        from repro.sim.engine import run_simulation

        base_tpr = run_simulation(graph, base_cfg).tpr

        label = f"fetch {fraction:.0%}"
        tpr_ratio[label] = []
        ws_at_fraction = 0.0
        for mem in memory_factors:
            tpr, ws = _run_point(
                graph,
                n_servers=n_servers,
                replication=replication,
                memory_factor=mem,
                fraction=fraction,
                n_requests=n_requests,
                warmup_requests=warmup_requests,
                seed=seed,
            )
            tpr_ratio[label].append(tpr / base_tpr)
            ws_at_fraction = ws  # plan-driven: identical at every memory point
        working_sets.append(ws_at_fraction)

    return [
        ExperimentResult(
            name="limit_memory_tpr",
            title=(
                f"LIMIT x overbooking: TPR relative to same-fraction baseline "
                f"(R={replication}, {n_servers} servers)"
            ),
            x_label="memory",
            x_values=list(memory_factors),
            series=tpr_ratio,
            expectation=(
                "all fractions gain from memory; at low memory the relative "
                "gain is SMALLER for low fractions (their baseline is already "
                "transaction-efficient and misses erode the thinner margin)"
            ),
            meta={"graph": graph.name, "replication": replication},
        ),
        ExperimentResult(
            name="limit_memory_ws",
            title=(
                "LIMIT x overbooking: replica working set actually touched "
                "(in copies of the data; plan-driven, memory-independent)"
            ),
            x_label="fetch fraction",
            x_values=[f"{f:.0%}" for f in fractions],
            series={"working set (copies)": working_sets},
            expectation=(
                "the touched-replica working set shrinks with the fraction — "
                "LIMIT workloads need less replication memory to stop missing"
            ),
            meta={"graph": graph.name, "replication": replication},
        ),
    ]

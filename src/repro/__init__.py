"""Replicate and Bundle (RnB) — IPDPS 2013 reproduction.

RnB relieves the *multi-get hole* of RAM key-value fleets: instead of
adding CPUs, it adds memory.  Every item is replicated onto R distinct,
pseudo-randomly chosen servers (Ranged Consistent Hashing), and at read
time a greedy minimum-set-cover picks a small group of servers jointly
holding the whole request, bundling all items per server into a single
transaction — cutting per-request server work substantially.

Quick start::

    from repro import (
        Bundler, Cluster, RangedConsistentHashPlacer, Request, RnBClient,
    )

    placer = RangedConsistentHashPlacer(n_servers=16, replication=4)
    cluster = Cluster(placer, items=range(100_000))
    client = RnBClient(cluster, Bundler(placer))
    result = client.execute(Request(items=tuple(range(40))))
    print(result.transactions)  # ~6-7 instead of ~15 without RnB

See ``examples/`` for runnable scenarios, ``repro.experiments`` for the
per-figure reproduction drivers, and DESIGN.md for the system inventory.
"""

from repro._version import __version__
from repro.analysis.calibration import DEFAULT_MEMCACHED_MODEL, CostModel, fit_cost_model
from repro.analysis.urn import (
    expected_tpr,
    expected_tprps,
    prob_server_contacted,
    tprps_scaling_factor,
)
from repro.cluster.cluster import Cluster
from repro.cluster.placement import (
    FullReplicationPlacer,
    RandomPlacer,
    ReplicaPlacer,
    SingleHashPlacer,
    make_placer,
)
from repro.cluster.server import Server
from repro.core.baselines import FullReplicationClient, NoReplicationClient
from repro.core.bundling import Bundler
from repro.core.client import RnBClient
from repro.core.merge import merge_requests, merge_stream
from repro.core.setcover import greedy_partial_cover, greedy_set_cover
from repro.errors import RnBError
from repro.hashing.hashring import ConsistentHashRing
from repro.hashing.multihash import MultiHashPlacer
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.sim.config import ClientConfig, ClusterConfig, SimConfig
from repro.sim.engine import run_simulation
from repro.sim.montecarlo import mc_tpr
from repro.types import FetchPlan, FetchResult, ReplicaSet, Request, Transaction
from repro.workloads.graphs import SocialGraph
from repro.workloads.requests import EgoRequestGenerator, RandomRequestGenerator
from repro.workloads.synthetic import make_epinions_like, make_slashdot_like

__all__ = [
    "Bundler",
    "ClientConfig",
    "Cluster",
    "ClusterConfig",
    "ConsistentHashRing",
    "CostModel",
    "DEFAULT_MEMCACHED_MODEL",
    "EgoRequestGenerator",
    "FetchPlan",
    "FetchResult",
    "FullReplicationClient",
    "FullReplicationPlacer",
    "MultiHashPlacer",
    "NoReplicationClient",
    "RandomPlacer",
    "RandomRequestGenerator",
    "RangedConsistentHashPlacer",
    "ReplicaPlacer",
    "ReplicaSet",
    "Request",
    "RnBClient",
    "RnBError",
    "Server",
    "SimConfig",
    "SingleHashPlacer",
    "SocialGraph",
    "Transaction",
    "__version__",
    "expected_tpr",
    "expected_tprps",
    "fit_cost_model",
    "greedy_partial_cover",
    "greedy_set_cover",
    "make_epinions_like",
    "make_placer",
    "make_slashdot_like",
    "mc_tpr",
    "merge_requests",
    "merge_stream",
    "prob_server_contacted",
    "run_simulation",
    "tprps_scaling_factor",
]

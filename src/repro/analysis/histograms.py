"""Histogram presentation helpers (degree histograms, Figs 4–5).

Degree distributions span four orders of magnitude, so the paper plots
them on log axes; the text analogue is logarithmic binning.
"""

from __future__ import annotations

import numpy as np

from repro.utils.histogram import Histogram


def log_bin_edges(max_value: int, bins_per_decade: int = 3) -> list[int]:
    """Integer bin edges spaced geometrically: 1, 2, 5, 10, 22, 46, ...

    Starts at 1 (degree-0 nodes are reported separately) and ends just
    above ``max_value``.
    """
    if max_value < 1:
        raise ValueError("max_value must be >= 1")
    if bins_per_decade < 1:
        raise ValueError("bins_per_decade must be >= 1")
    edges = [1]
    x = 1.0
    ratio = 10.0 ** (1.0 / bins_per_decade)
    while edges[-1] <= max_value:
        x *= ratio
        edge = int(np.ceil(x))
        if edge > edges[-1]:
            edges.append(edge)
    return edges


def degree_histogram_rows(
    hist: Histogram, *, bins_per_decade: int = 3
) -> list[tuple[str, int, float]]:
    """(bin label, node count, fraction) rows for a degree histogram.

    Degree-0 nodes get their own row; positive degrees are log-binned.
    """
    total = hist.total
    if total == 0:
        raise ValueError("empty histogram")
    zero = hist.counts.get(0, 0)
    positive = Histogram({k: v for k, v in hist.counts.items() if k > 0})
    rows: list[tuple[str, int, float]] = []
    if zero:
        rows.append(("0", zero, zero / total))
    if len(positive):
        edges = log_bin_edges(positive.max, bins_per_decade)
        for label, count in positive.binned(edges):
            if count:
                rows.append((label, count, count / total))
    return rows


def tail_exponent_estimate(hist: Histogram, *, xmin: int = 10) -> float:
    """Maximum-likelihood power-law exponent of the histogram tail.

    Uses the discrete Hill/Clauset estimator
    ``alpha = 1 + n / sum(ln(x_i / (xmin - 0.5)))`` over observations
    ``>= xmin``; a quick heavy-tailedness check for synthetic-vs-paper
    comparisons, not a rigorous fit.
    """
    if xmin < 1:
        raise ValueError("xmin must be >= 1")
    n = 0
    log_sum = 0.0
    for value, count in hist.counts.items():
        if value >= xmin:
            n += count
            log_sum += count * np.log(value / (xmin - 0.5))
    if n == 0 or log_sum == 0.0:
        raise ValueError(f"no observations at or above xmin={xmin}")
    return 1.0 + n / log_sum

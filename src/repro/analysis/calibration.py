"""Micro-benchmark cost model and calibration fit (paper appendix).

The paper calibrates its simulator with memaslap micro-benchmarks against
a real memcached server: for transaction size m, the measured time per
transaction is affine, ``t(m) = t_txn + t_item * m``, until the NIC
saturates — "the number of items fetched per second is linear in the
number of items in a transaction, which means that the throughput is
indeed bounded by the number of transactions it processes per second and
not by the number of items fetched" (Fig 13).

:class:`CostModel` captures exactly that: a per-transaction cost, a
per-item cost, and an optional bandwidth cap in items/second.
:func:`fit_cost_model` recovers the parameters from (size, items/sec)
measurements by least squares — the calibration code path the paper ran
on memaslap output, which we run on the in-process server of
:mod:`repro.protocol.microbench`.

``DEFAULT_MEMCACHED_MODEL`` encodes a memcached-on-2010s-hardware shaped
default (~100k single-get transactions/s, ~5M item-lookups/s asymptote,
~1.2M 10-byte-items/s wire cap on 1GbE) so experiments run without a
local calibration pass; all experiment drivers accept a custom model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True, slots=True)
class CostModel:
    """Server-side cost of a multi-get transaction.

    Parameters
    ----------
    t_txn:
        Fixed seconds per transaction (syscall, parse, dispatch).
    t_item:
        Seconds per requested item (hash lookup, copy-out).
    bandwidth_items_per_s:
        Optional cap on items delivered per second (network bound for
        large items; ``None`` disables the cap).
    """

    t_txn: float
    t_item: float
    bandwidth_items_per_s: float | None = None

    def __post_init__(self) -> None:
        if self.t_txn <= 0 or self.t_item < 0:
            raise ValueError("t_txn must be > 0 and t_item >= 0")
        if self.bandwidth_items_per_s is not None and self.bandwidth_items_per_s <= 0:
            raise ValueError("bandwidth cap must be positive")

    # -- single-transaction views ------------------------------------------

    def txn_time(self, n_items: int) -> float:
        """CPU seconds to serve one transaction of ``n_items`` items."""
        if n_items < 0:
            raise ValueError("n_items must be >= 0")
        return self.t_txn + self.t_item * n_items

    def txns_per_second(self, n_items: int) -> float:
        """Sustainable transactions/s at fixed transaction size."""
        cpu = 1.0 / self.txn_time(n_items)
        if self.bandwidth_items_per_s is not None and n_items > 0:
            cpu = min(cpu, self.bandwidth_items_per_s / n_items)
        return cpu

    def items_per_second(self, n_items: int) -> float:
        """Items delivered per second at fixed transaction size (Fig 13's y)."""
        return self.txns_per_second(n_items) * n_items

    # -- aggregate views ------------------------------------------------------

    def work_seconds(self, txn_sizes: Sequence[int]) -> float:
        """Total CPU seconds to serve the given transactions."""
        total = 0.0
        for m in txn_sizes:
            total += self.txn_time(m)
        return total


def fit_cost_model(
    txn_sizes: Sequence[int],
    items_per_second: Sequence[float],
    *,
    cap_improvement: float = 0.8,
) -> CostModel:
    """Least-squares fit of a :class:`CostModel` from micro-bench samples.

    In time-per-transaction space, ``t(m) = m / rate(m)``, the model is a
    convex piecewise-linear maximum: the CPU regime is affine
    (``t_txn + t_item*m``) and the bandwidth regime is a line through the
    origin with slope ``1/cap``.  The fit is a changepoint search: for
    every split of the (size-sorted) samples into a CPU prefix and a
    capped suffix, fit the affine part on the prefix, estimate the cap as
    the mean suffix rate, and keep the split with the lowest total
    squared error.  A cap is only declared when the capped model beats
    the pure-affine fit by a ``cap_improvement`` factor — micro-benchmark
    noise must not conjure a bandwidth limit out of a clean affine curve.
    """
    sizes = np.asarray(txn_sizes, dtype=np.float64)
    rates = np.asarray(items_per_second, dtype=np.float64)
    if sizes.shape != rates.shape or sizes.ndim != 1:
        raise ValueError("txn_sizes and items_per_second must be equal-length 1-D")
    if len(sizes) < 2:
        raise ValueError("need at least two samples to fit")
    if np.any(sizes < 1) or np.any(rates <= 0):
        raise ValueError("sizes must be >= 1 and rates positive")

    order = np.argsort(sizes)
    sizes, rates = sizes[order], rates[order]
    times = sizes / rates  # seconds per transaction
    n = len(sizes)

    def affine_fit(k: int) -> tuple[float, float, float]:
        """Fit t = a + b*m on the first k points; returns (a, b, sse)."""
        a_mat = np.vstack([np.ones(k), sizes[:k]]).T
        coef, *_ = np.linalg.lstsq(a_mat, times[:k], rcond=None)
        a, b = float(coef[0]), float(coef[1])
        sse = float(((a + b * sizes[:k]) - times[:k]) ** 2 @ np.ones(k))
        return a, b, sse

    # candidate 0: no cap, affine over everything
    best_a, best_b, best_sse = affine_fit(n)
    best_cap: float | None = None
    no_cap_sse = best_sse

    # candidates: CPU prefix of length k (>= 2), capped suffix
    for k in range(2, n):
        a, b, sse_prefix = affine_fit(k)
        cap = float(rates[k:].mean())
        if cap <= 0:
            continue
        # the cap must *bind*: the suffix rates must sit clearly below what
        # the CPU line alone would deliver there, otherwise the "cap" is
        # just the CPU asymptote restated
        cpu_rate_suffix = sizes[k:] / np.maximum(a + b * sizes[k:], 1e-30)
        if not np.all(cap < 0.9 * cpu_rate_suffix):
            continue
        sse_suffix = float(((sizes[k:] / cap) - times[k:]) ** 2 @ np.ones(n - k))
        sse = sse_prefix + sse_suffix
        if sse < best_sse and sse < cap_improvement * no_cap_sse:
            best_a, best_b, best_sse, best_cap = a, b, sse, cap

    # degenerate fits (tiny negative intercept/slope from noise) are clamped
    t0 = max(best_a, 1e-12)
    t1 = max(best_b, 0.0)
    return CostModel(t_txn=t0, t_item=t1, bandwidth_items_per_s=best_cap)


#: Paper-shaped default: ~96k 1-item txns/s, 5M item-lookups/s asymptote,
#: 1.2M small-items/s wire cap (10-byte values + protocol overhead, 1GbE).
DEFAULT_MEMCACHED_MODEL = CostModel(
    t_txn=1.02e-5,
    t_item=2.0e-7,
    bandwidth_items_per_s=1.2e6,
)

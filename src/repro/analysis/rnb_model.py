"""Semi-analytic TPR model for RnB (a fluid approximation of greedy).

The paper quantifies plain placement in closed form (section II-A) but
evaluates RnB only by simulation — there is no closed form for the
greedy cover over random replica sets.  This module adds the natural
mean-field approximation so capacity planning doesn't need a Monte-Carlo
run per design point:

Model one greedy step on ``u`` still-uncovered items with ``k`` not-yet-
chosen servers.  The crucial observation: an item is still uncovered
exactly when NONE of its R replica servers has been chosen, so all R of
its replicas live among the k remaining servers — a remaining server
holds each uncovered item with probability ``R/k`` (not R/N).  The
greedy pick covers approximately the *maximum* of ``k`` iid
Binomial(u, R/k) draws, Gaussian-approximated at the extreme-value
quantile ``F^-1(k/(k+1))``.  Subtract, repeat; the final step is counted
*fractionally* (if its expected coverage overshoots the remaining items,
only the needed fraction of a transaction is charged), which matches the
fractional Monte-Carlo means.  Termination is guaranteed because the
conditional probability reaches 1 when k = R.

Validation against the Monte-Carlo truth (test suite + bench) over the
grid N in {8..64}, M in {10..100}, R in {2..5}: mean error ~6%, worst
~18% (small-M / large-N corners).  Exact for R = 1 (urn model) and
R = N.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.analysis.urn import expected_tpr


def greedy_step_coverage(u: float, k: int, p: float) -> float:
    """Approximate items newly covered by the best of ``k`` candidate
    servers when each holds each of ``u`` items with probability ``p``.

    Gaussian approximation of the expected maximum of k iid
    Binomial(u, p) variables at the ``k/(k+1)`` quantile; at least one
    item is always covered (a useful server exists by feasibility).
    """
    if u <= 0 or k <= 0:
        return 0.0
    if k == 1 or p >= 1.0:
        return max(1.0, min(u, u * p))
    z = float(stats.norm.ppf(k / (k + 1.0)))
    mean = u * p
    estimate = mean + z * np.sqrt(max(u * p * (1.0 - p), 0.0))
    return max(1.0, estimate)


def predicted_tpr(n_servers: int, request_size: int, replication: int) -> float:
    """Fluid-approximation TPR for a random request under RnB.

    Matches :func:`repro.analysis.urn.expected_tpr` exactly for the
    boundary cases R=N (one transaction) and the R=1 urn model, and
    approximates the greedy simulation otherwise.
    """
    if not (1 <= replication <= n_servers):
        raise ValueError("replication must be in [1, n_servers]")
    if request_size < 1:
        raise ValueError("request_size must be >= 1")
    if replication == n_servers:
        return 1.0
    if replication == 1:
        # exact: greedy on single copies just visits the occupied servers
        return expected_tpr(n_servers, request_size)

    u = float(request_size)
    k = n_servers
    txns = 0.0
    while u > 1e-9 and k > 0:
        # all replicas of still-uncovered items lie in the k remaining
        # servers, so the conditional holding probability is R/k
        p = min(1.0, replication / k)
        cov = greedy_step_coverage(u, k, p)
        if cov >= u:
            txns += u / cov  # fractional final transaction
            u = 0.0
        else:
            u -= cov
            txns += 1.0
        k -= 1
    if u > 1e-9:  # pragma: no cover - p reaches 1 at k == R
        raise RuntimeError("model failed to converge")
    return max(1.0, txns)


def predicted_tpr_curve(
    n_servers_list, request_size: int, replication: int
) -> np.ndarray:
    """Vector form of :func:`predicted_tpr` over fleet sizes."""
    return np.array(
        [predicted_tpr(n, request_size, replication) for n in n_servers_list]
    )


def required_replication(
    n_servers: int, request_size: int, target_tpr: float, *, max_replication: int | None = None
) -> int | None:
    """Smallest replication level whose predicted TPR meets the target.

    The planning question RnB deployments actually ask ("how much memory
    do I buy for a 2x cut?"); returns ``None`` if even ``max_replication``
    cannot reach it.
    """
    if target_tpr < 1.0:
        raise ValueError("target_tpr must be >= 1 transaction")
    limit = max_replication or n_servers
    for r in range(1, min(limit, n_servers) + 1):
        if predicted_tpr(n_servers, request_size, r) <= target_tpr:
            return r
    return None

"""Analytical models: urn occupancy, cost calibration, throughput.

* :mod:`repro.analysis.urn` — the closed-form multi-get-hole analysis of
  paper section II-A.
* :mod:`repro.analysis.calibration` — the micro-benchmark cost model of
  the paper's appendix (per-transaction + per-item time, bandwidth cap)
  and the least-squares fit that calibrates it from measurements.
* :mod:`repro.analysis.throughput` — converting simulated transaction
  histograms into system throughput estimates (Fig 3 methodology).
"""

from repro.analysis.calibration import (
    DEFAULT_MEMCACHED_MODEL,
    CostModel,
    fit_cost_model,
)
from repro.analysis.latency import LatencyModel, latency_profile
from repro.analysis.rnb_model import predicted_tpr, required_replication
from repro.analysis.throughput import (
    relative_throughput_curve,
    system_throughput,
    work_per_request,
)
from repro.analysis.urn import (
    expected_tpr,
    expected_tprps,
    occupancy_pmf,
    prob_server_contacted,
    tprps_scaling_factor,
)

__all__ = [
    "CostModel",
    "DEFAULT_MEMCACHED_MODEL",
    "LatencyModel",
    "latency_profile",
    "predicted_tpr",
    "required_replication",
    "expected_tpr",
    "expected_tprps",
    "fit_cost_model",
    "occupancy_pmf",
    "prob_server_contacted",
    "relative_throughput_curve",
    "system_throughput",
    "tprps_scaling_factor",
    "work_per_request",
]

"""Urn-model analysis of the multi-get hole (paper section II-A).

With M requested items placed uniformly at random on N servers, the
probability that a given server is contacted is the probability a given
urn is non-empty after throwing M balls into N urns:

    W(N, M) = 1 - (1 - 1/N)^M

* expected transactions per request:  TPR = N * W(N, M)
* transactions per request per server: TPRPS = W(N, M)
* TPRPS scaling factor when growing N -> c*N:
      W(N, M) / W(cN, M)
  (ideal scaling gives exactly c; the multi-get hole is this factor
  collapsing toward 1 when N <~ M — paper Fig 2).

``occupancy_pmf`` gives the exact distribution of the number of occupied
urns (via the standard inclusion–exclusion / Stirling-number identity),
used to validate the simulator against theory in the test suite.
"""

from __future__ import annotations

import math

import numpy as np


def prob_server_contacted(n_servers: int, request_size: int) -> float:
    """W(N, M): probability a given server receives a transaction."""
    if n_servers < 1:
        raise ValueError("n_servers must be >= 1")
    if request_size < 0:
        raise ValueError("request_size must be >= 0")
    return 1.0 - (1.0 - 1.0 / n_servers) ** request_size


def expected_tpr(n_servers: int, request_size: int) -> float:
    """Expected number of transactions per request: N * W(N, M)."""
    return n_servers * prob_server_contacted(n_servers, request_size)


def expected_tprps(n_servers: int, request_size: int) -> float:
    """Expected transactions per request per server (= W(N, M))."""
    return prob_server_contacted(n_servers, request_size)


def tprps_scaling_factor(
    n_servers: int, request_size: int, growth: float = 2.0
) -> float:
    """TPRPS ratio between an N-server and a growth*N-server system.

    This is the *throughput* scaling factor when per-transaction work
    dominates: doubling servers multiplies capacity by
    ``W(N,M)/W(2N,M) <= 2``.  Ideal scaling returns ``growth`` (attained
    as M -> 1); values near 1 mean adding servers buys nothing.
    """
    if growth <= 0:
        raise ValueError("growth must be positive")
    grown = n_servers * growth
    if grown != int(grown):
        # W extends naturally to non-integer N; keep it exact when we can
        grown_n = grown
    else:
        grown_n = int(grown)
    w_before = prob_server_contacted(n_servers, request_size)
    w_after = 1.0 - (1.0 - 1.0 / grown_n) ** request_size
    if w_after == 0.0:
        raise ValueError("scaling factor undefined for request_size=0")
    return w_before / w_after


def occupancy_pmf(n_servers: int, request_size: int) -> np.ndarray:
    """Exact PMF of the number of occupied urns.

    ``P(K = k) = C(N,k) * sum_{j=0}^{k} (-1)^j C(k,j) ((k-j)/N)^M``
    for ``k = 0..N``; returned as an array indexed by k.  Computed with
    ``math.comb`` (exact integers) and floats only at the end, so it is
    stable for the N <= 1024 range the experiments use.
    """
    if n_servers < 1 or request_size < 0:
        raise ValueError("need n_servers >= 1 and request_size >= 0")
    n, m = n_servers, request_size
    pmf = np.zeros(n + 1, dtype=np.float64)
    for k in range(0, n + 1):
        total = 0.0
        for j in range(0, k + 1):
            sign = -1.0 if j % 2 else 1.0
            total += sign * math.comb(k, j) * ((k - j) / n) ** m
        pmf[k] = math.comb(n, k) * total
    # clip tiny negative round-off and renormalise
    pmf = np.clip(pmf, 0.0, None)
    s = pmf.sum()
    if s > 0:
        pmf /= s
    return pmf


def expected_tpr_exact(n_servers: int, request_size: int) -> float:
    """Mean of :func:`occupancy_pmf` — agrees with :func:`expected_tpr`
    when items are sampled *with* replacement; used in tests."""
    pmf = occupancy_pmf(n_servers, request_size)
    return float(np.dot(np.arange(len(pmf)), pmf))


def expected_tpr_distinct_items(n_servers: int, request_size: int) -> float:
    """Expected occupied servers when the M items are distinct keys.

    Distinct keys still hash independently and uniformly, so this equals
    :func:`expected_tpr`; kept as a named alias to make call sites
    self-documenting about the modelling assumption.
    """
    return expected_tpr(n_servers, request_size)

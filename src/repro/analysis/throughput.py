"""System throughput from simulated transaction histograms (Fig 3 method).

"The simulator produced a histogram of the number of items in each
transaction and, based on this histogram, we estimated the maximum
throughput of the system" (paper section III-B).  With per-transaction
cost ``t(m)`` from the calibrated :class:`CostModel`, the mean server
work per end-user request is

    E[work] = (1 / n_requests) * sum over transactions of t(m_txn)

and, assuming the pseudo-random placement spreads work evenly over the N
servers (verified by the load-balance tests), the request-handling
capacity of the whole fleet is

    throughput = N / E[work]   requests/second.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.analysis.calibration import CostModel
from repro.utils.histogram import Histogram


def work_per_request(
    txn_size_histogram: "Histogram | Mapping[int, int]",
    n_requests: int,
    cost_model: CostModel,
) -> float:
    """Mean server CPU-seconds consumed per end-user request."""
    if n_requests <= 0:
        raise ValueError("n_requests must be positive")
    counts = (
        txn_size_histogram.counts
        if isinstance(txn_size_histogram, Histogram)
        else txn_size_histogram
    )
    total = 0.0
    for size, count in counts.items():
        total += count * cost_model.txn_time(size)
    return total / n_requests


def system_throughput(
    txn_size_histogram: "Histogram | Mapping[int, int]",
    n_requests: int,
    n_servers: int,
    cost_model: CostModel,
) -> float:
    """Maximum request-handling rate of the fleet (requests/second)."""
    if n_servers <= 0:
        raise ValueError("n_servers must be positive")
    work = work_per_request(txn_size_histogram, n_requests, cost_model)
    if work == 0.0:
        raise ValueError("no transactions recorded; throughput undefined")
    return n_servers / work


def relative_throughput_curve(
    throughputs: Sequence[float],
) -> list[float]:
    """Normalise a throughput-vs-N series to the first (single-server) point.

    This is the paper's Fig 3 y-axis: "throughput with a varying number of
    servers, relative to the throughput of a single server system".
    """
    if not throughputs:
        raise ValueError("empty throughput series")
    base = throughputs[0]
    if base <= 0:
        raise ValueError("baseline throughput must be positive")
    return [t / base for t in throughputs]

"""A simple latency model for RnB reads (paper section V-B future work).

"Additional future work includes measuring the impact of RnB on the
latency ... of real and simulated systems."

Model: a client issues a round's transactions in parallel; the round
completes when its slowest transaction returns.  A transaction to a
server costs one network RTT plus the server-side service time from the
calibrated :class:`CostModel`.  A request's latency is the sum of its
rounds (RnB has at most two: the planned fetch and the miss repair).

This deliberately ignores queueing (like the paper's simulator) — it
isolates the *structural* latency effect of RnB: fewer transactions do
not speed up a request (rounds are parallel), and second rounds under
overbooking add a full RTT.  RnB buys throughput, not latency; the model
makes that trade-off measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.analysis.calibration import CostModel
from repro.types import FetchResult


@dataclass(frozen=True, slots=True)
class LatencyModel:
    """Round-trip + service-time latency of bundled fetches."""

    cost_model: CostModel
    rtt: float = 200e-6  # one intra-datacenter round trip (200us)

    def __post_init__(self) -> None:
        if self.rtt < 0:
            raise ValueError("rtt must be non-negative")

    def transaction_latency(self, n_items: int) -> float:
        """Latency of one transaction: RTT + service time."""
        return self.rtt + self.cost_model.txn_time(n_items)

    def round_latency(self, txn_sizes: Sequence[int]) -> float:
        """A round of parallel transactions finishes with its slowest."""
        if not txn_sizes:
            return 0.0
        return max(self.transaction_latency(m) for m in txn_sizes)

    def request_latency(self, result: FetchResult) -> float:
        """Latency of one executed request (1 or 2 rounds).

        ``result.txn_sizes`` lists round-one transactions first, then the
        second-round transactions (this is the order
        :class:`repro.core.client.RnBClient` records them in).
        """
        n_second = result.second_round_transactions
        sizes = list(result.txn_sizes)
        if n_second == 0:
            return self.round_latency(sizes)
        first, second = sizes[: len(sizes) - n_second], sizes[len(sizes) - n_second :]
        return self.round_latency(first) + self.round_latency(second)


def latency_profile(
    results: Iterable[FetchResult], model: LatencyModel
) -> dict[str, float]:
    """Mean / p50 / p95 / p99 request latency (seconds) over a run."""
    results = list(results)
    latencies = np.array([model.request_latency(r) for r in results])
    if len(latencies) == 0:
        raise ValueError("no results to profile")
    return {
        "mean": float(latencies.mean()),
        "p50": float(np.percentile(latencies, 50)),
        "p95": float(np.percentile(latencies, 95)),
        "p99": float(np.percentile(latencies, 99)),
        "two_round_fraction": float(
            np.mean([r.second_round_transactions > 0 for r in results])
        ),
    }

"""Epoch-aware replica placement over a changing fleet.

:class:`EpochedPlacer` wraps the library's hash placers (RCH or
multi-hash) and re-derives placement for whatever :class:`ClusterView`
is installed, so ``replicas_for`` / ``distinguished_for`` stay *total*
functions of the item even after servers are removed — the paper's §IV
placement extended with the self-healing semantics the static model
lacks.

Placement under a view is an **overlay** of two derivations:

1. the *canonical* placement over all member ids (what the fleet would
   use if everyone were alive), and
2. a *survivor* placement over the alive ids only.

For each item, the canonical replica list is filtered to alive servers
— preserving order, which yields **distinguished-copy promotion**: when
replica 0's server dies, replica 1 becomes the new home — and then
topped up from the survivor stream until ``min(R, n_alive)`` distinct
alive replicas are reached.

Consequences (property-tested in ``tests/membership``):

* an item with no replica on a removed server keeps its exact replica
  list — removal churn touches only the items the dead server held;
* every item always has ``min(R, n_alive)`` distinct alive replicas;
* when every member is alive the placement equals the plain placer's,
  so installing epoch 0 is a no-op relative to the classic deployment.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hashing.multihash import MultiHashPlacer
from repro.hashing.rch import RangedConsistentHashPlacer
from repro.membership.view import ClusterView
from repro.types import ReplicaSet


class EpochedPlacer:
    """A ``ReplicaPlacer`` that follows cluster membership epochs.

    Parameters
    ----------
    kind:
        ``"rch"`` (Ranged Consistent Hashing) or ``"multihash"``.
    n_servers:
        Initial fleet size (ids ``0..n_servers-1``, all alive) when no
        explicit ``view`` is given.
    replication:
        Target replica count ``R``; the effective count is
        ``min(R, n_alive)`` under the installed view.
    seed, vnodes, cache_size:
        Forwarded to the underlying placers.  ``vnodes`` only applies to
        RCH.
    view:
        Optional initial :class:`ClusterView` (defaults to
        ``ClusterView.initial(n_servers)``).
    """

    def __init__(
        self,
        kind: str,
        n_servers: int,
        replication: int,
        *,
        seed: int = 0,
        vnodes: int = 128,
        cache_size: int = 1 << 20,
        view: ClusterView | None = None,
    ) -> None:
        if kind not in ("rch", "multihash"):
            raise ConfigurationError(
                f"kind must be 'rch' or 'multihash'; got {kind!r}"
            )
        if replication < 1:
            raise ConfigurationError("replication must be >= 1")
        self.kind = kind
        self.replication = replication
        self.seed = seed
        self.vnodes = vnodes
        self._cache_size = cache_size
        self.view: ClusterView = view or ClusterView.initial(n_servers)
        self._rebuild()

    # -- view management ---------------------------------------------------

    def install_view(self, view: ClusterView) -> "ClusterView":
        """Switch to ``view``; placement memoisation is rebuilt.

        Installing a view with a lower epoch than the current one raises:
        epochs are monotone, and a client holding an older view must
        refresh, never roll the placer back.  Returns the previous view.
        """
        if view.epoch < self.view.epoch:
            raise ConfigurationError(
                f"cannot install epoch {view.epoch} over epoch {self.view.epoch}"
            )
        previous = self.view
        self.view = view
        self._rebuild()
        return previous

    @property
    def epoch(self) -> int:
        return self.view.epoch

    @property
    def n_servers(self) -> int:
        """Size of the id space (so a :class:`Cluster` allocates a slot
        per member id, including currently-dead ones)."""
        return self.view.id_space

    @property
    def replication_effective(self) -> int:
        return min(self.replication, self.view.n_alive)

    # -- placement ----------------------------------------------------------

    def _make(self, server_ids: tuple, replication: int):
        if self.kind == "rch":
            return RangedConsistentHashPlacer(
                len(server_ids),
                replication,
                vnodes=self.vnodes,
                seed=self.seed,
                cache_size=self._cache_size,
                server_ids=server_ids,
            )
        return MultiHashPlacer(
            self.view.id_space,
            replication,
            seed=self.seed,
            cache_size=self._cache_size,
            server_ids=server_ids,
        )

    def _rebuild(self) -> None:
        view = self.view
        r_canonical = min(self.replication, view.n_members)
        self._canonical = self._make(view.members, r_canonical)
        if view.n_alive == view.n_members:
            self._survivor = self._canonical
        else:
            self._survivor = self._make(
                tuple(sorted(view.alive_servers)), self.replication_effective
            )
        # Plain dict memo (see RangedConsistentHashPlacer): an
        # instance-bound lru_cache would cycle through the bound method
        # and keep retired epochs alive until a cyclic gc pass.
        self._cache: dict = {}

    def _compute(self, item) -> tuple:
        alive = self.view.alive_servers
        canonical = self._canonical.servers_for(item)
        keep = [s for s in canonical if s in alive]
        r_eff = self.replication_effective
        need = r_eff - len(keep)
        if need <= 0:
            return tuple(keep[:r_eff])
        # Top up from the survivor stream.  The stream has r_eff distinct
        # alive servers, of which at most len(keep) coincide with the kept
        # prefix, so it always yields the `need` replacements.
        extras = [s for s in self._survivor.servers_for(item) if s not in keep]
        return tuple((*keep, *extras[:need]))

    def replicas_for(self, item) -> ReplicaSet:
        """Ordered replica set under the current view; index 0 is the
        (possibly promoted) distinguished copy."""
        return ReplicaSet(item=item, servers=self.servers_for(item))

    def servers_for(self, item) -> tuple:
        cache = self._cache
        servers = cache.get(item)
        if servers is None:
            servers = self._compute(item)
            if len(cache) >= self._cache_size:
                cache.clear()
            cache[item] = servers
        return servers

    def distinguished_for(self, item) -> int:
        return self.servers_for(item)[0]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"EpochedPlacer(kind={self.kind!r}, R={self.replication}, "
            f"{self.view.describe()})"
        )

"""Self-healing membership: topology epochs, epoch-aware placement,
re-replication repair and the coordinating service.

The subsystem closes the loop the static fault model leaves open:
clients detect failures (``repro.faults.health``), propose membership
changes, the service commits a new epoch, the epoched placer re-derives
placement with distinguished-copy promotion, and the repair executor
re-replicates at a bounded rate until every item is back to full R.
"""

from repro.membership.epoched import EpochedPlacer
from repro.membership.repair import (
    CopyOp,
    DropOp,
    EpochDelta,
    PinOp,
    RepairExecutor,
    cluster_repair_fns,
    compute_epoch_delta,
    protocol_repair_fns,
)
from repro.membership.service import (
    MembershipEvent,
    MembershipService,
    make_cluster_service,
)
from repro.membership.view import ClusterView

__all__ = [
    "ClusterView",
    "CopyOp",
    "DropOp",
    "EpochDelta",
    "EpochedPlacer",
    "MembershipEvent",
    "MembershipService",
    "PinOp",
    "RepairExecutor",
    "cluster_repair_fns",
    "compute_epoch_delta",
    "make_cluster_service",
    "protocol_repair_fns",
]

"""Topology epochs: who is in the cluster, and since when.

A :class:`ClusterView` is an immutable snapshot of cluster membership —
the *epoch* (a monotone version number), the set of *member* server ids
(the id space, dead or alive) and the subset currently believed *alive*.
Every reconfiguration (permanent removal, recovery, join) produces a new
view with ``epoch + 1``; components compare epochs to detect stale
topology, exactly how production caches version their server rings
(and how Harmonia-style designs reason about availability under
reconfiguration).

Views are values: they can be passed between the membership service,
placers, repair planners and clients without aliasing hazards, and two
views are interchangeable iff they compare equal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class ClusterView:
    """One immutable epoch of cluster membership.

    Parameters
    ----------
    epoch:
        Monotone topology version; bumped by every membership change.
    alive_servers:
        Ids of servers currently serving traffic.
    members:
        The full id space (alive plus known-dead ids).  Defaults to
        ``alive_servers``.  Keeping dead ids as members means a recovered
        server returns to exactly its canonical placement arcs.
    """

    epoch: int
    alive_servers: frozenset[int]
    members: tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        alive = frozenset(self.alive_servers)
        members = tuple(sorted(self.members)) if self.members else tuple(sorted(alive))
        object.__setattr__(self, "alive_servers", alive)
        object.__setattr__(self, "members", members)
        if self.epoch < 0:
            raise ConfigurationError("epoch must be non-negative")
        if not alive:
            raise ConfigurationError("a view must have at least one alive server")
        if not alive <= set(members):
            raise ConfigurationError("alive servers must be members")
        if any(s < 0 for s in members):
            raise ConfigurationError("server ids must be non-negative")

    # -- constructors ------------------------------------------------------

    @classmethod
    def initial(cls, n_servers: int) -> "ClusterView":
        """Epoch 0: servers ``0..n_servers-1``, all alive."""
        if n_servers < 1:
            raise ConfigurationError("n_servers must be >= 1")
        ids = frozenset(range(n_servers))
        return cls(epoch=0, alive_servers=ids, members=tuple(range(n_servers)))

    # -- transitions (each returns a NEW view with epoch + 1) --------------

    def without(self, server: int) -> "ClusterView":
        """Permanent-loss transition: ``server`` leaves the alive set.

        The id stays a member so a later :meth:`with_recovered` restores
        its canonical placement.
        """
        if server not in self.alive_servers:
            raise ConfigurationError(f"server {server} is not alive in epoch {self.epoch}")
        if len(self.alive_servers) == 1:
            raise ConfigurationError("cannot remove the last alive server")
        return ClusterView(
            epoch=self.epoch + 1,
            alive_servers=self.alive_servers - {server},
            members=self.members,
        )

    def with_recovered(self, server: int) -> "ClusterView":
        """A known member rejoins the alive set (restart after crash)."""
        if server not in self.members:
            raise ConfigurationError(
                f"server {server} is not a member; use with_join for new servers"
            )
        if server in self.alive_servers:
            raise ConfigurationError(f"server {server} is already alive")
        return ClusterView(
            epoch=self.epoch + 1,
            alive_servers=self.alive_servers | {server},
            members=self.members,
        )

    def with_join(self, server: int) -> "ClusterView":
        """A brand-new server id joins the fleet (elastic growth)."""
        if server in self.members:
            raise ConfigurationError(
                f"server {server} is already a member; use with_recovered"
            )
        return ClusterView(
            epoch=self.epoch + 1,
            alive_servers=self.alive_servers | {server},
            members=tuple(sorted((*self.members, server))),
        )

    # -- queries ------------------------------------------------------------

    @property
    def n_alive(self) -> int:
        return len(self.alive_servers)

    @property
    def n_members(self) -> int:
        return len(self.members)

    @property
    def id_space(self) -> int:
        """Smallest ``n`` such that every member id is in ``[0, n)``."""
        return self.members[-1] + 1

    @property
    def dead_servers(self) -> frozenset[int]:
        return frozenset(self.members) - self.alive_servers

    def is_alive(self, server: int) -> bool:
        return server in self.alive_servers

    def describe(self) -> str:
        dead = sorted(self.dead_servers)
        return (
            f"epoch {self.epoch}: {self.n_alive}/{self.n_members} alive"
            + (f", dead={dead}" if dead else "")
        )
